// Reproduces paper Figure 2 (a sample basic block DAG) and Figure 4 (its
// Split-Node DAG on the Figure 3 architecture): prints node inventories and
// emits Graphviz DOT for both, plus the Split-Node DAG growth table for all
// shipped blocks on arch1 and arch2 (the "#Nodes" columns of Tables I/II).
//
// Flags: --dot-dir <path> writes fig2.dot / fig4.dot there (default: skip).
#include <cstdio>

#include "bench_common.h"
#include "support/cli.h"
#include "support/io.h"

int main(int argc, char** argv) {
  using namespace aviv;
  try {
    CliFlags flags(argc, argv);
    const std::string dotDir = flags.getString("dot-dir", "");
    flags.finish();

    const BlockDag dag = loadBlock("fig2");
    const Machine machine = loadMachine("arch1");
    const MachineDatabases dbs(machine);
    const SplitNodeDag snd =
        SplitNodeDag::build(dag, machine, dbs, CodegenOptions{});

    std::printf("Figure 2 — sample basic block DAG '%s'\n", dag.name().c_str());
    for (NodeId id = 0; id < dag.size(); ++id)
      std::printf("  %s\n", dag.describe(id).c_str());

    std::printf("\nFigure 4 — Split-Node DAG on %s\n", machine.name().c_str());
    std::printf("  %zu leaf, %zu split, %zu alternative, %zu transfer nodes "
                "(total %zu)\n",
                snd.numLeafNodes(), snd.numSplitNodes(), snd.numAltNodes(),
                snd.numTransferNodes(), snd.size());
    for (NodeId id = 0; id < dag.size(); ++id) {
      if (isLeafOp(dag.node(id).op)) continue;
      std::printf("  %s splits into:", dag.describe(id).c_str());
      for (SndId alt : snd.altsOf(id))
        std::printf(" %s", snd.describe(alt).c_str());
      std::printf("\n");
    }
    std::printf("  Possible functional-unit assignments: ");
    size_t product = 1;
    for (NodeId id = 0; id < dag.size(); ++id)
      if (isMachineOp(dag.node(id).op)) product *= snd.altsOf(id).size();
    std::printf("%zu (paper: 2 x 2 x 3 = 12)\n", product);

    if (!dotDir.empty()) {
      writeFile(dotDir + "/fig2.dot", dag.dot());
      writeFile(dotDir + "/fig4.dot", snd.dot());
      std::printf("  DOT written to %s/fig2.dot and %s/fig4.dot\n",
                  dotDir.c_str(), dotDir.c_str());
    }

    std::printf("\nSplit-Node DAG growth (Tables I/II '#Nodes' columns):\n");
    TextTable table({"Block", "IR nodes", "SND on arch1", "SND on arch2"});
    const Machine arch2 = loadMachine("arch2");
    const MachineDatabases dbs2(arch2);
    for (const char* name : {"ex1", "ex2", "ex3", "ex4", "ex5"}) {
      const BlockDag block = loadBlock(name);
      const SplitNodeDag s1 =
          SplitNodeDag::build(block, machine, dbs, CodegenOptions{});
      const SplitNodeDag s2 =
          SplitNodeDag::build(block, arch2, dbs2, CodegenOptions{});
      table.addRow({name, std::to_string(block.size()),
                    std::to_string(s1.size()), std::to_string(s2.size())});
    }
    std::printf("%s", table.str().c_str());
    std::printf("Note: like the paper's Table II, the reduced architecture "
                "yields a smaller Split-Node DAG for the same blocks.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig2_fig4_splitnode: %s\n", e.what());
    return 1;
  }
}
