// Shared helpers for the experiment-reproduction benches (Tables I/II,
// Figures 2-9, ablations).
#pragma once

#include <cstdio>
#include <string>

#include "baseline/optimal.h"
#include "baseline/sequential.h"
#include "core/codegen.h"
#include "driver/codegen.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/timer.h"

namespace aviv::bench {

// One Table I / Table II row.
struct TableRow {
  std::string label;        // Ex1..Ex7
  std::string block;        // underlying .blk name
  int regsPerFile = 4;

  size_t irNodes = 0;
  size_t sndNodes = 0;
  int spills = 0;
  int optimalInstr = -1;    // "By Hand" stand-in (exact search)
  bool optimalProven = false;
  int avivInstr = 0;        // heuristics on (full driver incl. peephole)
  double avivSeconds = 0;
  int hoffInstr = -1;       // heuristics off (parenthesized column)
  double hoffSeconds = 0;
  bool hoffTimedOut = false;
};

// Runs one experiment row: AVIV with heuristics, optionally heuristics-off,
// and the exact optimal search primed with AVIV's result. `jobs` > 1 covers
// candidate assignments on a thread pool (bit-identical results). When
// `telemetryOut` is given, each run's phase-telemetry subtree is merged into
// it under "<label>" / "<label>-heur-off" (serialize with toJson for
// --stats-json).
inline TableRow runTableRow(const std::string& label, const std::string& block,
                            const Machine& machineTemplate, int regs,
                            bool runHeuristicsOff, double hoffTimeLimit,
                            double optimalTimeLimit, int jobs = 1,
                            TelemetryNode* telemetryOut = nullptr) {
  TableRow row;
  row.label = label;
  row.block = block;
  row.regsPerFile = regs;

  const BlockDag dag = loadBlock(block);
  const Machine machine = machineTemplate.withRegisterCount(regs);
  const MachineDatabases dbs(machine);

  // Heuristics on: the full pipeline (incl. peephole), like the paper's
  // main column.
  {
    DriverOptions options;
    options.core = CodegenOptions::heuristicsOn();
    options.core.jobs = jobs;
    CodeGenerator generator(machine, options);
    WallTimer timer;
    const CompiledBlock compiled = generator.compileBlock(dag);
    row.avivSeconds = timer.seconds();
    row.avivInstr = compiled.numInstructions();
    // Read the per-stage numbers through the session telemetry tree (the
    // typed view) — same source --stats-json serializes.
    const TelemetryNode* blockTel =
        generator.telemetry().findChild("block:" + dag.name());
    const CoreStats stats = coreStatsView(*blockTel);
    row.irNodes = stats.irNodes;
    row.sndNodes = stats.sndNodes;
    row.spills = stats.cover.spillsInserted;
    if (telemetryOut != nullptr) telemetryOut->child(label).merge(*blockTel);
  }

  // Heuristics off (exhaustive assignment enumeration, no level window).
  if (runHeuristicsOff) {
    DriverOptions options;
    options.core = CodegenOptions::heuristicsOff();
    options.core.timeLimitSeconds = hoffTimeLimit;
    options.core.jobs = jobs;
    CodeGenerator generator(machine, options);
    WallTimer timer;
    const CompiledBlock compiled = generator.compileBlock(dag);
    row.hoffSeconds = timer.seconds();
    row.hoffInstr = compiled.numInstructions();
    row.hoffTimedOut = compiled.core.stats.timedOut;
    if (telemetryOut != nullptr) {
      const TelemetryNode* blockTel =
          generator.telemetry().findChild("block:" + dag.name());
      telemetryOut->child(label + "-heur-off").merge(*blockTel);
    }
  }

  // "By Hand" column: exact optimal search primed with AVIV's result.
  {
    OptimalOptions options;
    options.incumbent = row.hoffInstr > 0
                            ? std::min(row.avivInstr, row.hoffInstr)
                            : row.avivInstr;
    options.timeLimitSeconds = optimalTimeLimit;
    const OptimalResult result = optimalCodeSize(dag, machine, dbs, options);
    row.optimalInstr = result.instructions;
    row.optimalProven = result.proven;
  }
  return row;
}

inline void printTable(const std::string& title,
                       const std::vector<TableRow>& rows, bool withHoff) {
  std::printf("%s\n", title.c_str());
  TextTable table({"Basic Block", "Original DAG #Nodes",
                   "Split-Node DAG #Nodes", "#Registers per RegFile",
                   "#Spills Inserted", "#Instr Optimal (\"By Hand\")",
                   withHoff ? "#Instr Aviv (heur-off)" : "#Instr Aviv",
                   withHoff ? "CPU Time secs (heur-off)" : "CPU Time secs"});
  for (const TableRow& row : rows) {
    std::string optimal = row.optimalInstr < 0
                              ? "n/a"
                              : std::to_string(row.optimalInstr);
    if (!row.optimalProven) optimal += "*";
    std::string instr = std::to_string(row.avivInstr);
    std::string time = formatFixed(row.avivSeconds, 3);
    if (withHoff && row.hoffInstr >= 0) {
      instr += " (" + std::to_string(row.hoffInstr) +
               (row.hoffTimedOut ? "^" : "") + ")";
      time += " (" + formatFixed(row.hoffSeconds, 1) + ")";
    }
    table.addRow({row.label, std::to_string(row.irNodes),
                  std::to_string(row.sndNodes),
                  std::to_string(row.regsPerFile),
                  std::to_string(row.spills), optimal, instr, time});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "Legend: parentheses = heuristics turned off; * = optimal search hit "
      "its time limit (best found shown); ^ = heuristics-off hit its time "
      "limit.\n\n");
}

}  // namespace aviv::bench
