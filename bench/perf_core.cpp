// Performance microbenchmarks (google-benchmark) for the expensive stages
// of the AVIV flow, on the paper's blocks and on synthetic DAGs of growing
// size. The paper observes that "generating all of the maximal cliques is
// the most time consuming portion of our algorithm" — BM_CliqueGeneration
// vs the rest quantifies that on our implementation, and the LevelWindow
// variants show the Section IV-C.2 remedy.
#include <benchmark/benchmark.h>

#include "core/assign_explore.h"
#include "core/assigned.h"
#include "core/clique.h"
#include "core/codegen.h"
#include "core/parallel_matrix.h"
#include "ir/parser.h"
#include "ir/random_dag.h"
#include "isdl/parser.h"
#include "support/thread_pool.h"

namespace {

using namespace aviv;

const Machine& arch1() {
  static const Machine machine = loadMachine("arch1");
  return machine;
}
const MachineDatabases& arch1Dbs() {
  static const MachineDatabases dbs(arch1());
  return dbs;
}

BlockDag syntheticDag(int ops) {
  RandomDagSpec spec;
  spec.numOps = ops;
  spec.numInputs = std::max(2, ops / 3);
  spec.seed = 42;
  return makeRandomDag(spec);
}

void BM_SplitNodeBuild(benchmark::State& state) {
  const BlockDag dag = syntheticDag(static_cast<int>(state.range(0)));
  const CodegenOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SplitNodeDag::build(dag, arch1(), arch1Dbs(), options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SplitNodeBuild)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_AssignmentExploration(benchmark::State& state) {
  const BlockDag dag = syntheticDag(static_cast<int>(state.range(0)));
  const CodegenOptions options = CodegenOptions::heuristicsOn();
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, arch1(), arch1Dbs(), options);
  for (auto _ : state) {
    AssignmentExplorer explorer(snd, options);
    benchmark::DoNotOptimize(explorer.explore());
  }
}
BENCHMARK(BM_AssignmentExploration)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_CliqueGeneration(benchmark::State& state) {
  const BlockDag dag = syntheticDag(static_cast<int>(state.range(0)));
  const CodegenOptions options;
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, arch1(), arch1Dbs(), options);
  const auto assignment = AssignmentExplorer(snd, options).explore().front();
  const AssignedGraph graph =
      AssignedGraph::materialize(snd, assignment, options);
  const ParallelismMatrix matrix(graph, -1);
  DynBitset active(graph.size(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generateMaximalCliques(matrix, active, 1u << 20));
  }
}
BENCHMARK(BM_CliqueGeneration)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_CliqueGenerationLevelWindow(benchmark::State& state) {
  const BlockDag dag = syntheticDag(static_cast<int>(state.range(0)));
  const CodegenOptions options;
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, arch1(), arch1Dbs(), options);
  const auto assignment = AssignmentExplorer(snd, options).explore().front();
  const AssignedGraph graph =
      AssignedGraph::materialize(snd, assignment, options);
  const ParallelismMatrix matrix(graph, /*levelWindow=*/2);
  DynBitset active(graph.size(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generateMaximalCliques(matrix, active, 1u << 20));
  }
}
BENCHMARK(BM_CliqueGenerationLevelWindow)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_FullCoverHeuristicsOn(benchmark::State& state) {
  const BlockDag dag = syntheticDag(static_cast<int>(state.range(0)));
  // Synthetic DAGs mark every sink as an output; store outputs to memory so
  // arbitrary output counts stay register-feasible.
  CodegenOptions options = CodegenOptions::heuristicsOn();
  options.outputsToMemory = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coverBlock(dag, arch1(), arch1Dbs(), options));
  }
}
BENCHMARK(BM_FullCoverHeuristicsOn)->Arg(8)->Arg(16)->Arg(32);

// Covering the selected candidate assignments is the dominant cost of
// coverBlock and embarrassingly parallel; Arg = jobs. Results are
// bit-identical across thread counts (the determinism test asserts it);
// this measures the wall-clock payoff.
void BM_CoverSelectedAssignments(benchmark::State& state) {
  const BlockDag dag = syntheticDag(26);
  CodegenOptions options = CodegenOptions::heuristicsOn();
  // Synthetic sinks are all outputs; memory placement keeps them feasible.
  options.outputsToMemory = true;
  // Widen the candidate pool so there is enough independent covering work.
  options.assignPruneIncremental = false;
  options.assignBeamWidth = 32;
  options.assignKeepBest = 8;
  options.jobs = static_cast<int>(state.range(0));
  ThreadPool pool(options.jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coverBlock(dag, arch1(), arch1Dbs(), options,
                                        options.jobs > 1 ? &pool : nullptr));
  }
  state.SetLabel("jobs=" + std::to_string(options.jobs));
}
BENCHMARK(BM_CoverSelectedAssignments)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_PaperBlocks(benchmark::State& state) {
  static const char* names[] = {"ex1", "ex2", "ex3", "ex4", "ex5"};
  const BlockDag dag = loadBlock(names[state.range(0)]);
  const CodegenOptions options = CodegenOptions::heuristicsOn();
  for (auto _ : state) {
    benchmark::DoNotOptimize(coverBlock(dag, arch1(), arch1Dbs(), options));
  }
  state.SetLabel(names[state.range(0)]);
}
BENCHMARK(BM_PaperBlocks)->DenseRange(0, 4);

void BM_ReferenceBronKerbosch(benchmark::State& state) {
  const BlockDag dag = syntheticDag(static_cast<int>(state.range(0)));
  const CodegenOptions options;
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, arch1(), arch1Dbs(), options);
  const auto assignment = AssignmentExplorer(snd, options).explore().front();
  const AssignedGraph graph =
      AssignedGraph::materialize(snd, assignment, options);
  const ParallelismMatrix matrix(graph, -1);
  DynBitset active(graph.size(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(referenceMaximalCliques(matrix, active));
  }
}
BENCHMARK(BM_ReferenceBronKerbosch)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
