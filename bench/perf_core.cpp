// Performance microbenchmarks (google-benchmark) for the expensive stages
// of the AVIV flow, on the paper's blocks and on synthetic DAGs of growing
// size. The paper observes that "generating all of the maximal cliques is
// the most time consuming portion of our algorithm" — BM_CliqueGeneration
// vs the rest quantifies that on our implementation, and the LevelWindow
// variants show the Section IV-C.2 remedy.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <new>
#include <vector>

#include "core/assign_explore.h"
#include "core/assigned.h"
#include "core/clique.h"
#include "core/codegen.h"
#include "core/parallel_matrix.h"
#include "core/workspace.h"
#include "driver/codegen.h"
#include "ir/parser.h"
#include "service/cache.h"
#include "service/fingerprint.h"
#include "ir/random_dag.h"
#include "isdl/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

// --- heap-allocation accounting ----------------------------------------
// This binary replaces the global allocation functions with counting
// versions, so benchmarks can report allocations/op and heap-bytes/op —
// the arena refactor's target metric (time alone hides small-vector
// churn that only shows up under allocator contention at scale).
static std::atomic<uint64_t> g_heapAllocs{0};
static std::atomic<uint64_t> g_heapBytes{0};

static void* countedAlloc(std::size_t n) {
  g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
  g_heapBytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n) { return countedAlloc(n); }
void* operator new[](std::size_t n) { return countedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
  g_heapBytes.fetch_add(n, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return operator new(n, al);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

// Snapshot-and-report helper: construct before the timing loop, call
// report() after it to attach allocations/op and heap-KB/op counters.
struct HeapMeter {
  uint64_t allocs0 = g_heapAllocs.load(std::memory_order_relaxed);
  uint64_t bytes0 = g_heapBytes.load(std::memory_order_relaxed);
  void report(benchmark::State& state) const {
    const double iters = static_cast<double>(state.iterations());
    if (iters == 0) return;
    state.counters["allocs/op"] = static_cast<double>(
        g_heapAllocs.load(std::memory_order_relaxed) - allocs0) / iters;
    state.counters["heapKB/op"] = static_cast<double>(
        g_heapBytes.load(std::memory_order_relaxed) - bytes0) / 1024.0 / iters;
  }
};

using namespace aviv;

const Machine& arch1() {
  static const Machine machine = loadMachine("arch1");
  return machine;
}
const MachineDatabases& arch1Dbs() {
  static const MachineDatabases dbs(arch1());
  return dbs;
}

BlockDag syntheticDag(int ops) {
  RandomDagSpec spec;
  spec.numOps = ops;
  spec.numInputs = std::max(2, ops / 3);
  spec.seed = 42;
  return makeRandomDag(spec);
}

void BM_SplitNodeBuild(benchmark::State& state) {
  const BlockDag dag = syntheticDag(static_cast<int>(state.range(0)));
  const CodegenOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SplitNodeDag::build(dag, arch1(), arch1Dbs(), options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SplitNodeBuild)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

// Same build, instrumented: with the flattened span/pool storage a build
// makes a handful of chunk allocations instead of one vector per node, so
// allocations/op should grow far slower than node count.
void BM_SplitNodeBuildArena(benchmark::State& state) {
  const BlockDag dag = syntheticDag(static_cast<int>(state.range(0)));
  const CodegenOptions options;
  const HeapMeter heap;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SplitNodeDag::build(dag, arch1(), arch1Dbs(), options));
  }
  heap.report(state);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SplitNodeBuildArena)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Complexity();

void BM_AssignmentExploration(benchmark::State& state) {
  const BlockDag dag = syntheticDag(static_cast<int>(state.range(0)));
  const CodegenOptions options = CodegenOptions::heuristicsOn();
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, arch1(), arch1Dbs(), options);
  for (auto _ : state) {
    AssignmentExplorer explorer(snd, options);
    benchmark::DoNotOptimize(explorer.explore());
  }
}
BENCHMARK(BM_AssignmentExploration)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_CliqueGeneration(benchmark::State& state) {
  const BlockDag dag = syntheticDag(static_cast<int>(state.range(0)));
  const CodegenOptions options;
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, arch1(), arch1Dbs(), options);
  const auto assignment = AssignmentExplorer(snd, options).explore().front();
  const AssignedGraph graph =
      AssignedGraph::materialize(snd, assignment, options);
  const ParallelismMatrix matrix(graph, -1);
  DynBitset active(graph.size(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generateMaximalCliques(matrix, active, 1u << 20));
  }
}
BENCHMARK(BM_CliqueGeneration)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_CliqueGenerationLevelWindow(benchmark::State& state) {
  const BlockDag dag = syntheticDag(static_cast<int>(state.range(0)));
  const CodegenOptions options;
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, arch1(), arch1Dbs(), options);
  const auto assignment = AssignmentExplorer(snd, options).explore().front();
  const AssignedGraph graph =
      AssignedGraph::materialize(snd, assignment, options);
  const ParallelismMatrix matrix(graph, /*levelWindow=*/2);
  DynBitset active(graph.size(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generateMaximalCliques(matrix, active, 1u << 20));
  }
}
BENCHMARK(BM_CliqueGenerationLevelWindow)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_FullCoverHeuristicsOn(benchmark::State& state) {
  const BlockDag dag = syntheticDag(static_cast<int>(state.range(0)));
  // Synthetic DAGs mark every sink as an output; store outputs to memory so
  // arbitrary output counts stay register-feasible.
  CodegenOptions options = CodegenOptions::heuristicsOn();
  options.outputsToMemory = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coverBlock(dag, arch1(), arch1Dbs(), options));
  }
}
BENCHMARK(BM_FullCoverHeuristicsOn)->Arg(8)->Arg(16)->Arg(32);

// Covering the selected candidate assignments is the dominant cost of
// coverBlock and embarrassingly parallel; Arg = jobs. Results are
// bit-identical across thread counts (the determinism test asserts it);
// this measures the wall-clock payoff.
void BM_CoverSelectedAssignments(benchmark::State& state) {
  const BlockDag dag = syntheticDag(26);
  CodegenOptions options = CodegenOptions::heuristicsOn();
  // Synthetic sinks are all outputs; memory placement keeps them feasible.
  options.outputsToMemory = true;
  // Widen the candidate pool so there is enough independent covering work.
  options.assignPruneIncremental = false;
  options.assignBeamWidth = 32;
  options.assignKeepBest = 8;
  options.jobs = static_cast<int>(state.range(0));
  ThreadPool pool(options.jobs);
  const HeapMeter heap;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coverBlock(dag, arch1(), arch1Dbs(), options,
                                        options.jobs > 1 ? &pool : nullptr));
  }
  heap.report(state);
  state.SetLabel("jobs=" + std::to_string(options.jobs));
}
BENCHMARK(BM_CoverSelectedAssignments)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// The candidate-state cost model head to head: Arg(0) re-homes every
// candidate's payload spans into graph-owned pools right after materialize
// (the pre-refactor per-candidate deep copy); Arg(1) leaves them aliasing
// the Split-Node DAG's pools, as the covering loop now does — only the
// winner pays the detach. Same candidate set, so the time and allocs/op
// deltas are exactly the copy tax.
void BM_CandidateCopyVsDelta(benchmark::State& state) {
  const BlockDag dag = syntheticDag(26);
  CodegenOptions options = CodegenOptions::heuristicsOn();
  options.outputsToMemory = true;
  options.assignPruneIncremental = false;
  options.assignBeamWidth = 32;
  options.assignKeepBest = 8;
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, arch1(), arch1Dbs(), options);
  const std::vector<Assignment> assignments =
      AssignmentExplorer(snd, options).explore();
  const bool copyMode = state.range(0) == 0;
  CoverWorkspace ws;
  const HeapMeter heap;
  for (auto _ : state) {
    for (const Assignment& assignment : assignments) {
      const ArenaScope candidateScope(ws.arena);
      AssignedGraph graph =
          AssignedGraph::materialize(snd, assignment, options, &ws);
      if (copyMode) graph.detachPayloads();
      benchmark::DoNotOptimize(graph.size());
    }
  }
  heap.report(state);
  state.counters["candidates"] =
      benchmark::Counter(static_cast<double>(assignments.size()));
  state.SetLabel(copyMode ? "copy" : "delta");
}
BENCHMARK(BM_CandidateCopyVsDelta)->Arg(0)->Arg(1);

void BM_PaperBlocks(benchmark::State& state) {
  static const char* names[] = {"ex1", "ex2", "ex3", "ex4", "ex5"};
  const BlockDag dag = loadBlock(names[state.range(0)]);
  const CodegenOptions options = CodegenOptions::heuristicsOn();
  for (auto _ : state) {
    benchmark::DoNotOptimize(coverBlock(dag, arch1(), arch1Dbs(), options));
  }
  state.SetLabel(names[state.range(0)]);
}
BENCHMARK(BM_PaperBlocks)->DenseRange(0, 4);

void BM_ReferenceBronKerbosch(benchmark::State& state) {
  const BlockDag dag = syntheticDag(static_cast<int>(state.range(0)));
  const CodegenOptions options;
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, arch1(), arch1Dbs(), options);
  const auto assignment = AssignmentExplorer(snd, options).explore().front();
  const AssignedGraph graph =
      AssignedGraph::materialize(snd, assignment, options);
  const ParallelismMatrix matrix(graph, -1);
  DynBitset active(graph.size(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(referenceMaximalCliques(matrix, active));
  }
}
BENCHMARK(BM_ReferenceBronKerbosch)->Arg(16)->Arg(32);

// --- compilation service (DESIGN.md System 23) ---

void BM_FingerprintCompute(benchmark::State& state) {
  const BlockDag dag = loadBlock("ex2");
  const CodegenOptions options = CodegenOptions::heuristicsOn();
  CodegenContext ctx(arch1(), options);
  ctx.setMachineFingerprint(fingerprintMachine(ctx.machine()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compileFingerprint(ctx, dag, options, true, true));
  }
}
BENCHMARK(BM_FingerprintCompute);

CacheEntry benchEntry() {
  // A realistic entry: ex2 compiled for arch1.
  static const CacheEntry entry = [] {
    DriverOptions options;
    options.cache = std::make_shared<ResultCache>(CacheConfig{});
    CodeGenerator generator(arch1(), options);
    (void)generator.compileBlock(loadBlock("ex2"));
    CacheEntry e;
    e.blockName = "ex2";
    e.machineName = "arch1";
    return e;
  }();
  return entry;
}

void BM_CacheLookupMemoryHit(benchmark::State& state) {
  ResultCache cache(CacheConfig{});
  const Hash128 key = Hasher().str("bench").digest();
  cache.store(key, benchEntry());
  for (auto _ : state) benchmark::DoNotOptimize(cache.lookup(key));
}
BENCHMARK(BM_CacheLookupMemoryHit);

void BM_CacheLookupDiskHit(benchmark::State& state) {
  CacheConfig config;
  config.dir = (std::filesystem::temp_directory_path() /
                "aviv_bench_cache")
                   .string();
  config.memoryEntries = 0;  // every hit pays the read + decode + checksum
  ResultCache cache(config);
  const Hash128 key = Hasher().str("bench").digest();
  cache.store(key, benchEntry());
  for (auto _ : state) benchmark::DoNotOptimize(cache.lookup(key));
  std::filesystem::remove_all(config.dir);
}
BENCHMARK(BM_CacheLookupDiskHit);

void BM_CacheLookupMiss(benchmark::State& state) {
  ResultCache cache(CacheConfig{});
  const Hash128 key = Hasher().str("absent").digest();
  for (auto _ : state) benchmark::DoNotOptimize(cache.lookup(key));
}
BENCHMARK(BM_CacheLookupMiss);

// The avivd value proposition: one batch of the five paper kernels, cold
// (every compile does covering work) vs warm (every compile replays from
// the cache). The ratio is the speedup a warm daemon delivers.
void BM_BatchCompileColdVsWarm(benchmark::State& state) {
  static const char* names[] = {"ex1", "ex2", "ex3", "ex4", "ex5"};
  std::vector<BlockDag> dags;
  for (const char* name : names) dags.push_back(loadBlock(name));
  const bool warm = state.range(0) != 0;
  auto cache = std::make_shared<ResultCache>(CacheConfig{});
  DriverOptions options;
  options.core = CodegenOptions::heuristicsOn();
  options.cache = cache;
  if (warm) {
    CodeGenerator generator(arch1(), options);
    for (const BlockDag& dag : dags) (void)generator.compileBlock(dag);
  }
  for (auto _ : state) {
    if (!warm) cache = std::make_shared<ResultCache>(CacheConfig{});
    DriverOptions iter = options;
    iter.cache = cache;
    CodeGenerator generator(arch1(), iter);
    for (const BlockDag& dag : dags)
      benchmark::DoNotOptimize(generator.compileBlock(dag));
  }
  state.SetLabel(warm ? "warm" : "cold");
}
BENCHMARK(BM_BatchCompileColdVsWarm)->Arg(0)->Arg(1);

// Observability overhead. Disabled is the price every call site pays when
// nobody asked for a trace — the acceptance bar is "one predictable
// branch", i.e. sub-nanosecond and allocation-free. Enabled is the cost of
// actually recording into the per-thread ring.
void BM_TraceEventOverheadDisabled(benchmark::State& state) {
  trace::Tracer::instance().disable();
  for (auto _ : state) {
    trace::Span span("bench", "noop");
    span.arg("i", 1);
    trace::instant("bench", "noop");
  }
}
BENCHMARK(BM_TraceEventOverheadDisabled);

void BM_TraceEventOverheadEnabled(benchmark::State& state) {
  trace::Tracer::instance().enable();
  trace::Tracer::instance().clear();
  for (auto _ : state) {
    trace::Span span("bench", "noop");
    span.arg("i", 1);
    trace::instant("bench", "noop");
  }
  state.SetLabel("events=" +
                 std::to_string(trace::Tracer::instance().retained()) +
                 " overwritten=" +
                 std::to_string(trace::Tracer::instance().overwritten()));
  trace::Tracer::instance().disable();
  trace::Tracer::instance().clear();
}
BENCHMARK(BM_TraceEventOverheadEnabled);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  metrics::Registry::instance().enable();
  metrics::Histogram& hist =
      metrics::Registry::instance().histogram("bench.hist.us");
  int64_t v = 0;
  for (auto _ : state) hist.record(v++ & 0xfff);
  metrics::Registry::instance().disable();
  metrics::Registry::instance().reset();
}
BENCHMARK(BM_MetricsHistogramRecord);

}  // namespace

BENCHMARK_MAIN();
