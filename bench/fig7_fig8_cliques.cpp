// Reproduces paper Figure 7 (the pairwise-parallelism matrix for a proposed
// assignment consisting of nodes N2, N9, N10, N14) and Figure 8's maximal
// clique generation on it.
//
// The proposed assignment over the Figure 2 block is: ADD on U3 (N14), MUL
// on U2 (N10), SUB on U2 (N2), plus the data transfer moving ADD's result
// from U3's register file to U2 for the SUB (N9). Expected cliques, as in
// the paper: (C1: N2), (C2: N10, N9), (C3: N10, N14).
#include <cstdio>

#include "bench_common.h"
#include "core/clique.h"
#include "core/parallel_matrix.h"

int main() {
  using namespace aviv;
  try {
    const BlockDag dag = loadBlock("fig2");
    const Machine machine = loadMachine("arch1");
    const MachineDatabases dbs(machine);
    const CodegenOptions options;
    const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);

    // Force the paper's proposed assignment: ADD@U3, MUL@U2, SUB@U2.
    Assignment assignment;
    assignment.chosenAlt.assign(dag.size(), kNoSnd);
    auto pick = [&](Op op, const char* unitName) {
      for (NodeId id = 0; id < dag.size(); ++id) {
        if (dag.node(id).op != op) continue;
        for (SndId alt : snd.altsOf(id)) {
          if (machine.unit(snd.node(alt).unit).name == unitName) {
            assignment.chosenAlt[id] = alt;
            return;
          }
        }
      }
      std::fprintf(stderr, "no %s alternative on %s\n",
                   std::string(opName(op)).c_str(), unitName);
      std::exit(1);
    };
    pick(Op::kAdd, "U3");
    pick(Op::kMul, "U2");
    pick(Op::kSub, "U2");

    const AssignedGraph graph =
        AssignedGraph::materialize(snd, assignment, options);

    // Identify the paper's four nodes.
    AgId n2 = kNoAg;   // SUB@U2
    AgId n9 = kNoAg;   // transfer RF3 -> RF2 (ADD's value to the SUB)
    AgId n10 = kNoAg;  // MUL@U2
    AgId n14 = kNoAg;  // ADD@U3
    for (AgId id = 0; id < graph.size(); ++id) {
      const AgNode& n = graph.node(id);
      if (n.kind == AgKind::kOp) {
        if (n.machineOp == Op::kSub) n2 = id;
        if (n.machineOp == Op::kMul) n10 = id;
        if (n.machineOp == Op::kAdd) n14 = id;
      } else if (n.isTransferish()) {
        const TransferPath& p =
            machine.transfers()[static_cast<size_t>(n.pathId)];
        if (p.from == Loc::regFile(*machine.findRegFile("RF3")) &&
            p.to == Loc::regFile(*machine.findRegFile("RF2")))
          n9 = id;
      }
    }
    if (n2 == kNoAg || n9 == kNoAg || n10 == kNoAg || n14 == kNoAg) {
      std::fprintf(stderr, "could not identify the paper's four nodes\n");
      return 1;
    }

    const ParallelismMatrix matrix(graph, -1);
    const std::vector<AgId> subset = {n2, n9, n10, n14};
    const std::vector<std::string> labels = {"N2", "N9", "N10", "N14"};

    std::printf("Figure 7 — matrix for finding maximal cliques "
                "(0 = can execute in parallel):\n");
    std::printf("  N2 = SUB@U2, N9 = xfer RF3->RF2 (ADD result), "
                "N10 = MUL@U2, N14 = ADD@U3\n\n%s\n",
                matrix.str(subset, labels).c_str());

    // Figure 8: generate maximal cliques restricted to these four nodes.
    DynBitset active(graph.size());
    for (AgId id : subset) active.set(id);
    CliqueGenStats stats;
    const auto cliques = generateMaximalCliques(matrix, active, 1000, &stats);
    std::printf("Figure 8 — maximal cliques generated (%zu, with %zu "
                "gen_max_clique calls, %zu branches pruned by i < index):\n",
                cliques.size(), stats.recursions, stats.pruned);
    int index = 1;
    for (const DynBitset& clique : cliques) {
      std::printf("  C%d: {", index++);
      bool first = true;
      clique.forEach([&](size_t i) {
        for (size_t k = 0; k < subset.size(); ++k) {
          if (subset[k] == static_cast<AgId>(i)) {
            std::printf("%s%s", first ? "" : ", ", labels[k].c_str());
            first = false;
          }
        }
      });
      std::printf("}\n");
    }
    std::printf("(paper: C1: N2; C2: N10, N9; C3: N10, N14)\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig7_fig8_cliques: %s\n", e.what());
    return 1;
  }
}
