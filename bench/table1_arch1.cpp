// Reproduces paper Table I: "Code Generation Experiments for the Example
// Target Architecture" (the Fig 3 machine = arch1).
//
// Rows Ex1-Ex5 run with 4 registers per file; Ex6/Ex7 are Ex4/Ex5 rerun
// with 2 registers per file to force spills, exactly as Section VI
// describes. The main column is AVIV with heuristics; the parenthesized
// column turns the heuristics off (exhaustive assignment enumeration);
// the "By Hand" stand-in is the exact branch-and-bound optimum (DESIGN.md
// substitution #3 — the paper states the hand-coded results are optimal).
//
// Flags: --skip-hoff  --hoff-time-limit <s>  --optimal-time-limit <s>
//        --jobs <n> (parallel covering, bit-identical results)
//        --stats-json <path> (phase-telemetry tree of every row)
#include "bench_common.h"
#include "support/cli.h"
#include "support/io.h"

int main(int argc, char** argv) {
  using namespace aviv;
  using namespace aviv::bench;
  try {
    CliFlags flags(argc, argv);
    const bool skipHoff = flags.getBool("skip-hoff", false);
    const double hoffLimit = flags.getDouble("hoff-time-limit", 120.0);
    const double optimalLimit = flags.getDouble("optimal-time-limit", 120.0);
    const int jobs = flags.getInt("jobs", 1);
    const std::string statsJson = flags.getString("stats-json", "");
    flags.finish();

    const Machine machine = loadMachine("arch1");
    TelemetryNode telemetry("table1_arch1");
    std::vector<TableRow> rows;
    const std::vector<std::pair<std::string, std::string>> base = {
        {"Ex1", "ex1"}, {"Ex2", "ex2"}, {"Ex3", "ex3"},
        {"Ex4", "ex4"}, {"Ex5", "ex5"}};
    for (const auto& [label, block] : base) {
      rows.push_back(runTableRow(label, block, machine, 4, !skipHoff,
                                 hoffLimit, optimalLimit, jobs, &telemetry));
    }
    // Ex6/Ex7: Ex4/Ex5 with 2 registers per register file.
    rows.push_back(runTableRow("Ex6", "ex4", machine, 2, !skipHoff,
                               hoffLimit, optimalLimit, jobs, &telemetry));
    rows.push_back(runTableRow("Ex7", "ex5", machine, 2, !skipHoff,
                               hoffLimit, optimalLimit, jobs, &telemetry));

    printTable("Table I — Code Generation Experiments for the Example "
               "Target Architecture (arch1, paper Fig 3)",
               rows, !skipHoff);
    if (!statsJson.empty()) writeFile(statsJson, telemetry.toJson() + "\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "table1_arch1: %s\n", e.what());
    return 1;
  }
}
