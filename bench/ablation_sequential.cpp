// Concurrent vs phase-ordered code generation — the paper's central
// argument ("decisions made in one phase have a profound effect on the
// other phases"). Compares AVIV's concurrent covering against the
// phase-ordered sequential baseline (local instruction selection, then list
// scheduling, then spills) on every block x machine combination, plus the
// exact optimum where the search completes.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace aviv;
  using namespace aviv::bench;
  try {
    std::printf("Concurrent (AVIV) vs phase-ordered (sequential baseline) "
                "code size (native register counts)\n\n");
    TextTable table({"Machine", "Block", "AVIV", "Sequential", "Optimal",
                     "Sequential penalty"});
    double avivTotal = 0;
    double seqTotal = 0;
    for (const char* machineName : {"arch1", "arch2", "arch4", "dsp16"}) {
      const Machine machine = loadMachine(machineName);
      const MachineDatabases dbs(machine);
      for (const char* block : {"ex1", "ex2", "ex3", "ex4", "ex5"}) {
        const BlockDag dag = loadBlock(block);
        const CoreResult aviv =
            coverBlock(dag, machine, dbs, CodegenOptions::heuristicsOn());
        std::string seqCell = "infeasible";
        int seqInstr = -1;
        try {
          const BaselineResult seq =
              sequentialCodegen(dag, machine, dbs, CodegenOptions{});
          seqInstr = seq.schedule.numInstructions();
          seqCell = std::to_string(seqInstr);
          if (seq.spillsInserted > 0)
            seqCell += "+" + std::to_string(seq.spillsInserted) + "sp";
        } catch (const Error&) {
        }
        OptimalOptions optimalOptions;
        optimalOptions.incumbent = aviv.schedule.numInstructions();
        optimalOptions.timeLimitSeconds = 60;
        const OptimalResult optimal =
            optimalCodeSize(dag, machine, dbs, optimalOptions);
        std::string optimalCell =
            optimal.instructions < 0 ? "n/a"
                                     : std::to_string(optimal.instructions);
        if (!optimal.proven) optimalCell += "*";

        std::string penalty = "n/a";
        if (seqInstr > 0) {
          avivTotal += aviv.schedule.numInstructions();
          seqTotal += seqInstr;
          const double pct = 100.0 *
                             (seqInstr - aviv.schedule.numInstructions()) /
                             aviv.schedule.numInstructions();
          penalty = (pct >= 0 ? "+" : "") + formatFixed(pct, 0) + "%";
        }
        table.addRow({machineName, block,
                      std::to_string(aviv.schedule.numInstructions()),
                      seqCell, optimalCell, penalty});
      }
    }
    std::printf("%s", table.str().c_str());
    if (avivTotal > 0) {
      std::printf("\nAggregate: sequential emits %.1f%% more instructions "
                  "than AVIV across the suite.\n",
                  100.0 * (seqTotal - avivTotal) / avivTotal);
    }
    std::printf("(* = optimal search hit its time limit; spills shown as "
                "+Nsp)\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_sequential: %s\n", e.what());
    return 1;
  }
}
