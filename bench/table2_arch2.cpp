// Reproduces paper Table II: "Code Generation Experiments for the Target
// Architecture II" — arch1 with SUB removed from U1 and U3 deleted
// (Section VI's retargetability demonstration). Ex1-Ex5 with 4 registers
// per file; no heuristics-off column in the paper's Table II, so it is off
// by default here too (enable with --hoff).
// Extra flags: --jobs <n> (parallel covering, bit-identical results) and
// --stats-json <path> (phase-telemetry tree of every row).
#include "bench_common.h"
#include "support/cli.h"
#include "support/io.h"

int main(int argc, char** argv) {
  using namespace aviv;
  using namespace aviv::bench;
  try {
    CliFlags flags(argc, argv);
    const bool hoff = flags.getBool("hoff", false);
    const double hoffLimit = flags.getDouble("hoff-time-limit", 120.0);
    const double optimalLimit = flags.getDouble("optimal-time-limit", 120.0);
    const int jobs = flags.getInt("jobs", 1);
    const std::string statsJson = flags.getString("stats-json", "");
    flags.finish();

    const Machine machine = loadMachine("arch2");
    TelemetryNode telemetry("table2_arch2");
    std::vector<TableRow> rows;
    const std::vector<std::pair<std::string, std::string>> base = {
        {"Ex1", "ex1"}, {"Ex2", "ex2"}, {"Ex3", "ex3"},
        {"Ex4", "ex4"}, {"Ex5", "ex5"}};
    for (const auto& [label, block] : base) {
      rows.push_back(runTableRow(label, block, machine, 4, hoff, hoffLimit,
                                 optimalLimit, jobs, &telemetry));
    }
    printTable("Table II — Code Generation Experiments for Target "
               "Architecture II (arch2: U1 loses SUB, U3 removed)",
               rows, hoff);
    if (!statsJson.empty()) writeFile(statsJson, telemetry.toJson() + "\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "table2_arch2: %s\n", e.what());
    return 1;
  }
}
