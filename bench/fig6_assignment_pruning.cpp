// Reproduces paper Figure 6: "Pruning the Search Space of Split-Node
// Assignments". The Figure 2 block is extended with a COMPL sink that only
// unit U1 executes; the explorer's incremental costs are traced per split
// node and the pruned branches marked with X, matching the paper's walk:
//   SUB@U1 cost 0 (kept) / SUB@U2 cost 1 (pruned X)
//   MUL@U2 and MUL@U3 tie (both kept)
//   ADD@U1 cost 2 vs ADD@U2 cost 4 / ADD@U3 cost 3 (pruned X)
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace aviv;
  try {
    const BlockDag dag = loadBlock("fig6");
    const Machine machine = loadMachine("arch1");
    const MachineDatabases dbs(machine);

    CodegenOptions options;  // pruning on, no beam cap so ties survive
    options.assignBeamWidth = 0;
    options.assignKeepBest = 1 << 20;
    const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);

    AssignmentExplorer explorer(snd, options);
    std::vector<ExploreTraceEntry> trace;
    ExploreStats stats;
    const auto assignments = explorer.explore(&stats, &trace);

    std::printf("Figure 6 — pruning the split-node assignment search\n");
    std::printf("(block fig6: y = COMPL((a+b) - c*d); COMPL only on U1; "
                "transfer and foregone-parallelism cost 1 each)\n\n");

    NodeId lastIr = kNoNode;
    int lastState = -1;
    for (const ExploreTraceEntry& entry : trace) {
      if (entry.ir != lastIr || entry.stateIdx != lastState) {
        std::printf("split node %-18s [partial assignment #%d]\n",
                    dag.describe(entry.ir).c_str(), entry.stateIdx);
        lastIr = entry.ir;
        lastState = entry.stateIdx;
      }
      std::printf("    %-10s incremental cost %.1f %s\n",
                  snd.describe(entry.alt).c_str(), entry.incrementalCost,
                  entry.kept ? "" : "   X (pruned)");
    }

    std::printf("\nSurviving complete assignments: %zu of %zu possible\n",
                stats.completeAssignments, [&] {
                  size_t product = 1;
                  for (NodeId id = 0; id < dag.size(); ++id)
                    if (isMachineOp(dag.node(id).op))
                      product *= snd.altsOf(id).size();
                  return product;
                }());
    for (const Assignment& a : assignments) {
      std::printf("  cost %.1f:", a.cost);
      for (NodeId id = 0; id < dag.size(); ++id) {
        if (a.chosenAlt[id] == kNoSnd) continue;
        std::printf(" %s", snd.describe(a.chosenAlt[id]).c_str());
      }
      std::printf("\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig6_assignment_pruning: %s\n", e.what());
    return 1;
  }
}
