// Ablation study over AVIV's heuristics (our extension of Section VI's
// "heuristics can be turned off" discussion):
//   1. assignment pruning on/off and prune slack,
//   2. number of assignments explored in detail (keep-best),
//   3. clique level-window width,
//   4. covering lookahead on/off,
//   5. register-aware assignment cost (the paper's "ongoing work").
// Reports code size and CPU time per configuration across the benchmark
// blocks on arch1.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace aviv;
using namespace aviv::bench;

struct Config {
  std::string name;
  CodegenOptions options;
};

void runSweep(const std::string& title, const std::vector<Config>& configs,
              int regs = 4) {
  std::printf("%s\n", title.c_str());
  std::vector<std::string> headers = {"Configuration"};
  const std::vector<std::string> blocks = {"ex1", "ex2", "ex3", "ex4", "ex5"};
  for (const std::string& block : blocks) headers.push_back(block);
  headers.push_back("total time (s)");
  TextTable table(headers);

  const Machine machine = loadMachine("arch1").withRegisterCount(regs);
  const MachineDatabases dbs(machine);
  for (const Config& config : configs) {
    std::vector<std::string> row = {config.name};
    double total = 0;
    for (const std::string& block : blocks) {
      const BlockDag dag = loadBlock(block);
      WallTimer timer;
      const CoreResult result = coverBlock(dag, machine, dbs, config.options);
      total += timer.seconds();
      std::string cell = std::to_string(result.schedule.numInstructions());
      if (result.stats.cover.spillsInserted > 0)
        cell += "+" + std::to_string(result.stats.cover.spillsInserted) + "sp";
      row.push_back(cell);
    }
    row.push_back(formatFixed(total, 3));
    table.addRow(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main() {
  try {
    std::printf("Ablation — AVIV heuristic knobs (code size per block; "
                "arch1, 4 regs unless noted)\n\n");

    {
      std::vector<Config> configs;
      Config pruned{"prune=min (paper)", CodegenOptions::heuristicsOn()};
      Config slack1{"prune=min+1", CodegenOptions::heuristicsOn()};
      slack1.options.assignPruneSlack = 1.0;
      Config off{"prune off (exhaustive)", CodegenOptions::heuristicsOff()};
      configs.push_back(pruned);
      configs.push_back(slack1);
      configs.push_back(off);
      runSweep("(1) Assignment-search pruning", configs);
    }
    {
      std::vector<Config> configs;
      for (int keep : {1, 4, 16}) {
        Config c{"keep-best=" + std::to_string(keep),
                 CodegenOptions::heuristicsOn()};
        c.options.assignKeepBest = keep;
        configs.push_back(c);
      }
      runSweep("(2) Assignments explored in detail", configs);
    }
    {
      std::vector<Config> configs;
      for (int window : {0, 1, 2, 4, -1}) {
        Config c{window < 0 ? "level window off"
                            : "level window=" + std::to_string(window),
                 CodegenOptions::heuristicsOn()};
        c.options.cliqueLevelWindow = window;
        configs.push_back(c);
      }
      runSweep("(3) Clique level-window heuristic (Section IV-C.2)", configs);
    }
    {
      std::vector<Config> configs;
      Config on{"lookahead on (paper)", CodegenOptions::heuristicsOn()};
      Config off{"lookahead off", CodegenOptions::heuristicsOn()};
      off.options.coverLookahead = false;
      configs.push_back(on);
      configs.push_back(off);
      runSweep("(4) Covering tie-break lookahead (Section IV-D)", configs);
    }
    {
      std::vector<Config> configs;
      Config off{"register-blind (paper)", CodegenOptions::heuristicsOn()};
      Config on{"register-aware (paper's ongoing work)",
                CodegenOptions::heuristicsOn()};
      on.options.registerAwareAssignment = true;
      configs.push_back(off);
      configs.push_back(on);
      runSweep("(5) Register-aware assignment cost, 2 regs per file "
               "(spills shown as +Nsp)",
               configs, /*regs=*/2);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_heuristics: %s\n", e.what());
    return 1;
  }
}
