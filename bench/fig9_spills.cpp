// Reproduces paper Figure 9: inserting loads and spills into the Split-Node
// DAG. Runs the covering engine on a register-starved configuration and
// shows (a) the victim selection, (b) the inserted spill-store and reload
// chains, (c) the transfer nodes deleted because consumers now reload from
// memory, and (d) the final schedule with the spill code placed.
#include <cstdio>

#include "bench_common.h"
#include "core/spill.h"

namespace {

// Part 1: the paper's exact Figure 9 moment, staged deterministically.
// The Figure 2 block's ADD runs on U3, its value still pending a transfer
// to the SUB on U2; spilling the ADD appends the store (S), deletes the
// pending transfer, and rewires the SUB onto a reload (L).
void reenactFig9() {
  using namespace aviv;
  const BlockDag dag = loadBlock("fig2");
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const CodegenOptions options;
  const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);

  Assignment assignment;
  assignment.chosenAlt.assign(dag.size(), kNoSnd);
  auto pick = [&](Op op, const char* unitName) {
    for (NodeId id = 0; id < dag.size(); ++id) {
      if (dag.node(id).op != op) continue;
      for (SndId alt : snd.altsOf(id))
        if (machine.unit(snd.node(alt).unit).name == unitName)
          assignment.chosenAlt[id] = alt;
    }
  };
  pick(Op::kAdd, "U3");
  pick(Op::kMul, "U2");
  pick(Op::kSub, "U2");
  AssignedGraph graph = AssignedGraph::materialize(snd, assignment, options);

  AgId add = kNoAg;
  for (AgId id = 0; id < graph.size(); ++id)
    if (graph.node(id).kind == AgKind::kOp &&
        graph.node(id).machineOp == Op::kAdd)
      add = id;
  DynBitset covered(graph.size());
  covered.set(add);
  for (AgId pred : graph.node(add).preds) covered.set(pred);

  std::printf("Part 1 — the Figure 9 transformation itself\n");
  std::printf("(block fig2; ADD covered on U3; its transfer to the SUB on "
              "U2 still pending)\n\nBefore the spill:\n");
  for (AgId id = 0; id < graph.size(); ++id)
    if (!graph.node(id).deleted())
      std::printf("  %s%s\n", graph.describe(id).c_str(),
                  covered.test(id) ? "   [covered]" : "");

  SpillState spillState;
  const AgId victim =
      performSpill(graph, dbs.transfers, covered, spillState);
  std::printf("\nSpilled node: %s\n", graph.describe(victim).c_str());
  std::printf("After the spill (S = store, L = reload; the pending "
              "RF3->RF2 transfer is deleted, as in Fig 9b):\n");
  for (AgId id = 0; id < graph.size(); ++id) {
    const AgNode& n = graph.node(id);
    if (n.kind == AgKind::kDeleted)
      std::printf("  a%u:<deleted transfer>\n", id);
    else
      std::printf("  %s\n", graph.describe(id).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace aviv;
  try {
    reenactFig9();

    std::printf("Part 2 — spills during real covering\n");
    const BlockDag dag = loadBlock("ex4");
    const Machine machine = loadMachine("arch1").withRegisterCount(2);
    const MachineDatabases dbs(machine);

    const CoreResult result =
        coverBlock(dag, machine, dbs, CodegenOptions::heuristicsOn());

    std::printf("Figure 9 — load/spill insertion (block ex4 on arch1 with "
                "2 registers per file)\n\n");
    std::printf("Spills inserted: %d\n", result.stats.cover.spillsInserted);

    std::printf("\nSpill code in the final assigned graph:\n");
    int deleted = 0;
    for (AgId id = 0; id < result.graph.size(); ++id) {
      const AgNode& n = result.graph.node(id);
      if (n.kind == AgKind::kDeleted) {
        ++deleted;
        continue;
      }
      if (n.kind == AgKind::kSpillStore) {
        std::printf("  S: %s (slot %d) — spills value of %s\n",
                    result.graph.describe(id).c_str(), n.spillSlot,
                    n.valueSrc != kNoAg
                        ? result.graph.describe(n.valueSrc).c_str()
                        : "?");
      }
      if (n.kind == AgKind::kSpillLoad) {
        std::printf("  L: %s (slot %d) — feeds", result.graph.describe(id).c_str(),
                    n.spillSlot);
        for (AgId succ : n.succs)
          std::printf(" %s", result.graph.describe(succ).c_str());
        std::printf("\n");
      }
    }
    std::printf("Transfer nodes deleted as no longer required "
                "(the paper's removed '+ to -' transfer): %d\n",
                deleted);

    std::printf("\nFinal schedule (%d instructions):\n",
                result.schedule.numInstructions());
    for (size_t c = 0; c < result.schedule.instrs.size(); ++c) {
      std::printf("  i%zu:", c);
      for (AgId id : result.schedule.instrs[c])
        std::printf("  %s", result.graph.describe(id).c_str());
      std::printf("\n");
    }

    // Contrast: the 4-register run needs no spill code at all.
    const Machine machine4 = loadMachine("arch1");
    const MachineDatabases dbs4(machine4);
    const CoreResult result4 =
        coverBlock(dag, machine4, dbs4, CodegenOptions::heuristicsOn());
    std::printf("\nSame block with 4 registers per file: %d instructions, "
                "%d spills.\n",
                result4.schedule.numInstructions(),
                result4.stats.cover.spillsInserted);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig9_spills: %s\n", e.what());
    return 1;
  }
}
