#include "regalloc/regalloc.h"

#include <algorithm>

#include "support/error.h"

namespace aviv {

std::vector<int> computeLastUse(const AssignedGraph& graph,
                                const std::vector<int>& cycles) {
  std::vector<int> lastUse(graph.size(), -1);
  for (AgId id = 0; id < graph.size(); ++id) {
    if (graph.node(id).deleted()) continue;
    for (AgId pred : graph.node(id).preds)
      lastUse[pred] = std::max(lastUse[pred], cycles[id]);
  }
  return lastUse;
}

RegAssignment allocateRegisters(const AssignedGraph& graph,
                                const Schedule& schedule) {
  const Machine& machine = graph.machine();
  const auto cycles = schedule.cycles(graph.size());
  const auto lastUse = computeLastUse(graph, cycles);

  // Scaled interval endpoints: write at 2c+1, read at 2c.
  const int endOfBlock = 2 * schedule.numInstructions() + 2;
  std::vector<int> beginT(graph.size(), 0);
  std::vector<int> endT(graph.size(), 0);
  std::vector<bool> isValue(graph.size(), false);

  DynBitset liveOut(graph.size());
  for (const auto& [name, def] : graph.outputDefs())
    if (def != kNoAg) liveOut.set(def);

  for (AgId id = 0; id < graph.size(); ++id) {
    const AgNode& n = graph.node(id);
    if (!n.definesRegister()) continue;
    AVIV_CHECK_MSG(cycles[id] >= 0, "unscheduled register def " << graph.describe(id));
    isValue[id] = true;
    beginT[id] = 2 * cycles[id] + 1;
    if (lastUse[id] < 0 && !liveOut.test(id)) {
      // A dead register def can only be an evicted reload (the covering
      // engine rewired its consumers onto fresh reloads after it was
      // already scheduled). It still needs a register at its write instant;
      // the point interval is covered by the covering-time pressure bound.
      AVIV_CHECK_MSG(n.isTransferish(),
                     "dead register def " << graph.describe(id));
      endT[id] = beginT[id] + 1;
    } else {
      endT[id] = liveOut.test(id) ? endOfBlock : 2 * lastUse[id];
    }
    AVIV_CHECK(endT[id] > beginT[id]);
  }

  RegAssignment out;
  out.regOf.assign(graph.size(), -1);
  out.regsUsedPerBank.assign(machine.regFiles().size(), 0);

  for (RegFileId bank = 0; bank < machine.regFiles().size(); ++bank) {
    std::vector<AgId> values;
    for (AgId id = 0; id < graph.size(); ++id)
      if (isValue[id] && graph.node(id).defLoc.index == bank)
        values.push_back(id);
    if (values.empty()) continue;

    const int k = machine.regFile(bank).numRegs;
    const size_t n = values.size();

    // Interference graph: overlapping live intervals.
    std::vector<std::vector<size_t>> adj(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const AgId a = values[i];
        const AgId b = values[j];
        if (std::max(beginT[a], beginT[b]) < std::min(endT[a], endT[b])) {
          adj[i].push_back(j);
          adj[j].push_back(i);
        }
      }
    }

    // Chaitin: simplify (push nodes with degree < k), then select.
    std::vector<size_t> degree(n);
    std::vector<bool> removed(n, false);
    for (size_t i = 0; i < n; ++i) degree[i] = adj[i].size();
    std::vector<size_t> stack;
    for (size_t step = 0; step < n; ++step) {
      size_t pick = n;
      for (size_t i = 0; i < n; ++i) {
        if (!removed[i] && degree[i] < static_cast<size_t>(k)) {
          pick = i;
          break;
        }
      }
      AVIV_CHECK_MSG(pick != n,
                     "bank " << machine.regFile(bank).name
                             << ": interference graph not " << k
                             << "-colorable (covering bound violated)");
      removed[pick] = true;
      stack.push_back(pick);
      for (size_t nb : adj[pick])
        if (!removed[nb]) --degree[nb];
    }

    std::vector<int> color(n, -1);
    while (!stack.empty()) {
      const size_t i = stack.back();
      stack.pop_back();
      std::vector<bool> used(static_cast<size_t>(k), false);
      for (size_t nb : adj[i])
        if (color[nb] >= 0) used[static_cast<size_t>(color[nb])] = true;
      int chosen = -1;
      for (int r = 0; r < k; ++r) {
        if (!used[static_cast<size_t>(r)]) {
          chosen = r;
          break;
        }
      }
      AVIV_CHECK(chosen >= 0);
      color[i] = chosen;
      out.regsUsedPerBank[bank] =
          std::max(out.regsUsedPerBank[bank], chosen + 1);
    }
    for (size_t i = 0; i < n; ++i) out.regOf[values[i]] = color[i];
  }
  return out;
}

void recordRegAllocStats(const RegAssignment& regs, TelemetryNode& phase) {
  int64_t colored = 0;
  for (const int reg : regs.regOf) colored += reg >= 0;
  int banksUsed = 0;
  int maxRegsUsed = 0;
  for (const int used : regs.regsUsedPerBank) {
    banksUsed += used > 0;
    maxRegsUsed = std::max(maxRegsUsed, used);
  }
  phase.setCounter("valuesColored", colored);
  phase.setCounter("banksUsed", banksUsed);
  phase.setCounter("maxRegsUsed", maxRegsUsed);
}

}  // namespace aviv
