// Detailed register allocation (paper Section IV-F): conventional Chaitin
// graph coloring, one interference graph per register bank. The covering
// engine maintained a per-bank liveness upper bound while scheduling, so
// every bank's interference graph is guaranteed K-colorable with the bank's
// register count — allocation never needs to undo instruction selection.
//
// Liveness convention (VLIW read-before-write semantics): a value is born at
// the END of its defining cycle and read at the START of its consumers'
// cycles, so a register whose value dies in cycle c can be redefined by a
// different value in the same cycle.
#pragma once

#include <vector>

#include "core/assigned.h"
#include "core/cover.h"
#include "support/telemetry.h"

namespace aviv {

struct RegAssignment {
  // Register index within its bank for every register-defining AgNode;
  // -1 for nodes that define no register.
  std::vector<int> regOf;
  // Highest register index used per bank + 1 (0 when bank unused).
  std::vector<int> regsUsedPerBank;
};

// Last schedule cycle at which each node's value is read (-1 when never
// read). Does not account for live-outs; see allocateRegisters.
[[nodiscard]] std::vector<int> computeLastUse(const AssignedGraph& graph,
                                              const std::vector<int>& cycles);

// Colors every bank. AVIV_CHECK-fails if coloring needs more registers than
// the bank has — that would be a covering-engine bug, not an input error.
[[nodiscard]] RegAssignment allocateRegisters(const AssignedGraph& graph,
                                              const Schedule& schedule);

// Records the allocation outcome (values colored, banks used, widest bank)
// into the session's "regalloc" phase-telemetry node.
void recordRegAllocStats(const RegAssignment& regs, TelemetryNode& phase);

}  // namespace aviv
