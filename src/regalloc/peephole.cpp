#include "regalloc/peephole.h"

#include <algorithm>
#include <map>
#include <set>

#include "regalloc/regalloc.h"
#include "support/error.h"

namespace aviv {

namespace {

// Checks the per-bank liveness bound over the whole schedule (same bound the
// covering engine maintained).
bool pressureFeasible(const AssignedGraph& graph, const Schedule& schedule) {
  const Machine& machine = graph.machine();
  const auto cycles = schedule.cycles(graph.size());
  const auto lastUse = computeLastUse(graph, cycles);
  DynBitset liveOut(graph.size());
  for (const auto& [name, def] : graph.outputDefs())
    if (def != kNoAg) liveOut.set(def);

  for (int c = 0; c < schedule.numInstructions(); ++c) {
    std::vector<int> pressure(machine.regFiles().size(), 0);
    for (AgId id = 0; id < graph.size(); ++id) {
      const AgNode& n = graph.node(id);
      if (!n.definesRegister() || cycles[id] < 0) continue;
      const bool born = cycles[id] <= c;
      const bool aliveLater = liveOut.test(id) || lastUse[id] > c;
      // A dead def (evicted reload) still occupies a register at its own
      // write instant.
      const bool deadDefHere =
          cycles[id] == c && lastUse[id] < 0 && !liveOut.test(id);
      if ((born && aliveLater) || deadDefHere)
        pressure[n.defLoc.index] += 1;
    }
    for (size_t bank = 0; bank < pressure.size(); ++bank)
      if (pressure[bank] >
          machine.regFile(static_cast<RegFileId>(bank)).numRegs)
        return false;
  }
  return true;
}

// Instruction-level legality of one cycle's members.
bool instrLegal(const AssignedGraph& graph, const std::vector<AgId>& instr,
                const ConstraintDatabase& constraints) {
  const Machine& machine = graph.machine();
  std::set<UnitId> units;
  std::map<BusId, int> busLoad;
  std::vector<OpSel> sels;
  for (AgId id : instr) {
    const AgNode& n = graph.node(id);
    if (n.kind == AgKind::kOp) {
      if (!units.insert(n.unit).second) return false;
      sels.push_back({n.unit, n.machineOp});
    } else if (n.isTransferish()) {
      if (++busLoad[graph.busOf(id)] > machine.bus(graph.busOf(id)).capacity)
        return false;
    }
  }
  return constraints.allows(sels);
}

void eraseFromInstr(std::vector<AgId>& instr, AgId id) {
  instr.erase(std::remove(instr.begin(), instr.end(), id), instr.end());
}

}  // namespace

void peepholeOptimize(AssignedGraph& graph, Schedule& schedule,
                      const ConstraintDatabase& constraints,
                      PeepholeStats* stats) {
  PeepholeStats localStats;
  PeepholeStats& st = stats != nullptr ? *stats : localStats;
  st = PeepholeStats{};
  const int before = schedule.numInstructions();

  // --- (1) redundant reloads: feasibility is checked by simulating the
  // rewire on a scratch copy first, then committing on the real graph. ----
  bool changed = true;
  while (changed) {
    changed = false;
    for (AgId id = 0; id < graph.size() && !changed; ++id) {
      const AgNode& n = graph.node(id);
      if (n.kind != AgKind::kSpillLoad || n.deleted()) continue;
      // Identify the spilled value behind this slot.
      AgId victim = kNoAg;
      for (AgId pred : n.preds) {
        const AgNode& p = graph.node(pred);
        if (p.kind == AgKind::kSpillStore && p.spillSlot == n.spillSlot) {
          AgId src = p.valueSrc;
          while (src != kNoAg && graph.node(src).isTransferish() &&
                 graph.node(src).spillSlot == p.spillSlot)
            src = graph.node(src).valueSrc;
          victim = src;
        }
      }
      if (victim == kNoAg) continue;
      if (!(graph.node(victim).defLoc == n.defLoc)) continue;
      if (n.succs.empty()) continue;

      // Scratch-copy simulation.
      AssignedGraph scratch = graph.clone();
      Schedule scratchSched = schedule;
      const auto consumers = scratch.node(id).succs;
      for (AgId c : consumers) scratch.retargetConsumer(c, id, victim);
      const auto cycles = scratchSched.cycles(scratch.size());
      eraseFromInstr(scratchSched.instrs[static_cast<size_t>(cycles[id])], id);
      scratch.deleteNode(id);
      if (!pressureFeasible(scratch, scratchSched)) continue;

      graph = std::move(scratch);
      schedule = std::move(scratchSched);
      st.reloadsRemoved += 1;
      changed = true;
    }
  }

  // --- (1b) dead transfer defs: evicted reloads (and any transfer whose
  // consumers were all rewired away) execute for nothing — drop them. -----
  changed = true;
  while (changed) {
    changed = false;
    const auto cycles = schedule.cycles(graph.size());
    DynBitset liveOut(graph.size());
    for (const auto& [name, def] : graph.outputDefs())
      if (def != kNoAg) liveOut.set(def);
    for (AgId id = 0; id < graph.size(); ++id) {
      const AgNode& n = graph.node(id);
      if (!n.isTransferish() || n.deleted()) continue;
      // Only register-defining transfers can be dead; memory-writing
      // transfers (output stores, spill stores) have no successors by
      // design.
      if (!n.definesRegister()) continue;
      if (!n.succs.empty() || liveOut.test(id)) continue;
      if (cycles[id] < 0) continue;
      eraseFromInstr(schedule.instrs[static_cast<size_t>(cycles[id])], id);
      graph.deleteNode(id);
      st.reloadsRemoved += 1;
      changed = true;
    }
  }

  // --- (1c) coalesce duplicate reloads: two scheduled reloads of the same
  // slot into the same bank can share the earlier one when extending its
  // live range keeps every bank within limits. ---------------------------
  changed = true;
  while (changed) {
    changed = false;
    const auto cycles = schedule.cycles(graph.size());
    for (AgId first = 0; first < graph.size() && !changed; ++first) {
      const AgNode& a = graph.node(first);
      if (a.kind != AgKind::kSpillLoad || a.deleted()) continue;
      for (AgId second = 0; second < graph.size() && !changed; ++second) {
        if (second == first) continue;
        const AgNode& b = graph.node(second);
        if (b.kind != AgKind::kSpillLoad || b.deleted()) continue;
        if (b.spillSlot != a.spillSlot || !(b.defLoc == a.defLoc)) continue;
        if (cycles[first] < 0 || cycles[second] < 0) continue;
        if (cycles[first] >= cycles[second]) continue;
        if (b.succs.empty()) continue;
        // Every consumer of `second` must run after `first`.
        bool ordered = true;
        for (AgId c : b.succs) ordered &= cycles[c] > cycles[first];
        if (!ordered) continue;

        AssignedGraph scratch = graph.clone();
        Schedule scratchSched = schedule;
        const auto consumers = scratch.node(second).succs;
        for (AgId c : consumers) scratch.retargetConsumer(c, second, first);
        eraseFromInstr(
            scratchSched.instrs[static_cast<size_t>(cycles[second])], second);
        scratch.deleteNode(second);
        if (!pressureFeasible(scratch, scratchSched)) continue;
        graph = std::move(scratch);
        schedule = std::move(scratchSched);
        st.reloadsRemoved += 1;
        changed = true;
      }
    }
  }

  // Dead spill stores.
  for (AgId id = 0; id < graph.size(); ++id) {
    const AgNode& n = graph.node(id);
    if (n.kind != AgKind::kSpillStore || n.deleted()) continue;
    if (!n.succs.empty()) continue;
    AgId cur = id;
    const int slot = n.spillSlot;
    while (cur != kNoAg && graph.node(cur).isTransferish() &&
           graph.node(cur).spillSlot == slot &&
           graph.node(cur).succs.empty()) {
      const AgId src = graph.node(cur).valueSrc;
      const auto cycles = schedule.cycles(graph.size());
      if (cycles[cur] >= 0)
        eraseFromInstr(schedule.instrs[static_cast<size_t>(cycles[cur])], cur);
      graph.deleteNode(cur);
      cur = src;
    }
    st.spillStoresRemoved += 1;
  }

  // --- (2) compaction: hoist nodes into earlier cycles. ------------------
  changed = true;
  while (changed) {
    changed = false;
    auto cycles = schedule.cycles(graph.size());
    for (int c = 1; c < schedule.numInstructions() && !changed; ++c) {
      const std::vector<AgId> members = schedule.instrs[static_cast<size_t>(c)];
      for (AgId id : members) {
        int earliest = 0;
        for (AgId pred : graph.node(id).preds)
          earliest = std::max(earliest, cycles[pred] + 1);
        for (int target = earliest; target < c; ++target) {
          std::vector<AgId> candidate =
              schedule.instrs[static_cast<size_t>(target)];
          candidate.push_back(id);
          if (!instrLegal(graph, candidate, constraints)) continue;
          Schedule trial = schedule;
          eraseFromInstr(trial.instrs[static_cast<size_t>(c)], id);
          trial.instrs[static_cast<size_t>(target)].push_back(id);
          std::sort(trial.instrs[static_cast<size_t>(target)].begin(),
                    trial.instrs[static_cast<size_t>(target)].end());
          if (!pressureFeasible(graph, trial)) continue;
          schedule = std::move(trial);
          st.opsHoisted += 1;
          changed = true;
          break;
        }
        if (changed) break;
      }
    }
  }

  // --- (3) drop empty instructions. --------------------------------------
  std::vector<std::vector<AgId>> packed;
  for (auto& instr : schedule.instrs)
    if (!instr.empty()) packed.push_back(std::move(instr));
  schedule.instrs = std::move(packed);

  st.instructionsSaved = before - schedule.numInstructions();
  verifySchedule(graph, schedule, constraints);
}

void recordPeepholeStats(const PeepholeStats& stats, TelemetryNode& phase) {
  phase.setCounter("reloadsRemoved", stats.reloadsRemoved);
  phase.setCounter("spillStoresRemoved", stats.spillStoresRemoved);
  phase.setCounter("opsHoisted", stats.opsHoisted);
  phase.setCounter("instructionsSaved", stats.instructionsSaved);
}

PeepholeStats peepholeStatsView(const TelemetryNode& phase) {
  PeepholeStats stats;
  stats.reloadsRemoved = static_cast<int>(phase.counter("reloadsRemoved"));
  stats.spillStoresRemoved =
      static_cast<int>(phase.counter("spillStoresRemoved"));
  stats.opsHoisted = static_cast<int>(phase.counter("opsHoisted"));
  stats.instructionsSaved =
      static_cast<int>(phase.counter("instructionsSaved"));
  return stats;
}

}  // namespace aviv
