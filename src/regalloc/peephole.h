// Peephole optimization after detailed register allocation (paper Section
// IV-G): the liveness analysis used while inserting loads and spills is
// pessimistic, so some of them turn out unnecessary. This pass
//   (1) removes reloads whose spilled value is in fact still register-
//       resident in the destination bank (and spill stores left without any
//       reload), whenever doing so keeps every bank within its registers;
//   (2) compacts the schedule by hoisting operations into earlier empty
//       slots when dependencies, resources, constraints, and register
//       pressure allow;
//   (3) drops instructions that became empty.
// As the paper notes, this may or may not reduce the final instruction
// count. The graph and schedule are mutated; re-run allocateRegisters on
// the result.
#pragma once

#include "core/assigned.h"
#include "core/cover.h"
#include "isdl/databases.h"
#include "support/telemetry.h"

namespace aviv {

// Typed view over the "peephole" phase-telemetry node — see
// recordPeepholeStats / peepholeStatsView.
struct PeepholeStats {
  int reloadsRemoved = 0;
  int spillStoresRemoved = 0;
  int opsHoisted = 0;
  int instructionsSaved = 0;
};

void peepholeOptimize(AssignedGraph& graph, Schedule& schedule,
                      const ConstraintDatabase& constraints,
                      PeepholeStats* stats = nullptr);

// Telemetry plumbing for the pipeline session's phase tree.
void recordPeepholeStats(const PeepholeStats& stats, TelemetryNode& phase);
[[nodiscard]] PeepholeStats peepholeStatsView(const TelemetryNode& phase);

}  // namespace aviv
