#include "proc/worker.h"

#include <csignal>
#include <cstring>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "net/frame.h"
#include "obs/trace.h"
#include "service/cache.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/io.h"
#include "support/timer.h"

namespace aviv::proc {

namespace {

// Crash-handler state. Written once before the serve loop starts; the
// handler itself only reads it.
const char* g_flightRecordPath = nullptr;

extern "C" void handleWorkerCrash(int sig) {
  // Best-effort flight-record dump, then die with the original signal so
  // the supervisor's waitpid sees the truth. writeFlightRecord is noexcept
  // but not async-signal-safe (it allocates); acceptable here — the
  // process is dying anyway, and if the dump wedges inside a corrupted
  // allocator the supervisor's hard deadline SIGKILLs us, which is the
  // same crash class from its point of view.
  if (g_flightRecordPath != nullptr)
    trace::Tracer::instance().writeFlightRecord(g_flightRecordPath);
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

// Full-frame blocking write, serialized against the heartbeat thread.
void writeFrame(int fd, std::mutex& mu, const std::string& frame) {
  std::lock_guard<std::mutex> lock(mu);
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Supervisor gone (EPIPE/ECONNRESET): nothing left to serve.
      ::_exit(0);
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

void applyWorkerLimits(uint64_t rssLimitBytes, uint64_t cpuLimitSeconds) {
  if (rssLimitBytes > 0) {
    // RLIMIT_AS is the portable stand-in for an RSS cap: allocation past it
    // fails, which the worker-oom model turns into the kernel-OOM outcome.
    rlimit lim{};
    lim.rlim_cur = static_cast<rlim_t>(rssLimitBytes);
    lim.rlim_max = static_cast<rlim_t>(rssLimitBytes);
    (void)::setrlimit(RLIMIT_AS, &lim);
  }
  if (cpuLimitSeconds > 0) {
    // Soft limit delivers SIGXCPU (default: terminate); hard limit one
    // second later SIGKILLs a handler that swallowed it.
    rlimit lim{};
    lim.rlim_cur = static_cast<rlim_t>(cpuLimitSeconds);
    lim.rlim_max = static_cast<rlim_t>(cpuLimitSeconds + 1);
    (void)::setrlimit(RLIMIT_CPU, &lim);
  }
}

void evalWorkerCrashPoints(const std::string& crashNotePath) {
  FailPoints& points = FailPoints::instance();
  if (!points.active()) return;
  // Note the site BEFORE crashing (still on a healthy code path) so the
  // supervisor can record an exact always-fire replay spec in the bundle.
  const auto noteThen = [&](const char* site) {
    if (!crashNotePath.empty()) {
      try {
        writeFile(crashNotePath, site);
      } catch (const Error&) {
        // The note is advisory; the crash must happen regardless.
      }
    }
  };
  if (points.shouldFail("worker-segv")) {
    noteThen("worker-segv");
    FailPoints::instance().configure("worker-segv");  // re-arm, then die
    FailPoints::instance().maybeCrash("worker-segv",
                                      FailPoints::CrashAction::kSegv);
  }
  if (points.shouldFail("worker-abort")) {
    noteThen("worker-abort");
    FailPoints::instance().configure("worker-abort");
    FailPoints::instance().maybeCrash("worker-abort",
                                      FailPoints::CrashAction::kAbort);
  }
  if (points.shouldFail("worker-oom")) {
    noteThen("worker-oom");
    FailPoints::instance().configure("worker-oom");
    FailPoints::instance().maybeCrash("worker-oom",
                                      FailPoints::CrashAction::kOom);
  }
  if (points.shouldFail("worker-hang")) {
    noteThen("worker-hang");
    FailPoints::instance().configure("worker-hang");
    FailPoints::instance().maybeCrash("worker-hang",
                                      FailPoints::CrashAction::kHang);
  }
}

std::string describeExitStatus(int status) {
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = ::strsignal(sig);
    return "signal " + std::to_string(sig) + " (" +
           (name != nullptr ? name : "?") + ")";
  }
  if (WIFEXITED(status))
    return "exit code " + std::to_string(WEXITSTATUS(status));
  return "status " + std::to_string(status);
}

void runWorkerProcess(int fd, const WorkerEnv& env) {
  // The child of a fork(): reset inherited dispositions (the daemon's
  // SIGTERM handler must not swallow the supervisor's kill), become our
  // own sandbox, and serve.
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGPIPE, SIG_IGN);
  if (!env.flightRecordPath.empty()) {
    g_flightRecordPath = ::strdup(env.flightRecordPath.c_str());
    trace::Tracer::instance().enable();
    for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL})
      std::signal(sig, handleWorkerCrash);
  }
  applyWorkerLimits(env.rssLimitBytes, env.cpuLimitSeconds);

  std::shared_ptr<ResultCache> cache;
  if (env.cacheEnabled) {
    CacheConfig cacheConfig;
    cacheConfig.dir = env.cacheDir;
    cacheConfig.memoryEntries = env.memEntries;
    // Siblings share the on-disk store: a respawn must not sweep their
    // in-progress temps.
    cacheConfig.sweepMinAgeSeconds = 5.0;
    try {
      cache = std::make_shared<ResultCache>(cacheConfig);
    } catch (const Error&) {
      cache = nullptr;  // store unusable: serve uncached rather than die
    }
  }
  RequestExecConfig exec;
  exec.cache = cache;
  exec.retries = env.transientRetries;

  std::mutex writeMu;
  std::atomic<bool> busy{false};
  std::atomic<bool> done{false};
  // Heartbeat watchdog: beats only while a request is executing (an idle
  // worker's beats would just pile up unread in the kernel buffer).
  std::thread heartbeat([&] {
    const std::string beat = net::encodeFrame(net::FrameType::kHeartbeat, "");
    while (!done.load(std::memory_order_relaxed)) {
      if (busy.load(std::memory_order_relaxed)) writeFrame(fd, writeMu, beat);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(env.heartbeatMs > 0 ? env.heartbeatMs
                                                        : 100));
    }
  });
  heartbeat.detach();  // the process exits via _exit; nothing to join

  net::FrameDecoder decoder;
  char buf[64 << 10];
  for (;;) {
    net::Frame frame;
    net::FrameDecoder::Status status;
    while ((status = decoder.next(&frame)) ==
           net::FrameDecoder::Status::kNeedMore) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::_exit(0);  // supervisor gone
      }
      if (n == 0) ::_exit(0);  // clean shutdown: supervisor closed its end
      decoder.feed(buf, static_cast<size_t>(n));
    }
    if (status == net::FrameDecoder::Status::kError) ::_exit(4);
    if (frame.type != net::FrameType::kRequest) continue;

    net::RequestPayload request;
    try {
      request = net::decodeRequestPayload(frame.payload);
    } catch (const Error&) {
      ::_exit(4);  // the supervisor never sends malformed payloads
    }

    busy.store(true, std::memory_order_relaxed);
    exec.wantAsm = request.wantAsm;
    evalWorkerCrashPoints(env.crashNotePath);

    net::ResponsePayload response;
    response.id = request.id;
    const WallTimer timer;
    net::FrameType type = net::FrameType::kError;
    try {
      const RequestParse parse =
          parseRequestLine(request.line, 0, env.defaults);
      if (!parse.ok()) {
        response.detail = parse.diagnostic.message;
      } else {
        TelemetryNode local("req");
        const RequestOutcome outcome =
            executeRequest(*parse.request, exec, local);
        if (!outcome.ok) {
          response.detail = outcome.error;
        } else {
          if (outcome.quarantined) {
            type = net::FrameType::kQuarantined;
          } else if (outcome.degraded) {
            type = net::FrameType::kDegraded;
          } else if (outcome.allCached()) {
            type = net::FrameType::kHit;
          } else {
            type = net::FrameType::kOk;
          }
          response.detail = outcome.statusDetail;
          response.body = outcome.asmText;
        }
      }
    } catch (const std::exception& e) {
      // executeRequest never throws; this is a backstop for parse-side
      // surprises. The worker answers and lives on.
      type = net::FrameType::kError;
      response.detail = e.what();
    }
    response.wallMicros = static_cast<uint64_t>(timer.seconds() * 1e6);

    const std::string encoded =
        net::encodeFrame(type, net::encodeResponsePayload(response));
    if (FailPoints::instance().shouldFail("worker-torn-write")) {
      // Die mid-frame: the supervisor's decoder must surface a torn,
      // poisoned-not-wedged stream and treat it as a crash. Note the site
      // first so the bundle replays (the replay child re-fires it after
      // its compile).
      if (!env.crashNotePath.empty()) {
        try {
          writeFile(env.crashNotePath, "worker-torn-write");
        } catch (const Error&) {
        }
      }
      std::lock_guard<std::mutex> lock(writeMu);
      (void)!::write(fd, encoded.data(), encoded.size() / 2);
      ::_exit(3);
    }
    writeFrame(fd, writeMu, encoded);
    busy.store(false, std::memory_order_relaxed);
  }
}

}  // namespace aviv::proc
