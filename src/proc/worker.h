// Compile-worker process body (DESIGN.md System 29 / §6.9). The supervisor
// (proc/pool.h) forks; the child calls runWorkerProcess() and never
// returns: it reads request frames (net/frame.h, the PR 7 codec) off its
// end of the socketpair, executes each through the shared request dispatch
// (service/request.h) against a worker-private ResultCache, and writes one
// typed response frame back. A busy worker additionally emits kHeartbeat
// frames from a watchdog thread so the supervisor can tell a slow compile
// from a wedged process.
//
// The worker is the sandbox: before serving it resets inherited signal
// dispositions, applies the configured setrlimit() caps (RLIMIT_AS as the
// memory ceiling, RLIMIT_CPU as the runaway-search ceiling), installs
// crash handlers that dump the flight-recorder tail (obs/trace.h) for the
// repro bundle, and closes every inherited fd except its socketpair. A
// SIGSEGV, abort(), OOM, or SIGKILL here takes down ONE request's process,
// never the daemon.
//
// Crash-class fail points (support/failpoint.h), evaluated once per
// request before compile work so the whole supervision path is
// deterministically testable:
//   worker-segv        null-pointer write            -> SIGSEGV
//   worker-abort       std::abort()                  -> SIGABRT
//   worker-oom         allocate until rlimit, abort  -> SIGABRT (OOM model)
//   worker-hang        spin forever                  -> supervisor SIGKILL
//   worker-torn-write  half a response frame, _exit  -> torn frame at the
//                                                       supervisor decoder
#pragma once

#include <cstdint>
#include <string>

#include "service/request.h"

namespace aviv::proc {

// Everything a worker needs, inherited through fork() — nothing is
// serialized. Built once by the supervisor from the daemon flags.
struct WorkerEnv {
  RequestDefaults defaults;
  // Worker-private cache over the shared on-disk store: the memory tier is
  // per-process, the `cacheDir` tier (when set) is shared with the
  // supervisor and the sibling workers.
  std::string cacheDir;
  bool cacheEnabled = true;
  size_t memEntries = 1024;
  int transientRetries = 2;
  // setrlimit caps; 0 = inherit (unlimited).
  uint64_t rssLimitBytes = 0;
  uint64_t cpuLimitSeconds = 0;
  // Heartbeat cadence while a request is executing.
  int heartbeatMs = 100;
  // Crash-handler flight-record dump target ("" disables); the supervisor
  // moves it into the crash repro bundle. Enabling implies enabling the
  // tracer in the worker so there is a tail to dump.
  std::string flightRecordPath;
  // Where a firing crash fail point notes its site name just before dying,
  // so the repro bundle can record an exact always-fire replay spec.
  std::string crashNotePath;
};

// Child-process entry point: serves requests on `fd` until EOF (supervisor
// closed its end -> clean _exit(0)). Never returns.
[[noreturn]] void runWorkerProcess(int fd, const WorkerEnv& env);

// Evaluates the worker crash-class fail points, performing the crash when
// one fires (after best-effort noting the site into `crashNotePath`).
// Shared between the worker request loop and the crash-repro replay child
// (proc/crash_repro.h) so a recorded spec reproduces the same death.
void evalWorkerCrashPoints(const std::string& crashNotePath);

// Applies RLIMIT_AS / RLIMIT_CPU caps (0 = leave untouched). Best-effort:
// a refused setrlimit is not fatal (the supervisor's hard deadline still
// backstops). Shared with the replay child.
void applyWorkerLimits(uint64_t rssLimitBytes, uint64_t cpuLimitSeconds);

// Formats "signal 11 (Segmentation fault)" / "exit code 3" from a waitpid
// status, for crash bundles and log lines.
[[nodiscard]] std::string describeExitStatus(int status);

}  // namespace aviv::proc
