// Supervised compile-worker pool (DESIGN.md System 29 / §6.9): the
// `avivd --isolate-workers N` crash-isolation layer. The supervisor forks N
// sandboxed worker processes (proc/worker.h), each on its own socketpair
// speaking the PR 7 frame codec, and routes every request through one:
//
//   execute(line) -> pick idle worker -> kRequest frame -> poll:
//     kHeartbeat        liveness; resets the silent-worker clock
//     response frame    done — typed result back to the caller
//     EOF / torn frame  worker died mid-request
//     hard deadline     SIGKILL — hung or runaway worker
//     heartbeat silence SIGKILL — wedged worker (alive but not serving)
//
// The contract is ZERO LOST RESPONSES: a request whose worker dies is
// retried exactly once on a healthy worker; a second death maps to a typed
// kError response. The caller always gets exactly one answer — a worker
// crash never surfaces as a dropped connection or a missing batch line.
//
// Every crash additionally:
//   * is captured as a standalone repro bundle (proc/crash_repro.h) when
//     `crashDir` is set — request, resolved sources, exit signal, rlimits,
//     failpoint site, flight-recorder tail;
//   * triggers the `onCrash` hook (avivd points it at the result cache's
//     stale-temp sweep: a worker SIGKILLed mid-store leaves a torn *.tmp);
//   * feeds a per-request-line crash-loop breaker: K crashes within the
//     window blacklists that line — further arrivals are served in-process
//     by the baseline engine (a deliberately different code path from the
//     covering flow that keeps killing workers) or, when
//     `breakerBaseline` is off, answered kError without burning workers.
//
// Dead workers respawn with exponential backoff (a crash-looping fleet
// must not fork-bomb); the supervisor itself never dies on any worker
// behavior.
//
// Thread-safety: execute() is safe from many threads (the server's handler
// pool); each in-flight request exclusively owns one worker slot.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "proc/worker.h"

namespace aviv::proc {

struct PoolConfig {
  int workers = 2;
  // Hard per-request ceiling; past it the worker is SIGKILLed. 0 disables
  // (heartbeat silence still catches wedged workers).
  int hardDeadlineMs = 30000;
  // SIGKILL a busy worker that has not produced a heartbeat or response
  // for this long. Must be comfortably larger than env.heartbeatMs.
  int heartbeatTimeoutMs = 2000;
  // Crash-loop breaker: K crashes of one request line within the window
  // opens the breaker for that line.
  int crashLoopK = 3;
  double crashLoopWindowSeconds = 60.0;
  // Open-breaker recovery: true = serve in-process via the baseline engine
  // (kDegraded); false = typed kError.
  bool breakerBaseline = true;
  // Respawn backoff: doubles per consecutive crash of a slot, resets on a
  // served response.
  int respawnBackoffMs = 50;
  int respawnBackoffMaxMs = 2000;
  // Crash repro bundles land here; "" disables capture.
  std::string crashDir;
  // Invoked (on the executing thread) after every worker crash, before the
  // retry. avivd wires the cache stale-temp sweep here.
  std::function<void()> onCrash;
  WorkerEnv env;
};

// One typed answer per execute(); the pool-level mirror of a response
// frame, plus crash provenance.
struct WorkerResult {
  net::FrameType type = net::FrameType::kError;
  std::string detail;
  std::string body;
  uint64_t wallMicros = 0;
  // Worker deaths consumed serving this request: 0 clean, 1 retried onto a
  // healthy worker, 2 gave up (type == kError). Nonzero also appends
  // " crashed=K" to `detail`.
  int crashes = 0;
  bool breakerServed = false;  // answered by the breaker recovery path
  std::string reproDir;        // bundle of this request's last crash ("" none)
};

struct PoolStats {
  uint64_t requests = 0;
  uint64_t crashes = 0;         // worker deaths observed mid-request
  uint64_t deadlineKills = 0;   // hard-deadline SIGKILLs (subset of crashes)
  uint64_t heartbeatKills = 0;  // silent-worker SIGKILLs (subset of crashes)
  uint64_t respawns = 0;
  uint64_t crashRetried = 0;    // requests that survived via the one retry
  uint64_t crashFailed = 0;     // requests that crashed twice -> kError
  uint64_t breakerOpens = 0;
  uint64_t breakerServed = 0;
  uint64_t reproBundles = 0;
};

class WorkerPool {
 public:
  // Forks the initial fleet. Throws aviv::Error when no worker can be
  // spawned at all.
  explicit WorkerPool(PoolConfig config);
  // SIGKILLs and reaps every worker.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Runs one request line to a typed answer. Never throws; every failure
  // mode (crash, double crash, breaker) is a typed WorkerResult.
  [[nodiscard]] WorkerResult execute(const std::string& line, bool wantAsm);

  [[nodiscard]] PoolStats stats() const;
  [[nodiscard]] const PoolConfig& config() const { return config_; }
  // Live (spawned, not known-dead) workers right now — for tests.
  [[nodiscard]] int aliveWorkers() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Slot {
    pid_t pid = -1;
    net::Fd fd;          // supervisor end of the socketpair
    bool busy = false;   // exclusively owned by one execute()
    bool dead = true;    // needs (re)spawn before next use
    Clock::time_point respawnAt{};  // earliest next spawn (backoff)
    int backoffMs = 0;
    std::string flightPath;  // per-slot crash-handler dump target
    std::string notePath;    // per-slot crash fail-point note
  };

  struct Breach {
    int count = 0;
    Clock::time_point windowStart{};
    bool open = false;
    Clock::time_point openedAt{};
  };

  // What one dispatch attempt on a worker ended as.
  struct Attempt {
    bool crashed = false;
    bool gotResponse = false;  // full response decoded (even if then reaped)
    bool killedByDeadline = false;
    bool killedByHeartbeat = false;
    int exitStatus = 0;
    net::ResponsePayload response;
    net::FrameType type = net::FrameType::kError;
  };

  // Slot lifecycle (slots_ guarded by mu_; a busy slot's pid/fd belong to
  // the executing thread).
  int acquireSlot();            // blocks; -1 only after shutdown
  void releaseSlot(int index, bool healthy);
  bool spawnSlot(int index);    // mu_ held; false when fork fails
  void killAndReap(Slot& slot);

  Attempt runOnWorker(int index, const std::string& line, bool wantAsm,
                      uint64_t id);
  // Crash bookkeeping: reap, bundle, hook, breaker. Fills in the attempt's
  // exit status; returns the bundle dir ("" when capture is off/failed).
  std::string handleCrash(int index, const std::string& line, bool wantAsm,
                          Attempt* attempt);

  bool breakerOpenFor(const std::string& line);
  void breakerRecordCrash(const std::string& line);
  void breakerRecordSuccess(const std::string& line);
  WorkerResult serveBreaker(const std::string& line, bool wantAsm);

  PoolConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  bool shutdown_ = false;
  std::atomic<uint64_t> nextId_{1};
  std::atomic<uint64_t> crashSeq_{0};

  std::mutex breakerMu_;
  std::map<std::string, Breach> breaker_;

  mutable std::mutex statsMu_;
  PoolStats stats_;
};

}  // namespace aviv::proc
