#include "proc/crash_repro.h"

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "isdl/emit.h"
#include "isdl/parser.h"
#include "proc/worker.h"
#include "service/request.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/io.h"
#include "support/strings.h"
#include "support/telemetry.h"

namespace aviv::proc {

namespace fs = std::filesystem;

namespace {

std::string oneLine(std::string s) {
  for (char& c : s)
    if (c == '\n' || c == '\r') c = ' ';
  return s;
}

// Directory-name-safe cause tag ("worker-segv", "sig9", "exit3").
std::string sanitize(std::string s) {
  for (char& c : s)
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '-';
  return s.empty() ? std::string("unknown") : s;
}

// Resolved machine text, standalone: path specs copy the file verbatim,
// built-in names round-trip through the ISDL emitter (the same guarantee
// the fuzz bundles rely on).
std::string resolveMachineText(const std::string& spec) {
  if (endsWith(spec, ".isdl")) return readFile(spec);
  return emitMachineText(loadMachine(spec));
}

// Resolved block source plus the bundle-local file name that keeps its
// format (a .c block must replay through the Mini-C front end).
std::pair<std::string, std::string> resolveBlockText(const std::string& spec) {
  if (endsWith(spec, ".c")) return {readFile(spec), "block.c"};
  if (endsWith(spec, ".blk")) return {readFile(spec), "block.blk"};
  const std::string path = blockPath(spec);
  return {readFile(path), "block.blk"};
}

// Rewrites machine=/block= values in a request line (whitespace-separated
// tokens) so the bundle replays against its own copies wherever it lives.
std::string rewriteLine(const std::string& line, const std::string& dir,
                        const std::string& blockFile) {
  std::vector<std::string> tokens;
  for (size_t i = 0; i < line.size();) {
    if (std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
      continue;
    }
    const size_t start = i;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) == 0)
      ++i;
    tokens.push_back(line.substr(start, i - start));
  }
  std::string out;
  for (const std::string& token : tokens) {
    if (!out.empty()) out += ' ';
    if (startsWith(token, "machine=")) {
      out += "machine=" + dir + "/machine.isdl";
    } else if (startsWith(token, "block=")) {
      out += "block=" + dir + "/" + blockFile;
    } else {
      out += token;
    }
  }
  return out;
}

// The replay child's whole life. Only _exit()s — this is a fork child.
[[noreturn]] void runReplayChild(const CrashRepro& repro) {
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGPIPE, SIG_IGN);
  if (!repro.failpointSite.empty())
    FailPoints::instance().configure(repro.failpointSite);
  // A worker-oom replay with no recorded cap would eat the machine; give
  // the child a ceiling regardless.
  uint64_t rss = repro.rssLimitBytes;
  if (rss == 0 && repro.failpointSite == "worker-oom") rss = 512ull << 20;
  applyWorkerLimits(rss, repro.cpuLimitSeconds);

  evalWorkerCrashPoints("");  // fires the recorded site, if any
  try {
    const RequestParse parse = parseRequestLine(repro.requestLine, 0, {});
    if (!parse.ok()) ::_exit(0);  // request invalid: nothing crashed
    RequestExecConfig exec;
    exec.wantAsm = repro.wantAsm;
    exec.retries = 0;
    TelemetryNode tel("replay");
    (void)executeRequest(*parse.request, exec, tel);
  } catch (...) {
    ::_exit(0);  // a caught failure is not a crash
  }
  // Torn-write crashes fire after the compile, on the respond path.
  if (FailPoints::instance().shouldFail("worker-torn-write")) ::_exit(3);
  ::_exit(0);
}

}  // namespace

std::string writeCrashRepro(const CrashCapture& capture) {
  if (capture.crashDir.empty()) return "";
  try {
    std::string cause;
    if (!capture.failpointSite.empty()) {
      cause = capture.failpointSite;
    } else if (capture.killedByDeadline) {
      cause = "kill";
    } else if (WIFSIGNALED(capture.exitStatus)) {
      cause = "sig" + std::to_string(WTERMSIG(capture.exitStatus));
    } else {
      cause = "exit" + std::to_string(WEXITSTATUS(capture.exitStatus));
    }
    const std::string dir = capture.crashDir + "/crash-" +
                            std::to_string(capture.sequence) + "-" +
                            sanitize(cause);
    fs::create_directories(dir);
    writeFile(dir + "/request.txt", capture.requestLine + "\n");

    // Best-effort source copies: a line too mangled to parse still gets a
    // bundle (request + meta), just not a standalone one.
    std::string blockFile;
    const RequestParse parse = parseRequestLine(capture.requestLine, 0, {});
    if (parse.ok()) {
      try {
        writeFile(dir + "/machine.isdl",
                  resolveMachineText(parse.request->machineSpec));
        auto block = resolveBlockText(parse.request->blockSpec);
        blockFile = block.second;
        writeFile(dir + "/" + blockFile, block.first);
      } catch (const std::exception&) {
        blockFile.clear();  // sources unavailable; bundle stays partial
      }
    }

    if (!capture.flightRecordPath.empty() &&
        fs::exists(capture.flightRecordPath)) {
      std::error_code ec;
      fs::rename(capture.flightRecordPath, dir + "/flight.json", ec);
    }

    std::ostringstream meta;
    meta << "kind=" << (capture.killedByDeadline ? "kill" : "crash") << "\n";
    meta << "exit=" << describeExitStatus(capture.exitStatus) << "\n";
    meta << "wantAsm=" << (capture.wantAsm ? 1 : 0) << "\n";
    meta << "blockFile=" << blockFile << "\n";
    meta << "failpoints=" << capture.failpointSite << "\n";
    meta << "rssLimitBytes=" << capture.rssLimitBytes << "\n";
    meta << "cpuLimitSeconds=" << capture.cpuLimitSeconds << "\n";
    meta << "deadlineMs=" << capture.deadlineMs << "\n";
    meta << "line=" << oneLine(capture.requestLine) << "\n";
    meta << "replay=fuzz_gen --replay " << dir << "\n";
    writeFile(dir + "/meta.txt", meta.str());
    return dir;
  } catch (const std::exception&) {
    return "";  // capture is best-effort; the response still flows
  }
}

CrashRepro loadCrashRepro(const std::string& dir) {
  CrashRepro repro;
  repro.dir = dir;
  std::string blockFile;
  for (const std::string& line : split(readFile(dir + "/meta.txt"), '\n')) {
    const size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    try {
      if (key == "kind") repro.kind = value;
      if (key == "exit") repro.exitDesc = value;
      if (key == "wantAsm") repro.wantAsm = value == "1";
      if (key == "blockFile") blockFile = value;
      if (key == "failpoints") repro.failpointSite = value;
      if (key == "rssLimitBytes") repro.rssLimitBytes = std::stoull(value);
      if (key == "cpuLimitSeconds") repro.cpuLimitSeconds = std::stoull(value);
      if (key == "deadlineMs") repro.deadlineMs = std::stoi(value);
    } catch (const std::exception&) {
      throw Error("crash repro meta.txt: bad value for '" + key + "'");
    }
  }
  if (repro.kind != "crash" && repro.kind != "kill")
    throw Error("crash repro meta.txt: missing kind=crash|kill");
  const std::string original =
      std::string(trim(readFile(dir + "/request.txt")));
  if (blockFile.empty()) {
    // Partial bundle (sources were unresolvable at capture): replay the
    // original line as-is and hope its specs still resolve here.
    repro.requestLine = original;
  } else {
    repro.requestLine = rewriteLine(original, dir, blockFile);
  }
  return repro;
}

bool isCrashRepro(const std::string& dir) {
  try {
    const std::string meta = readFile(dir + "/meta.txt");
    for (const std::string& line : split(meta, '\n'))
      if (line == "kind=crash" || line == "kind=kill") return true;
  } catch (const std::exception&) {
  }
  return false;
}

CrashReplayResult replayCrashRepro(const CrashRepro& repro) {
  CrashReplayResult result;
  const pid_t pid = ::fork();
  if (pid < 0) {
    result.detail = "fork failed";
    return result;
  }
  if (pid == 0) runReplayChild(repro);

  // kill bundles reproduce by OUTLIVING the recorded deadline; crash
  // bundles by dying before a generous cap.
  const int deadlineMs = repro.deadlineMs > 0 ? repro.deadlineMs : 2000;
  const int capMs =
      repro.kind == "kill" ? deadlineMs + 250 : deadlineMs + 30000;
  int status = 0;
  int waitedMs = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      if (repro.kind == "kill") {
        result.reproduced = false;
        result.detail = "child finished before the recorded deadline (" +
                        describeExitStatus(status) + ")";
      } else {
        const bool abnormal =
            WIFSIGNALED(status) || (WIFEXITED(status) && WEXITSTATUS(status) != 0);
        result.reproduced = abnormal;
        result.detail = "child " + describeExitStatus(status);
      }
      return result;
    }
    if (r < 0) {
      result.detail = "waitpid failed";
      return result;
    }
    if (waitedMs >= capMs) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    waitedMs += 10;
  }
  ::kill(pid, SIGKILL);
  (void)::waitpid(pid, &status, 0);
  if (repro.kind == "kill") {
    result.reproduced = true;
    result.detail = "child still running at the recorded deadline; killed";
  } else {
    result.reproduced = false;
    result.detail = "replay child hung; killed";
  }
  return result;
}

}  // namespace aviv::proc
