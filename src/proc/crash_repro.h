// Crash repro bundles (DESIGN.md §6.9) — the worker-crash counterpart of
// the fuzz bundles (src/fuzz/repro.h), sharing their on-disk shape so one
// replay entry point (`fuzz_gen --replay DIR`) handles both:
//
//   <crash-dir>/crash-<seq>-<cause>/
//     machine.isdl   resolved machine text, copied verbatim (or re-emitted
//                    for built-in machines) — standalone, like the fuzz zoo
//     block.blk|.c   resolved block source, copied verbatim
//     request.txt    the original request line, unmodified
//     meta.txt       key=value: kind=crash|kill, exit status, failpoint
//                    site, rlimits, deadline — everything replay re-applies
//     flight.json    worker flight-recorder tail (when the crash handler
//                    got to dump one)
//
// `kind=crash` records an abnormal death (SIGSEGV/SIGABRT/torn-write exit);
// replay reproduces iff a sandboxed child running the same request under
// the same failpoint spec and rlimits dies abnormally too. `kind=kill`
// records a supervisor SIGKILL (hung or heartbeat-silent worker); replay
// reproduces iff the child is still running when the recorded hard
// deadline expires. Bundles are relocatable: loadCrashRepro rewrites the
// request's machine=/block= specs to the bundle-local copies.
#pragma once

#include <cstdint>
#include <string>

namespace aviv::proc {

// Everything the supervisor knows at capture time. writeCrashRepro is
// best-effort and never throws — losing a bundle must not lose the
// response, let alone the supervisor.
struct CrashCapture {
  std::string crashDir;      // parent directory; "" disables capture
  std::string requestLine;   // original request text
  bool wantAsm = false;
  int exitStatus = 0;        // raw waitpid status
  bool killedByDeadline = false;  // true -> kind=kill
  // Site name the firing crash fail point noted before dying ("" when the
  // crash had no fail point behind it); becomes the replay's always-fire
  // spec.
  std::string failpointSite;
  uint64_t rssLimitBytes = 0;
  uint64_t cpuLimitSeconds = 0;
  int deadlineMs = 0;
  // Flight-recorder dump the worker's crash handler wrote, moved into the
  // bundle ("" or missing file = no tail captured).
  std::string flightRecordPath;
  uint64_t sequence = 0;  // unique bundle naming
};

// Writes one bundle; returns its directory, or "" when capture failed or
// crashDir is empty. Never throws.
[[nodiscard]] std::string writeCrashRepro(const CrashCapture& capture);

struct CrashRepro {
  std::string dir;
  std::string kind;         // "crash" | "kill"
  std::string requestLine;  // rewritten to bundle-local machine/block paths
  bool wantAsm = false;
  std::string exitDesc;     // describeExitStatus at capture
  std::string failpointSite;
  uint64_t rssLimitBytes = 0;
  uint64_t cpuLimitSeconds = 0;
  int deadlineMs = 0;
};

// Throws aviv::Error on a missing or malformed bundle.
[[nodiscard]] CrashRepro loadCrashRepro(const std::string& dir);

// True when `dir` holds a crash bundle (meta.txt with kind=crash|kill) —
// how `fuzz_gen --replay` tells the two bundle kinds apart.
[[nodiscard]] bool isCrashRepro(const std::string& dir);

struct CrashReplayResult {
  bool reproduced = false;
  std::string detail;  // what the replay child actually did
};

// Forks a sandboxed child that re-applies the recorded failpoint spec and
// rlimits, then runs the recorded request exactly as a worker would.
// Never throws; a replay harness failure reports reproduced=false with the
// reason in `detail`.
[[nodiscard]] CrashReplayResult replayCrashRepro(const CrashRepro& repro);

}  // namespace aviv::proc
