#include "proc/pool.h"

#include <cerrno>
#include <csignal>
#include <poll.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>

#include "proc/crash_repro.h"
#include "support/error.h"
#include "support/io.h"
#include "support/strings.h"
#include "support/timer.h"

namespace aviv::proc {

namespace fs = std::filesystem;

namespace {

// Close every inherited fd above the worker's socketpair (dup2'd to 3).
// This is what makes worker death observable: the supervisor's read side
// EOFs only when the LAST copy of the worker end closes, so a sibling
// holding a stray inherited copy would mask its owner's crash forever.
void closeInheritedFds() {
#ifdef SYS_close_range
  if (::syscall(SYS_close_range, 4u, ~0u, 0u) == 0) return;
#endif
  long maxFd = ::sysconf(_SC_OPEN_MAX);
  if (maxFd < 0 || maxFd > 65536) maxFd = 65536;
  for (int fd = 4; fd < maxFd; ++fd) ::close(fd);
}

std::chrono::milliseconds ms(int n) { return std::chrono::milliseconds(n); }

}  // namespace

WorkerPool::WorkerPool(PoolConfig config) : config_(std::move(config)) {
  if (config_.workers < 1) config_.workers = 1;
  if (!config_.crashDir.empty()) {
    try {
      fs::create_directories(config_.crashDir);
    } catch (const std::exception&) {
      config_.crashDir.clear();  // capture off; supervision still works
    }
  }
  slots_.resize(static_cast<size_t>(config_.workers));
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (config_.crashDir.empty()) continue;
    const std::string stem = config_.crashDir + "/.worker-" +
                             std::to_string(::getpid()) + "-" +
                             std::to_string(i);
    slots_[i].flightPath = stem + ".flight.json";
    slots_[i].notePath = stem + ".note";
  }
  std::lock_guard<std::mutex> lock(mu_);
  int alive = 0;
  for (size_t i = 0; i < slots_.size(); ++i)
    if (spawnSlot(static_cast<int>(i))) ++alive;
  if (alive == 0) throw Error("worker pool: could not fork any worker");
}

WorkerPool::~WorkerPool() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  for (Slot& slot : slots_) killAndReap(slot);
  cv_.notify_all();
}

void WorkerPool::killAndReap(Slot& slot) {
  if (slot.pid > 0) {
    ::kill(slot.pid, SIGKILL);
    int status = 0;
    while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  slot.pid = -1;
  slot.fd.reset();
  slot.dead = true;
}

bool WorkerPool::spawnSlot(int index) {
  Slot& slot = slots_[static_cast<size_t>(index)];
  if (!slot.notePath.empty()) ::unlink(slot.notePath.c_str());
  if (!slot.flightPath.empty()) ::unlink(slot.flightPath.c_str());
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    // Worker child. glibc's atfork handlers make malloc safe to use here
    // despite sibling supervisor threads; runWorkerProcess re-sandboxes
    // everything else.
    ::dup2(sv[1], 3);
    closeInheritedFds();
    WorkerEnv env = config_.env;
    env.flightRecordPath = slot.flightPath;
    env.crashNotePath = slot.notePath;
    runWorkerProcess(3, env);
  }
  ::close(sv[1]);
  slot.pid = pid;
  slot.fd = net::Fd(sv[0]);
  slot.dead = false;
  {
    std::lock_guard<std::mutex> stats(statsMu_);
    ++stats_.respawns;
  }
  return true;
}

int WorkerPool::acquireSlot() {
  // A typed kError beats an unbounded wait; far above any legitimate
  // queue + compile time.
  const auto giveUpAt =
      Clock::now() +
      ms(std::max(60000, config_.hardDeadlineMs > 0
                             ? 4 * config_.hardDeadlineMs
                             : 0));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (shutdown_) return -1;
    const auto now = Clock::now();
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.busy) continue;
      if (!slot.dead) {
        slot.busy = true;
        return static_cast<int>(i);
      }
      if (slot.respawnAt <= now) {
        if (spawnSlot(static_cast<int>(i))) {
          slot.busy = true;
          return static_cast<int>(i);
        }
        // fork refused (EAGAIN, fd pressure): back off and keep trying
        slot.backoffMs = slot.backoffMs == 0
                             ? config_.respawnBackoffMs
                             : std::min(slot.backoffMs * 2,
                                        config_.respawnBackoffMaxMs);
        slot.respawnAt = now + ms(slot.backoffMs);
      }
    }
    if (now >= giveUpAt) return -1;
    cv_.wait_for(lock, ms(20));
  }
}

void WorkerPool::releaseSlot(int index, bool healthy) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[static_cast<size_t>(index)];
    slot.busy = false;
    if (healthy) slot.backoffMs = 0;
  }
  cv_.notify_all();
}

WorkerPool::Attempt WorkerPool::runOnWorker(int index, const std::string& line,
                                            bool wantAsm, uint64_t id) {
  // The busy slot's pid/fd are stable: only this thread may respawn it.
  const int fd = slots_[static_cast<size_t>(index)].fd.get();
  const pid_t pid = slots_[static_cast<size_t>(index)].pid;
  Attempt attempt;

  net::RequestPayload request;
  request.id = id;
  request.wantAsm = wantAsm;
  request.line = line;
  const std::string frame = net::encodeFrame(
      net::FrameType::kRequest, net::encodeRequestPayload(request));
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      attempt.crashed = true;  // worker died idle; EPIPE before dispatch
      return attempt;
    }
    off += static_cast<size_t>(n);
  }

  net::FrameDecoder decoder;
  const auto start = Clock::now();
  auto lastBeat = start;
  auto killedAt = start;
  bool killSent = false;
  char buf[64 << 10];
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, 20);
    const auto now = Clock::now();
    if (pr < 0 && errno != EINTR) {
      attempt.crashed = true;
      return attempt;
    }
    if (pr > 0) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        attempt.crashed = true;  // EOF: the worker is gone
        return attempt;
      }
      decoder.feed(buf, static_cast<size_t>(n));
      net::Frame f;
      net::FrameDecoder::Status status;
      bool poisoned = false;
      while ((status = decoder.next(&f)) ==
             net::FrameDecoder::Status::kFrame) {
        if (f.type == net::FrameType::kHeartbeat) {
          lastBeat = now;
          continue;
        }
        if (!net::isResponseType(f.type)) continue;
        net::ResponsePayload response;
        try {
          response = net::decodeResponsePayload(f.payload);
        } catch (const Error&) {
          poisoned = true;  // framed garbage: same as a torn stream
          break;
        }
        if (response.id != id) continue;  // stale; cannot be ours
        attempt.type = f.type;
        attempt.response = std::move(response);
        attempt.gotResponse = true;
        attempt.crashed = killSent;  // killed-but-answered still needs a reap
        return attempt;
      }
      if (status == net::FrameDecoder::Status::kError) poisoned = true;
      if (poisoned) {
        // Torn or poisoned stream (worker died mid-write, or is emitting
        // garbage): kill it and drain to EOF so the reap is clean.
        if (!killSent) ::kill(pid, SIGKILL);
        for (;;) {
          const ssize_t m = ::read(fd, buf, sizeof(buf));
          if (m < 0 && errno == EINTR) continue;
          if (m <= 0) break;
        }
        attempt.crashed = true;
        return attempt;
      }
    }
    if (!killSent) {
      if (config_.hardDeadlineMs > 0 &&
          now - start >= ms(config_.hardDeadlineMs)) {
        ::kill(pid, SIGKILL);
        killSent = true;
        killedAt = now;
        attempt.killedByDeadline = true;
      } else if (config_.heartbeatTimeoutMs > 0 &&
                 now - lastBeat >= ms(config_.heartbeatTimeoutMs)) {
        ::kill(pid, SIGKILL);
        killSent = true;
        killedAt = now;
        attempt.killedByHeartbeat = true;
      }
    } else if (now - killedAt >= ms(5000)) {
      attempt.crashed = true;  // EOF never arrived post-SIGKILL; move on
      return attempt;
    }
  }
}

std::string WorkerPool::handleCrash(int index, const std::string& line,
                                    bool wantAsm, Attempt* attempt) {
  Slot& slot = slots_[static_cast<size_t>(index)];
  const pid_t pid = slot.pid;
  const std::string notePath = slot.notePath;
  const std::string flightPath = slot.flightPath;

  int status = 0;
  if (pid > 0) {
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  attempt->exitStatus = status;

  std::string site;
  if (!notePath.empty()) {
    try {
      site = std::string(trim(readFile(notePath)));
    } catch (const std::exception&) {
    }
    ::unlink(notePath.c_str());
  }

  std::string reproDir;
  // A killed-but-answered worker delivered its response; that is a reap,
  // not a lost request — no bundle, no breaker strike.
  if (!attempt->gotResponse) {
    CrashCapture capture;
    capture.crashDir = config_.crashDir;
    capture.requestLine = line;
    capture.wantAsm = wantAsm;
    capture.exitStatus = status;
    capture.killedByDeadline =
        attempt->killedByDeadline || attempt->killedByHeartbeat;
    capture.failpointSite = site;
    capture.rssLimitBytes = config_.env.rssLimitBytes;
    capture.cpuLimitSeconds = config_.env.cpuLimitSeconds;
    capture.deadlineMs = config_.hardDeadlineMs;
    capture.flightRecordPath = flightPath;
    capture.sequence = crashSeq_.fetch_add(1, std::memory_order_relaxed);
    reproDir = writeCrashRepro(capture);
    if (config_.onCrash) {
      try {
        config_.onCrash();
      } catch (const std::exception&) {
        // The sweep hook must never turn a handled crash into a lost one.
      }
    }
    breakerRecordCrash(line);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    slot.pid = -1;
    slot.fd.reset();
    slot.dead = true;
    slot.busy = false;
    slot.backoffMs = slot.backoffMs == 0
                         ? config_.respawnBackoffMs
                         : std::min(slot.backoffMs * 2,
                                    config_.respawnBackoffMaxMs);
    slot.respawnAt = Clock::now() + ms(slot.backoffMs);
  }
  cv_.notify_all();

  {
    std::lock_guard<std::mutex> stats(statsMu_);
    ++stats_.crashes;
    if (attempt->killedByDeadline) ++stats_.deadlineKills;
    if (attempt->killedByHeartbeat) ++stats_.heartbeatKills;
    if (!reproDir.empty()) ++stats_.reproBundles;
  }
  return reproDir;
}

WorkerResult WorkerPool::execute(const std::string& line, bool wantAsm) {
  {
    std::lock_guard<std::mutex> stats(statsMu_);
    ++stats_.requests;
  }
  if (breakerOpenFor(line)) return serveBreaker(line, wantAsm);

  std::string lastRepro;
  int crashes = 0;
  int lastStatus = 0;
  for (int attemptNo = 0; attemptNo < 2; ++attemptNo) {
    const int index = acquireSlot();
    if (index < 0) {
      WorkerResult result;
      result.type = net::FrameType::kError;
      result.detail = shutdown_ ? "worker pool shut down"
                                : "no compile worker available";
      result.crashes = crashes;
      result.reproDir = lastRepro;
      return result;
    }
    Attempt attempt = runOnWorker(index, line, wantAsm,
                                  nextId_.fetch_add(1));
    if (attempt.crashed) {
      ++crashes;
      const std::string dir = handleCrash(index, line, wantAsm, &attempt);
      if (!dir.empty()) lastRepro = dir;
      lastStatus = attempt.exitStatus;
    } else {
      releaseSlot(index, true);
    }
    if (attempt.gotResponse) {
      breakerRecordSuccess(line);
      WorkerResult result;
      result.type = attempt.type;
      result.detail = attempt.response.detail;
      result.body = std::move(attempt.response.body);
      result.wallMicros = attempt.response.wallMicros;
      result.crashes = crashes;
      result.reproDir = lastRepro;
      if (crashes > 0) {
        result.detail += " crashed=" + std::to_string(crashes);
        std::lock_guard<std::mutex> stats(statsMu_);
        ++stats_.crashRetried;
      }
      return result;
    }
    // Crashed with no answer. If this line just tripped the breaker,
    // recovery serves it without feeding it another worker.
    if (attemptNo == 0 && breakerOpenFor(line)) {
      WorkerResult result = serveBreaker(line, wantAsm);
      result.crashes = crashes;
      result.reproDir = lastRepro;
      result.detail += " crashed=" + std::to_string(crashes);
      return result;
    }
  }

  {
    std::lock_guard<std::mutex> stats(statsMu_);
    ++stats_.crashFailed;
  }
  WorkerResult result;
  result.type = net::FrameType::kError;
  result.detail = "worker crashed twice serving this request (last: " +
                  describeExitStatus(lastStatus) + ") crashed=2";
  result.crashes = crashes;
  result.reproDir = lastRepro;
  return result;
}

bool WorkerPool::breakerOpenFor(const std::string& line) {
  std::lock_guard<std::mutex> lock(breakerMu_);
  const auto it = breaker_.find(line);
  if (it == breaker_.end() || !it->second.open) return false;
  const auto now = Clock::now();
  if (now - it->second.openedAt >
      std::chrono::duration<double>(config_.crashLoopWindowSeconds)) {
    // Window expired: half-open — forget the history and try a worker.
    breaker_.erase(it);
    return false;
  }
  return true;
}

void WorkerPool::breakerRecordCrash(const std::string& line) {
  bool opened = false;
  {
    std::lock_guard<std::mutex> lock(breakerMu_);
    Breach& breach = breaker_[line];
    const auto now = Clock::now();
    if (breach.count == 0 ||
        now - breach.windowStart >
            std::chrono::duration<double>(config_.crashLoopWindowSeconds)) {
      breach.count = 1;
      breach.windowStart = now;
    } else {
      ++breach.count;
    }
    if (!breach.open && breach.count >= config_.crashLoopK) {
      breach.open = true;
      breach.openedAt = now;
      opened = true;
    }
  }
  if (opened) {
    std::lock_guard<std::mutex> stats(statsMu_);
    ++stats_.breakerOpens;
  }
}

void WorkerPool::breakerRecordSuccess(const std::string& line) {
  std::lock_guard<std::mutex> lock(breakerMu_);
  breaker_.erase(line);
}

WorkerResult WorkerPool::serveBreaker(const std::string& line, bool wantAsm) {
  {
    std::lock_guard<std::mutex> stats(statsMu_);
    ++stats_.breakerServed;
  }
  WorkerResult result;
  result.breakerServed = true;
  if (!config_.breakerBaseline) {
    result.type = net::FrameType::kError;
    result.detail =
        "crash-loop breaker open: request repeatedly crashed workers";
    return result;
  }
  // In-process baseline compile: a deliberately different code path from
  // the covering flow that keeps killing workers, and the crash-class fail
  // points only exist on worker code paths, so this cannot take the
  // supervisor down.
  const WallTimer timer;
  const RequestParse parse = parseRequestLine(line, 0, config_.env.defaults);
  if (!parse.ok()) {
    result.type = net::FrameType::kError;
    result.detail = parse.diagnostic.message;
    return result;
  }
  ParsedRequest request = *parse.request;
  request.options.engine = Engine::kBaseline;
  RequestExecConfig exec;
  exec.wantAsm = wantAsm;
  exec.retries = config_.env.transientRetries;
  TelemetryNode tel("breaker");
  const RequestOutcome outcome = executeRequest(request, exec, tel);
  result.wallMicros = static_cast<uint64_t>(timer.seconds() * 1e6);
  if (!outcome.ok) {
    result.type = net::FrameType::kError;
    result.detail = outcome.error;
    return result;
  }
  result.type = net::FrameType::kDegraded;
  result.detail = outcome.statusDetail + " breaker=baseline";
  result.body = outcome.asmText;
  return result;
}

PoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(statsMu_);
  return stats_;
}

int WorkerPool::aliveWorkers() const {
  std::lock_guard<std::mutex> lock(mu_);
  int alive = 0;
  for (const Slot& slot : slots_)
    if (!slot.dead && slot.pid > 0) ++alive;
  return alive;
}

}  // namespace aviv::proc
