#include "driver/codegen.h"

#include "sim/simulator.h"
#include "support/error.h"

namespace aviv {

int CompiledProgram::totalInstructions() const {
  int total = 0;
  for (const CompiledBlock& block : blocks) total += block.numInstructions();
  for (const ControlInstr& ci : control)
    total += ci.kind == TermKind::kReturn ? 0 : 1;
  return total;
}

CodeGenerator::CodeGenerator(Machine machine, DriverOptions options)
    : machine_(std::move(machine)), dbs_(machine_), options_(std::move(options)) {
  machine_.validate();
}

CompiledBlock CodeGenerator::compileBlockWith(
    const BlockDag& ir, SymbolTable& symbols,
    const CodegenOptions& coreOptions) {
  CoreResult core = [&] {
    try {
      return coverBlock(ir, machine_, dbs_, coreOptions);
    } catch (const Error&) {
      if (coreOptions.outputsToMemory || !options_.outputsToMemoryFallback)
        throw;
      CodegenOptions retry = coreOptions;
      retry.outputsToMemory = true;
      return coverBlock(ir, machine_, dbs_, retry);
    }
  }();
  CompiledBlock block{std::move(core),
                      RegAssignment{},
                      PeepholeStats{},
                      CodeImage{}};
  block.regs = allocateRegisters(block.core.graph, block.core.schedule);
  if (options_.runPeephole) {
    peepholeOptimize(block.core.graph, block.core.schedule, dbs_.constraints,
                     &block.peephole);
    block.regs = allocateRegisters(block.core.graph, block.core.schedule);
  }
  block.image =
      encodeBlock(block.core.graph, block.core.schedule, block.regs, symbols);
  return block;
}

CompiledBlock CodeGenerator::compileBlock(const BlockDag& ir) {
  return compileBlockWith(ir, ownSymbols_, options_.core);
}

CompiledBlock CodeGenerator::compileBlock(const BlockDag& ir,
                                          SymbolTable& symbols) {
  return compileBlockWith(ir, symbols, options_.core);
}

CompiledProgram CodeGenerator::compileProgram(const Program& program) {
  program.validate();
  CompiledProgram compiled;
  CodegenOptions coreOptions = options_.core;
  coreOptions.outputsToMemory = true;

  for (size_t i = 0; i < program.numBlocks(); ++i) {
    compiled.blocks.push_back(
        compileBlockWith(program.block(i), compiled.symbols, coreOptions));
  }
  // Cover the control-flow terminators (one trivial pattern each).
  for (size_t i = 0; i < program.numBlocks(); ++i) {
    const Terminator& term = program.terminator(i);
    ControlInstr ci;
    ci.kind = term.kind;
    switch (term.kind) {
      case TermKind::kReturn:
        break;
      case TermKind::kJump:
        ci.targetBlock = static_cast<int>(program.blockIndex(term.target));
        break;
      case TermKind::kBranch:
        ci.targetBlock = static_cast<int>(program.blockIndex(term.target));
        ci.elseBlock = static_cast<int>(program.blockIndex(term.elseTarget));
        ci.condAddr = compiled.symbols.lookup(term.condVar);
        break;
    }
    compiled.control.push_back(ci);
  }
  return compiled;
}

std::map<std::string, int64_t> simulateProgram(
    const Machine& machine, const CompiledProgram& compiled,
    const std::map<std::string, int64_t>& inputs, size_t maxBlockExecutions,
    size_t* totalCycles) {
  Simulator sim(machine);
  MachineState state = sim.initialState();
  sim.writeVars(state, compiled.symbols, inputs);
  for (const CompiledBlock& block : compiled.blocks)
    sim.loadConstPool(state, block.image);

  size_t blockIdx = 0;
  for (size_t step = 0; step < maxBlockExecutions; ++step) {
    AVIV_CHECK(blockIdx < compiled.blocks.size());
    (void)sim.runBlock(compiled.blocks[blockIdx].image, state, totalCycles);
    const ControlInstr& ci = compiled.control[blockIdx];
    if (totalCycles != nullptr && ci.kind != TermKind::kReturn)
      ++*totalCycles;
    switch (ci.kind) {
      case TermKind::kReturn: {
        std::map<std::string, int64_t> result;
        for (const auto& [name, addr] : compiled.symbols.all())
          result[name] = state.mem[static_cast<size_t>(addr)];
        return result;
      }
      case TermKind::kJump:
        blockIdx = static_cast<size_t>(ci.targetBlock);
        break;
      case TermKind::kBranch: {
        const int64_t cond = state.mem[static_cast<size_t>(ci.condAddr)];
        blockIdx = static_cast<size_t>(cond != 0 ? ci.targetBlock
                                                 : ci.elseBlock);
        break;
      }
    }
  }
  throw Error("program exceeded " + std::to_string(maxBlockExecutions) +
              " block executions in simulation");
}

}  // namespace aviv
