#include "driver/codegen.h"

#include <filesystem>
#include <optional>

#include "baseline/sequential.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/cache.h"
#include "service/fingerprint.h"
#include "sim/simulator.h"
#include "support/deadline.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "verify/quarantine.h"
#include "verify/verify.h"

namespace aviv {

namespace {

// Flight-recorder dump for the failure paths: writes the retained tail of
// the trace next to the quarantine artifacts so the events leading up to an
// InternalError or verification failure survive the degradation. Best
// effort, like quarantine itself — returns silently when tracing is off,
// no directory is configured, or the write fails.
void dumpFlightRecord(const std::string& dir, const std::string& tag) {
  if (dir.empty() || !trace::on()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;
  std::string name = tag;
  for (char& c : name)
    if (c == '/' || c == '\\' || c == ':') c = '_';
  (void)trace::Tracer::instance().writeFlightRecord(
      (std::filesystem::path(dir) / (name + ".flight.json")).string());
}

// The sequential baseline with the driver's outputs-to-memory retry: the
// shared engine body behind both the degradation ladder's last rung and the
// first-class baseline engine (DriverOptions::engine == Engine::kBaseline).
CoreResult runSequentialBaseline(const BlockDag& ir, const Machine& machine,
                                 const MachineDatabases& dbs,
                                 const CodegenOptions& options,
                                 bool outputsToMemoryFallback) {
  BaselineResult base = [&] {
    try {
      return sequentialCodegen(ir, machine, dbs, options);
    } catch (const Error&) {
      if (options.outputsToMemory || !outputsToMemoryFallback) throw;
      CodegenOptions retry = options;
      retry.outputsToMemory = true;
      return sequentialCodegen(ir, machine, dbs, retry);
    }
  }();
  CoreResult core{std::move(base.assignment), std::move(base.graph),
                  std::move(base.schedule), {}};
  core.stats.irNodes = ir.size();
  core.stats.cover.spillsInserted = base.spillsInserted;
  return core;
}

}  // namespace

int CompiledProgram::totalInstructions() const {
  int total = 0;
  for (const CompiledBlock& block : blocks) total += block.numInstructions();
  for (const ControlInstr& ci : control)
    total += ci.kind == TermKind::kReturn ? 0 : 1;
  return total;
}

CodeGenerator::CodeGenerator(Machine machine, DriverOptions options)
    : options_(std::move(options)),
      ctx_(std::move(machine), options_.core, options_.seed) {
  // Fingerprint the machine once per session, before any parallel region,
  // so concurrent block compiles read the memo lock-free.
  if (options_.cache != nullptr)
    ctx_.setMachineFingerprint(fingerprintMachine(ctx_.machine()));
}

// The per-block overflow check encodeBlock performs for direct scopes;
// cache-hydrated images need it re-run against the consumer's table.
static void checkDataMemoryFits(const CodeImage& image,
                                const SymbolScope& symbols,
                                const Machine& machine) {
  if (symbols.deferred() || symbols.sizeWords() <= image.spillBase) return;
  throw Error("data memory of machine '" + machine.name() +
              "' too small: " + std::to_string(symbols.sizeWords()) +
              " variable words overlap " +
              std::to_string(image.numSpillSlots) + " spill slots");
}

// Degradation ladder, last rung: produce the block with the sequential
// baseline generator after the covering flow failed for reason `why`
// (deadline expiry or a recoverable internal error). Mirrors the driver's
// outputs-to-memory retry so the fallback succeeds wherever the baseline
// benches do. Throws Error when the baseline cannot compile it either —
// the block is then genuinely uncompilable on this machine.
CoreResult CodeGenerator::baselineCore(const BlockDag& ir,
                                       const CodegenOptions& coreOptions,
                                       TelemetryNode& tel,
                                       const std::string& why) {
  PhaseScope ph(tel, "baseline-fallback");
  // The baseline also builds the Split-Node DAG, so when the covering flow
  // fell here because a resource ceiling tripped, the same ceiling would
  // trip again. Lift the ceilings for the fallback: the baseline walks the
  // SND sequentially without clique enumeration, so its footprint is the
  // part the ceilings exist to protect against, not the part that blows up.
  CodegenOptions baseOptions = coreOptions;
  baseOptions.maxSndNodes = 0;
  baseOptions.maxSndBytes = 0;
  baseOptions.maxTotalCliques = 0;
  CoreResult core = [&] {
    try {
      return runSequentialBaseline(ir, ctx_.machine(), ctx_.databases(),
                                   baseOptions,
                                   options_.outputsToMemoryFallback);
    } catch (const Error& e) {
      throw Error(why + "; baseline fallback also failed: " + e.what());
    }
  }();
  tel.setCounter("degraded", 1);
  return core;
}

CompiledBlock CodeGenerator::compileBlockWith(
    const BlockDag& ir, SymbolScope& symbols,
    const CodegenOptions& coreOptions, TelemetryNode& tel) {
  trace::Span compileSpan("driver", "compile:", ir.name());
  // The baseline engine's output is not the covering flow's: it must never
  // populate (or be served from) the shared result cache.
  ResultCache* cache = options_.engine == Engine::kBaseline
                           ? nullptr
                           : options_.cache.get();
  const bool verifyThis = shouldVerifyBlock(options_.verify, ir.name());

  // One differential verification, counted under the block's "verify"
  // phase. The image is checked in scope-independent form (names = its
  // first-use-order symbol list), so cached entries and fresh recordings
  // go through the identical path.
  auto runVerify = [&](const CodeImage& image,
                       const std::vector<std::string>& names) {
    PhaseScope ph(tel, "verify");
    const VerifyReport report =
        verifyCompiledBlock(ctx_.machine(), ir, image, names, options_.verify);
    ph.node().addCounter("blocksChecked", 1);
    ph.node().addCounter("vectorsRun", report.vectorsRun);
    if (!report.passed) ph.node().addCounter("verifyFailures", 1);
    return report;
  };
  auto quarantine = [&](const CodeImage& image,
                        const std::vector<std::string>& names,
                        const VerifyReport& report) {
    trace::instant("driver", "quarantine:", ir.name());
    if (metrics::on())
      metrics::Registry::instance().counter("driver.quarantined").add(1);
    const std::string artifactDir = writeQuarantineArtifact(
        options_.verify.quarantineDir, ctx_.machine(), ir, image, names,
        options_.verify, report);
    // The flight record lands inside the artifact bundle when one was
    // written, next to the configured quarantine dir otherwise.
    dumpFlightRecord(
        artifactDir.empty() ? options_.verify.quarantineDir : artifactDir,
        "verify-" + ctx_.machine().name() + "-" + ir.name());
  };

  Hash128 cacheKey;
  if (cache != nullptr) {
    // Verifying sessions live in their own key space (salted with the
    // verifier version): entries produced with verification off are never
    // mistaken for checked ones, and a verifier bump forces a recompile.
    const uint32_t verifierSalt = options_.verify.level == VerifyLevel::kOff
                                      ? 0
                                      : options_.verify.verifierVersion;
    cacheKey = compileFingerprint(ctx_, ir, coreOptions, options_.runPeephole,
                                  options_.outputsToMemoryFallback,
                                  verifierSalt);
    if (const auto entry = cache->lookup(cacheKey)) {
      // A warm hit whose entry carries a current verified bit skips the
      // simulator entirely; an unverified or stale-verifier entry is
      // re-checked once and upgraded in place so the next hit is free.
      bool usable = true;
      if (verifyThis &&
          !(entry->verified &&
            entry->verifierVersion == options_.verify.verifierVersion)) {
        const VerifyReport report =
            runVerify(entry->image, entry->symbolNames);
        if (report.passed) {
          CacheEntry upgraded = *entry;
          upgraded.verified = true;
          upgraded.verifierVersion = options_.verify.verifierVersion;
          cache->store(cacheKey, std::move(upgraded));
        } else {
          // A cached miscompile. Quarantine it and fall through to a cold
          // compile, which verifies before anything is trusted or stored.
          quarantine(entry->image, entry->symbolNames, report);
          usable = false;
        }
      }
      if (usable) {
        // Hydrate: replay the scope-independent image into the consumer's
        // symbol scope. No covering/regalloc/encode work happens, so with
        // verification off the block's telemetry subtree stays free of
        // pipeline phases — the acceptance check for "zero covering work".
        CompiledBlock block;
        block.image = entry->image;
        rebindSymbols(block.image, entry->symbolNames, symbols);
        checkDataMemoryFits(block.image, symbols, ctx_.machine());
        block.fromCache = true;
        block.cachedStatsJson = entry->statsJson;
        if (options_.recordSymbolNames) {
          block.symbolNames = entry->symbolNames;
          block.portableImage = entry->image;
        }
        tel.addCounter("cacheHits", 1);
        trace::instant("driver", "cache.hit:", ir.name());
        if (metrics::on())
          metrics::Registry::instance().counter("driver.cacheHits").add(1);
        return block;
      }
    }
    trace::instant("driver", "cache.miss:", ir.name());
    if (metrics::on())
      metrics::Registry::instance().counter("driver.cacheMisses").add(1);
  }
  CompiledBlock block;
  // Rung 1: the full covering flow, with the existing outputs-to-memory
  // retry. DeadlineExceeded / InternalError / ResourceLimitExceeded must
  // not trigger that retry — re-running the covering flow cannot help (the
  // budget stays spent, the invariant stays tripped, the same Split-Node
  // DAG blows the same ceiling); they fall through to the baseline rung.
  auto coverWithRetry = [&]() -> CoreResult {
    try {
      return coverBlock(ir, ctx_.machine(), ctx_.databases(), coreOptions,
                        ctx_.pool(), &tel, &ctx_.deadline());
    } catch (const DeadlineExceeded&) {
      throw;
    } catch (const InternalError&) {
      throw;
    } catch (const ResourceLimitExceeded&) {
      throw;
    } catch (const Error&) {
      if (coreOptions.outputsToMemory || !options_.outputsToMemoryFallback)
        throw;
      CodegenOptions retry = coreOptions;
      retry.outputsToMemory = true;
      tel.addCounter("outputsToMemoryRetries", 1);
      return coverBlock(ir, ctx_.machine(), ctx_.databases(), retry,
                        ctx_.pool(), &tel, &ctx_.deadline());
    }
  };
  auto noteDegraded = [&](const char* reason) {
    block.degraded = true;
    trace::instant("driver", "degraded:", ir.name());
    trace::instant("driver", "degraded.reason:", reason);
    if (metrics::on())
      metrics::Registry::instance().counter("driver.degraded").add(1);
  };
  CoreResult core = [&] {
    if (options_.engine == Engine::kBaseline) {
      // First-class baseline engine: the sequential generator IS rung 1.
      // Ceilings stay as configured (a trip is a recoverable rejection, not
      // a reason to fall anywhere — there is no rung below this one).
      PhaseScope ph(tel, "baseline");
      return runSequentialBaseline(ir, ctx_.machine(), ctx_.databases(),
                                   coreOptions,
                                   options_.outputsToMemoryFallback);
    }
    if (!options_.baselineFallback) return coverWithRetry();
    try {
      return coverWithRetry();
    } catch (const DeadlineExceeded& e) {
      noteDegraded("deadline");
      return baselineCore(ir, coreOptions, tel, e.what());
    } catch (const InternalError& e) {
      // The flight recorder exists for exactly this moment: dump the event
      // tail before the baseline fallback overwrites it with its own work.
      dumpFlightRecord(options_.verify.quarantineDir,
                       "internal-" + ctx_.machine().name() + "-" + ir.name());
      noteDegraded("internal-error");
      return baselineCore(ir, coreOptions, tel, e.what());
    } catch (const ResourceLimitExceeded& e) {
      noteDegraded("resource-limit");
      return baselineCore(ir, coreOptions, tel, e.what());
    }
  }();
  block.core = std::move(core);
  auto finishCore = [&] {
    if (options_.runPeephole) {
      // Peephole reads only the graph and schedule, never a register
      // assignment, so the allocation that used to run before it was pure
      // throwaway work — run the single authoritative allocation after.
      PhaseScope ph(tel, "peephole");
      peepholeOptimize(block.core.graph, block.core.schedule,
                       ctx_.databases().constraints, &block.peephole);
      recordPeepholeStats(block.peephole, ph.node());
      tel.child("regalloc").addCounter("passesSaved", 1);
    }
    {
      PhaseScope ph(tel, "regalloc");
      block.regs = allocateRegisters(block.core.graph, block.core.schedule);
      recordRegAllocStats(block.regs, ph.node());
    }
  };
  finishCore();
  // Degraded or timed-out results are NOT cacheable: their quality depends
  // on wall-clock luck, and a cache hit must replay the covering flow's
  // deterministic output, not whatever a starved run managed to produce.
  const bool wantCache =
      cache != nullptr && !block.degraded && !block.core.stats.timedOut;
  if (!wantCache && !verifyThis && !options_.recordSymbolNames) {
    PhaseScope ph(tel, "encode");
    block.image =
        encodeBlock(block.core.graph, block.core.schedule, block.regs, symbols);
    ph.node().setCounter("instructions", block.image.numInstructions());
    if (cache != nullptr) tel.addCounter("cacheMisses", 1);
    return block;
  }
  // Encode against a private deferred scope so the stored/verified image is
  // scope-independent, then replay it into the consumer's scope exactly
  // as a hit would. The entry's stats are serialized BEFORE the cache
  // counters land on `tel`, so they match a cache-less compile verbatim.
  SymbolScope recording;
  auto encodeRecording = [&] {
    SymbolScope fresh;
    {
      PhaseScope ph(tel, "encode");
      block.image = encodeBlock(block.core.graph, block.core.schedule,
                                block.regs, fresh);
      ph.node().setCounter("instructions", block.image.numInstructions());
    }
    recording = std::move(fresh);
  };
  encodeRecording();
  if (verifyThis) {
    // Fault-injection site: corrupt the encoded image BEFORE the first
    // verification, so a quarantined artifact carries — and deterministically
    // reproduces — the exact image the verifier rejected.
    if (FailPoints::instance().shouldFail("verify-corrupt-asm"))
      (void)corruptImageForTesting(block.image);
    VerifyReport report = runVerify(block.image, recording.recorded());
    if (!report.passed) {
      quarantine(block.image, recording.recorded(), report);
      block.quarantined = true;
      if (block.degraded || !options_.baselineFallback ||
          options_.engine == Engine::kBaseline)
        throw Error("verification failed for block '" + ir.name() + "': " +
                    report.detail());
      // Degradation ladder: replace the miscompiled covering result with
      // the sequential baseline, and verify THAT before emitting anything.
      block.degraded = true;
      block.core = baselineCore(ir, coreOptions, tel,
                                "verification failed: " + report.detail());
      block.peephole = {};
      finishCore();
      encodeRecording();
      report = runVerify(block.image, recording.recorded());
      if (!report.passed)
        throw Error("verification failed for block '" + ir.name() +
                    "' and for its baseline fallback: " + report.detail());
    }
  }
  // A quarantined block is degraded, hence uncacheable — an unverifiable
  // result must never become a warm hit.
  if (wantCache && !block.quarantined) {
    CacheEntry entry;
    entry.blockName = ir.name();
    entry.machineName = ctx_.machine().name();
    entry.symbolNames = recording.recorded();
    entry.statsJson = tel.toJson();
    entry.verified = verifyThis;
    entry.verifierVersion = verifyThis ? options_.verify.verifierVersion : 0;
    entry.image = block.image;
    cache->store(cacheKey, std::move(entry));
  }
  if (options_.recordSymbolNames) {
    block.symbolNames = recording.recorded();
    block.portableImage = block.image;
  }
  rebindSymbols(block.image, recording.recorded(), symbols);
  checkDataMemoryFits(block.image, symbols, ctx_.machine());
  if (cache != nullptr) tel.addCounter("cacheMisses", 1);
  return block;
}

CompiledBlock CodeGenerator::compileBlock(const BlockDag& ir) {
  return compileBlock(ir, ownSymbols_);
}

CompiledBlock CodeGenerator::compileBlock(const BlockDag& ir,
                                          SymbolTable& symbols) {
  // Each compile entry gets a fresh budget: the session deadline's clock
  // starts now, not at generator construction.
  ctx_.deadline().arm(options_.core.timeLimitSeconds);
  SymbolScope scope(symbols);
  CompiledBlock block =
      compileBlockWith(ir, scope, options_.core,
                       ctx_.telemetry().child("block:" + ir.name()));
  recordServiceTelemetry();
  return block;
}

// Publishes the shared cache's counter totals as the session's "service"
// phase. Totals, not deltas: safe to re-record after every compile, and
// meaningful even when several generators share one cache (avivd).
void CodeGenerator::recordServiceTelemetry() {
  if (options_.cache == nullptr) return;
  recordServiceStats(options_.cache->stats(),
                     ctx_.telemetry().child("service"));
}

CompiledProgram CodeGenerator::compileProgram(const Program& program) {
  program.validate();
  // One budget for the whole program compile (blocks share the session
  // deadline, so a parallel fan-out races the same clock the serial loop
  // would).
  ctx_.deadline().arm(options_.core.timeLimitSeconds);
  CompiledProgram compiled;
  CodegenOptions coreOptions = options_.core;
  coreOptions.outputsToMemory = true;

  const size_t numBlocks = program.numBlocks();
  // Pre-create one telemetry subtree per block: TelemetryNode is not
  // thread-safe, but disjoint subtrees created before the fan-out are.
  TelemetryNode& programTel =
      ctx_.telemetry().child("program:" + program.name());
  std::vector<TelemetryNode*> blockTel;
  blockTel.reserve(numBlocks);
  for (size_t i = 0; i < numBlocks; ++i)
    blockTel.push_back(&programTel.child("block:" + program.block(i).name()));

  // Compile independent blocks in parallel, each encoding against a private
  // deferred symbol scope; the scopes are then merged in block order, which
  // reproduces the exact address assignment of the serial shared-table run.
  std::vector<SymbolScope> scopes(numBlocks);
  std::vector<std::optional<CompiledBlock>> slots(numBlocks);
  auto compileOne = [&](size_t i, int) {
    slots[i].emplace(compileBlockWith(program.block(i), scopes[i], coreOptions,
                                      *blockTel[i]));
  };
  ThreadPool* pool = ctx_.pool();
  if (pool != nullptr && coreOptions.jobs > 1 && numBlocks > 1) {
    PhaseScope ph(programTel, "parallel-blocks");
    ph.node().setCounter("blocks", static_cast<int64_t>(numBlocks));
    ph.node().setCounter("jobs", pool->parallelism());
    pool->parallelFor(numBlocks, compileOne);
  } else {
    for (size_t i = 0; i < numBlocks; ++i) compileOne(i, 0);
  }

  for (size_t i = 0; i < numBlocks; ++i) {
    CompiledBlock& block = *slots[i];
    resolveSymbols(block.image, scopes[i], compiled.symbols);
    // The data-memory overflow check encodeBlock defers for private scopes:
    // merged variables must stay below this block's spill slots.
    if (compiled.symbols.sizeWords() > block.image.spillBase)
      throw Error("data memory of machine '" + ctx_.machine().name() +
                  "' too small: " +
                  std::to_string(compiled.symbols.sizeWords()) +
                  " variable words overlap " +
                  std::to_string(block.image.numSpillSlots) + " spill slots");
    compiled.blocks.push_back(std::move(block));
  }
  // Cover the control-flow terminators (one trivial pattern each).
  for (size_t i = 0; i < numBlocks; ++i) {
    const Terminator& term = program.terminator(i);
    ControlInstr ci;
    ci.kind = term.kind;
    switch (term.kind) {
      case TermKind::kReturn:
        break;
      case TermKind::kJump:
        ci.targetBlock = static_cast<int>(program.blockIndex(term.target));
        break;
      case TermKind::kBranch:
        ci.targetBlock = static_cast<int>(program.blockIndex(term.target));
        ci.elseBlock = static_cast<int>(program.blockIndex(term.elseTarget));
        ci.condAddr = compiled.symbols.lookup(term.condVar);
        break;
    }
    compiled.control.push_back(ci);
  }
  recordServiceTelemetry();
  return compiled;
}

std::map<std::string, int64_t> simulateProgram(
    const Machine& machine, const CompiledProgram& compiled,
    const std::map<std::string, int64_t>& inputs, size_t maxBlockExecutions,
    size_t* totalCycles) {
  Simulator sim(machine);
  MachineState state = sim.initialState();
  sim.writeVars(state, compiled.symbols, inputs);
  for (const CompiledBlock& block : compiled.blocks)
    sim.loadConstPool(state, block.image);

  size_t blockIdx = 0;
  for (size_t step = 0; step < maxBlockExecutions; ++step) {
    AVIV_CHECK(blockIdx < compiled.blocks.size());
    (void)sim.runBlock(compiled.blocks[blockIdx].image, state, totalCycles);
    const ControlInstr& ci = compiled.control[blockIdx];
    if (totalCycles != nullptr && ci.kind != TermKind::kReturn)
      ++*totalCycles;
    switch (ci.kind) {
      case TermKind::kReturn: {
        std::map<std::string, int64_t> result;
        for (const auto& [name, addr] : compiled.symbols.all())
          result[name] = state.mem[static_cast<size_t>(addr)];
        return result;
      }
      case TermKind::kJump:
        blockIdx = static_cast<size_t>(ci.targetBlock);
        break;
      case TermKind::kBranch: {
        const int64_t cond = state.mem[static_cast<size_t>(ci.condAddr)];
        blockIdx = static_cast<size_t>(cond != 0 ? ci.targetBlock
                                                 : ci.elseBlock);
        break;
      }
    }
  }
  throw Error("program exceeded " + std::to_string(maxBlockExecutions) +
              " block executions in simulation");
}

}  // namespace aviv
