// CodeGenerator — the public entry point of the AVIV library: the full
// back-end pipeline of paper Fig 1 / Fig 5.
//
//   BlockDag --(Split-Node DAG, assignment exploration, transfer insertion,
//   maximal-clique covering with loads/spills)--> schedule
//           --(Chaitin register allocation)--> registers
//           --(peephole: dead spill-code removal + compaction)--> final code
//           --(encoding)--> CodeImage (assembly text + simulator input)
//
// Programs (multiple blocks + control flow, Section III-C) compile each
// block with outputs stored to data memory and cover the control-flow
// terminators with trivial jump/branch patterns.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "asmgen/encode.h"
#include "core/codegen.h"
#include "core/context.h"
#include "ir/program.h"
#include "regalloc/peephole.h"
#include "regalloc/regalloc.h"
#include "verify/verify.h"

namespace aviv {

class ResultCache;  // src/service/cache.h

// Which code-generation engine the driver runs as rung 1. The heuristic
// engine is the paper's covering flow; the baseline engine is the
// phase-ordered sequential generator (src/baseline) promoted from fallback
// rung to first-class engine so differential harnesses (src/fuzz) can
// compile the same input on both and compare.
enum class Engine : uint8_t {
  kHeuristic,  // split-node assignment exploration + clique covering
  kBaseline,   // sequential selection -> list scheduling -> spills
};

struct DriverOptions {
  CodegenOptions core;
  // Engine selection. kBaseline bypasses the result cache entirely (its
  // output is not the covering flow's, so it must never be mistaken for a
  // cacheable covering result) and has no further degradation rung: a
  // verification failure throws instead of falling back.
  Engine engine = Engine::kHeuristic;
  bool runPeephole = true;
  // When a block's outputs cannot all stay register-resident within the
  // register limits (e.g. two outputs pinned to one tiny bank), retry with
  // outputs stored back to data memory instead of failing.
  bool outputsToMemoryFallback = true;
  // Last rung of the degradation ladder: when the covering flow runs out of
  // deadline budget before producing any schedule (DeadlineExceeded) or
  // trips a recoverable internal invariant (InternalError), fall back to
  // the sequential baseline generator (src/baseline) instead of failing the
  // compile. The result is valid, simulatable code of lower quality;
  // CompiledBlock::degraded records the quality loss and such results are
  // never stored in the cache. False restores throw-on-failure semantics.
  bool baselineFallback = true;
  // Seed recorded in the pipeline session (CodegenContext) so randomized
  // tooling layered on top of a session stays reproducible.
  uint64_t seed = CodegenContext::kDefaultSeed;
  // Compile-result cache (src/service). When set, every block compile is
  // looked up by canonical fingerprint before any covering work runs, and
  // stored after a miss. The cache may be shared across generators (the
  // avivd daemon shares one); its counters surface as the session's
  // "service" telemetry phase. Null disables caching.
  std::shared_ptr<ResultCache> cache;
  // Differential output verification (src/verify, DESIGN.md §6.5): replay
  // compiled blocks on the simulator against the reference interpreter
  // before trusting them. A mismatch quarantines a repro artifact, counts
  // into the block's "verify" phase, and degrades to the (re-verified)
  // baseline generator; unverifiable results are never cached. The
  // verifier version salts the cache fingerprint, so verifying sessions
  // never share keys with non-verifying ones and a verifier bump forces
  // fresh compiles. Level kOff preserves pre-verification behaviour.
  VerifyOptions verify;
  // Record the image's first-use-order symbol list into
  // CompiledBlock::symbolNames (forcing the scope-independent recording
  // encode even when neither cache nor verification needs it). External
  // verification harnesses need the list to rebind the image into a
  // private scope (verifyCompiledBlock / writeQuarantineArtifact).
  bool recordSymbolNames = false;
};

struct CompiledBlock {
  CoreResult core;  // winning assignment, graph (post-peephole), schedule
  RegAssignment regs;
  PeepholeStats peephole;
  CodeImage image;
  // True when this block was hydrated from the result cache. core/regs/
  // peephole are then default-constructed (no covering artifacts exist);
  // the image carries everything downstream consumers (asm text, binary
  // assembler, simulator) need.
  bool fromCache = false;
  // Phase-telemetry JSON of the compile that produced the cached entry
  // (what the hit saved); empty for cold compiles.
  std::string cachedStatsJson;
  // True when the AVIV covering flow failed (deadline expiry or recoverable
  // internal error) and this block was produced by the sequential baseline
  // instead (DriverOptions::baselineFallback). The image is valid but its
  // quality is not the covering flow's; degraded results bypass the cache.
  bool degraded = false;
  // True when differential verification caught this block's covering-flow
  // output disagreeing with the reference interpreter. The image is the
  // verified baseline replacement (degraded is also set); a repro artifact
  // was quarantined if a quarantine dir is configured. Never cached.
  bool quarantined = false;
  // Scope-independent form of the compile, recorded only under
  // DriverOptions::recordSymbolNames: `portableImage` carries provisional
  // symbol ordinals whose i-th entry names symbolNames[i] (the cache-entry
  // shape). Feed the pair to verifyCompiledBlock / writeQuarantineArtifact;
  // `image` itself is already rebound into the consumer's scope.
  std::vector<std::string> symbolNames;
  CodeImage portableImage;

  [[nodiscard]] int numInstructions() const {
    return image.numInstructions();
  }
};

// Control-flow instruction covering a block terminator (Section III-C's
// "conventional tree-covering" step — each terminator kind is one pattern).
struct ControlInstr {
  TermKind kind = TermKind::kReturn;
  int targetBlock = -1;   // kJump / kBranch taken side
  int elseBlock = -1;     // kBranch fall-through side
  int condAddr = -1;      // kBranch: data-memory address of the condition
};

struct CompiledProgram {
  std::vector<CompiledBlock> blocks;
  std::vector<ControlInstr> control;  // one per block
  SymbolTable symbols;

  // Block-body instructions plus one control instruction per non-return
  // terminator (the code-size figure a ROM would hold).
  [[nodiscard]] int totalInstructions() const;
};

class CodeGenerator {
 public:
  // The generator owns the pipeline session (CodegenContext): a copy of the
  // machine, the derived databases, the phase-telemetry tree and the thread
  // pool, so temporaries (e.g. loadMachine(...)) are safe to pass. Compiled
  // results reference the session's machine: the generator must outlive
  // them. With options.core.jobs > 1, coverBlock covers its candidate
  // assignments in parallel and compileProgram compiles independent blocks
  // in parallel; both are bit-identical to the serial run.
  explicit CodeGenerator(Machine machine, DriverOptions options = {});

  // Compiles one standalone block. The returned structure references
  // `ir` and this generator's machine; both must outlive it.
  [[nodiscard]] CompiledBlock compileBlock(const BlockDag& ir);
  [[nodiscard]] CompiledBlock compileBlock(const BlockDag& ir,
                                           SymbolTable& symbols);

  // Compiles a whole program; forces outputs-to-memory so inter-block
  // dataflow works. `program` must outlive the result.
  [[nodiscard]] CompiledProgram compileProgram(const Program& program);

  [[nodiscard]] const Machine& machine() const { return ctx_.machine(); }
  [[nodiscard]] const MachineDatabases& databases() const {
    return ctx_.databases();
  }
  [[nodiscard]] const DriverOptions& options() const { return options_; }

  // The pipeline session and its phase-telemetry tree (one subtree per
  // compiled block / program; serialize with telemetry().toJson()).
  [[nodiscard]] CodegenContext& context() { return ctx_; }
  [[nodiscard]] const TelemetryNode& telemetry() const {
    return ctx_.telemetry();
  }

 private:
  CompiledBlock compileBlockWith(const BlockDag& ir, SymbolScope& symbols,
                                 const CodegenOptions& coreOptions,
                                 TelemetryNode& tel);
  CoreResult baselineCore(const BlockDag& ir,
                          const CodegenOptions& coreOptions,
                          TelemetryNode& tel, const std::string& why);
  void recordServiceTelemetry();

  DriverOptions options_;
  CodegenContext ctx_;
  SymbolTable ownSymbols_;
};

// Executes a compiled program on the instruction-level simulator: writes
// `inputs` into data memory, runs block bodies and control instructions
// until a return, and returns the final values of every symbol-table
// variable. Defined here (not in sim/) because it needs ControlInstr.
[[nodiscard]] std::map<std::string, int64_t> simulateProgram(
    const Machine& machine, const CompiledProgram& compiled,
    const std::map<std::string, int64_t>& inputs,
    size_t maxBlockExecutions = 10000, size_t* totalCycles = nullptr);

}  // namespace aviv
