// CodeGenerator — the public entry point of the AVIV library: the full
// back-end pipeline of paper Fig 1 / Fig 5.
//
//   BlockDag --(Split-Node DAG, assignment exploration, transfer insertion,
//   maximal-clique covering with loads/spills)--> schedule
//           --(Chaitin register allocation)--> registers
//           --(peephole: dead spill-code removal + compaction)--> final code
//           --(encoding)--> CodeImage (assembly text + simulator input)
//
// Programs (multiple blocks + control flow, Section III-C) compile each
// block with outputs stored to data memory and cover the control-flow
// terminators with trivial jump/branch patterns.
#pragma once

#include "asmgen/encode.h"
#include "core/codegen.h"
#include "ir/program.h"
#include "regalloc/peephole.h"
#include "regalloc/regalloc.h"

namespace aviv {

struct DriverOptions {
  CodegenOptions core;
  bool runPeephole = true;
  // When a block's outputs cannot all stay register-resident within the
  // register limits (e.g. two outputs pinned to one tiny bank), retry with
  // outputs stored back to data memory instead of failing.
  bool outputsToMemoryFallback = true;
};

struct CompiledBlock {
  CoreResult core;  // winning assignment, graph (post-peephole), schedule
  RegAssignment regs;
  PeepholeStats peephole;
  CodeImage image;

  [[nodiscard]] int numInstructions() const {
    return image.numInstructions();
  }
};

// Control-flow instruction covering a block terminator (Section III-C's
// "conventional tree-covering" step — each terminator kind is one pattern).
struct ControlInstr {
  TermKind kind = TermKind::kReturn;
  int targetBlock = -1;   // kJump / kBranch taken side
  int elseBlock = -1;     // kBranch fall-through side
  int condAddr = -1;      // kBranch: data-memory address of the condition
};

struct CompiledProgram {
  std::vector<CompiledBlock> blocks;
  std::vector<ControlInstr> control;  // one per block
  SymbolTable symbols;

  // Block-body instructions plus one control instruction per non-return
  // terminator (the code-size figure a ROM would hold).
  [[nodiscard]] int totalInstructions() const;
};

class CodeGenerator {
 public:
  // The generator owns a copy of the machine, so temporaries (e.g.
  // loadMachine(...)) are safe to pass. Compiled results reference the
  // generator's machine: the generator must outlive them.
  explicit CodeGenerator(Machine machine, DriverOptions options = {});

  // Compiles one standalone block. The returned structure references
  // `ir` and this generator's machine; both must outlive it.
  [[nodiscard]] CompiledBlock compileBlock(const BlockDag& ir);
  [[nodiscard]] CompiledBlock compileBlock(const BlockDag& ir,
                                           SymbolTable& symbols);

  // Compiles a whole program; forces outputs-to-memory so inter-block
  // dataflow works. `program` must outlive the result.
  [[nodiscard]] CompiledProgram compileProgram(const Program& program);

  [[nodiscard]] const Machine& machine() const { return machine_; }
  [[nodiscard]] const MachineDatabases& databases() const { return dbs_; }
  [[nodiscard]] const DriverOptions& options() const { return options_; }

 private:
  CompiledBlock compileBlockWith(const BlockDag& ir, SymbolTable& symbols,
                                 const CodegenOptions& coreOptions);

  Machine machine_;
  MachineDatabases dbs_;
  DriverOptions options_;
  SymbolTable ownSymbols_;
};

// Executes a compiled program on the instruction-level simulator: writes
// `inputs` into data memory, runs block bodies and control instructions
// until a return, and returns the final values of every symbol-table
// variable. Defined here (not in sim/) because it needs ControlInstr.
[[nodiscard]] std::map<std::string, int64_t> simulateProgram(
    const Machine& machine, const CompiledProgram& compiled,
    const std::map<std::string, int64_t>& inputs,
    size_t maxBlockExecutions = 10000, size_t* totalCycles = nullptr);

}  // namespace aviv
