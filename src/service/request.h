// Shared request-line grammar and dispatch for the avivd front ends. One
// request — "machine=arch1 block=ex1 timeout=0.5 ..." — describes a single
// compile against the session cache. The batch-file daemon and the socket
// server (src/net, DESIGN.md §6.7) both speak this grammar, so parsing and
// execution live here, once, behind a unit-testable API, instead of inside
// examples/avivd.cpp.
//
// Grammar (whitespace-separated tokens; '#' starts a comment):
//
//   machine=<name|path.isdl> block=<name|path.blk|path.c> [heuristics=on|off]
//   [const-pool] [outputs-mem] [no-peephole] [regs=N] [timeout=SEC]
//   [verify=off|sampled|all]
//
// parseRequestLine is pure: text in, ParsedRequest or a located Diagnostic
// out (1-based line from the caller, 1-based column of the offending
// token). executeRequest runs one parsed request to completion with
// per-request isolation: every failure mode — resolve, compile, injected
// fault — lands in RequestOutcome::error; nothing escapes to kill a warm
// daemon. Transient faults are retried with exponential backoff.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "driver/codegen.h"
#include "support/error.h"
#include "support/telemetry.h"

namespace aviv {

class ResultCache;  // src/service/cache.h

struct ParsedRequest {
  int line = 0;  // 1-based line number in the batch (0 = network request)
  std::string machineSpec;
  std::string blockSpec;
  int regsOverride = 0;  // > 0: resize every register file
  DriverOptions options;
};

// Per-session defaults a request line can override with its own tokens.
struct RequestDefaults {
  double timeoutSeconds = 0.0;  // covering budget; 0 = unlimited
  VerifyOptions verify;
};

// Outcome of parseRequestLine: exactly one of `request` (ok() == true) or
// `diagnostic` is meaningful. The diagnostic's SourceLoc carries the
// caller's 1-based line number and the 1-based column of the token that
// failed, so batch mode can report "request line 7: ..." and tests can
// assert locations directly.
struct RequestParse {
  std::shared_ptr<const ParsedRequest> request;
  Diagnostic diagnostic;

  [[nodiscard]] bool ok() const { return request != nullptr; }
};

[[nodiscard]] RequestParse parseRequestLine(std::string_view text, int line,
                                            const RequestDefaults& defaults);

struct RequestOutcome {
  bool ok = false;
  bool degraded = false;  // ok, but at least one block fell back to baseline
  // ok, but verification caught a miscompile in at least one block (the
  // result is the verified baseline; a repro artifact was quarantined).
  bool quarantined = false;
  std::string error;
  std::string statusDetail;  // "block=... machine=... blocks=N instrs=N cache=..."
  std::string asmText;       // filled when RequestExecConfig::wantAsm
  size_t blocks = 0;
  size_t cachedBlocks = 0;
  // Transient-fault retries this outcome consumed (0 = clean first try).
  // Nonzero retries also append a " retries=N" token to statusDetail so
  // batch status lines and the smoke scripts can tell a retried success
  // from a clean one (crash-retried requests additionally carry
  // " crashed=K", appended by the src/proc supervisor).
  int retries = 0;

  // True when every compiled block was served from the result cache.
  [[nodiscard]] bool allCached() const {
    return blocks > 0 && cachedBlocks == blocks;
  }
};

struct RequestExecConfig {
  std::shared_ptr<ResultCache> cache;  // null disables caching
  bool wantAsm = false;
  // Transient faults (failpoints, I/O hiccups) re-run the whole request up
  // to this many times with exponential backoff.
  int retries = 2;
};

// Runs one request start to finish; never throws. Telemetry from the
// compile merges into `tel` (callers hand each concurrent request a
// disjoint node — TelemetryNode is not thread-safe).
[[nodiscard]] RequestOutcome executeRequest(const ParsedRequest& request,
                                            const RequestExecConfig& config,
                                            TelemetryNode& tel);

}  // namespace aviv
