#include "service/request.h"

#include <cctype>
#include <chrono>
#include <thread>
#include <vector>

#include "frontend/minic.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "service/cache.h"
#include "support/failpoint.h"
#include "support/io.h"
#include "support/strings.h"

namespace aviv {

namespace {

Machine resolveMachine(const std::string& spec) {
  if (endsWith(spec, ".isdl")) return parseMachine(readFile(spec));
  return loadMachine(spec);
}

Program resolveProgram(const std::string& spec) {
  if (endsWith(spec, ".c")) return parseMiniC(readFile(spec)).program;
  if (endsWith(spec, ".blk")) return parseProgram(readFile(spec), spec);
  const std::string path = blockPath(spec);
  return parseProgram(readFile(path), path);
}

Machine materializeMachine(const ParsedRequest& request) {
  Machine machine = resolveMachine(request.machineSpec);
  if (request.regsOverride > 0)
    machine = machine.withRegisterCount(request.regsOverride);
  return machine;
}

// One whitespace-separated token plus the 1-based column it starts at.
struct Token {
  std::string text;
  uint32_t column = 1;
};

RequestOutcome runOnce(const ParsedRequest& request,
                       const RequestExecConfig& config, TelemetryNode& tel) {
  RequestOutcome result;
  // Fault-injection site standing in for any transient dispatch failure
  // (worker wedged, resource briefly unavailable). Fires before compile
  // work so the retry loop re-runs the whole request.
  FailPoints::instance().maybeThrow("avivd-dispatch");
  const Machine machine = materializeMachine(request);
  const Program program = resolveProgram(request.blockSpec);
  DriverOptions options = request.options;
  options.cache = config.cache;
  CodeGenerator generator(machine, options);

  int instrs = 0;
  std::string asmText;
  if (program.numBlocks() > 1) {
    const CompiledProgram compiled = generator.compileProgram(program);
    instrs = compiled.totalInstructions();
    result.blocks = compiled.blocks.size();
    for (const CompiledBlock& block : compiled.blocks) {
      if (block.fromCache) ++result.cachedBlocks;
      if (block.degraded) result.degraded = true;
      if (block.quarantined) result.quarantined = true;
      if (config.wantAsm) asmText += block.image.asmText(machine) + "\n";
    }
  } else {
    SymbolTable symbols;
    const CompiledBlock block =
        generator.compileBlock(program.block(0), symbols);
    instrs = block.numInstructions();
    result.blocks = 1;
    if (block.fromCache) ++result.cachedBlocks;
    if (block.degraded) result.degraded = true;
    if (block.quarantined) result.quarantined = true;
    if (config.wantAsm) asmText = block.image.asmText(machine) + "\n";
  }
  tel.merge(generator.telemetry());

  const char* cacheState =
      config.cache == nullptr                ? "off"
      : result.cachedBlocks == result.blocks ? "hit"
      : result.cachedBlocks == 0             ? "miss"
                                             : "partial";
  result.ok = true;
  result.asmText = std::move(asmText);
  result.statusDetail = "block=" + request.blockSpec +
                        " machine=" + machine.name() +
                        " blocks=" + std::to_string(result.blocks) +
                        " instrs=" + std::to_string(instrs) +
                        " cache=" + cacheState;
  return result;
}

}  // namespace

RequestParse parseRequestLine(std::string_view text, int line,
                              const RequestDefaults& defaults) {
  RequestParse parse;
  auto fail = [&](uint32_t column, const std::string& message) {
    parse.request = nullptr;
    parse.diagnostic.loc = SourceLoc{static_cast<uint32_t>(line), column};
    parse.diagnostic.message = message;
    return parse;
  };

  ParsedRequest request;
  request.line = line;
  request.options.core = CodegenOptions::heuristicsOn();
  request.options.core.timeLimitSeconds = defaults.timeoutSeconds;
  request.options.verify = defaults.verify;

  // Hand-rolled tokenizer so every diagnostic can carry the 1-based column
  // of the token it rejects.
  std::vector<Token> tokens;
  for (size_t i = 0; i < text.size();) {
    if (std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
      continue;
    }
    const size_t start = i;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) == 0)
      ++i;
    Token token;
    token.text = std::string(text.substr(start, i - start));
    token.column = static_cast<uint32_t>(start + 1);
    if (token.text[0] == '#') break;  // comment: ignore the rest of the line
    tokens.push_back(std::move(token));
  }

  for (const Token& token : tokens) {
    const size_t eq = token.text.find('=');
    const std::string key = token.text.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : token.text.substr(eq + 1);
    if (key == "machine") {
      request.machineSpec = value;
    } else if (key == "block") {
      request.blockSpec = value;
    } else if (key == "heuristics") {
      if (value != "on" && value != "off")
        return fail(token.column,
                    "heuristics expects on|off, got '" + value + "'");
      const int jobs = request.options.core.jobs;
      const double timeout = request.options.core.timeLimitSeconds;
      request.options.core = value == "off" ? CodegenOptions::heuristicsOff()
                                            : CodegenOptions::heuristicsOn();
      request.options.core.jobs = jobs;
      request.options.core.timeLimitSeconds = timeout;
    } else if (key == "timeout") {
      try {
        request.options.core.timeLimitSeconds = std::stod(value);
      } catch (const std::exception&) {
        return fail(token.column, "timeout expects seconds, got '" + value +
                                      "'");
      }
      if (request.options.core.timeLimitSeconds < 0)
        return fail(token.column, "timeout must be >= 0, got '" + value + "'");
    } else if (key == "const-pool") {
      request.options.core.constantsInMemory = true;
    } else if (key == "outputs-mem") {
      request.options.core.outputsToMemory = true;
    } else if (key == "no-peephole") {
      request.options.runPeephole = false;
    } else if (key == "verify") {
      if (value == "off") {
        request.options.verify.level = VerifyLevel::kOff;
      } else if (value == "sampled") {
        request.options.verify.level = VerifyLevel::kSampled;
      } else if (value == "all") {
        request.options.verify.level = VerifyLevel::kAll;
      } else {
        return fail(token.column,
                    "verify expects off|sampled|all, got '" + value + "'");
      }
    } else if (key == "regs") {
      try {
        request.regsOverride = std::stoi(value);
      } catch (const std::exception&) {
        return fail(token.column,
                    "regs expects an integer, got '" + value + "'");
      }
      if (request.regsOverride < 1 || request.regsOverride > 4096)
        return fail(token.column,
                    "regs must be in [1, 4096], got '" + value + "'");
    } else {
      return fail(token.column, "unknown request token '" + token.text + "'");
    }
  }
  if (request.machineSpec.empty() || request.blockSpec.empty())
    return fail(1, "request needs machine=... and block=...");
  request.options.core.jobs = 1;  // daemon parallelism is across requests
  parse.request = std::make_shared<const ParsedRequest>(std::move(request));
  return parse;
}

RequestOutcome executeRequest(const ParsedRequest& request,
                              const RequestExecConfig& config,
                              TelemetryNode& tel) {
  RequestOutcome result;
  for (int attempt = 0;; ++attempt) {
    try {
      RequestOutcome outcome = runOnce(request, config, tel);
      outcome.retries = attempt;
      if (attempt > 0)
        outcome.statusDetail += " retries=" + std::to_string(attempt);
      return outcome;
    } catch (const TransientError& e) {
      if (attempt >= config.retries) {
        result.error = e.what();
        result.retries = attempt;
        return result;
      }
      tel.addCounter("dispatchRetries", 1);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          1.0 * static_cast<double>(1 << attempt)));
    } catch (const std::exception& e) {
      result.error = e.what();
      result.retries = attempt;
      return result;
    }
  }
}

}  // namespace aviv
