#include "service/fingerprint.h"

#include <type_traits>

namespace aviv {

namespace {

void feedLoc(Hasher& h, const Loc& loc) {
  h.u8(static_cast<uint8_t>(loc.kind));
  h.u16(loc.index);
}

}  // namespace

Hash128 fingerprintMachine(const Machine& machine) {
  Hasher h;
  h.str("machine");
  h.str(machine.name());

  h.u64(machine.regFiles().size());
  for (const RegFile& rf : machine.regFiles()) {
    h.str(rf.name);
    h.i64(rf.numRegs);
  }
  h.u64(machine.memories().size());
  for (const Memory& mem : machine.memories()) {
    h.str(mem.name);
    h.i64(mem.sizeWords);
    h.boolean(mem.isDataMemory);
  }
  h.u64(machine.buses().size());
  for (const Bus& bus : machine.buses()) {
    h.str(bus.name);
    h.i64(bus.capacity);
  }
  h.u64(machine.units().size());
  for (const FunctionalUnit& unit : machine.units()) {
    h.str(unit.name);
    h.u16(unit.regFile);
    h.u64(unit.ops.size());
    for (const UnitOp& op : unit.ops) {
      h.u8(static_cast<uint8_t>(op.op));
      h.str(op.mnemonic);
      h.i64(op.latency);
    }
  }
  h.u64(machine.transfers().size());
  for (const TransferPath& path : machine.transfers()) {
    feedLoc(h, path.from);
    feedLoc(h, path.to);
    h.u16(path.bus);
  }
  h.u64(machine.constraints().size());
  for (const Constraint& constraint : machine.constraints()) {
    // The note is diagnostic-only and intentionally excluded.
    h.u64(constraint.together.size());
    for (const OpSel& sel : constraint.together) {
      h.u16(sel.unit);
      h.u8(static_cast<uint8_t>(sel.op));
    }
  }
  return h.digest();
}

Hash128 fingerprintDag(const BlockDag& dag) {
  Hasher h;
  h.str("dag");
  // The block name lands in the assembly listing header, so it is output-
  // relevant.
  h.str(dag.name());
  h.u64(dag.size());
  for (const DagNode& node : dag.nodes()) {
    h.u8(static_cast<uint8_t>(node.op));
    if (node.op == Op::kConst) h.i64(node.value);
    if (node.op == Op::kInput) h.str(node.name);
    h.u64(node.operands.size());
    for (NodeId operand : node.operands) h.u32(operand);
  }
  h.u64(dag.outputs().size());
  for (const auto& [name, id] : dag.outputs()) {
    h.str(name);
    h.u32(id);
  }
  return h.digest();
}

Hash128 fingerprintOptions(const CodegenOptions& core, bool runPeephole,
                           bool outputsToMemoryFallback) {
  Hasher h;
  h.str("options");
  core.forEachFingerprintField([&h](const char* name, auto value) {
    h.str(name);
    using T = decltype(value);
    if constexpr (std::is_same_v<T, bool>) {
      h.boolean(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      h.f64(value);
    } else if constexpr (std::is_unsigned_v<T>) {
      h.u64(static_cast<uint64_t>(value));
    } else {
      h.i64(static_cast<int64_t>(value));
    }
  });
  h.str("runPeephole");
  h.boolean(runPeephole);
  h.str("outputsToMemoryFallback");
  h.boolean(outputsToMemoryFallback);
  return h.digest();
}

Hash128 compileFingerprint(const CodegenContext& ctx, const BlockDag& dag,
                           const CodegenOptions& core, bool runPeephole,
                           bool outputsToMemoryFallback,
                           uint32_t verifierSalt) {
  const Hash128 machineFp = ctx.machineFingerprint()
                                ? *ctx.machineFingerprint()
                                : fingerprintMachine(ctx.machine());
  const Hash128 dagFp = fingerprintDag(dag);
  const Hash128 optionsFp =
      fingerprintOptions(core, runPeephole, outputsToMemoryFallback);
  Hasher h;
  h.str("aviv-compile");
  h.u32(kFingerprintVersion);
  h.u32(verifierSalt);
  h.u64(machineFp.hi).u64(machineFp.lo);
  h.u64(dagFp.hi).u64(dagFp.lo);
  h.u64(optionsFp.hi).u64(optionsFp.lo);
  return h.digest();
}

}  // namespace aviv
