// Canonical compile fingerprint — the compilation service's cache key
// (DESIGN.md System 23). A fingerprint is a self-contained 128-bit hash
// over everything that can change the compiled output of one block:
//
//   * the validated machine model — including every name and mnemonic,
//     because they appear verbatim in the emitted assembly text (a renamed
//     register file is a different output even if structurally identical);
//   * the IR DAG exactly as handed to the driver (the front end's
//     machine-independent passes run before this point, so this is the
//     post-pass DAG);
//   * every covering-relevant CodegenOptions field plus the driver flags
//     (runPeephole, outputsToMemoryFallback) that alter the result.
//
// Deliberately NOT hashed (canonicalization rules, see DESIGN.md):
//   * CodegenOptions::jobs — parallel results are bit-identical to serial;
//   * the session seed — the covering pipeline is deterministic and never
//     reads it (the seed only feeds randomized tooling layered on top);
//   * Constraint::note — diagnostic text, invisible in the output.
//
// kFingerprintVersion salts every fingerprint: bump it whenever the
// pipeline's output for unchanged inputs changes (new optimization, changed
// tie-break, ...), which invalidates all previously cached results at the
// key level.
#pragma once

#include "core/context.h"
#include "core/options.h"
#include "ir/dag.h"
#include "isdl/machine.h"
#include "support/hash.h"

namespace aviv {

// Version 2: cached statsJson gained the search-telemetry counters
// (explore prunedByBound/beamDropped, cover clique/candidate totals, the
// "search" child, and the best-cost trajectory), so version-1 entries would
// replay stale stat shapes.
// Version 3: the "search" child gained the workspace-arena accounting
// (arenaCalls/arenaBytes/arenaHighWater), so version-2 entries would replay
// without the alloc counters.
inline constexpr uint32_t kFingerprintVersion = 3;

[[nodiscard]] Hash128 fingerprintMachine(const Machine& machine);
[[nodiscard]] Hash128 fingerprintDag(const BlockDag& dag);
[[nodiscard]] Hash128 fingerprintOptions(const CodegenOptions& core,
                                         bool runPeephole,
                                         bool outputsToMemoryFallback);

// The cache key: version salt + the three component fingerprints. Uses the
// CodegenContext's machine-fingerprint memo when present (the driver sets
// it once per session, before any parallel region) and computes the
// machine hash locally otherwise — so concurrent block compiles never
// write shared state.
//
// `verifierSalt` partitions the key space by verification regime: 0 when
// differential output verification is off, the verifier version when it is
// on. A verifier bump therefore forces verifying sessions onto fresh keys
// (recompile + recheck) without invalidating non-verifying users, and
// entries produced without verification are never mistaken for verified
// ones of an older verifier.
[[nodiscard]] Hash128 compileFingerprint(const CodegenContext& ctx,
                                         const BlockDag& dag,
                                         const CodegenOptions& core,
                                         bool runPeephole,
                                         bool outputsToMemoryFallback,
                                         uint32_t verifierSalt = 0);

}  // namespace aviv
