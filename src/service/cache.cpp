#include "service/cache.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/fingerprint.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/io.h"
#include "support/serial.h"
#include "support/timer.h"

namespace aviv {

namespace fs = std::filesystem;

namespace {

// "AVCE" little-endian.
constexpr uint32_t kEntryMagic = 0x45435641u;

void putLoc(ByteWriter& w, const Loc& loc) {
  w.u8(static_cast<uint8_t>(loc.kind));
  w.u16(loc.index);
}

Loc getLoc(ByteReader& r) {
  Loc loc;
  loc.kind = static_cast<Loc::Kind>(r.u8());
  if (loc.kind != Loc::Kind::kRegFile && loc.kind != Loc::Kind::kMemory)
    throw Error("cache entry: invalid storage-location kind");
  loc.index = r.u16();
  return loc;
}

}  // namespace

std::string serializeCacheEntry(const CacheEntry& entry) {
  ByteWriter w;
  w.str(entry.blockName);
  w.str(entry.machineName);
  w.u32(static_cast<uint32_t>(entry.symbolNames.size()));
  for (const std::string& name : entry.symbolNames) w.str(name);
  w.str(entry.statsJson);
  w.u8(entry.verified ? 1 : 0);
  w.u32(entry.verifierVersion);

  const CodeImage& image = entry.image;
  w.str(image.blockName);
  w.str(image.machineName);
  w.i32(image.spillBase);
  w.i32(image.numSpillSlots);
  w.u32(static_cast<uint32_t>(image.constPool.size()));
  for (const auto& [addr, value] : image.constPool) {
    w.i32(addr);
    w.i64(value);
  }
  w.u32(static_cast<uint32_t>(image.outputs.size()));
  for (const OutputBinding& binding : image.outputs) {
    w.str(binding.name);
    w.u8(binding.inMemory ? 1 : 0);
    putLoc(w, binding.loc);
    w.i32(binding.reg);
    w.i32(binding.memAddr);
  }
  w.u32(static_cast<uint32_t>(image.instrs.size()));
  for (const EncInstr& instr : image.instrs) {
    w.u32(static_cast<uint32_t>(instr.ops.size()));
    for (const EncOp& op : instr.ops) {
      w.u16(op.unit);
      w.u8(static_cast<uint8_t>(op.op));
      w.str(op.mnemonic);
      w.i32(op.dstReg);
      w.u32(static_cast<uint32_t>(op.srcs.size()));
      for (const EncOperand& src : op.srcs) {
        w.u8(src.isImm ? 1 : 0);
        w.i32(src.reg);
        w.i64(src.imm);
      }
    }
    w.u32(static_cast<uint32_t>(instr.xfers.size()));
    for (const EncXfer& xfer : instr.xfers) {
      w.u16(xfer.bus);
      putLoc(w, xfer.from);
      putLoc(w, xfer.to);
      w.i32(xfer.srcReg);
      w.i32(xfer.dstReg);
      w.i32(xfer.memAddr);
      w.str(xfer.comment);
    }
  }
  return w.take();
}

CacheEntry deserializeCacheEntry(std::string_view data) {
  ByteReader r(data);
  CacheEntry entry;
  entry.blockName = r.str();
  entry.machineName = r.str();
  const uint32_t numSymbols = r.u32();
  entry.symbolNames.reserve(numSymbols);
  for (uint32_t i = 0; i < numSymbols; ++i)
    entry.symbolNames.push_back(r.str());
  entry.statsJson = r.str();
  entry.verified = r.u8() != 0;
  entry.verifierVersion = r.u32();

  CodeImage& image = entry.image;
  image.blockName = r.str();
  image.machineName = r.str();
  image.spillBase = r.i32();
  image.numSpillSlots = r.i32();
  const uint32_t numCells = r.u32();
  image.constPool.reserve(numCells);
  for (uint32_t i = 0; i < numCells; ++i) {
    const int addr = r.i32();
    const int64_t value = r.i64();
    image.constPool.emplace_back(addr, value);
  }
  const uint32_t numOutputs = r.u32();
  image.outputs.reserve(numOutputs);
  for (uint32_t i = 0; i < numOutputs; ++i) {
    OutputBinding binding;
    binding.name = r.str();
    binding.inMemory = r.u8() != 0;
    binding.loc = getLoc(r);
    binding.reg = r.i32();
    binding.memAddr = r.i32();
    image.outputs.push_back(std::move(binding));
  }
  const uint32_t numInstrs = r.u32();
  image.instrs.reserve(numInstrs);
  for (uint32_t i = 0; i < numInstrs; ++i) {
    EncInstr instr;
    const uint32_t numOps = r.u32();
    instr.ops.reserve(numOps);
    for (uint32_t j = 0; j < numOps; ++j) {
      EncOp op;
      op.unit = r.u16();
      op.op = static_cast<Op>(r.u8());
      op.mnemonic = r.str();
      op.dstReg = r.i32();
      const uint32_t numSrcs = r.u32();
      op.srcs.reserve(numSrcs);
      for (uint32_t k = 0; k < numSrcs; ++k) {
        EncOperand src;
        src.isImm = r.u8() != 0;
        src.reg = r.i32();
        src.imm = r.i64();
        op.srcs.push_back(src);
      }
      instr.ops.push_back(std::move(op));
    }
    const uint32_t numXfers = r.u32();
    instr.xfers.reserve(numXfers);
    for (uint32_t j = 0; j < numXfers; ++j) {
      EncXfer xfer;
      xfer.bus = r.u16();
      xfer.from = getLoc(r);
      xfer.to = getLoc(r);
      xfer.srcReg = r.i32();
      xfer.dstReg = r.i32();
      xfer.memAddr = r.i32();
      xfer.comment = r.str();
      instr.xfers.push_back(std::move(xfer));
    }
    image.instrs.push_back(std::move(instr));
  }
  if (!r.atEnd())
    throw Error("cache entry: " + std::to_string(r.remaining()) +
                " trailing bytes");
  return entry;
}

ResultCache::ResultCache(CacheConfig config) : config_(std::move(config)) {
  if (config_.shards < 1) config_.shards = 1;
  if (config_.memoryEntries > 0) {
    perShardCapacity_ =
        std::max<size_t>(1, config_.memoryEntries /
                                static_cast<size_t>(config_.shards));
    shards_.reserve(static_cast<size_t>(config_.shards));
    for (int i = 0; i < config_.shards; ++i)
      shards_.push_back(std::make_unique<Shard>());
  }
  if (!config_.dir.empty()) {
    std::error_code ec;
    fs::create_directories(fs::path(config_.dir) / "objects", ec);
    if (ec)
      throw Error("cannot create cache directory '" + config_.dir +
                  "': " + ec.message());
    sweepTempFiles(config_.sweepMinAgeSeconds);
    writeManifest();
  }
}

// A writer that crashed (or was killed) between writeFile and rename leaves
// a *.tmp<N> file behind. They are dead weight — no reader ever opens them
// and no writer reuses their names — so each startup clears them out.
void ResultCache::sweepTempFiles(double minAgeSeconds) {
  std::error_code ec;
  const fs::path objects = fs::path(config_.dir) / "objects";
  fs::recursive_directory_iterator it(objects, ec), end;
  const auto now = fs::file_time_type::clock::now();
  while (!ec && it != end) {
    std::error_code fileEc;
    if (it->is_regular_file(fileEc) && !fileEc &&
        it->path().filename().string().find(".tmp") != std::string::npos) {
      bool oldEnough = true;
      if (minAgeSeconds > 0) {
        const fs::file_time_type mtime = fs::last_write_time(it->path(), fileEc);
        // An unreadable mtime (file already renamed/removed) is not a
        // reason to sweep: leave it for the next pass.
        oldEnough = !fileEc &&
                    std::chrono::duration<double>(now - mtime).count() >=
                        minAgeSeconds;
      }
      if (oldEnough) {
        fs::remove(it->path(), fileEc);
        if (!fileEc) tmpSwept_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    it.increment(ec);
  }
}

void ResultCache::sweepStaleTemps(double minAgeSeconds) {
  if (config_.dir.empty()) return;
  sweepTempFiles(minAgeSeconds);
}

void ResultCache::retryTransient(const std::function<void()>& fn) const {
  for (int attempt = 0;; ++attempt) {
    try {
      fn();
      return;
    } catch (const TransientError&) {
      if (attempt >= config_.ioRetries) throw;
      ioRetries_.fetch_add(1, std::memory_order_relaxed);
      const double ms = config_.retryBackoffMs * static_cast<double>(1 << attempt);
      if (ms > 0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
    }
  }
}

void ResultCache::writeManifest() const {
  // The manifest documents the store's format; entries whose framing
  // version no longer matches are self-healed on lookup (corrupt path).
  const fs::path path = fs::path(config_.dir) / "manifest.json";
  std::string manifest =
      std::string("{\n  \"format\": \"aviv-result-cache\",\n") +
      "  \"entryFormatVersion\": " + std::to_string(kEntryFormatVersion) +
      ",\n  \"fingerprintVersion\": " + std::to_string(kFingerprintVersion) +
      "\n}\n";
  std::error_code ec;
  if (fs::exists(path, ec)) {
    try {
      FailPoints::instance().maybeThrow("cache-manifest");
      if (readFile(path.string()) == manifest) return;
    } catch (const Error&) {
      // Unreadable manifest: rewrite it below.
    }
  }
  try {
    retryTransient([&] {
      FailPoints::instance().maybeThrow("cache-manifest");
      writeFile(path.string(), manifest);
    });
  } catch (const Error&) {
    // The manifest is advisory (entries self-heal through their own
    // framing); a store that cannot write it keeps serving.
    writeErrors_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::flushManifest() const {
  if (config_.dir.empty()) return;
  writeManifest();
}

ResultCache::Shard& ResultCache::shardFor(const Hash128& key) {
  return *shards_[key.hi % static_cast<uint64_t>(shards_.size())];
}

std::shared_ptr<const CacheEntry> ResultCache::memoryLookup(
    const Hash128& key) {
  if (shards_.empty()) return nullptr;
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void ResultCache::memoryInsert(const Hash128& key,
                               std::shared_ptr<const CacheEntry> entry) {
  if (shards_.empty()) return;
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(entry));
  shard.index[key] = shard.lru.begin();
  while (shard.lru.size() > perShardCapacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string ResultCache::entryPath(const Hash128& key) const {
  if (config_.dir.empty()) return {};
  const std::string hex = key.hex();
  return (fs::path(config_.dir) / "objects" / hex.substr(0, 2) /
          (hex.substr(2) + ".avivce"))
      .string();
}

std::shared_ptr<const CacheEntry> ResultCache::diskLookup(
    const Hash128& key) {
  if (config_.dir.empty()) return nullptr;
  const std::string path = entryPath(key);
  std::error_code ec;
  if (!fs::exists(path, ec)) return nullptr;
  std::string framed;
  try {
    retryTransient([&] {
      FailPoints::instance().maybeThrow("cache-read");
      framed = readFile(path);
    });
  } catch (const Error&) {
    // A read that keeps failing says nothing about the entry's health —
    // report a miss and leave the file for a later, luckier lookup.
    return nullptr;
  }
  try {
    ByteReader r(framed);
    if (r.u32() != kEntryMagic)
      throw Error("cache entry: bad magic");
    if (r.u32() != kEntryFormatVersion)
      throw Error("cache entry: stale format version");
    if (Hash128{r.u64(), r.u64()} != key)
      throw Error("cache entry: fingerprint mismatch");
    const uint64_t payloadSize = r.u64();
    if (r.remaining() < sizeof(uint64_t) ||
        payloadSize != r.remaining() - sizeof(uint64_t))
      throw Error("cache entry: payload size mismatch");
    const size_t payloadOffset = framed.size() - r.remaining();
    const std::string_view payload(framed.data() + payloadOffset,
                                   payloadSize);
    ByteReader tail(
        std::string_view(framed).substr(payloadOffset + payloadSize));
    if (tail.u64() != hash64(payload.data(), payload.size()))
      throw Error("cache entry: checksum mismatch");
    FailPoints::instance().maybeThrow("cache-deserialize");
    auto entry =
        std::make_shared<const CacheEntry>(deserializeCacheEntry(payload));
    memoryInsert(key, entry);
    return entry;
  } catch (const Error&) {
    // Truncated, bit-flipped, or stale-format file: drop it so the caller
    // recompiles and rewrites a valid entry.
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    fs::remove(path, ec);
    return nullptr;
  }
}

void ResultCache::diskStore(const Hash128& key, const CacheEntry& entry) {
  if (config_.dir.empty()) return;
  FailPoints& fp = FailPoints::instance();
  if (fp.shouldFail("cache-serialize")) {
    // Simulated serialization failure: the entry stays uncached, nothing
    // reaches the disk.
    writeErrors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::string payload = serializeCacheEntry(entry);
  ByteWriter w;
  w.u32(kEntryMagic);
  w.u32(kEntryFormatVersion);
  w.u64(key.hi);
  w.u64(key.lo);
  w.u64(payload.size());
  ByteWriter framed = std::move(w);
  std::string out = framed.take();
  out += payload;
  ByteWriter checksum;
  checksum.u64(hash64(payload.data(), payload.size()));
  out += checksum.buffer();

  const fs::path path = entryPath(key);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  // Unique temp name per writer, then an atomic rename: concurrent stores
  // of the same key are both valid, last rename wins.
  const fs::path temp =
      path.parent_path() /
      (path.filename().string() + ".tmp" +
       std::to_string(tempCounter_.fetch_add(1, std::memory_order_relaxed)));
  try {
    retryTransient([&] {
      fp.maybeThrow("cache-write");
      if (fp.shouldFail("cache-torn-write")) {
        // Simulated power loss mid-write: only a prefix of the entry makes
        // it to disk, and the rename still lands it at the final path. The
        // framing (size + checksum) catches it on the next lookup.
        writeFile(temp.string(), out.substr(0, out.size() / 2));
      } else {
        writeFile(temp.string(), out);
      }
      fp.maybeThrow("cache-rename");
      std::error_code renameEc;
      fs::rename(temp, path, renameEc);
      if (renameEc)
        throw Error("cache entry rename failed: " + renameEc.message());
    });
  } catch (const Error&) {
    // A cache that cannot write (full disk, permissions, injected faults)
    // must not fail the compile; the result simply stays uncached, the
    // temp file is cleaned up, and the event is counted.
    writeErrors_.fetch_add(1, std::memory_order_relaxed);
    fs::remove(temp, ec);
  }
}

std::shared_ptr<const CacheEntry> ResultCache::lookup(const Hash128& key) {
  const WallTimer timer;
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const CacheEntry> entry = memoryLookup(key);
  if (entry != nullptr) {
    memoryHits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    entry = diskLookup(key);
    if (entry != nullptr)
      diskHits_.fetch_add(1, std::memory_order_relaxed);
    else
      misses_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto nanos = static_cast<int64_t>(timer.seconds() * 1e9);
  lookupNanos_.fetch_add(nanos, std::memory_order_relaxed);
  if (metrics::on())
    metrics::Registry::instance()
        .histogram("cache.lookup.us")
        .record(nanos / 1000);
  return entry;
}

void ResultCache::store(const Hash128& key, CacheEntry entry) {
  trace::instant("service", "cache.store:", entry.blockName);
  auto shared = std::make_shared<const CacheEntry>(std::move(entry));
  diskStore(key, *shared);
  memoryInsert(key, std::move(shared));
  stores_.fetch_add(1, std::memory_order_relaxed);
}

CacheStats ResultCache::stats() const {
  CacheStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.memoryHits = memoryHits_.load(std::memory_order_relaxed);
  s.diskHits = diskHits_.load(std::memory_order_relaxed);
  s.hits = s.memoryHits + s.diskHits;
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.corrupt = corrupt_.load(std::memory_order_relaxed);
  s.writeErrors = writeErrors_.load(std::memory_order_relaxed);
  s.ioRetries = ioRetries_.load(std::memory_order_relaxed);
  s.tmpSwept = tmpSwept_.load(std::memory_order_relaxed);
  s.lookupNanos = lookupNanos_.load(std::memory_order_relaxed);
  return s;
}

void recordServiceStats(const CacheStats& stats, TelemetryNode& node) {
  node.setCounter("lookups", stats.lookups);
  node.setCounter("hits", stats.hits);
  node.setCounter("misses", stats.misses);
  node.setCounter("memoryHits", stats.memoryHits);
  node.setCounter("diskHits", stats.diskHits);
  node.setCounter("stores", stats.stores);
  node.setCounter("evictions", stats.evictions);
  node.setCounter("corrupt", stats.corrupt);
  node.setCounter("writeErrors", stats.writeErrors);
  node.setCounter("ioRetries", stats.ioRetries);
  node.setCounter("tmpSwept", stats.tmpSwept);
  node.setCounter("lookupNanos", stats.lookupNanos);
}

}  // namespace aviv
