// Two-tier compile-result cache (DESIGN.md System 23). Keyed by the
// canonical fingerprint (service/fingerprint.h), an entry holds everything
// needed to replay one block compile without covering work:
//
//   * the CodeImage in scope-independent form — data-memory addresses are
//     SymbolScope provisional ordinals, replayed into the consumer's
//     symbol scope on a hit (rebindSymbols, asmgen/encode.h), which makes
//     one entry valid for standalone blocks and for any block position
//     inside a program;
//   * the interned symbol names in first-use order;
//   * the phase-telemetry subtree (JSON) of the compile that produced the
//     entry, so tooling can show "what the cached compile cost" and the
//     property tests can check hit stats are identical to a cold run.
//
// Tier 1 is an in-memory sharded LRU (lock per shard). Tier 2 is an
// on-disk content-addressed store: dir/objects/<h2>/<h30>.avivce with a
// manifest recording the format versions. Entries are framed with a magic,
// a format version, the fingerprint, and a checksum; any mismatch —
// truncation, bit flips, stale format — is counted as `corrupt`, the file
// is removed, and the lookup reports a miss so the caller recompiles and
// rewrites a valid entry. The cache never fails a compile.
//
// Thread-safety: all public methods are safe to call concurrently (the
// daemon and the parallel program driver hit one cache from pool workers).
// Stats are atomics; disk writes go through a unique temp file + rename.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "asmgen/code_image.h"
#include "support/hash.h"
#include "support/telemetry.h"

namespace aviv {

struct CacheEntry {
  std::string blockName;    // informational (diagnostics, cache tooling)
  std::string machineName;  // informational
  // Symbol names in first-use order; ordinal i backs provisional address
  // SymbolScope::provisionalAddr(i) inside `image`.
  std::vector<std::string> symbolNames;
  // TelemetryNode JSON of the original compile's block subtree.
  std::string statsJson;
  // Differential-verification pedigree (src/verify/): `verified` records
  // that the image passed simulator-vs-interpreter replay before it was
  // stored, under verifier version `verifierVersion`. Verified warm hits
  // skip the simulator entirely; unverified entries (stored under
  // VerifyLevel::kSampled, or with verification off but the same salt) are
  // re-checked on the first verifying hit and upgraded in place.
  bool verified = false;
  uint32_t verifierVersion = 0;
  // Scope-independent encoded block (provisional data-memory addresses).
  CodeImage image;
};

// Payload codec (the framing with magic/version/checksum is the cache's
// job). deserializeCacheEntry throws aviv::Error on malformed input.
[[nodiscard]] std::string serializeCacheEntry(const CacheEntry& entry);
[[nodiscard]] CacheEntry deserializeCacheEntry(std::string_view data);

struct CacheStats {
  int64_t lookups = 0;
  int64_t hits = 0;        // memoryHits + diskHits
  int64_t misses = 0;
  int64_t memoryHits = 0;
  int64_t diskHits = 0;
  int64_t stores = 0;
  int64_t evictions = 0;   // memory-tier LRU evictions
  int64_t corrupt = 0;     // disk entries rejected (and removed)
  int64_t writeErrors = 0; // disk stores abandoned (entry stays uncached)
  int64_t ioRetries = 0;   // transient I/O failures retried with backoff
  int64_t tmpSwept = 0;    // stale temp files removed by the startup sweep
  int64_t lookupNanos = 0; // total wall time spent inside lookup()
};

struct CacheConfig {
  // On-disk store directory; empty = memory-only cache.
  std::string dir;
  // Memory-tier capacity in entries across all shards; 0 disables tier 1.
  size_t memoryEntries = 1024;
  // Lock shards for the memory tier.
  int shards = 8;
  // Transient disk I/O failures (TransientError, e.g. fault-injected via
  // AVIV_FAILPOINTS) are retried up to this many times with exponential
  // backoff before the operation is abandoned. 0 disables retries.
  int ioRetries = 2;
  // Minimum age for the constructor's torn-write sweep. The default (0)
  // sweeps everything — right for a daemon opening its store first. A
  // respawned compile worker (src/proc) opening the SAME store while
  // siblings are writing sets this so the startup sweep cannot remove a
  // live sibling's in-progress temp.
  double sweepMinAgeSeconds = 0.0;
  // Backoff before the first retry, doubling per attempt.
  double retryBackoffMs = 1.0;
};

class ResultCache {
 public:
  // Bump when the entry payload or framing layout changes; old files then
  // fail the version check, are counted corrupt, and get rewritten.
  // v2: verified bit + verifier version (PR 4 verification guardrail).
  static constexpr uint32_t kEntryFormatVersion = 2;

  // Creates the store directory and manifest when `config.dir` is set.
  // Throws aviv::Error when the directory cannot be created.
  explicit ResultCache(CacheConfig config);

  // nullptr on miss. The returned entry is shared and immutable; copy the
  // image before mutating it.
  [[nodiscard]] std::shared_ptr<const CacheEntry> lookup(const Hash128& key);

  void store(const Hash128& key, CacheEntry entry);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  // On-disk path an entry for `key` would live at; empty for memory-only
  // caches. Exposed for the corruption tests and cache tooling.
  [[nodiscard]] std::string entryPath(const Hash128& key) const;

  // Rewrites the store manifest if it is missing or unreadable. The daemon
  // calls this during graceful shutdown so a manifest lost to a mid-run
  // fault is restored before the process exits. No-op for memory-only
  // caches; never throws.
  void flushManifest() const;

  // Removes stale `*.tmp` files under objects/ — the startup torn-write
  // sweep, callable again mid-run. A compile worker SIGKILLed between
  // writeFile and rename (src/proc) leaves a fresh temp behind, so the
  // supervisor re-sweeps after every worker crash; `minAgeSeconds` skips
  // temps younger than that, so a sweep racing a *live* writer's
  // in-progress temp leaves it alone (and even a misjudged removal is
  // recoverable: the writer's rename failure is a counted writeError, the
  // entry is simply not cached). Counts into stats().tmpSwept; never
  // throws. No-op for memory-only caches.
  void sweepStaleTemps(double minAgeSeconds = 0.0);

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recently used.
    std::list<std::pair<Hash128, std::shared_ptr<const CacheEntry>>> lru;
    std::map<Hash128,
             std::list<std::pair<Hash128,
                                 std::shared_ptr<const CacheEntry>>>::iterator>
        index;
  };

  Shard& shardFor(const Hash128& key);
  void memoryInsert(const Hash128& key,
                    std::shared_ptr<const CacheEntry> entry);
  [[nodiscard]] std::shared_ptr<const CacheEntry> memoryLookup(
      const Hash128& key);
  [[nodiscard]] std::shared_ptr<const CacheEntry> diskLookup(
      const Hash128& key);
  void diskStore(const Hash128& key, const CacheEntry& entry);
  void writeManifest() const;
  // Removes temp files a crashed/killed writer left under objects/, aged
  // at least `minAgeSeconds`.
  void sweepTempFiles(double minAgeSeconds = 0.0);
  // Runs `fn`, retrying TransientError up to config_.ioRetries times with
  // exponential backoff; the final failure propagates to the caller.
  void retryTransient(const std::function<void()>& fn) const;

  CacheConfig config_;
  size_t perShardCapacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> tempCounter_{0};

  mutable std::atomic<int64_t> lookups_{0};
  mutable std::atomic<int64_t> memoryHits_{0};
  mutable std::atomic<int64_t> diskHits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> stores_{0};
  mutable std::atomic<int64_t> evictions_{0};
  mutable std::atomic<int64_t> corrupt_{0};
  mutable std::atomic<int64_t> writeErrors_{0};
  mutable std::atomic<int64_t> ioRetries_{0};
  mutable std::atomic<int64_t> tmpSwept_{0};
  mutable std::atomic<int64_t> lookupNanos_{0};
};

// Publishes a stats snapshot into `node` (the session's "service" phase):
// absolute totals via setCounter, so re-recording after every compile is
// idempotent. Surfaces through --stats-json.
void recordServiceStats(const CacheStats& stats, TelemetryNode& node);

}  // namespace aviv
