#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace aviv::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void Event::setName(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), kNameCapacity - 1);
  std::memcpy(name, a.data(), n);
  const size_t m = std::min(b.size(), kNameCapacity - 1 - n);
  std::memcpy(name + n, b.data(), m);
  name[n + m] = '\0';
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // never destroyed: emitting threads
                                         // may outlive static teardown
  return *tracer;
}

void Tracer::enable(size_t eventsPerThread) {
  if (eventsPerThread == 0) eventsPerThread = 1;
  eventsPerThread_.store(eventsPerThread, std::memory_order_relaxed);
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> registryLock(registryMu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    ring->next = 0;
  }
  overwritten_.store(0, std::memory_order_relaxed);
}

int64_t Tracer::nowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::Ring& Tracer::ringForThisThread() {
  // The thread-local handle shares ownership with the registry, so rings of
  // exited threads stay exportable and a clear() never leaves a dangling
  // pointer behind.
  thread_local std::shared_ptr<Ring> tlsRing;
  if (tlsRing == nullptr) {
    auto ring = std::make_shared<Ring>();
    ring->tid = nextTid_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(registryMu_);
      rings_.push_back(ring);
    }
    tlsRing = std::move(ring);
  }
  return *tlsRing;
}

void Tracer::emit(Event event) {
  if (!on()) return;
  Ring& ring = ringForThisThread();
  const size_t capacity = eventsPerThread_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.slots.size() != capacity) {
    // Capacity changed since this ring was created (enable() with a new
    // size): start the ring over rather than remapping retained slots.
    ring.slots.assign(capacity, Event{});
    ring.next = 0;
  }
  if (ring.next >= ring.slots.size())
    overwritten_.fetch_add(1, std::memory_order_relaxed);
  event.tid = ring.tid;
  if (event.tsNanos == 0 && event.ph != 'X') event.tsNanos = nowNanos();
  ring.slots[ring.next % ring.slots.size()] = event;
  ++ring.next;
}

void Tracer::collect(std::vector<Event>* out) const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(registryMu_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    const size_t size = ring->slots.size();
    if (size == 0) continue;
    const uint64_t first = ring->next > size ? ring->next - size : 0;
    for (uint64_t i = first; i < ring->next; ++i)
      out->push_back(ring->slots[i % size]);
  }
  std::stable_sort(out->begin(), out->end(),
                   [](const Event& a, const Event& b) {
                     return a.tsNanos < b.tsNanos;
                   });
}

namespace {

void appendJsonString(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void appendMicros(std::string& out, int64_t nanos) {
  // Chrome trace timestamps are microseconds; keep nanosecond precision as
  // a three-decimal fraction.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(nanos / 1000),
                static_cast<long long>(nanos % 1000));
  out += buf;
}

void appendEvent(std::string& out, const Event& e) {
  out += "{\"name\":";
  appendJsonString(out, e.name);
  out += ",\"cat\":";
  appendJsonString(out, e.cat);
  out += ",\"ph\":\"";
  out += e.ph;
  out += "\",\"ts\":";
  appendMicros(out, e.tsNanos);
  if (e.ph == 'X') {
    out += ",\"dur\":";
    appendMicros(out, e.durNanos);
  }
  out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
  if (e.numArgs > 0 || e.ph == 'C') {
    out += ",\"args\":{";
    for (int i = 0; i < e.numArgs; ++i) {
      if (i > 0) out += ",";
      appendJsonString(out, e.argName[i]);
      out += ":" + std::to_string(e.argVal[i]);
    }
    out += "}";
  }
  out += "}";
}

std::string renderTrace(const std::vector<Event>& events,
                        int64_t overwritten) {
  std::string out = "{\"traceEvents\":[\n";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ",\n";
    appendEvent(out, events[i]);
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"overwritten\":" +
         std::to_string(overwritten) + "}}\n";
  return out;
}

}  // namespace

std::string Tracer::exportJson() const {
  std::vector<Event> events;
  collect(&events);
  return renderTrace(events, overwritten());
}

std::string Tracer::exportJsonLastN(size_t lastN) const {
  std::vector<Event> events;
  collect(&events);
  if (events.size() > lastN)
    events.erase(events.begin(),
                 events.begin() + static_cast<ptrdiff_t>(events.size() - lastN));
  return renderTrace(events, overwritten());
}

bool Tracer::writeFlightRecord(const std::string& path,
                               size_t lastN) const noexcept {
  try {
    if (retained() == 0) return false;
    const std::string json = exportJsonLastN(lastN);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return written == json.size();
  } catch (...) {
    return false;
  }
}

int64_t Tracer::overwritten() const {
  return overwritten_.load(std::memory_order_relaxed);
}

size_t Tracer::retained() const {
  size_t total = 0;
  std::lock_guard<std::mutex> registryLock(registryMu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    total += static_cast<size_t>(
        std::min<uint64_t>(ring->next, ring->slots.size()));
  }
  return total;
}

void instant(const char* cat, std::string_view name, std::string_view rest,
             const char* k0, int64_t v0, const char* k1, int64_t v1) {
  if (!on()) return;
  Event e;
  e.ph = 'i';
  e.cat = cat;
  e.setName(name, rest);
  if (k0 != nullptr) {
    e.argName[e.numArgs] = k0;
    e.argVal[e.numArgs] = v0;
    ++e.numArgs;
  }
  if (k1 != nullptr) {
    e.argName[e.numArgs] = k1;
    e.argVal[e.numArgs] = v1;
    ++e.numArgs;
  }
  Tracer::instance().emit(e);
}

void counter(const char* cat, std::string_view name, const char* key,
             int64_t value) {
  counterAt(cat, name, key, value, 0);
}

void counterAt(const char* cat, std::string_view name, const char* key,
               int64_t value, int64_t tsNanos) {
  if (!on()) return;
  Event e;
  e.ph = 'C';
  e.cat = cat;
  e.setName(name);
  e.tsNanos = tsNanos;
  e.argName[0] = key;
  e.argVal[0] = value;
  e.numArgs = 1;
  Tracer::instance().emit(e);
}

}  // namespace aviv::trace
