// Metrics registry — process-wide counters, gauges, and log₂-bucketed
// histograms, aggregated on demand and emitted as JSON via the binaries'
// `--metrics-json` flag (avivc once at exit; avivd per pass and on the
// SIGINT drain).
//
// Recording is thread-sharded: every metric owns kShards cache-line-padded
// atomic cells and a thread hashes to one of them, so concurrent recorders
// rarely touch the same line. Aggregation (snapshot/toJson) sums the shards
// with relaxed loads — totals are exact once recorders quiesce, and within
// one relaxed-atomic tear of exact while they run.
//
// Like the tracer, the whole subsystem is gated on one relaxed atomic flag:
// with metrics off (the default) a call site pays a single branch. Metric
// objects are created on first use and never destroyed, so a reference
// obtained once (e.g. a function-local static at a hot call site) stays
// valid across Registry::reset().
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace aviv::metrics {

namespace detail {
extern std::atomic<bool> g_enabled;

inline constexpr int kShards = 16;

struct alignas(64) Cell {
  std::atomic<int64_t> value{0};
};

// Stable per-thread shard index (threads hash to a fixed cell).
int thisThreadShard();
}  // namespace detail

[[nodiscard]] inline bool on() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// Monotonic sum across all recording threads.
class Counter {
 public:
  void add(int64_t delta) {
    cells_[detail::thisThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  [[nodiscard]] int64_t value() const;
  void reset();

 private:
  detail::Cell cells_[detail::kShards];
};

// Last-written-wins instantaneous value (one cell, not sharded: gauges are
// set rarely and torn per-shard aggregation of "latest" is meaningless).
class Gauge {
 public:
  void set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// log₂-bucketed histogram of non-negative integer samples. Bucket b counts
// samples whose value needs b significant bits: bucket 0 holds value 0,
// bucket b (1-based) holds [2^(b-1), 2^b). 65 buckets cover all of int64.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void record(int64_t value);

  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;  // 0 when count == 0
    int64_t max = 0;
    int64_t buckets[kBuckets] = {};

    // Quantile estimate (q in [0,1]) by linear interpolation inside the
    // containing log₂ bucket.
    [[nodiscard]] double quantile(double q) const;
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

  // Bucket index a sample lands in (exposed for tests).
  [[nodiscard]] static int bucketOf(int64_t value);
  // Inclusive lower bound of bucket b.
  [[nodiscard]] static int64_t bucketLowerBound(int b);

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
    std::atomic<int64_t> buckets[kBuckets] = {};
  };
  Shard shards_[detail::kShards];
};

class Registry {
 public:
  static Registry& instance();

  void enable() { detail::g_enabled.store(true, std::memory_order_relaxed); }
  void disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }
  // Zeroes every registered metric (objects and references stay valid).
  void reset();

  // Find-or-create. The returned references are stable for the process
  // lifetime. A name denotes one kind of metric: asking for a counter named
  // like an existing histogram throws aviv-style std::runtime_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Aggregated snapshot of every metric:
  //   {"counters": {...}, "gauges": {...},
  //    "histograms": {"name": {"count":N,"sum":S,"min":m,"max":M,
  //                            "p50":...,"p90":...,"p99":...,
  //                            "buckets": [[upperBound, count], ...]}}}
  [[nodiscard]] std::string toJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace aviv::metrics
