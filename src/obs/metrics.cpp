#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <functional>
#include <stdexcept>
#include <thread>

namespace aviv::metrics {

namespace detail {

std::atomic<bool> g_enabled{false};

int thisThreadShard() {
  // Hash of the stable thread id; computed once per thread.
  thread_local const int shard = static_cast<int>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      static_cast<size_t>(kShards));
  return shard;
}

}  // namespace detail

int64_t Counter::value() const {
  int64_t total = 0;
  for (const auto& cell : cells_)
    total += cell.value.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
}

int Histogram::bucketOf(int64_t value) {
  if (value <= 0) return 0;
  return std::bit_width(static_cast<uint64_t>(value));
}

int64_t Histogram::bucketLowerBound(int b) {
  if (b <= 0) return 0;
  if (b >= 64) return INT64_MAX;  // unreachable for non-negative samples
  return int64_t{1} << (b - 1);
}

void Histogram::record(int64_t value) {
  if (value < 0) value = 0;  // latencies/counts; clamp hostile inputs
  Shard& shard = shards_[detail::thisThreadShard()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  shard.buckets[bucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  int64_t seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !shard.min.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !shard.max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  int64_t minSeen = INT64_MAX;
  int64_t maxSeen = INT64_MIN;
  for (const Shard& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    minSeen = std::min(minSeen, shard.min.load(std::memory_order_relaxed));
    maxSeen = std::max(maxSeen, shard.max.load(std::memory_order_relaxed));
    for (int b = 0; b < kBuckets; ++b)
      snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
  }
  if (snap.count > 0) {
    snap.min = minSeen;
    snap.max = maxSeen;
  }
  return snap;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(INT64_MAX, std::memory_order_relaxed);
    shard.max.store(INT64_MIN, std::memory_order_relaxed);
    for (auto& bucket : shard.buckets)
      bucket.store(0, std::memory_order_relaxed);
  }
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count - 1) + 1.0;
  double seen = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double inBucket = static_cast<double>(buckets[b]);
    if (seen + inBucket >= target) {
      const double lo = static_cast<double>(bucketLowerBound(b));
      const double hi = b == 0 ? 0.0 : lo * 2.0 - 1.0;
      const double frac = inBucket <= 1.0
                              ? 0.0
                              : (target - seen - 1.0) / (inBucket - 1.0);
      double est = lo + (hi - lo) * frac;
      // The true extremes beat interpolation at the tails.
      est = std::max(est, static_cast<double>(min));
      est = std::min(est, static_cast<double>(max));
      return est;
    }
    seen += inBucket;
  }
  return static_cast<double>(max);
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // never destroyed (see Tracer)
  return *registry;
}

Registry::Entry& Registry::entry(const std::string& name, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
    it = metrics_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw std::runtime_error("metric '" + name +
                             "' already registered with a different type");
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name) {
  return *entry(name, Kind::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name) {
  return *entry(name, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  return *entry(name, Kind::kHistogram).histogram;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : metrics_) {
    switch (e.kind) {
      case Kind::kCounter: e.counter->reset(); break;
      case Kind::kGauge: e.gauge->reset(); break;
      case Kind::kHistogram: e.histogram->reset(); break;
    }
  }
}

namespace {

void appendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
}

void appendDouble(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out += buf;
}

}  // namespace

std::string Registry::toJson() const {
  // Copy the (name, pointer) views under the lock, aggregate outside it.
  struct View {
    std::string name;
    Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  std::vector<View> views;
  {
    std::lock_guard<std::mutex> lock(mu_);
    views.reserve(metrics_.size());
    for (const auto& [name, e] : metrics_)
      views.push_back({name, e.kind, e.counter.get(), e.gauge.get(),
                       e.histogram.get()});
  }

  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const View& v : views) {
    if (v.kind != Kind::kCounter) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    appendJsonString(out, v.name);
    out += ": " + std::to_string(v.counter->value());
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const View& v : views) {
    if (v.kind != Kind::kGauge) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    appendJsonString(out, v.name);
    out += ": " + std::to_string(v.gauge->value());
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const View& v : views) {
    if (v.kind != Kind::kHistogram) continue;
    const Histogram::Snapshot snap = v.histogram->snapshot();
    out += first ? "\n    " : ",\n    ";
    first = false;
    appendJsonString(out, v.name);
    out += ": {\"count\": " + std::to_string(snap.count) +
           ", \"sum\": " + std::to_string(snap.sum) +
           ", \"min\": " + std::to_string(snap.min) +
           ", \"max\": " + std::to_string(snap.max);
    out += ", \"p50\": ";
    appendDouble(out, snap.quantile(0.50));
    out += ", \"p90\": ";
    appendDouble(out, snap.quantile(0.90));
    out += ", \"p99\": ";
    appendDouble(out, snap.quantile(0.99));
    out += ", \"buckets\": [";
    bool firstBucket = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      if (!firstBucket) out += ", ";
      firstBucket = false;
      // [inclusive upper bound of the bucket, sample count]
      const int64_t upper =
          b == 0 ? 0 : Histogram::bucketLowerBound(b) * 2 - 1;
      out += "[" + std::to_string(upper) + ", " +
             std::to_string(snap.buckets[b]) + "]";
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

}  // namespace aviv::metrics
