// Flight-recorder tracer — per-thread ring buffers of timestamped events,
// exported as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing via `avivc --trace-out t.json`).
//
// Design goals, in order:
//   1. Disabled cost ~ one branch. Every emit path starts with a relaxed
//      atomic load of the global enable flag; when tracing is off nothing
//      else runs — no allocation, no lock, no clock read. The acceptance
//      bench (BM_TraceEventOverhead) pins this down.
//   2. Flight-recorder semantics. Each thread owns a fixed-capacity ring;
//      when it fills, the oldest events are overwritten (and counted), so a
//      long run retains the recent past instead of growing without bound.
//      On an InternalError or verification failure the driver dumps the
//      retained tail next to the quarantine artifact (writeFlightRecord).
//   3. Contention-free emission. Threads never share a ring, so emitters
//      never contend with each other. A per-ring mutex orders the rare
//      drain (export, flight-record dump) against its owner thread; for the
//      owner that lock is uncontended outside drains.
//
// Event model: complete spans ('X': start + duration, recorded at scope
// exit by trace::Span), instants ('i'), and counter samples ('C', one
// numeric series per name — Perfetto draws these as graphs, used for the
// best-cost-over-time trajectory). Names are copied into a fixed in-event
// buffer (truncated if long); categories and argument keys must be
// string literals (or otherwise outlive the tracer).
//
// This header is dependency-free (std only) so the lowest layers —
// support/telemetry.h's PhaseScope, support/deadline.h — can emit events
// without a layering cycle.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace aviv::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

// The one check every call site performs before doing any tracing work.
[[nodiscard]] inline bool on() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// One recorded event. Fixed-size and trivially copyable so ring slots are
// overwritten in place with no allocation.
struct Event {
  static constexpr size_t kNameCapacity = 48;
  static constexpr int kMaxArgs = 2;

  int64_t tsNanos = 0;   // since the tracer epoch (steady clock)
  int64_t durNanos = 0;  // 'X' events only
  uint32_t tid = 0;      // stable per-thread ordinal, assigned on first emit
  char ph = 'i';         // 'X' complete, 'i' instant, 'C' counter
  const char* cat = "aviv";        // string literal
  char name[kNameCapacity] = {};   // NUL-terminated, truncated copy
  int numArgs = 0;
  const char* argName[kMaxArgs] = {nullptr, nullptr};  // string literals
  int64_t argVal[kMaxArgs] = {0, 0};

  void setName(std::string_view a, std::string_view b = {});
};

class Tracer {
 public:
  static constexpr size_t kDefaultEventsPerThread = 1 << 14;

  static Tracer& instance();

  // Turns tracing on. Rings are created lazily, one per emitting thread,
  // with `eventsPerThread` slots (existing rings are resized on their next
  // emit). Safe to call at any time; idempotent.
  void enable(size_t eventsPerThread = kDefaultEventsPerThread);
  // Turns tracing off (retained events stay exportable).
  void disable();
  // Drops every retained event and resets the drop counters; the enable
  // state is unchanged. For tests and benches.
  void clear();

  // Nanoseconds since the tracer epoch (first instance() call).
  [[nodiscard]] int64_t nowNanos() const;

  // Record an event into the calling thread's ring. No-op when disabled.
  void emit(Event event);

  // All retained events from every thread, merged and sorted by timestamp,
  // as a Chrome trace-event JSON object:
  //   {"traceEvents": [...], "displayTimeUnit": "ms",
  //    "otherData": {"overwritten": N}}
  // Safe to call concurrently with emission.
  [[nodiscard]] std::string exportJson() const;

  // exportJson restricted to the `lastN` most recent events across all
  // threads — the flight-recorder tail.
  [[nodiscard]] std::string exportJsonLastN(size_t lastN) const;

  // Best-effort flight-record dump: writes exportJsonLastN(lastN) to
  // `path`. Returns false (never throws) when the write fails or tracing
  // never recorded anything.
  bool writeFlightRecord(const std::string& path,
                         size_t lastN = 2048) const noexcept;

  // Events overwritten by ring wrap-around since the last clear().
  [[nodiscard]] int64_t overwritten() const;
  // Retained (exportable) event count right now.
  [[nodiscard]] size_t retained() const;

 private:
  struct Ring {
    std::mutex mu;
    std::vector<Event> slots;  // capacity fixed between resizes
    uint64_t next = 0;         // total events ever emitted to this ring
    uint32_t tid = 0;
  };

  Tracer();
  Ring& ringForThisThread();
  void collect(std::vector<Event>* out) const;

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<size_t> eventsPerThread_{kDefaultEventsPerThread};
  mutable std::mutex registryMu_;
  std::vector<std::shared_ptr<Ring>> rings_;
  std::atomic<uint32_t> nextTid_{1};
  std::atomic<int64_t> overwritten_{0};
};

// --- convenience emitters -------------------------------------------------
// All are single-branch no-ops when tracing is off. Dynamic name parts are
// passed as (prefix, rest) string_views and concatenated into the event's
// fixed buffer — no allocation either way.

void instant(const char* cat, std::string_view name, std::string_view rest = {},
             const char* k0 = nullptr, int64_t v0 = 0,
             const char* k1 = nullptr, int64_t v1 = 0);

// One sample of the numeric series `name` (Chrome 'C' counter event).
void counter(const char* cat, std::string_view name, const char* key,
             int64_t value);

// Like counter, but with an explicit timestamp (nanoseconds since the
// tracer epoch) — used to replay the best-cost trajectory recorded inside
// the covering reduction.
void counterAt(const char* cat, std::string_view name, const char* key,
               int64_t value, int64_t tsNanos);

// RAII complete-span recorder: captures the start time at construction and
// emits one 'X' event at destruction. Up to two integer args may be
// attached before the scope closes.
class Span {
 public:
  Span(const char* cat, std::string_view name, std::string_view rest = {}) {
    if (!on()) return;
    active_ = true;
    event_.cat = cat;
    event_.ph = 'X';
    event_.setName(name, rest);
    event_.tsNanos = Tracer::instance().nowNanos();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (!active_ || !on()) return;
    event_.durNanos = Tracer::instance().nowNanos() - event_.tsNanos;
    Tracer::instance().emit(event_);
  }

  void arg(const char* key, int64_t value) {
    if (!active_ || event_.numArgs >= Event::kMaxArgs) return;
    event_.argName[event_.numArgs] = key;
    event_.argVal[event_.numArgs] = value;
    ++event_.numArgs;
  }

 private:
  bool active_ = false;
  Event event_;
};

}  // namespace aviv::trace
