// Phase-ordered baseline code generator — the "most current code generation
// systems address them sequentially" strawman the paper argues against.
//
// Phase 1 (instruction selection): each IR operation independently picks a
//   functional unit by local load balancing, without seeing the transfers or
//   the schedule that choice will force.
// Phase 2 (scheduling): classic critical-path list scheduling of the
//   resulting operation + transfer graph, one cycle at a time.
// Phase 3 (register limits): when no ready node fits the banks, the same
//   Fig 9 spill machinery runs.
//
// Everything downstream (register allocation, encoding, simulation) is the
// shared AVIV infrastructure, so code-size differences are attributable to
// the phase ordering alone. Used by the ablation benches.
#pragma once

#include "core/assigned.h"
#include "core/cover.h"
#include "core/options.h"
#include "core/splitnode.h"

namespace aviv {

struct BaselineResult {
  Assignment assignment;
  AssignedGraph graph;
  Schedule schedule;
  int spillsInserted = 0;
};

// Throws aviv::Error when the fixed assignment cannot satisfy the register
// limits (callers may retry with outputsToMemory, like the driver does).
[[nodiscard]] BaselineResult sequentialCodegen(const BlockDag& ir,
                                               const Machine& machine,
                                               const MachineDatabases& dbs,
                                               const CodegenOptions& options);

}  // namespace aviv
