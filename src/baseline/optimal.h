// Exact minimum-code-size search — the stand-in for the paper's hand-coded
// optimal column (Table I/II "By Hand"; the paper states those counts are
// optimal). Enumerates every functional-unit assignment of the Split-Node
// DAG and, for each, runs a branch-and-bound search over all legal VLIW
// schedules (every legal subset of ready nodes per cycle) under the same
// register-pressure bound AVIV enforces. Admissible lower bounds (per-unit
// op counts, per-bus transfer counts, critical path) plus an incumbent from
// AVIV's own result keep the search tractable at paper-scale block sizes.
//
// Spill insertion is NOT explored (the paper notes the optimal solutions
// need none); when no spill-free schedule exists for any assignment, the
// result reports infeasibility.
#pragma once

#include <cstdint>

#include "core/options.h"
#include "core/splitnode.h"

namespace aviv {

struct OptimalOptions {
  double timeLimitSeconds = 120.0;
  size_t maxAssignments = 1u << 20;
  // Prime the bound with a known-achievable count (e.g. AVIV's own result);
  // INT32_MAX means unprimed.
  int incumbent = INT32_MAX;
  bool enableComplexPatterns = true;
  bool outputsToMemory = false;
};

struct OptimalResult {
  int instructions = -1;  // best found; -1 if no spill-free schedule found
  bool proven = false;    // search completed within the limits
  size_t assignmentsSearched = 0;
  size_t statesVisited = 0;
  double seconds = 0.0;
};

[[nodiscard]] OptimalResult optimalCodeSize(const BlockDag& ir,
                                            const Machine& machine,
                                            const MachineDatabases& dbs,
                                            const OptimalOptions& options);

}  // namespace aviv
