#include "baseline/optimal.h"

#include <algorithm>
#include <map>

#include "core/assign_explore.h"
#include "core/assigned.h"
#include "core/legality.h"
#include "core/spill.h"
#include "support/error.h"
#include "support/timer.h"

namespace aviv {

namespace {

struct BitsetLess {
  bool operator()(const DynBitset& a, const DynBitset& b) const {
    return a.lexLess(b);
  }
};

// Branch-and-bound over schedules of one assignment.
class ScheduleSearch {
 public:
  ScheduleSearch(const AssignedGraph& graph, const ConstraintDatabase& cons,
                 const WallTimer& timer, double deadline, int* best,
                 size_t* statesVisited)
      : graph_(graph),
        cons_(cons),
        timer_(timer),
        deadline_(deadline),
        best_(best),
        states_(statesVisited) {
    heights_ = graph.levelsFromTop();
    for (AgId id = 0; id < graph.size(); ++id) {
      const AgNode& n = graph.node(id);
      if (n.deleted()) continue;
      ++active_;
      if (n.kind == AgKind::kOp) unitWork_[n.unit] += 1;
      if (n.isTransferish()) busWork_[graph.busOf(id)] += 1;
    }
  }

  // True when the search space was exhausted (not cut by the deadline).
  bool run() {
    DynBitset covered(graph_.size());
    for (AgId id = 0; id < graph_.size(); ++id)
      if (graph_.node(id).deleted()) covered.set(id);
    expired_ = false;
    dfs(covered, 0);
    return !expired_;
  }

 private:
  int lowerBound(const DynBitset& covered) const {
    std::map<UnitId, int> unitLeft;
    std::map<BusId, int> busLeft;
    int critical = 0;
    for (AgId id = 0; id < graph_.size(); ++id) {
      if (graph_.node(id).deleted() || covered.test(id)) continue;
      const AgNode& n = graph_.node(id);
      if (n.kind == AgKind::kOp) unitLeft[n.unit] += 1;
      if (n.isTransferish()) busLeft[graph_.busOf(id)] += 1;
      critical = std::max(critical, heights_[id] + 1);
    }
    int bound = critical;
    for (const auto& [unit, left] : unitLeft) bound = std::max(bound, left);
    for (const auto& [bus, left] : busLeft) {
      const int cap = graph_.machine().bus(bus).capacity;
      bound = std::max(bound, (left + cap - 1) / cap);
    }
    return bound;
  }

  void dfs(const DynBitset& covered, int depth) {
    if (expired_) return;
    if ((++*states_ & 0x3ff) == 0 && timer_.seconds() > deadline_) {
      expired_ = true;
      return;
    }
    size_t coveredCount = covered.count();
    if (coveredCount == graph_.size()) {
      *best_ = std::min(*best_, depth);
      return;
    }
    if (depth + lowerBound(covered) >= *best_) return;

    // Dominance: a state reached at equal-or-smaller depth before subsumes
    // this one.
    if (const auto it = memo_.find(covered);
        it != memo_.end() && it->second <= depth)
      return;
    memo_[covered] = depth;

    // Ready nodes.
    std::vector<AgId> ready;
    for (AgId id = 0; id < graph_.size(); ++id) {
      if (covered.test(id)) continue;
      bool allPreds = true;
      for (AgId pred : graph_.node(id).preds)
        allPreds &= covered.test(pred);
      if (allPreds) ready.push_back(id);
    }
    AVIV_CHECK(!ready.empty());

    // Enumerate every legal nonempty subset of ready nodes, larger first.
    std::vector<DynBitset> subsets;
    DynBitset current(graph_.size());
    enumerateSubsets(ready, 0, current, covered, subsets);
    std::sort(subsets.begin(), subsets.end(),
              [](const DynBitset& a, const DynBitset& b) {
                return a.count() > b.count();
              });
    for (const DynBitset& subset : subsets) {
      DynBitset next = covered;
      next |= subset;
      dfs(next, depth + 1);
      if (expired_) return;
    }
  }

  void enumerateSubsets(const std::vector<AgId>& ready, size_t idx,
                        DynBitset& current, const DynBitset& covered,
                        std::vector<DynBitset>& out) {
    if (idx == ready.size()) {
      if (current.none()) return;
      if (!cliqueIsLegal(current, graph_, cons_)) return;
      if (!pressureWithinLimits(graph_,
                                bankPressure(graph_, covered, &current)))
        return;
      out.push_back(current);
      return;
    }
    // Exclude ready[idx].
    enumerateSubsets(ready, idx + 1, current, covered, out);
    // Include ready[idx] if structurally compatible so far (unit clash
    // pruning; bus/constraint/pressure checked at the leaf).
    const AgNode& n = graph_.node(ready[idx]);
    bool clash = false;
    if (n.kind == AgKind::kOp) {
      current.forEach([&](size_t i) {
        const AgNode& o = graph_.node(static_cast<AgId>(i));
        clash |= o.kind == AgKind::kOp && o.unit == n.unit;
      });
    }
    if (!clash) {
      current.set(ready[idx]);
      enumerateSubsets(ready, idx + 1, current, covered, out);
      current.reset(ready[idx]);
    }
  }

  const AssignedGraph& graph_;
  const ConstraintDatabase& cons_;
  const WallTimer& timer_;
  double deadline_;
  int* best_;
  size_t* states_;
  std::vector<int> heights_;
  std::map<UnitId, int> unitWork_;
  std::map<BusId, int> busWork_;
  size_t active_ = 0;
  bool expired_ = false;
  std::map<DynBitset, int, BitsetLess> memo_;
};

}  // namespace

OptimalResult optimalCodeSize(const BlockDag& ir, const Machine& machine,
                              const MachineDatabases& dbs,
                              const OptimalOptions& options) {
  WallTimer timer;
  OptimalResult result;

  CodegenOptions coreOptions = CodegenOptions::heuristicsOff();
  coreOptions.enableComplexPatterns = options.enableComplexPatterns;
  coreOptions.outputsToMemory = options.outputsToMemory;
  coreOptions.maxAssignments = options.maxAssignments;

  const SplitNodeDag snd = SplitNodeDag::build(ir, machine, dbs, coreOptions);
  AssignmentExplorer explorer(snd, coreOptions);
  ExploreStats exploreStats;
  const std::vector<Assignment> assignments = explorer.explore(&exploreStats);

  int best = options.incumbent;
  bool allExhausted = !exploreStats.capped;
  for (const Assignment& assignment : assignments) {
    if (timer.seconds() > options.timeLimitSeconds) {
      allExhausted = false;
      break;
    }
    AssignedGraph graph =
        AssignedGraph::materialize(snd, assignment, coreOptions);
    ScheduleSearch search(graph, dbs.constraints, timer,
                          options.timeLimitSeconds, &best,
                          &result.statesVisited);
    allExhausted &= search.run();
    result.assignmentsSearched += 1;
  }

  result.instructions = best == INT32_MAX ? -1 : best;
  // "Proven" requires exhausting the space; an unprimed incumbent that was
  // never beaten means infeasible-without-spills, which is also a proof
  // when the space was exhausted.
  result.proven = allExhausted;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace aviv
