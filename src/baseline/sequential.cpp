#include "baseline/sequential.h"

#include <algorithm>
#include <set>

#include "core/legality.h"
#include "core/spill.h"
#include "support/error.h"

namespace aviv {

namespace {

// Phase 1: local, transfer-blind unit selection with load balancing.
Assignment selectUnitsLocally(const SplitNodeDag& snd) {
  const BlockDag& ir = snd.ir();
  const Machine& machine = snd.machine();
  Assignment assignment;
  assignment.chosenAlt.assign(ir.size(), kNoSnd);

  std::vector<int> unitLoad(machine.units().size(), 0);
  std::vector<bool> covered(ir.size(), false);
  for (NodeId id = 0; id < ir.size(); ++id) {
    if (isLeafOp(ir.node(id).op) || covered[id]) continue;
    const auto& alts = snd.altsOf(id);
    SndId best = kNoSnd;
    // Prefer complex alternatives (they cover more IR nodes), then the
    // least-loaded unit; ties by lowest alternative id.
    auto key = [&](SndId alt) {
      const SndNode& a = snd.node(alt);
      return std::make_tuple(-static_cast<int>(a.covers.size()),
                             unitLoad[a.unit], alt);
    };
    for (SndId alt : alts) {
      if (best == kNoSnd || key(alt) < key(best)) best = alt;
    }
    AVIV_REQUIRE(best != kNoSnd);
    assignment.chosenAlt[id] = best;
    unitLoad[snd.node(best).unit] += 1;
    for (size_t c = 1; c < snd.node(best).covers.size(); ++c)
      covered[snd.node(best).covers[c]] = true;
  }
  // A complex alternative may have fused an interior node that was visited
  // (and assigned) earlier in id order; drop the now-duplicate standalone
  // implementation.
  for (NodeId id = 0; id < ir.size(); ++id)
    if (covered[id]) assignment.chosenAlt[id] = kNoSnd;
  return assignment;
}

}  // namespace

BaselineResult sequentialCodegen(const BlockDag& ir, const Machine& machine,
                                 const MachineDatabases& dbs,
                                 const CodegenOptions& options) {
  for (const RegFile& rf : machine.regFiles()) {
    if (rf.numRegs < 2)
      throw Error("machine '" + machine.name() + "': register file " +
                  rf.name + " has fewer than 2 registers");
  }
  // Same dead-code-free precondition as coverBlock.
  {
    std::vector<bool> live(ir.size(), false);
    for (const auto& [name, id] : ir.outputs()) live[id] = true;
    for (NodeId id = ir.size(); id-- > 0;) {
      for (NodeId operand : ir.node(id).operands)
        if (live[id]) live[operand] = true;
    }
    for (NodeId id = 0; id < ir.size(); ++id)
      if (isMachineOp(ir.node(id).op) && !live[id])
        throw Error("block '" + ir.name() +
                    "': dead operations — run eliminateDeadCode first");
  }
  const SplitNodeDag snd = SplitNodeDag::build(ir, machine, dbs, options);
  Assignment assignment = selectUnitsLocally(snd);
  AssignedGraph graph = AssignedGraph::materialize(snd, assignment, options);

  // Phase 2/3: list scheduling with spills.
  Schedule schedule;
  DynBitset covered(graph.size());
  auto markDeleted = [&] {
    for (AgId id = 0; id < graph.size(); ++id)
      if (graph.node(id).deleted()) covered.set(id);
  };
  markDeleted();
  SpillState spillState;
  int spills = 0;
  const size_t spillGuard = 4 * graph.size() + 64;
  std::vector<int> heights = graph.levelsFromTop();

  while (covered.count() < graph.size()) {
    // Ready nodes by critical-path priority.
    std::vector<AgId> ready;
    for (AgId id = 0; id < graph.size(); ++id) {
      if (covered.test(id)) continue;
      bool allPreds = true;
      for (AgId pred : graph.node(id).preds) allPreds &= covered.test(pred);
      if (allPreds) ready.push_back(id);
    }
    AVIV_REQUIRE_MSG(!ready.empty(), "baseline scheduling deadlock");
    std::stable_sort(ready.begin(), ready.end(), [&](AgId a, AgId b) {
      return heights[a] > heights[b];
    });

    // Greedy slot filling.
    std::vector<AgId> instr;
    DynBitset members(graph.size());
    for (AgId id : ready) {
      // Structural compatibility with already-picked members.
      bool ok = true;
      for (AgId other : instr) {
        const AgNode& a = graph.node(id);
        const AgNode& b = graph.node(other);
        if (a.kind == AgKind::kOp && b.kind == AgKind::kOp &&
            a.unit == b.unit)
          ok = false;
        // Ready nodes are mutually independent by construction.
      }
      if (!ok) continue;
      instr.push_back(id);
      DynBitset candidate = members;
      candidate.set(id);
      std::sort(instr.begin(), instr.end());
      if (!cliqueIsLegal(candidate, graph, dbs.constraints) ||
          !pressureWithinLimits(graph,
                                bankPressure(graph, covered, &candidate))) {
        instr.erase(std::remove(instr.begin(), instr.end(), id), instr.end());
        continue;
      }
      members = std::move(candidate);
    }

    if (instr.empty()) {
      if (spills >= static_cast<int>(spillGuard))
        throw Error("block '" + ir.name() + "' on machine '" +
                    machine.name() +
                    "': baseline assignment cannot satisfy register limits");
      performSpill(graph, dbs.transfers, covered, spillState);
      spills += 1;
      covered.resize(graph.size(), false);
      markDeleted();
      heights = graph.levelsFromTop();
      continue;
    }
    covered |= members;
    schedule.instrs.push_back(std::move(instr));
  }

  verifySchedule(graph, schedule, dbs.constraints);
  // The graph's covers/operandIr spans alias `snd`, which dies with this
  // frame; re-home them before the result escapes.
  graph.detachPayloads();
  return {std::move(assignment), std::move(graph), std::move(schedule),
          spills};
}

}  // namespace aviv
