// DotWriter — emits Graphviz DOT text for the IR DAG and Split-Node DAG
// figure reproductions (paper Figs 2, 4, 9). Purely textual; rendering is
// left to the user's graphviz install.
#pragma once

#include <string>
#include <vector>

namespace aviv {

class DotWriter {
 public:
  explicit DotWriter(std::string graphName);

  // Node ids are arbitrary unique strings. Attributes are raw DOT attribute
  // lists, e.g. R"(shape=box, label="ADD@U1")".
  void addNode(const std::string& id, const std::string& attrs);
  void addEdge(const std::string& from, const std::string& to,
               const std::string& attrs = {});
  // Free-form line inside the digraph body (rankdir, clusters, ...).
  void addRaw(const std::string& line);

  [[nodiscard]] std::string str() const;

  // Escapes a string for use inside a double-quoted DOT label.
  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  std::string name_;
  std::vector<std::string> lines_;
};

}  // namespace aviv
