// FailPoints — a process-wide fault-injection registry. Production code
// marks recoverable failure sites (`cache-write`, `avivd-dispatch`, ...);
// tests and the CI fault-injection job activate them to prove the recovery
// paths actually recover.
//
// Activation spec grammar (comma-separated):
//
//   name[:prob[:count]]
//
//   prob   — firing probability in [0, 1], default 1 (always). Draws are
//            deterministic: a counted hash of (seed, site, hit index), so a
//            fixed seed reproduces the exact failure schedule.
//   count  — maximum number of fires, default unlimited. Once exhausted the
//            site never fires again (lets a test inject exactly N faults).
//
// Sources, in precedence order:
//   * FailPoints::instance().configure(spec, seed) — tests, --failpoints
//   * AVIV_FAILPOINTS / AVIV_FAILPOINT_SEED environment variables — read
//     once, lazily, at first instance() call (the CI fault job).
//
// The inactive fast path is one relaxed atomic load, so sites are free to
// sit on hot paths. All methods are thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace aviv {

class FailPoints {
 public:
  static FailPoints& instance();

  // Replaces the active configuration with `spec` (see grammar above).
  // Malformed entries are skipped — fault injection must never be the
  // thing that crashes the process. Empty spec deactivates everything.
  void configure(const std::string& spec, uint64_t seed = 0);
  void clear() { configure(""); }

  // True when the named site should fail on this hit. Counts the fire.
  [[nodiscard]] bool shouldFail(const char* site);

  // Throws TransientError("fail point '<site>' fired") when the site
  // should fail; the standard way to instrument an injection site.
  void maybeThrow(const char* site);

  // Crash-class action: when the site fires, the process dies (or hangs)
  // the way real covering bugs kill a compile worker — a SIGSEGV, an
  // abort(), memory growth until the rlimit blocks it, or a wedged spin.
  // Only ever placed on code paths that run inside a sandboxed worker
  // process (src/proc) or a replay child: firing one in the supervisor
  // would defeat the isolation it exists to test. kHang spins until an
  // external SIGKILL, which is exactly what the supervisor's hard
  // per-request deadline must handle.
  enum class CrashAction { kSegv, kAbort, kOom, kHang };
  void maybeCrash(const char* site, CrashAction action);

  // Total fires of `site` since the last configure (for tests).
  [[nodiscard]] int64_t fires(const char* site) const;

  [[nodiscard]] bool active() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  FailPoints();

  struct Point {
    double prob = 1.0;
    int64_t remaining = -1;  // -1 = unlimited
    int64_t hits = 0;        // draws made (indexes the deterministic hash)
    int64_t fires = 0;
  };

  std::atomic<bool> active_{false};
  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
  uint64_t seed_ = 0;
};

}  // namespace aviv
