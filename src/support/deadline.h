// Deadline — a monotonic wall-clock budget plus cooperative cancellation
// token, shared read-only across the pipeline's pool workers.
//
// The covering search is an anytime branch-and-bound whose runtime varies
// wildly with block shape and machine description; under a deadline it
// keeps the best complete solution found so far (CoreStats::timedOut) or,
// when nothing completed yet, throws DeadlineExceeded so the driver can
// degrade to the guaranteed-to-terminate sequential baseline.
//
// An unarmed deadline never expires, so deadline-free callers pay one
// relaxed atomic load per poll. arm()/cancel() must not race with expired()
// polls from other threads having observable consequences beyond an earlier
// or later expiry — all state is atomic.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>

#include "obs/trace.h"
#include "support/error.h"

namespace aviv {

// Thrown when a compile runs out of its wall-clock budget (or is
// cancelled) before producing any usable result. Derives from Error so
// top-level reporting keeps working, but catch sites that swallow Error to
// retry alternatives must rethrow it — the budget is gone.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& message) : Error(message) {}
};

class Deadline {
 public:
  Deadline() = default;
  Deadline(const Deadline&) = delete;
  Deadline& operator=(const Deadline&) = delete;

  // Starts (or restarts) the budget clock: the deadline is now + seconds.
  // seconds <= 0 disarms (never expires); cancellation state is reset.
  void arm(double seconds) {
    cancelled_.store(false, std::memory_order_relaxed);
    if (seconds <= 0.0) {
      armed_.store(false, std::memory_order_relaxed);
      return;
    }
    const auto now = Clock::now().time_since_epoch();
    const auto budget = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
    deadlineTicks_.store((now + budget).count(), std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }

  void disarm() {
    armed_.store(false, std::memory_order_relaxed);
    cancelled_.store(false, std::memory_order_relaxed);
  }

  // Cooperative cancellation: every subsequent expired() poll returns true,
  // armed or not. Safe to call from a signal-handling thread.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!armed_.load(std::memory_order_acquire)) return false;
    return Clock::now().time_since_epoch().count() >=
           deadlineTicks_.load(std::memory_order_relaxed);
  }

  // Seconds left in the budget; +infinity when unarmed, 0 when expired.
  [[nodiscard]] double remainingSeconds() const {
    if (cancelled_.load(std::memory_order_relaxed)) return 0.0;
    if (!armed_.load(std::memory_order_acquire))
      return std::numeric_limits<double>::infinity();
    const auto left = Clock::duration(
        deadlineTicks_.load(std::memory_order_relaxed) -
        Clock::now().time_since_epoch().count());
    const double seconds = std::chrono::duration<double>(left).count();
    return seconds > 0.0 ? seconds : 0.0;
  }

  // Poll-and-throw convenience for pipeline stages: `what` names the stage
  // in the exception message.
  void check(const char* what) const {
    if (!expired()) return;
    trace::instant("deadline", "deadline.expired:", what);
    throw DeadlineExceeded(std::string(what) +
                           (cancelled() ? ": cancelled" : ": deadline expired"));
  }

 private:
  using Clock = std::chrono::steady_clock;
  std::atomic<bool> armed_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<Clock::rep> deadlineTicks_{0};
};

}  // namespace aviv
