// Monotonic bump allocation for the compile hot path.
//
// Three pieces, used together by the covering engine (see DESIGN.md,
// "Memory and ownership model"):
//   * Span<T>       — a non-owning (pointer, length) view over contiguous
//                     elements; the flattened replacement for the small
//                     per-node std::vectors (covers/operandIr/operandDefs).
//   * Arena         — a chunked monotonic bump allocator. Chunk memory is
//                     heap blocks held by unique_ptr, so allocated addresses
//                     stay stable while the arena grows AND when the arena
//                     (or an object owning it) is moved. ArenaScope gives
//                     RAII mark/rewind for per-candidate scratch: rewinding
//                     retains the chunks, so a warm workspace re-covers the
//                     next candidate without touching malloc.
//   * FlatPool<T>   — an append-only pool of Span<T> payloads backed by a
//                     private Arena (never rewound, so spans handed out stay
//                     valid for the pool's whole lifetime).
//
// Allocation sizes are rounded to a 16-byte quantum and chunk-boundary waste
// is not charged to the usage counters, so ArenaStats deltas for identical
// work are identical regardless of how chunks happened to grow — this is
// what makes the alloc.* search telemetry jobs-invariant (jobs=1 ≡ jobs=N).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "support/error.h"

namespace aviv {

template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}
  // Span<T> converts to Span<const T>.
  template <typename U,
            typename = std::enable_if_t<std::is_same_v<const U, T>>>
  constexpr Span(Span<U> o) : data_(o.data()), size_(o.size()) {}

  [[nodiscard]] constexpr T* data() const { return data_; }
  [[nodiscard]] constexpr size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  [[nodiscard]] constexpr T* begin() const { return data_; }
  [[nodiscard]] constexpr T* end() const { return data_ + size_; }
  [[nodiscard]] T& operator[](size_t i) const {
    AVIV_DCHECK(i < size_);
    return data_[i];
  }
  [[nodiscard]] T& front() const {
    AVIV_DCHECK(size_ > 0);
    return data_[0];
  }
  [[nodiscard]] T& back() const {
    AVIV_DCHECK(size_ > 0);
    return data_[size_ - 1];
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

struct ArenaStats {
  uint64_t allocCalls = 0;      // allocate() invocations
  uint64_t bytesRequested = 0;  // raw bytes asked for (pre-rounding)
  uint64_t inUse = 0;           // live bytes (16-byte-rounded), post-rewinds
  uint64_t highWater = 0;       // max inUse since construction/resetHighWater
  uint64_t chunkBytes = 0;      // heap bytes reserved across all chunks
};

class Arena {
 public:
  static constexpr size_t kQuantum = 16;  // alignment + size rounding

  explicit Arena(size_t firstChunkBytes = 4096)
      : firstChunkBytes_(firstChunkBytes) {}
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // 16-byte-aligned storage; never returns nullptr (aborts on OOM via new).
  void* allocate(size_t bytes);

  template <typename T>
  [[nodiscard]] T* alloc(size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    static_assert(alignof(T) <= kQuantum);
    return static_cast<T*>(allocate(n * sizeof(T)));
  }

  template <typename T>
  [[nodiscard]] Span<T> allocSpan(size_t n, T fill) {
    T* p = alloc<T>(n);
    for (size_t i = 0; i < n; ++i) p[i] = fill;
    return {p, n};
  }

  template <typename T>
  [[nodiscard]] Span<T> allocCopy(const T* src, size_t n) {
    T* p = alloc<T>(n);
    if (n != 0) std::memcpy(p, src, n * sizeof(T));
    return {p, n};
  }
  template <typename T>
  [[nodiscard]] Span<T> allocCopy(Span<const T> src) {
    return allocCopy(src.data(), src.size());
  }

  struct Mark {
    size_t chunk = 0;
    size_t used = 0;
    uint64_t inUse = 0;
  };
  [[nodiscard]] Mark mark() const {
    return {current_, chunks_.empty() ? 0 : chunks_[current_].used,
            stats_.inUse};
  }
  // Releases everything allocated since `m`; chunks are retained for reuse.
  void rewind(const Mark& m) {
    if (chunks_.empty()) return;
    current_ = m.chunk < chunks_.size() ? m.chunk : chunks_.size() - 1;
    chunks_[current_].used = m.used;
    stats_.inUse = m.inUse;
  }

  [[nodiscard]] const ArenaStats& stats() const { return stats_; }
  // Restarts the high-water tracking from the current usage, so a caller
  // can measure the peak of one scoped region (per-candidate peaks).
  void resetHighWater() { stats_.highWater = stats_.inUse; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  size_t current_ = 0;
  size_t firstChunkBytes_;
  ArenaStats stats_;
};

// RAII mark/rewind over an Arena. Everything allocated inside the scope is
// released (chunks retained) when the scope ends.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

// Append-only flat pool: variable-length per-node payloads stored
// back-to-back in one arena, addressed by Span instead of per-node vectors.
// Spans stay valid for the pool's lifetime, across pool growth and moves.
template <typename T>
class FlatPool {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);

 public:
  FlatPool() : arena_(kFirstChunk) {}
  FlatPool(FlatPool&&) = default;
  FlatPool& operator=(FlatPool&&) = default;

  Span<T> append(const T* src, size_t n) {
    count_ += n;
    return arena_.allocCopy(src, n);
  }
  Span<T> append(Span<const T> src) { return append(src.data(), src.size()); }
  Span<T> append(const std::vector<T>& src) {
    return append(src.data(), src.size());
  }
  Span<T> append(std::initializer_list<T> src) {
    return append(src.begin(), src.size());
  }
  Span<T> appendFill(size_t n, T fill) {
    count_ += n;
    return arena_.allocSpan(n, fill);
  }

  // Total elements ever appended.
  [[nodiscard]] size_t size() const { return count_; }
  [[nodiscard]] const ArenaStats& arenaStats() const { return arena_.stats(); }

 private:
  static constexpr size_t kFirstChunk = 1024;

  Arena arena_;
  size_t count_ = 0;
};

}  // namespace aviv
