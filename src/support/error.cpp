#include "support/error.h"

#include <cstdio>
#include <cstdlib>

namespace aviv::detail {

void checkFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "AVIV internal check failed at %s:%d: %s", file, line,
               expr);
  if (!message.empty()) std::fprintf(stderr, " (%s)", message.c_str());
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

void requireFailed(const char* file, int line, const char* expr,
                   const std::string& message) {
  std::string what = std::string("AVIV internal invariant failed at ") + file +
                     ":" + std::to_string(line) + ": " + expr;
  if (!message.empty()) what += " (" + message + ")";
  throw InternalError(what);
}

}  // namespace aviv::detail
