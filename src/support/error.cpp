#include "support/error.h"

#include <cstdio>
#include <cstdlib>

namespace aviv::detail {

void checkFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "AVIV internal check failed at %s:%d: %s", file, line,
               expr);
  if (!message.empty()) std::fprintf(stderr, " (%s)", message.c_str());
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace aviv::detail
