#include "support/error.h"

#include <cstdio>
#include <cstdlib>

namespace aviv {

namespace {

std::string formatDiagnostics(const std::string& sourceName,
                              const std::vector<Diagnostic>& diagnostics) {
  if (diagnostics.empty()) return sourceName + ": parse failed";
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    if (!out.empty()) out += '\n';
    out += d.str(sourceName);
  }
  return out;
}

}  // namespace

std::string Diagnostic::str(const std::string& sourceName) const {
  std::string out = sourceName.empty() ? "<input>" : sourceName;
  if (loc.valid()) out += ":" + loc.str();
  out += ": " + message;
  return out;
}

Diagnostic toDiagnostic(const Error& e) {
  Diagnostic d;
  d.loc = e.loc();
  d.message = e.what();
  if (d.loc.valid()) {
    const std::string prefix = d.loc.str() + ": ";
    if (d.message.rfind(prefix, 0) == 0) d.message.erase(0, prefix.size());
  }
  return d;
}

ParseError::ParseError(std::string sourceName,
                       std::vector<Diagnostic> diagnostics)
    : Error(Preformatted{},
            diagnostics.empty() ? SourceLoc{} : diagnostics.front().loc,
            formatDiagnostics(sourceName, diagnostics)),
      sourceName_(std::move(sourceName)),
      diagnostics_(std::move(diagnostics)) {}

ResourceLimitExceeded::ResourceLimitExceeded(std::string resource,
                                             uint64_t used, uint64_t limit)
    : Error("resource limit exceeded: " + resource + " used " +
            std::to_string(used) + " > limit " + std::to_string(limit)),
      resource_(std::move(resource)),
      used_(used),
      limit_(limit) {}

}  // namespace aviv

namespace aviv::detail {

void checkFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "AVIV internal check failed at %s:%d: %s", file, line,
               expr);
  if (!message.empty()) std::fprintf(stderr, " (%s)", message.c_str());
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

void requireFailed(const char* file, int line, const char* expr,
                   const std::string& message) {
  std::string what = std::string("AVIV internal invariant failed at ") + file +
                     ":" + std::to_string(line) + ": " + expr;
  if (!message.empty()) what += " (" + message + ")";
  throw InternalError(what);
}

}  // namespace aviv::detail
