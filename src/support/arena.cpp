#include "support/arena.h"

#include <algorithm>

namespace aviv {

void* Arena::allocate(size_t bytes) {
  const size_t rounded = (bytes + (kQuantum - 1)) & ~(kQuantum - 1);
  stats_.allocCalls += 1;
  stats_.bytesRequested += bytes;
  stats_.inUse += rounded;
  stats_.highWater = std::max(stats_.highWater, stats_.inUse);

  // Fast path: the current chunk has room. Chunk base addresses are
  // new[]-aligned (>= 16 on this ABI) and offsets stay quantum-rounded, so
  // every returned pointer is 16-byte aligned.
  if (!chunks_.empty()) {
    Chunk& cur = chunks_[current_];
    if (cur.size - cur.used >= rounded) {
      void* p = cur.data.get() + cur.used;
      cur.used += rounded;
      return p;
    }
    // Advance through chunks retained by earlier rewinds.
    while (current_ + 1 < chunks_.size()) {
      Chunk& next = chunks_[++current_];
      next.used = 0;
      if (next.size >= rounded) {
        next.used = rounded;
        return next.data.get();
      }
    }
  }

  // Grow: double the last chunk (or start at firstChunkBytes_), but always
  // big enough for this request.
  const size_t lastSize = chunks_.empty() ? firstChunkBytes_ / 2
                                          : chunks_.back().size;
  const size_t size = std::max(std::max(lastSize * 2, firstChunkBytes_),
                               rounded);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  chunk.used = rounded;
  stats_.chunkBytes += size;
  chunks_.push_back(std::move(chunk));
  current_ = chunks_.size() - 1;
  return chunks_.back().data.get();
}

}  // namespace aviv
