// DynBitset — a dynamically sized bitset used for parallelism matrices,
// clique membership, cover sets, and liveness sets.
//
// std::vector<bool> is avoided (proxy-reference pitfalls, no word-level set
// algebra); std::bitset is fixed-size. DynBitset gives word-parallel
// and/or/andnot, popcount, subset tests, and bit iteration — the operations
// the clique generator and covering engine live on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/error.h"

namespace aviv {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(size_t size, bool value = false)
      : size_(size),
        words_(numWords(size), value ? ~uint64_t{0} : uint64_t{0}) {
    trimTail();
  }

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void resize(size_t size, bool value = false);

  [[nodiscard]] bool test(size_t i) const {
    AVIV_CHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void set(size_t i) {
    AVIV_CHECK(i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void reset(size_t i) {
    AVIV_CHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void setTo(size_t i, bool value) { value ? set(i) : reset(i); }

  void setAll();
  void resetAll();

  [[nodiscard]] size_t count() const;
  [[nodiscard]] bool any() const;
  [[nodiscard]] bool none() const { return !any(); }

  // Word-parallel set algebra. Operands must have equal size.
  DynBitset& operator|=(const DynBitset& o);
  DynBitset& operator&=(const DynBitset& o);
  DynBitset& operator^=(const DynBitset& o);
  // this := this & ~o
  DynBitset& andNot(const DynBitset& o);

  [[nodiscard]] bool intersects(const DynBitset& o) const;
  [[nodiscard]] bool isSubsetOf(const DynBitset& o) const;
  [[nodiscard]] size_t intersectCount(const DynBitset& o) const;

  bool operator==(const DynBitset& o) const = default;

  // Index of the first set bit at or after `from`; size() if none.
  [[nodiscard]] size_t findFirst(size_t from = 0) const;

  // Calls fn(index) for every set bit, in increasing order.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const auto bit = static_cast<size_t>(__builtin_ctzll(bits));
        fn(w * 64 + bit);
        bits &= bits - 1;
      }
    }
  }

  [[nodiscard]] std::vector<size_t> toIndices() const;

  // Lexicographic on the bit-string; gives a deterministic total order for
  // canonicalizing clique sets in tests.
  [[nodiscard]] bool lexLess(const DynBitset& o) const;

 private:
  static size_t numWords(size_t size) { return (size + 63) / 64; }
  void trimTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace aviv
