// DynBitset — a dynamically sized bitset used for parallelism matrices,
// clique membership, cover sets, and liveness sets.
//
// std::vector<bool> is avoided (proxy-reference pitfalls, no word-level set
// algebra); std::bitset is fixed-size. DynBitset gives word-parallel
// and/or/andnot, popcount, subset tests, and bit iteration — the operations
// the clique generator and covering engine live on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/error.h"

namespace aviv {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(size_t size, bool value = false)
      : size_(size),
        words_(numWords(size), value ? ~uint64_t{0} : uint64_t{0}) {
    trimTail();
  }

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void resize(size_t size, bool value = false);

  // Single-bit accessors. Bounds are AVIV_DCHECKed: free in optimized
  // release builds, enforced in Debug and sanitizer builds. Callers outside
  // the hot path that want release-mode bounds enforcement use the
  // *Checked variants.
  [[nodiscard]] bool test(size_t i) const {
    AVIV_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void set(size_t i) {
    AVIV_DCHECK(i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void reset(size_t i) {
    AVIV_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void setTo(size_t i, bool value) { value ? set(i) : reset(i); }

  // Always-checked variants for cold callers (parsers, test harnesses,
  // service-layer decoding of untrusted indices).
  [[nodiscard]] bool testChecked(size_t i) const {
    AVIV_CHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void setChecked(size_t i) {
    AVIV_CHECK(i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  // Explicitly unchecked variants for inner loops whose indices are proven
  // in range by construction (the covering engine iterates node ids that
  // sized the set). No bounds check even in Debug builds.
  [[nodiscard]] bool testUnchecked(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void setUnchecked(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void resetUnchecked(size_t i) {
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  void setAll();
  void resetAll();

  // Equivalent to *this = DynBitset(size) but reuses the word storage —
  // the covering engine resets its scratch sets once per candidate and a
  // fresh vector each time would defeat the warm-workspace arena design.
  void clearAndResize(size_t size) {
    words_.assign(numWords(size), uint64_t{0});
    size_ = size;
  }

  // Replaces contents with `size` bits copied from `words` (raw arena
  // buffers produced by the clique generator; bits past `size` in the last
  // word must be zero — DCHECKed via trimTail invariant).
  void assignWords(size_t size, const uint64_t* words) {
    words_.assign(words, words + numWords(size));
    size_ = size;
    AVIV_DCHECK(size_ % 64 == 0 || words_.empty() ||
                (words_.back() & ~((uint64_t{1} << (size_ & 63)) - 1)) == 0);
  }

  // Raw word access for arena-based word-level algorithms (clique
  // generation). Words beyond size() bits are zero.
  [[nodiscard]] const uint64_t* wordData() const { return words_.data(); }
  [[nodiscard]] size_t wordCount() const { return words_.size(); }

  [[nodiscard]] size_t count() const;
  [[nodiscard]] bool any() const;
  [[nodiscard]] bool none() const { return !any(); }

  // Word-parallel set algebra. Operands must have equal size.
  DynBitset& operator|=(const DynBitset& o);
  DynBitset& operator&=(const DynBitset& o);
  DynBitset& operator^=(const DynBitset& o);
  // this := this & ~o
  DynBitset& andNot(const DynBitset& o);

  [[nodiscard]] bool intersects(const DynBitset& o) const;
  [[nodiscard]] bool isSubsetOf(const DynBitset& o) const;
  [[nodiscard]] size_t intersectCount(const DynBitset& o) const;

  bool operator==(const DynBitset& o) const = default;

  // Index of the first set bit at or after `from`; size() if none.
  [[nodiscard]] size_t findFirst(size_t from = 0) const;

  // Calls fn(index) for every set bit, in increasing order.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const auto bit = static_cast<size_t>(__builtin_ctzll(bits));
        fn(w * 64 + bit);
        bits &= bits - 1;
      }
    }
  }

  [[nodiscard]] std::vector<size_t> toIndices() const;

  // Lexicographic on the bit-string; gives a deterministic total order for
  // canonicalizing clique sets in tests.
  [[nodiscard]] bool lexLess(const DynBitset& o) const;

 private:
  static size_t numWords(size_t size) { return (size + 63) / 64; }
  void trimTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

// Raw word-level helpers for arena-allocated bit buffers (uint64_t*), used
// by the clique generator's recursion where sets live in an Arena rather
// than as DynBitset objects. All buffers are `words` uint64_t long; bits
// past the logical size are kept zero by the callers.
namespace bits {

inline bool test(const uint64_t* w, size_t i) {
  return (w[i >> 6] >> (i & 63)) & 1;
}
inline void set(uint64_t* w, size_t i) { w[i >> 6] |= uint64_t{1} << (i & 63); }
inline void reset(uint64_t* w, size_t i) {
  w[i >> 6] &= ~(uint64_t{1} << (i & 63));
}
inline void copy(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t i = 0; i < words; ++i) dst[i] = src[i];
}
inline void clear(uint64_t* dst, size_t words) {
  for (size_t i = 0; i < words; ++i) dst[i] = 0;
}
inline bool any(const uint64_t* w, size_t words) {
  for (size_t i = 0; i < words; ++i)
    if (w[i] != 0) return true;
  return false;
}
// dst := a & b
inline void andInto(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                    size_t words) {
  for (size_t i = 0; i < words; ++i) dst[i] = a[i] & b[i];
}
// dst := a & ~b
inline void andNotInto(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                       size_t words) {
  for (size_t i = 0; i < words; ++i) dst[i] = a[i] & ~b[i];
}
// First set bit at or after `from`, or `limit` if none (limit in bits).
inline size_t findFirst(const uint64_t* w, size_t from, size_t limit) {
  if (from >= limit) return limit;
  size_t wi = from >> 6;
  const size_t words = (limit + 63) / 64;
  uint64_t cur = w[wi] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (cur != 0) {
      const size_t bit = wi * 64 + static_cast<size_t>(__builtin_ctzll(cur));
      return bit < limit ? bit : limit;
    }
    if (++wi >= words) return limit;
    cur = w[wi];
  }
}

}  // namespace bits

}  // namespace aviv
