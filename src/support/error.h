// Error handling primitives shared across the AVIV code base.
//
// Three mechanisms, per the usual split:
//   * aviv::Error       — exception for *input* errors (malformed ISDL,
//                         malformed block source, impossible machine).
//                         These carry a source location when available and
//                         are meant to be shown to the user.
//   * AVIV_REQUIRE(...) — internal invariant checks on the block-compile
//                         path. A failure is still a bug in AVIV, but one
//                         that a long-lived process (the avivd daemon) must
//                         survive: it throws aviv::InternalError, which the
//                         driver turns into a failed/degraded request
//                         instead of process death.
//   * AVIV_CHECK(...)   — internal invariant checks for states where
//                         continuing is meaningless (corrupted process
//                         state, unreachable code). A failed check aborts
//                         with a message. Checks stay enabled in release
//                         builds: a code generator that emits wrong code
//                         silently is worse than one that stops.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace aviv {

// Position inside a source text (1-based). line == 0 means "no location".
struct SourceLoc {
  uint32_t line = 0;
  uint32_t column = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  [[nodiscard]] std::string str() const {
    if (!valid()) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

// User-facing error (bad ISDL text, bad block text, unsatisfiable request).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message)
      : std::runtime_error(message) {}
  Error(SourceLoc loc, const std::string& message)
      : std::runtime_error(loc.valid() ? loc.str() + ": " + message : message),
        loc_(loc) {}

  [[nodiscard]] SourceLoc loc() const { return loc_; }

 protected:
  // For subclasses whose message already embeds its locations (ParseError):
  // attaches loc for programmatic access without prefixing it to what().
  struct Preformatted {};
  Error(Preformatted, SourceLoc loc, const std::string& message)
      : std::runtime_error(message), loc_(loc) {}

 private:
  SourceLoc loc_;
};

// Internal invariant violation on a recoverable path (AVIV_REQUIRE): a bug
// in AVIV, surfaced as an exception so one bad request cannot take down a
// warm daemon. The driver catches it and degrades to the baseline code
// generator (see DriverOptions::baselineFallback).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& message) : Error(message) {}
};

// Transient failure (injected fault, I/O hiccup) that callers may retry
// with backoff; thrown by fail-point sites (support/failpoint.h).
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& message) : Error(message) {}
};

// One located message from a parser. Parsers in panic-mode recovery collect
// several of these before giving up, so a user sees every syntax error in
// one pass instead of one-error-per-invocation.
struct Diagnostic {
  SourceLoc loc;
  std::string message;

  // "file:line:col: message" (or just the message when unlocated).
  [[nodiscard]] std::string str(const std::string& sourceName) const;
};

// Rebuilds a Diagnostic from a thrown Error, un-prefixing the "line:col: "
// that Error's locating constructor baked into what(). Used by the parsers
// when folding a caught single error into a multi-diagnostic ParseError.
[[nodiscard]] Diagnostic toDiagnostic(const Error& e);

// Malformed source text (ISDL, block language, MiniC). Carries the full
// diagnostic list from a panic-mode parse; what() formats them one per
// line. Derives from Error so existing catch(const Error&) sites — the
// driver, avivd's per-request isolation — already treat it as a
// recoverable user-input failure, never an abort.
class ParseError : public Error {
 public:
  ParseError(std::string sourceName, std::vector<Diagnostic> diagnostics);

  [[nodiscard]] const std::string& sourceName() const { return sourceName_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }

 private:
  std::string sourceName_;
  std::vector<Diagnostic> diagnostics_;
};

// A configurable resource ceiling (split-node count, clique count, arena
// bytes — see CodegenOptions) was exceeded while compiling one block. The
// input is not *wrong*, just too expensive for the aggressive engine; the
// driver routes this into the baseline-fallback path with ceilings lifted.
class ResourceLimitExceeded : public Error {
 public:
  ResourceLimitExceeded(std::string resource, uint64_t used, uint64_t limit);

  [[nodiscard]] const std::string& resource() const { return resource_; }
  [[nodiscard]] uint64_t used() const { return used_; }
  [[nodiscard]] uint64_t limit() const { return limit_; }

 private:
  std::string resource_;
  uint64_t used_;
  uint64_t limit_;
};

namespace detail {
[[noreturn]] void checkFailed(const char* file, int line, const char* expr,
                              const std::string& message);
[[noreturn]] void requireFailed(const char* file, int line, const char* expr,
                                const std::string& message);
}  // namespace detail

}  // namespace aviv

// Internal invariant check; always on.
#define AVIV_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::aviv::detail::checkFailed(__FILE__, __LINE__, #expr, std::string{}); \
    }                                                                      \
  } while (false)

// Invariant check with a streamed message: AVIV_CHECK_MSG(x > 0, "x=" << x).
#define AVIV_CHECK_MSG(expr, stream_expr)                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream aviv_check_os_;                                   \
      aviv_check_os_ << stream_expr;                                       \
      ::aviv::detail::checkFailed(__FILE__, __LINE__, #expr,               \
                                  aviv_check_os_.str());                   \
    }                                                                      \
  } while (false)

#define AVIV_UNREACHABLE(msg)                                              \
  ::aviv::detail::checkFailed(__FILE__, __LINE__, "unreachable", (msg))

// Debug-only invariant check for hot paths (DynBitset accessors, Span
// indexing, inner covering loops): compiled out in optimized release builds
// (NDEBUG), but kept active in Debug builds AND in sanitizer builds even
// when they define NDEBUG — the ASan/UBSan/TSan CI jobs build
// RelWithDebInfo, and an out-of-bounds word access must still fail loudly
// there rather than rely on the sanitizer catching the symptom.
#if !defined(NDEBUG) || defined(AVIV_FORCE_DCHECKS) ||                     \
    defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define AVIV_DCHECKS_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define AVIV_DCHECKS_ENABLED 1
#else
#define AVIV_DCHECKS_ENABLED 0
#endif
#else
#define AVIV_DCHECKS_ENABLED 0
#endif

#if AVIV_DCHECKS_ENABLED
#define AVIV_DCHECK(expr) AVIV_CHECK(expr)
#define AVIV_DCHECK_MSG(expr, stream_expr) AVIV_CHECK_MSG(expr, stream_expr)
#else
// The condition is not evaluated (hot-path accessors must cost nothing),
// but it stays visible to the compiler so it cannot bit-rot.
#define AVIV_DCHECK(expr)              \
  do {                                 \
    if (false) { (void)(expr); }       \
  } while (false)
#define AVIV_DCHECK_MSG(expr, stream_expr) AVIV_DCHECK(expr)
#endif

// Recoverable invariant check (block-compile path); throws InternalError.
#define AVIV_REQUIRE(expr)                                                  \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::aviv::detail::requireFailed(__FILE__, __LINE__, #expr,              \
                                    std::string{});                         \
    }                                                                       \
  } while (false)

// Recoverable check with a streamed message, mirroring AVIV_CHECK_MSG.
#define AVIV_REQUIRE_MSG(expr, stream_expr)                                 \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream aviv_require_os_;                                  \
      aviv_require_os_ << stream_expr;                                      \
      ::aviv::detail::requireFailed(__FILE__, __LINE__, #expr,              \
                                    aviv_require_os_.str());                \
    }                                                                       \
  } while (false)
