// Phase telemetry — one structured tree per pipeline session recording what
// every stage of the back end did: named phases (split-node build, assignment
// exploration, covering, regalloc, peephole, encode, ...), accumulated wall
// time, and integer counters. The tree replaces ad-hoc per-stage stats
// structs as the single source of truth; the stage-specific structs remain as
// typed views materialized from it (see recordCoreStats / coreStatsView and
// friends). Serializes to JSON (`--stats-json`) and parses back for tooling.
//
// Thread-safety: a TelemetryNode is NOT thread-safe. Parallel pipeline stages
// must write to disjoint subtrees created before the parallel region (the
// driver pre-creates one "block:<name>" child per block).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/timer.h"

namespace aviv {

class TelemetryNode {
 public:
  explicit TelemetryNode(std::string name = "session") : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  // Find-or-create the child phase `name` (stable insertion order).
  TelemetryNode& child(const std::string& name);
  // Existing child or nullptr.
  [[nodiscard]] const TelemetryNode* findChild(const std::string& name) const;
  [[nodiscard]] const std::vector<std::unique_ptr<TelemetryNode>>& children()
      const {
    return children_;
  }

  void addCounter(const std::string& key, int64_t delta);
  void setCounter(const std::string& key, int64_t value);
  // 0 when the counter was never written (see hasCounter).
  [[nodiscard]] int64_t counter(const std::string& key) const;
  [[nodiscard]] bool hasCounter(const std::string& key) const;
  [[nodiscard]] const std::map<std::string, int64_t>& counters() const {
    return counters_;
  }

  void addSeconds(double s) { seconds_ += s; }
  [[nodiscard]] double seconds() const { return seconds_; }

  // Merges `other` into this node: seconds add, counters add, children merge
  // recursively by name. Used to fold per-run telemetry into a report tree.
  void merge(const TelemetryNode& other);

  // Deep equality on names, counters, and child topology. Seconds are
  // wall-clock noise and intentionally not compared.
  [[nodiscard]] bool sameShapeAs(const TelemetryNode& other) const;

  // JSON schema (documented in DESIGN.md §6):
  //   {"name": "...", "seconds": 1.5e-3,
  //    "counters": {"irNodes": 13, ...}, "children": [ ... ]}
  [[nodiscard]] std::string toJson(int indent = 0) const;
  // Inverse of toJson; throws aviv::Error on malformed input.
  [[nodiscard]] static TelemetryNode fromJson(const std::string& json);

 private:
  std::string name_;
  double seconds_ = 0.0;
  std::map<std::string, int64_t> counters_;
  std::vector<std::unique_ptr<TelemetryNode>> children_;
};

// RAII phase timer: find-or-creates `name` under `parent` and adds the
// scope's wall time to it on destruction. Every phase is also an
// observability event: when tracing is on the scope emits one complete
// trace span (category "phase"), and when metrics are on its latency is
// recorded into the `phase.<name>.us` histogram — both are single-branch
// no-ops otherwise (src/obs/).
class PhaseScope {
 public:
  PhaseScope(TelemetryNode& parent, const std::string& name)
      : node_(parent.child(name)), span_("phase", name) {}
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope() {
    const double seconds = timer_.seconds();
    node_.addSeconds(seconds);
    if (metrics::on())
      metrics::Registry::instance()
          .histogram("phase." + node_.name() + ".us")
          .record(static_cast<int64_t>(seconds * 1e6));
  }

  [[nodiscard]] TelemetryNode& node() { return node_; }

 private:
  TelemetryNode& node_;
  trace::Span span_;
  WallTimer timer_;
};

}  // namespace aviv
