#include "support/dot.h"

namespace aviv {

DotWriter::DotWriter(std::string graphName) : name_(std::move(graphName)) {}

void DotWriter::addNode(const std::string& id, const std::string& attrs) {
  lines_.push_back("  \"" + escape(id) + "\" [" + attrs + "];");
}

void DotWriter::addEdge(const std::string& from, const std::string& to,
                        const std::string& attrs) {
  std::string line = "  \"" + escape(from) + "\" -> \"" + escape(to) + "\"";
  if (!attrs.empty()) line += " [" + attrs + "]";
  lines_.push_back(line + ";");
}

void DotWriter::addRaw(const std::string& line) {
  lines_.push_back("  " + line);
}

std::string DotWriter::str() const {
  std::string out = "digraph \"" + escape(name_) + "\" {\n";
  for (const auto& line : lines_) out += line + "\n";
  out += "}\n";
  return out;
}

std::string DotWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace aviv
