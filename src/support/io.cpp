#include "support/io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/error.h"

#ifndef AVIV_MACHINE_DIR
#define AVIV_MACHINE_DIR "machines"
#endif
#ifndef AVIV_BLOCK_DIR
#define AVIV_BLOCK_DIR "blocks"
#endif

namespace aviv {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write file: " + path);
  out << content;
}

namespace {
std::string dirFromEnv(const char* var, const char* fallback) {
  if (const char* env = std::getenv(var); env != nullptr && *env != '\0')
    return env;
  return fallback;
}
}  // namespace

std::string machineDir() {
  return dirFromEnv("AVIV_MACHINE_DIR", AVIV_MACHINE_DIR);
}

std::string blockDir() { return dirFromEnv("AVIV_BLOCK_DIR", AVIV_BLOCK_DIR); }

std::string machinePath(const std::string& name) {
  return machineDir() + "/" + name + ".isdl";
}

std::string blockPath(const std::string& name) {
  return blockDir() + "/" + name + ".blk";
}

}  // namespace aviv
