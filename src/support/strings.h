// Small string utilities used by the ISDL/block parsers and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aviv {

[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
[[nodiscard]] bool startsWith(std::string_view s, std::string_view prefix);
[[nodiscard]] bool endsWith(std::string_view s, std::string_view suffix);
[[nodiscard]] std::string toLower(std::string_view s);
[[nodiscard]] std::string toUpper(std::string_view s);

// Joins items with `sep`; items must be string-convertible via operator<<.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

// "1 item" / "3 items"
[[nodiscard]] std::string plural(size_t n, std::string_view noun);

// Fixed-point formatting of a double with `digits` decimals (no locale).
[[nodiscard]] std::string formatFixed(double value, int digits);

}  // namespace aviv
