#include "support/cli.h"

#include <cstdlib>

#include "support/error.h"
#include "support/strings.h"

namespace aviv {

CliFlags::CliFlags(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "aviv";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!startsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !startsWith(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

std::string CliFlags::getString(const std::string& name,
                                const std::string& defaultValue) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? defaultValue : it->second;
}

int64_t CliFlags::getInt(const std::string& name, int64_t defaultValue) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return defaultValue;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0')
    throw Error("flag --" + name + " expects an integer, got '" + it->second +
                "'");
  return v;
}

double CliFlags::getDouble(const std::string& name, double defaultValue) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return defaultValue;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0')
    throw Error("flag --" + name + " expects a number, got '" + it->second +
                "'");
  return v;
}

bool CliFlags::getBool(const std::string& name, bool defaultValue) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return defaultValue;
  const std::string v = toLower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error("flag --" + name + " expects a boolean, got '" + it->second +
              "'");
}

void CliFlags::finish() const {
  for (const auto& [name, value] : values_) {
    if (!consumed_.count(name))
      throw Error("unknown flag --" + name + " (value '" + value + "')");
  }
}

}  // namespace aviv
