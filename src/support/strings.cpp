#include "support/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace aviv {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string toUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string plural(size_t n, std::string_view noun) {
  std::string out = std::to_string(n) + " " + std::string(noun);
  if (n != 1) out += "s";
  return out;
}

std::string formatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace aviv
