#include "support/thread_pool.h"

namespace aviv {

namespace {
// Set while a thread is executing parallelFor work; nested calls detect it
// and degrade to an inline serial loop.
thread_local bool tlInParallelRegion = false;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int extra = threads > 1 ? threads - 1 : 0;
  queues_.reserve(static_cast<size_t>(extra) + 1);
  for (int i = 0; i <= extra; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(static_cast<size_t>(extra));
  for (int i = 1; i <= extra; ++i)
    workers_.emplace_back([this, i] { workerMain(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wakeCv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::popOwn(int self, size_t* index) {
  Queue& q = *queues_[static_cast<size_t>(self)];
  std::lock_guard<std::mutex> lk(q.mu);
  if (q.items.empty()) return false;
  *index = q.items.front();
  q.items.pop_front();
  return true;
}

bool ThreadPool::steal(int self, size_t* index) {
  const size_t count = queues_.size();
  for (size_t off = 1; off < count; ++off) {
    Queue& q = *queues_[(static_cast<size_t>(self) + off) % count];
    std::lock_guard<std::mutex> lk(q.mu);
    if (q.items.empty()) continue;
    *index = q.items.back();
    q.items.pop_back();
    return true;
  }
  return false;
}

bool ThreadPool::runOne(int self) {
  size_t index = 0;
  if (!popOwn(self, &index) && !steal(self, &index)) return false;
  try {
    (*fn_)(index, self);
  } catch (...) {
    std::lock_guard<std::mutex> lk(errMu_);
    if (firstError_ == nullptr || index < firstErrorIndex_) {
      firstError_ = std::current_exception();
      firstErrorIndex_ = index;
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (--pending_ == 0) doneCv_.notify_all();
  }
  return true;
}

void ThreadPool::workerMain(int self) {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      wakeCv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    tlInParallelRegion = true;
    while (runOne(self)) {
    }
    tlInParallelRegion = false;
  }
}

void ThreadPool::parallelFor(size_t n, const IndexFn& fn) {
  if (n == 0) return;
  if (tlInParallelRegion || workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  std::lock_guard<std::mutex> job(jobMu_);
  fn_ = &fn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    pending_ = n;
  }
  // One contiguous chunk per participant. Items become visible to workers
  // only under the queue mutexes, after fn_ and pending_ are written.
  const size_t parts = queues_.size();
  for (size_t p = 0; p < parts; ++p) {
    const size_t begin = n * p / parts;
    const size_t end = n * (p + 1) / parts;
    Queue& q = *queues_[p];
    std::lock_guard<std::mutex> lk(q.mu);
    for (size_t i = begin; i < end; ++i) q.items.push_back(i);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++epoch_;
  }
  wakeCv_.notify_all();
  tlInParallelRegion = true;
  while (runOne(0)) {
  }
  tlInParallelRegion = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    doneCv_.wait(lk, [&] { return pending_ == 0; });
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(errMu_);
    err = firstError_;
    firstError_ = nullptr;
  }
  if (err != nullptr) std::rethrow_exception(err);
}

}  // namespace aviv
