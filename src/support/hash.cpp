#include "support/hash.h"

namespace aviv {

namespace {

// Murmur3's 64-bit finalizer: full avalanche, well studied.
uint64_t fmix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

}  // namespace

std::string Hash128::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const uint64_t word = i < 8 ? hi : lo;
    const int shift = 56 - 8 * (i % 8);
    const uint8_t byte = static_cast<uint8_t>(word >> shift);
    out[static_cast<size_t>(2 * i)] = digits[byte >> 4];
    out[static_cast<size_t>(2 * i + 1)] = digits[byte & 0xf];
  }
  return out;
}

Hasher& Hasher::bytes(const void* data, size_t n) {
  // Byte-at-a-time keeps the result independent of host endianness and
  // alignment. Fingerprint inputs are small (a machine model, a block DAG),
  // so throughput is irrelevant next to a covering run.
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h1_ = (h1_ ^ p[i]) * 0x100000001b3ull;        // FNV-1a 64 prime
    h2_ = (h2_ ^ p[i]) * 0x00000100000001b3ull ^  // second lane: same prime,
          (h2_ << 7 | h2_ >> 57);                 // extra rotation mixing
  }
  length_ += n;
  return *this;
}

namespace {
enum Tag : uint8_t {
  kTagU8 = 1,
  kTagU16,
  kTagU32,
  kTagU64,
  kTagI64,
  kTagBool,
  kTagF64,
  kTagStr,
};
}  // namespace

Hasher& Hasher::u8(uint8_t v) {
  const uint8_t buf[2] = {kTagU8, v};
  return bytes(buf, sizeof buf);
}

Hasher& Hasher::u16(uint16_t v) {
  const uint8_t buf[3] = {kTagU16, static_cast<uint8_t>(v),
                          static_cast<uint8_t>(v >> 8)};
  return bytes(buf, sizeof buf);
}

Hasher& Hasher::u32(uint32_t v) {
  uint8_t buf[5] = {kTagU32};
  for (int i = 0; i < 4; ++i) buf[i + 1] = static_cast<uint8_t>(v >> (8 * i));
  return bytes(buf, sizeof buf);
}

Hasher& Hasher::u64(uint64_t v) {
  uint8_t buf[9] = {kTagU64};
  for (int i = 0; i < 8; ++i) buf[i + 1] = static_cast<uint8_t>(v >> (8 * i));
  return bytes(buf, sizeof buf);
}

Hasher& Hasher::i64(int64_t v) {
  uint8_t buf[9] = {kTagI64};
  const auto u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) buf[i + 1] = static_cast<uint8_t>(u >> (8 * i));
  return bytes(buf, sizeof buf);
}

Hasher& Hasher::boolean(bool v) {
  const uint8_t buf[2] = {kTagBool, static_cast<uint8_t>(v ? 1 : 0)};
  return bytes(buf, sizeof buf);
}

Hasher& Hasher::f64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  __builtin_memcpy(&bits, &v, sizeof bits);
  uint8_t buf[9] = {kTagF64};
  for (int i = 0; i < 8; ++i)
    buf[i + 1] = static_cast<uint8_t>(bits >> (8 * i));
  return bytes(buf, sizeof buf);
}

Hasher& Hasher::str(std::string_view s) {
  uint8_t buf[9] = {kTagStr};
  const auto n = static_cast<uint64_t>(s.size());
  for (int i = 0; i < 8; ++i) buf[i + 1] = static_cast<uint8_t>(n >> (8 * i));
  bytes(buf, sizeof buf);
  return bytes(s.data(), s.size());
}

Hash128 Hasher::digest() const {
  uint64_t a = fmix64(h1_ ^ length_);
  uint64_t b = fmix64(h2_ ^ (length_ * 0x9e3779b97f4a7c15ull));
  // Cross-mix so each output word depends on both lanes.
  Hash128 out;
  out.hi = fmix64(a + (b << 32 | b >> 32));
  out.lo = fmix64(b + a);
  return out;
}

uint64_t hash64(const void* data, size_t n) {
  Hasher h;
  h.bytes(data, n);
  const Hash128 d = h.digest();
  return d.hi ^ d.lo;
}

}  // namespace aviv
