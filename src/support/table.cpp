#include "support/table.h"

#include "support/error.h"

namespace aviv {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  AVIV_CHECK(!headers_.empty());
}

void TextTable::addRow(std::vector<std::string> cells) {
  AVIV_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, table has "
                            << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void TextTable::addSeparator() { rows_.emplace_back(); }

std::string TextTable::str() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  auto hrule = [&] {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out = hrule() + line(headers_) + hrule();
  for (const auto& row : rows_) {
    out += row.empty() ? hrule() : line(row);
  }
  out += hrule();
  return out;
}

}  // namespace aviv
