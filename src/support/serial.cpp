#include "support/serial.h"

#include <cstring>

#include "support/error.h"

namespace aviv {

void ByteWriter::u8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

void ByteWriter::u16(uint16_t v) {
  u8(static_cast<uint8_t>(v));
  u8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

void ByteReader::need(size_t n) const {
  if (data_.size() - pos_ < n)
    throw Error("truncated buffer: need " + std::to_string(n) +
                " bytes at offset " + std::to_string(pos_) + " of " +
                std::to_string(data_.size()));
}

uint8_t ByteReader::u8() {
  need(1);
  return static_cast<uint8_t>(data_[pos_++]);
}

uint16_t ByteReader::u16() {
  need(2);
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  return v;
}

uint32_t ByteReader::u32() {
  need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  return v;
}

uint64_t ByteReader::u64() {
  need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  return v;
}

double ByteReader::f64() {
  const uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteReader::str() {
  const uint32_t n = u32();
  need(n);
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

}  // namespace aviv
