// TextTable — aligned plain-text tables for the experiment harnesses.
// The Table I / Table II benches print through this so every reproduction
// table has the same visual format as the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace aviv {

class TextTable {
 public:
  // Column headers define the column count; subsequent rows must match it.
  explicit TextTable(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);
  // Convenience: adds a horizontal separator row.
  void addSeparator();

  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

}  // namespace aviv
