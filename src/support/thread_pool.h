// ThreadPool — a small work-stealing pool for the back end's embarrassingly-
// parallel index spaces (candidate-assignment covering, per-block program
// compilation). parallelFor(n, fn) splits [0, n) into one contiguous chunk
// per participant; each participant pops its own chunk front-first and
// steals from the back of other queues when it runs dry. The calling thread
// participates as worker 0, so a pool of size J uses J OS threads total.
//
// Guarantees:
//   * parallelFor blocks until every index has run.
//   * Exceptions thrown by `fn` are captured; after completion the one with
//     the LOWEST index is rethrown — matching what a serial loop that stops
//     at the first failure would surface.
//   * Nested parallelFor calls (from inside a task) run inline serially, so
//     pipeline stages can parallelize independently without deadlock.
//   * Execution order is unspecified; determinism is the reducer's job
//     (callers combine per-worker results with index tie-breaks).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace aviv {

class ThreadPool {
 public:
  // `threads` is the total parallelism including the caller; <= 1 means no
  // worker threads are spawned and parallelFor runs inline.
  explicit ThreadPool(int threads = 1);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int parallelism() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  // fn(index, worker): worker in [0, parallelism()) identifies the executing
  // participant — use it to index per-worker accumulators without locking.
  using IndexFn = std::function<void(size_t index, int worker)>;
  void parallelFor(size_t n, const IndexFn& fn);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<size_t> items;
  };

  void workerMain(int self);
  bool runOne(int self);
  bool popOwn(int self, size_t* index);
  bool steal(int self, size_t* index);

  std::vector<std::unique_ptr<Queue>> queues_;  // [0] = caller's queue
  std::vector<std::thread> workers_;

  std::mutex jobMu_;  // serializes top-level parallelFor calls

  std::mutex mu_;  // guards epoch_, pending_, stop_
  std::condition_variable wakeCv_;
  std::condition_variable doneCv_;
  uint64_t epoch_ = 0;
  size_t pending_ = 0;
  bool stop_ = false;

  const IndexFn* fn_ = nullptr;  // valid while a parallelFor is in flight

  std::mutex errMu_;
  std::exception_ptr firstError_;
  size_t firstErrorIndex_ = 0;
};

}  // namespace aviv
