#include "support/lexer.h"

#include <algorithm>
#include <cctype>

namespace aviv {

namespace {
bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
bool isIdentChar(char c) {
  return isIdentStart(c) || std::isdigit(static_cast<unsigned char>(c));
}
}  // namespace

std::string Token::describe() const {
  switch (kind) {
    case Kind::kIdent:
      return "identifier '" + text + "'";
    case Kind::kNumber:
      return "number " + std::to_string(number);
    case Kind::kPunct:
      return "'" + text + "'";
    case Kind::kString:
      return "string \"" + text + "\"";
    case Kind::kEnd:
      return "end of input";
  }
  return "<token>";
}

Lexer::Lexer(std::string_view source, std::vector<std::string> multiPuncts)
    : src_(source), multiPuncts_(std::move(multiPuncts)) {
  // Longest-first so greedy matching works ("<<=" before "<<" before "<").
  std::sort(multiPuncts_.begin(), multiPuncts_.end(),
            [](const std::string& a, const std::string& b) {
              return a.size() > b.size();
            });
}

void Lexer::advance(size_t n) {
  for (size_t i = 0; i < n && pos_ < src_.size(); ++i) {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }
}

void Lexer::skipWhitespaceAndComments() {
  while (pos_ < src_.size()) {
    const char c = cur();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '#' || (c == '/' && at(1) == '/')) {
      while (pos_ < src_.size() && cur() != '\n') advance();
    } else if (c == '/' && at(1) == '*') {
      const SourceLoc start = here();
      advance(2);
      while (pos_ < src_.size() && !(cur() == '*' && at(1) == '/')) advance();
      if (pos_ >= src_.size())
        throw Error(start, "unterminated block comment");
      advance(2);
    } else {
      return;
    }
  }
}

Token Lexer::lex() {
  skipWhitespaceAndComments();
  Token tok;
  tok.loc = here();
  if (pos_ >= src_.size()) {
    tok.kind = Token::Kind::kEnd;
    return tok;
  }

  const char c = cur();
  if (isIdentStart(c)) {
    tok.kind = Token::Kind::kIdent;
    while (isIdentChar(cur())) {
      tok.text += cur();
      advance();
    }
    return tok;
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    tok.kind = Token::Kind::kNumber;
    int base = 10;
    std::string digits;
    if (c == '0' && (at(1) == 'x' || at(1) == 'X')) {
      base = 16;
      advance(2);
      while (std::isxdigit(static_cast<unsigned char>(cur()))) {
        digits += cur();
        advance();
      }
      if (digits.empty()) throw Error(tok.loc, "malformed hex literal");
    } else {
      while (std::isdigit(static_cast<unsigned char>(cur()))) {
        digits += cur();
        advance();
      }
    }
    tok.text = digits;
    // std::stoll throws std::out_of_range (not aviv::Error) on oversized
    // literals, which would escape the parser's recovery machinery.
    try {
      tok.number = std::stoll(digits, nullptr, base);
    } catch (const std::out_of_range&) {
      throw Error(tok.loc, "integer literal out of range: " +
                               (base == 16 ? "0x" + digits : digits));
    }
    return tok;
  }

  if (c == '"') {
    tok.kind = Token::Kind::kString;
    advance();
    while (pos_ < src_.size() && cur() != '"') {
      if (cur() == '\\' && (at(1) == '"' || at(1) == '\\')) advance();
      tok.text += cur();
      advance();
    }
    if (pos_ >= src_.size()) throw Error(tok.loc, "unterminated string");
    advance();  // closing quote
    return tok;
  }

  // Punctuation: try multi-character first.
  tok.kind = Token::Kind::kPunct;
  for (const std::string& p : multiPuncts_) {
    if (src_.substr(pos_, p.size()) == p) {
      tok.text = p;
      advance(p.size());
      return tok;
    }
  }
  tok.text = std::string(1, c);
  advance();
  return tok;
}

const Token& Lexer::peek(size_t ahead) {
  while (lookahead_.size() <= ahead) lookahead_.push_back(lex());
  return lookahead_[ahead];
}

Token Lexer::next() {
  if (!lookahead_.empty()) {
    Token tok = lookahead_.front();
    lookahead_.erase(lookahead_.begin());
    return tok;
  }
  return lex();
}

bool Lexer::tryConsume(std::string_view punct) {
  if (peek().isPunct(punct)) {
    next();
    return true;
  }
  return false;
}

Token Lexer::expectPunct(std::string_view punct) {
  Token tok = next();
  if (!tok.isPunct(punct))
    throw Error(tok.loc, "expected '" + std::string(punct) + "', got " +
                             tok.describe());
  return tok;
}

Token Lexer::expectIdent() {
  Token tok = next();
  if (!tok.is(Token::Kind::kIdent))
    throw Error(tok.loc, "expected identifier, got " + tok.describe());
  return tok;
}

Token Lexer::expectNumber() {
  Token tok = next();
  if (!tok.is(Token::Kind::kNumber))
    throw Error(tok.loc, "expected number, got " + tok.describe());
  return tok;
}

bool Lexer::tryConsumeIdent(std::string_view name) {
  if (peek().isIdent(name)) {
    next();
    return true;
  }
  return false;
}

bool Lexer::atEnd() { return peek().is(Token::Kind::kEnd); }

}  // namespace aviv
