// CliFlags — a tiny --flag=value / --flag value / --bool-flag parser for the
// examples and bench drivers. Not a general argv library; just enough to let
// every shipped binary take machine/block/heuristic options uniformly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aviv {

class CliFlags {
 public:
  // Parses argv; throws aviv::Error on malformed input or (after the
  // accessors run) unknown flags via finish(). Positional arguments are
  // collected in order.
  CliFlags(int argc, const char* const* argv);

  [[nodiscard]] std::string getString(const std::string& name,
                                      const std::string& defaultValue);
  [[nodiscard]] int64_t getInt(const std::string& name, int64_t defaultValue);
  [[nodiscard]] double getDouble(const std::string& name, double defaultValue);
  [[nodiscard]] bool getBool(const std::string& name, bool defaultValue);

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  // Throws if any flag was provided that no accessor consumed — catches
  // typos like --bem-width.
  void finish() const;

  [[nodiscard]] std::string programName() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace aviv
