// SmallVec<T, N> — a vector with N elements of inline storage, for the
// dependency-edge lists (AgNode::preds/succs) that are almost always 1-4
// entries: the inline buffer removes two heap allocations per graph node on
// the per-candidate materialization path. Only trivially copyable element
// types are supported (ids), which keeps copy/move/erase to memcpy/memmove.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "support/error.h"

namespace aviv {

template <typename T, size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);
  static_assert(N > 0);

 public:
  SmallVec() = default;
  SmallVec(const SmallVec& o) { assign(o.data(), o.size_); }
  SmallVec(SmallVec&& o) noexcept {
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.heap_ = nullptr;
      o.cap_ = N;
      o.size_ = 0;
    } else {
      assign(o.data(), o.size_);
    }
  }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      size_ = 0;
      assign(o.data(), o.size_);
    }
    return *this;
  }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      delete[] heap_;
      heap_ = nullptr;
      cap_ = N;
      size_ = 0;
      if (o.heap_ != nullptr) {
        heap_ = o.heap_;
        cap_ = o.cap_;
        size_ = o.size_;
        o.heap_ = nullptr;
        o.cap_ = N;
        o.size_ = 0;
      } else {
        assign(o.data(), o.size_);
      }
    }
    return *this;
  }
  ~SmallVec() { delete[] heap_; }

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T* data() { return heap_ != nullptr ? heap_ : inline_; }
  [[nodiscard]] const T* data() const {
    return heap_ != nullptr ? heap_ : inline_;
  }
  [[nodiscard]] T* begin() { return data(); }
  [[nodiscard]] T* end() { return data() + size_; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size_; }
  [[nodiscard]] T& operator[](size_t i) {
    AVIV_DCHECK(i < size_);
    return data()[i];
  }
  [[nodiscard]] const T& operator[](size_t i) const {
    AVIV_DCHECK(i < size_);
    return data()[i];
  }
  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  void push_back(T value) {
    if (size_ == cap_) grow();
    data()[size_++] = value;
  }
  void clear() { size_ = 0; }

  // Erases [first, last); iterators are plain pointers into data().
  T* erase(T* first, T* last) {
    AVIV_DCHECK(data() <= first && first <= last && last <= end());
    const size_t tail = static_cast<size_t>(end() - last);
    if (tail != 0) std::memmove(first, last, tail * sizeof(T));
    size_ -= static_cast<uint32_t>(last - first);
    return first;
  }

  bool operator==(const SmallVec& o) const {
    return size_ == o.size_ && std::equal(begin(), end(), o.begin());
  }

 private:
  void assign(const T* src, uint32_t n) {
    if (n > cap_) {
      delete[] heap_;
      heap_ = new T[n];
      cap_ = n;
    }
    if (n != 0) std::memcpy(data(), src, n * sizeof(T));
    size_ = n;
  }
  void grow() {
    const uint32_t newCap = cap_ * 2;
    T* bigger = new T[newCap];
    std::memcpy(bigger, data(), size_ * sizeof(T));
    delete[] heap_;
    heap_ = bigger;
    cap_ = newCap;
  }

  T inline_[N];
  T* heap_ = nullptr;
  uint32_t size_ = 0;
  uint32_t cap_ = N;
};

}  // namespace aviv
