// Self-contained 128-bit content hashing for the compilation service. The
// service keys its result cache on a canonical fingerprint of (machine, IR
// DAG, options); that key must be stable across processes, platforms, and
// rebuilds, so the hash here is defined entirely by this file — no
// std::hash (implementation-defined), no external libraries.
//
// Hasher is a streaming hash: every primitive is fed as a 1-byte type tag
// followed by a fixed-width little-endian payload, so adjacent fields can
// never alias each other ("ab" + "c" hashes differently from "a" + "bc").
// The two 64-bit lanes use different FNV-style primes and are finalized
// with a murmur-style avalanche, which is plenty for cache keying (corrupt
// entries are additionally caught by a per-entry checksum, see hash64).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace aviv {

struct Hash128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Hash128&) const = default;
  auto operator<=>(const Hash128&) const = default;

  [[nodiscard]] bool isZero() const { return hi == 0 && lo == 0; }
  // 32 lowercase hex characters, hi first.
  [[nodiscard]] std::string hex() const;
};

class Hasher {
 public:
  // Raw bytes (no tag, no length); building block for the typed feeders.
  Hasher& bytes(const void* data, size_t n);

  Hasher& u8(uint8_t v);
  Hasher& u16(uint16_t v);
  Hasher& u32(uint32_t v);
  Hasher& u64(uint64_t v);
  Hasher& i64(int64_t v);
  Hasher& boolean(bool v);
  // Bit pattern of the double; all producers write the same canonical
  // value, so bitwise identity is the right equality here.
  Hasher& f64(double v);
  // Length-prefixed, so consecutive strings cannot alias.
  Hasher& str(std::string_view s);

  [[nodiscard]] Hash128 digest() const;

 private:
  uint64_t h1_ = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  uint64_t h2_ = 0x9e3779b97f4a7c15ull;  // golden-ratio seed
  uint64_t length_ = 0;
};

// One-shot 64-bit hash of a byte buffer — the cache's entry checksum.
[[nodiscard]] uint64_t hash64(const void* data, size_t n);

}  // namespace aviv
