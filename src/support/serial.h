// Bounds-checked binary (de)serialization for the compilation service's
// on-disk cache entries. Fixed little-endian widths and length-prefixed
// strings: the format must be readable by a different process than the one
// that wrote it, and a truncated or bit-flipped file must surface as a
// clean aviv::Error (the cache turns that into "corrupt entry, recompile"),
// never as UB.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace aviv {

class ByteWriter {
 public:
  void u8(uint8_t v);
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  void f64(double v);
  // u32 length prefix + raw bytes.
  void str(std::string_view s);

  [[nodiscard]] const std::string& buffer() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  // All getters throw aviv::Error("truncated ...") when the buffer runs
  // out; str() additionally rejects length prefixes larger than the
  // remaining buffer (the usual bit-flip failure mode).
  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64();
  std::string str();

  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool atEnd() const { return pos_ == data_.size(); }

 private:
  void need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace aviv
