#include "support/telemetry.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "support/error.h"

namespace aviv {

TelemetryNode& TelemetryNode::child(const std::string& name) {
  for (const auto& c : children_)
    if (c->name() == name) return *c;
  children_.push_back(std::make_unique<TelemetryNode>(name));
  return *children_.back();
}

const TelemetryNode* TelemetryNode::findChild(const std::string& name) const {
  for (const auto& c : children_)
    if (c->name() == name) return c.get();
  return nullptr;
}

void TelemetryNode::addCounter(const std::string& key, int64_t delta) {
  counters_[key] += delta;
}

void TelemetryNode::setCounter(const std::string& key, int64_t value) {
  counters_[key] = value;
}

int64_t TelemetryNode::counter(const std::string& key) const {
  const auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second;
}

bool TelemetryNode::hasCounter(const std::string& key) const {
  return counters_.count(key) > 0;
}

void TelemetryNode::merge(const TelemetryNode& other) {
  seconds_ += other.seconds_;
  for (const auto& [key, value] : other.counters_) counters_[key] += value;
  for (const auto& c : other.children_) child(c->name()).merge(*c);
}

bool TelemetryNode::sameShapeAs(const TelemetryNode& other) const {
  if (name_ != other.name_ || counters_ != other.counters_ ||
      children_.size() != other.children_.size())
    return false;
  for (size_t i = 0; i < children_.size(); ++i)
    if (!children_[i]->sameShapeAs(*other.children_[i])) return false;
  return true;
}

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          // Remaining control characters (JSON forbids them raw).
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
}

// %.17g round-trips every double exactly.
void appendDouble(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void writeNode(std::string& out, const TelemetryNode& node, int indent) {
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string pad2(static_cast<size_t>(indent) + 2, ' ');
  out += "{\n" + pad2 + "\"name\": ";
  appendEscaped(out, node.name());
  out += ",\n" + pad2 + "\"seconds\": ";
  appendDouble(out, node.seconds());
  out += ",\n" + pad2 + "\"counters\": {";
  bool first = true;
  for (const auto& [key, value] : node.counters()) {
    if (!first) out += ", ";
    first = false;
    appendEscaped(out, key);
    out += ": " + std::to_string(value);
  }
  out += "},\n" + pad2 + "\"children\": [";
  first = true;
  for (const auto& c : node.children()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad2 + "  ";
    writeNode(out, *c, indent + 4);
  }
  if (!node.children().empty()) out += "\n" + pad2;
  out += "]\n" + pad + "}";
}

// Minimal recursive-descent parser for exactly the schema toJson emits
// (whitespace-tolerant, keys in any order).
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  TelemetryNode parseNode() {
    expect('{');
    // Fields may arrive in any order; collect into a nameless node first.
    TelemetryNode fields("");
    std::string name;
    bool sawName = false;
    if (!consumeIf('}')) {
      do {
        const std::string key = parseString();
        expect(':');
        if (key == "name") {
          name = parseString();
          sawName = true;
        } else if (key == "seconds") {
          fields.addSeconds(parseNumber());
        } else if (key == "counters") {
          parseCounters(fields);
        } else if (key == "children") {
          parseChildren(fields);
        } else {
          fail("unknown key '" + key + "'");
        }
      } while (consumeIf(','));
      expect('}');
    }
    if (!sawName) fail("telemetry node without \"name\"");
    TelemetryNode node(name);
    node.merge(fields);
    return node;
  }

  void finish() {
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after telemetry JSON");
  }

 private:
  void parseCounters(TelemetryNode& node) {
    expect('{');
    if (consumeIf('}')) return;
    do {
      const std::string key = parseString();
      expect(':');
      node.setCounter(key, static_cast<int64_t>(parseNumber()));
    } while (consumeIf(','));
    expect('}');
  }

  void parseChildren(TelemetryNode& node) {
    expect('[');
    if (consumeIf(']')) return;
    do {
      TelemetryNode c = parseNode();
      node.child(c.name()).merge(c);
    } while (consumeIf(','));
    expect(']');
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              const int digit = h >= '0' && h <= '9'   ? h - '0'
                                : h >= 'a' && h <= 'f' ? h - 'a' + 10
                                : h >= 'A' && h <= 'F' ? h - 'A' + 10
                                                       : -1;
              if (digit < 0) fail("bad hex digit in \\u escape");
              code = code * 16 + static_cast<unsigned>(digit);
            }
            // Telemetry names are byte strings; we only emit \u00XX.
            if (code > 0xff) fail("\\u escape beyond \\u00ff unsupported");
            c = static_cast<char>(code);
            break;
          }
          default: c = esc;
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double parseNumber() {
    skipWs();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail("expected a number");
    pos_ += static_cast<size_t>(end - begin);
    return value;
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consumeIf(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consumeIf(c))
      fail(std::string("expected '") + c + "'");
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("telemetry JSON at offset " + std::to_string(pos_) + ": " +
                what);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string TelemetryNode::toJson(int indent) const {
  std::string out;
  writeNode(out, *this, indent);
  out += "\n";
  return out;
}

TelemetryNode TelemetryNode::fromJson(const std::string& json) {
  JsonReader reader(json);
  TelemetryNode node = reader.parseNode();
  reader.finish();
  return node;
}

}  // namespace aviv
