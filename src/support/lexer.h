// Generic tokenizer shared by the ISDL parser and the block-language parser.
//
// Produces identifiers, integer literals (decimal / 0x hex), double-quoted
// strings, and punctuation. Multi-character punctuation (e.g. "->", "<<") is
// matched greedily from a caller-supplied list. Comments: '#' and '//' to end
// of line, '/* ... */' block comments. Every token carries a SourceLoc for
// error reporting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace aviv {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kEnd };

  Kind kind = Kind::kEnd;
  std::string text;    // identifier spelling / punct spelling / string body
  int64_t number = 0;  // kNumber only
  SourceLoc loc;

  [[nodiscard]] bool is(Kind k) const { return kind == k; }
  [[nodiscard]] bool isPunct(std::string_view p) const {
    return kind == Kind::kPunct && text == p;
  }
  [[nodiscard]] bool isIdent(std::string_view name) const {
    return kind == Kind::kIdent && text == name;
  }
  // Human-readable description for error messages.
  [[nodiscard]] std::string describe() const;
};

class Lexer {
 public:
  // `multiPuncts` lists punctuation longer than one character, longest first
  // is not required (the lexer sorts internally).
  Lexer(std::string_view source, std::vector<std::string> multiPuncts = {});

  [[nodiscard]] const Token& peek(size_t ahead = 0);
  Token next();

  // Consumes the next token iff it is the given punctuation.
  bool tryConsume(std::string_view punct);
  // Consumes and checks; throws aviv::Error otherwise.
  Token expectPunct(std::string_view punct);
  Token expectIdent();
  Token expectNumber();
  // Consumes the next token iff it is the identifier `name`.
  bool tryConsumeIdent(std::string_view name);

  [[nodiscard]] bool atEnd();

 private:
  Token lex();
  void skipWhitespaceAndComments();
  [[nodiscard]] SourceLoc here() const { return {line_, column_}; }
  char cur() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  char at(size_t off) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  void advance(size_t n = 1);

  std::string_view src_;
  std::vector<std::string> multiPuncts_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t column_ = 1;
  std::vector<Token> lookahead_;
};

}  // namespace aviv
