// File loading + location of the shipped data directories (machines/,
// blocks/). Paths are baked in by CMake so binaries work from any CWD, with
// environment-variable overrides for relocated installs.
#pragma once

#include <string>

namespace aviv {

// Whole-file read; throws aviv::Error on failure.
[[nodiscard]] std::string readFile(const std::string& path);

void writeFile(const std::string& path, const std::string& content);

// Directory containing the shipped .isdl machine descriptions.
// $AVIV_MACHINE_DIR overrides the compiled-in default.
[[nodiscard]] std::string machineDir();

// Directory containing the shipped .blk benchmark blocks.
// $AVIV_BLOCK_DIR overrides the compiled-in default.
[[nodiscard]] std::string blockDir();

// machineDir()/name + ".isdl"
[[nodiscard]] std::string machinePath(const std::string& name);
// blockDir()/name + ".blk"
[[nodiscard]] std::string blockPath(const std::string& name);

}  // namespace aviv
