#include "support/bitset.h"

#include <algorithm>

namespace aviv {

void DynBitset::resize(size_t size, bool value) {
  const size_t oldSize = size_;
  size_ = size;
  words_.resize(numWords(size), value ? ~uint64_t{0} : uint64_t{0});
  if (value && size > oldSize && oldSize % 64 != 0) {
    // Fill the tail of the previously-last word.
    words_[oldSize >> 6] |= ~uint64_t{0} << (oldSize & 63);
  }
  trimTail();
}

void DynBitset::trimTail() {
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (size_ & 63)) - 1;
  }
}

void DynBitset::setAll() {
  std::fill(words_.begin(), words_.end(), ~uint64_t{0});
  trimTail();
}

void DynBitset::resetAll() {
  std::fill(words_.begin(), words_.end(), uint64_t{0});
}

size_t DynBitset::count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
  return n;
}

bool DynBitset::any() const {
  for (uint64_t w : words_)
    if (w != 0) return true;
  return false;
}

DynBitset& DynBitset::operator|=(const DynBitset& o) {
  AVIV_CHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

DynBitset& DynBitset::operator&=(const DynBitset& o) {
  AVIV_CHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

DynBitset& DynBitset::operator^=(const DynBitset& o) {
  AVIV_CHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

DynBitset& DynBitset::andNot(const DynBitset& o) {
  AVIV_CHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

bool DynBitset::intersects(const DynBitset& o) const {
  AVIV_CHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & o.words_[i]) != 0) return true;
  return false;
}

bool DynBitset::isSubsetOf(const DynBitset& o) const {
  AVIV_CHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & ~o.words_[i]) != 0) return false;
  return true;
}

size_t DynBitset::intersectCount(const DynBitset& o) const {
  AVIV_CHECK(size_ == o.size_);
  size_t n = 0;
  for (size_t i = 0; i < words_.size(); ++i)
    n += static_cast<size_t>(__builtin_popcountll(words_[i] & o.words_[i]));
  return n;
}

size_t DynBitset::findFirst(size_t from) const {
  if (from >= size_) return size_;
  size_t w = from >> 6;
  uint64_t bits = words_[w] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0)
      return w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
    if (++w >= words_.size()) return size_;
    bits = words_[w];
  }
}

std::vector<size_t> DynBitset::toIndices() const {
  std::vector<size_t> out;
  out.reserve(count());
  forEach([&](size_t i) { out.push_back(i); });
  return out;
}

bool DynBitset::lexLess(const DynBitset& o) const {
  AVIV_CHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i)
    if (words_[i] != o.words_[i]) return words_[i] < o.words_[i];
  return false;
}

}  // namespace aviv
