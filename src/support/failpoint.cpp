#include "support/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>

#include "support/error.h"
#include "support/strings.h"

namespace aviv {

namespace {

// splitmix64 — deterministic per-hit probability draws.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t hashSite(const std::string& site) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : site) h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
  return h;
}

}  // namespace

FailPoints& FailPoints::instance() {
  static FailPoints registry;
  return registry;
}

FailPoints::FailPoints() {
  const char* spec = std::getenv("AVIV_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return;
  uint64_t seed = 0;
  if (const char* seedEnv = std::getenv("AVIV_FAILPOINT_SEED");
      seedEnv != nullptr && *seedEnv != '\0')
    seed = std::strtoull(seedEnv, nullptr, 10);
  configure(spec, seed);
}

void FailPoints::configure(const std::string& spec, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  seed_ = seed;
  for (const std::string& item : split(spec, ',')) {
    const std::string entry{trim(item)};
    if (entry.empty()) continue;
    const auto parts = split(entry, ':');
    Point point;
    bool ok = !parts.empty() && !parts[0].empty() && parts.size() <= 3;
    if (ok && parts.size() >= 2) {
      char* end = nullptr;
      point.prob = std::strtod(parts[1].c_str(), &end);
      ok = end != nullptr && *end == '\0' && point.prob >= 0.0 &&
           point.prob <= 1.0;
    }
    if (ok && parts.size() == 3) {
      char* end = nullptr;
      point.remaining = std::strtoll(parts[2].c_str(), &end, 10);
      ok = end != nullptr && *end == '\0' && point.remaining >= 0;
    }
    // A bad entry must never crash the process it was meant to test.
    if (!ok) continue;
    points_[parts[0]] = point;
  }
  active_.store(!points_.empty(), std::memory_order_relaxed);
}

bool FailPoints::shouldFail(const char* site) {
  if (!active_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(site);
  if (it == points_.end()) return false;
  Point& point = it->second;
  if (point.remaining == 0) return false;
  const int64_t hit = point.hits++;
  if (point.prob < 1.0) {
    const uint64_t draw =
        mix64(seed_ ^ hashSite(it->first) ^ static_cast<uint64_t>(hit));
    const double u =
        static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
    if (u >= point.prob) return false;
  }
  if (point.remaining > 0) --point.remaining;
  ++point.fires;
  return true;
}

void FailPoints::maybeThrow(const char* site) {
  if (shouldFail(site))
    throw TransientError(std::string("fail point '") + site + "' fired");
}

void FailPoints::maybeCrash(const char* site, CrashAction action) {
  if (!shouldFail(site)) return;
  switch (action) {
    case CrashAction::kSegv: {
      // Write through a volatile null pointer the optimizer cannot elide.
      volatile int* target = nullptr;
      *target = 42;
      break;
    }
    case CrashAction::kAbort:
      std::abort();
    case CrashAction::kOom: {
      // Grow until allocation fails — with a worker RLIMIT_AS cap that is
      // the cap, without one it is the machine — then die the way the
      // kernel OOM-killer would leave the process: abruptly. Memory is
      // touched so the pages are really committed, and deliberately
      // leaked: the process is about to die.
      for (;;) {
        constexpr size_t kChunk = 16u << 20;
        char* chunk = new (std::nothrow) char[kChunk];
        if (chunk == nullptr) std::abort();
        for (size_t i = 0; i < kChunk; i += 4096) chunk[i] = 1;
      }
    }
    case CrashAction::kHang:
      // Wedged worker: alive (heartbeats would need a live thread, but the
      // spinner never reaches the responder), unkillable by anything but a
      // real signal. sleep keeps a 1-CPU CI box responsive.
      for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

int64_t FailPoints::fires(const char* site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(site);
  return it == points_.end() ? 0 : it->second.fires;
}

}  // namespace aviv
