#include "fuzz/minimize.h"

#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "support/error.h"

namespace aviv {

namespace {

// ---------------------------------------------------------------------------
// Block reductions. Rebuilding is semantic: we copy live nodes (after
// operand redirection) into a fresh DAG in topological order, letting CSE
// merge whatever the rewrite made equal.

// Redirect map entry: uses of `from` read `to` instead (resolved
// transitively so chained replacements compose).
using Redirect = std::map<NodeId, NodeId>;

NodeId resolve(const Redirect& redirect, NodeId id) {
  auto it = redirect.find(id);
  while (it != redirect.end()) {
    id = it->second;
    it = redirect.find(id);
  }
  return id;
}

// Rebuilds `dag` keeping only `outputs` (name -> redirected root), pruning
// everything they do not reach.
BlockDag rebuildBlock(const BlockDag& dag, const Redirect& redirect,
                      const std::vector<std::pair<std::string, NodeId>>& outputs) {
  // Liveness over redirected operands, outputs down.
  std::vector<bool> live(dag.size(), false);
  std::vector<NodeId> work;
  for (const auto& [name, id] : outputs) work.push_back(resolve(redirect, id));
  while (!work.empty()) {
    const NodeId id = work.back();
    work.pop_back();
    if (live[id]) continue;
    live[id] = true;
    for (NodeId operand : dag.node(id).operands)
      work.push_back(resolve(redirect, operand));
  }

  BlockDag out(dag.name());
  std::vector<NodeId> mapped(dag.size(), kNoNode);
  for (NodeId id = 0; id < dag.size(); ++id) {
    if (!live[id]) continue;
    const DagNode& node = dag.node(id);
    if (node.op == Op::kInput) {
      mapped[id] = out.addInput(node.name);
    } else if (node.op == Op::kConst) {
      mapped[id] = out.addConst(node.value);
    } else {
      std::vector<NodeId> operands;
      for (NodeId operand : node.operands)
        operands.push_back(mapped[resolve(redirect, operand)]);
      mapped[id] = out.addOp(node.op, std::move(operands));
    }
  }
  for (const auto& [name, id] : outputs)
    out.markOutput(name, mapped[resolve(redirect, id)]);
  return out;
}

std::vector<BlockDag> blockCandidates(const BlockDag& dag) {
  std::vector<BlockDag> candidates;
  const auto& outputs = dag.outputs();

  // Drop one output (keep at least one).
  if (outputs.size() > 1) {
    for (size_t drop = 0; drop < outputs.size(); ++drop) {
      std::vector<std::pair<std::string, NodeId>> kept;
      for (size_t i = 0; i < outputs.size(); ++i)
        if (i != drop) kept.push_back(outputs[i]);
      candidates.push_back(rebuildBlock(dag, {}, kept));
    }
  }

  // Replace an op node with its first operand, pruning its subtree. Skip
  // replacements that would bind a live-out directly to a leaf — the back
  // end covers computations, not renames.
  std::set<NodeId> outputRoots;
  for (const auto& [name, id] : outputs) outputRoots.insert(id);
  for (NodeId id = 0; id < dag.size(); ++id) {
    const DagNode& node = dag.node(id);
    if (isLeafOp(node.op)) continue;
    const NodeId target = node.operands[0];
    if (outputRoots.count(id) && isLeafOp(dag.node(target).op)) continue;
    Redirect redirect;
    redirect[id] = target;
    candidates.push_back(rebuildBlock(dag, redirect, outputs));
  }
  return candidates;
}

// ---------------------------------------------------------------------------
// Machine reductions, via an editable exploded copy.

struct MachineParts {
  std::string name;
  std::vector<RegFile> regFiles;
  std::vector<Memory> memories;
  std::vector<Bus> buses;
  std::vector<FunctionalUnit> units;
  std::vector<TransferPath> transfers;
  std::vector<Constraint> constraints;

  [[nodiscard]] Machine build() const {
    Machine machine(name);
    for (const RegFile& rf : regFiles) machine.addRegFile(rf);
    for (const Memory& m : memories) machine.addMemory(m);
    for (const Bus& b : buses) machine.addBus(b);
    for (const FunctionalUnit& u : units) machine.addUnit(u);
    for (const TransferPath& t : transfers) machine.addTransfer(t);
    for (const Constraint& c : constraints) machine.addConstraint(c);
    return machine;
  }
};

MachineParts partsOf(const Machine& machine) {
  return {machine.name(),  machine.regFiles(),  machine.memories(),
          machine.buses(), machine.units(),     machine.transfers(),
          machine.constraints()};
}

std::vector<Machine> machineCandidates(const Machine& machine) {
  std::vector<Machine> candidates;
  const MachineParts base = partsOf(machine);
  auto push = [&](const MachineParts& parts) {
    Machine m = parts.build();
    try {
      m.validate();
    } catch (const Error&) {
      return;  // reduction broke structural validity; not a candidate
    }
    candidates.push_back(std::move(m));
  };

  // Drop a unit (keep >= 1): remap/drop constraints that reference it.
  if (base.units.size() > 1) {
    for (size_t drop = 0; drop < base.units.size(); ++drop) {
      MachineParts parts = base;
      parts.units.erase(parts.units.begin() + drop);
      std::vector<Constraint> kept;
      for (Constraint c : parts.constraints) {
        bool references = false;
        for (OpSel& sel : c.together) {
          if (sel.unit == drop) references = true;
          if (sel.unit > drop) --sel.unit;
        }
        if (!references) kept.push_back(std::move(c));
      }
      parts.constraints = std::move(kept);
      push(parts);
    }
  }

  // Drop a transfer path. Disconnecting the machine is fine — the compile
  // then rejects, the signature changes, and the candidate is discarded.
  for (size_t drop = 0; drop < base.transfers.size(); ++drop) {
    MachineParts parts = base;
    parts.transfers.erase(parts.transfers.begin() + drop);
    push(parts);
  }

  // Drop a constraint.
  for (size_t drop = 0; drop < base.constraints.size(); ++drop) {
    MachineParts parts = base;
    parts.constraints.erase(parts.constraints.begin() + drop);
    push(parts);
  }

  // Drop one op from a unit with several, plus constraints referencing it.
  for (size_t u = 0; u < base.units.size(); ++u) {
    if (base.units[u].ops.size() <= 1) continue;
    for (size_t o = 0; o < base.units[u].ops.size(); ++o) {
      MachineParts parts = base;
      const Op dropped = parts.units[u].ops[o].op;
      parts.units[u].ops.erase(parts.units[u].ops.begin() + o);
      std::vector<Constraint> kept;
      for (Constraint& c : parts.constraints) {
        bool references = false;
        for (const OpSel& sel : c.together)
          if (sel.unit == u && sel.op == dropped) references = true;
        if (!references) kept.push_back(std::move(c));
      }
      parts.constraints = std::move(kept);
      push(parts);
    }
  }

  // Drop a register file no unit reads (shifting higher ids), along with
  // any transfers touching it.
  for (size_t drop = 0; drop < base.regFiles.size(); ++drop) {
    bool used = false;
    for (const FunctionalUnit& u : base.units)
      if (u.regFile == drop) used = true;
    if (used) continue;
    MachineParts parts = base;
    parts.regFiles.erase(parts.regFiles.begin() + drop);
    for (FunctionalUnit& u : parts.units)
      if (u.regFile > drop) --u.regFile;
    std::vector<TransferPath> keptT;
    for (TransferPath t : parts.transfers) {
      if ((t.from.isRegFile() && t.from.index == drop) ||
          (t.to.isRegFile() && t.to.index == drop))
        continue;
      if (t.from.isRegFile() && t.from.index > drop) --t.from.index;
      if (t.to.isRegFile() && t.to.index > drop) --t.to.index;
      keptT.push_back(t);
    }
    parts.transfers = std::move(keptT);
    push(parts);
  }

  // Drop a bus no transfer rides (shifting higher ids).
  for (size_t drop = 0; drop < base.buses.size(); ++drop) {
    bool used = false;
    for (const TransferPath& t : base.transfers)
      if (t.bus == drop) used = true;
    if (used) continue;
    MachineParts parts = base;
    parts.buses.erase(parts.buses.begin() + drop);
    for (TransferPath& t : parts.transfers)
      if (t.bus > drop) --t.bus;
    push(parts);
  }

  // Halve a register file (min 1).
  for (size_t r = 0; r < base.regFiles.size(); ++r) {
    if (base.regFiles[r].numRegs <= 1) continue;
    MachineParts parts = base;
    parts.regFiles[r].numRegs = parts.regFiles[r].numRegs / 2;
    push(parts);
  }

  return candidates;
}

}  // namespace

int structuralSize(const Machine& machine, const BlockDag& dag) {
  int size = static_cast<int>(dag.numOpNodes()) +
             static_cast<int>(dag.outputs().size()) +
             static_cast<int>(machine.units().size()) +
             static_cast<int>(machine.transfers().size()) +
             static_cast<int>(machine.constraints().size()) +
             static_cast<int>(machine.regFiles().size());
  for (const FunctionalUnit& u : machine.units())
    size += static_cast<int>(u.ops.size());
  for (const RegFile& rf : machine.regFiles()) size += rf.numRegs;
  return size;
}

MinimizeResult minimizeFuzzCase(const Machine& machine, const BlockDag& dag,
                                const DiffOptions& diffOptions,
                                const std::string& signature,
                                const MinimizeOptions& options) {
  DiffOptions quiet = diffOptions;
  quiet.quarantineDir.clear();  // candidate runs never write artifacts

  MinimizeResult result;
  result.machine = machine;
  result.dag = dag;
  result.signature = signature;
  result.stats.sizeTrajectory.push_back(structuralSize(machine, dag));

  bool improved = true;
  while (improved && result.stats.attempts < options.maxAttempts) {
    improved = false;

    // Block reductions first: shrinking the DAG usually collapses the
    // machine-side search space too.
    for (BlockDag& candidate : blockCandidates(result.dag)) {
      if (result.stats.attempts >= options.maxAttempts) break;
      ++result.stats.attempts;
      const DiffResult run =
          runDifferential(result.machine, candidate, quiet);
      if (run.signature != signature) continue;
      const int size = structuralSize(result.machine, candidate);
      if (size >= result.stats.sizeTrajectory.back()) continue;
      result.dag = std::move(candidate);
      result.stats.sizeTrajectory.push_back(size);
      ++result.stats.accepted;
      improved = true;
      break;  // regenerate candidates against the smaller pair
    }
    if (improved) continue;

    for (Machine& candidate : machineCandidates(result.machine)) {
      if (result.stats.attempts >= options.maxAttempts) break;
      ++result.stats.attempts;
      const DiffResult run = runDifferential(candidate, result.dag, quiet);
      if (run.signature != signature) continue;
      const int size = structuralSize(candidate, result.dag);
      if (size >= result.stats.sizeTrajectory.back()) continue;
      result.machine = std::move(candidate);
      result.stats.sizeTrajectory.push_back(size);
      ++result.stats.accepted;
      improved = true;
      break;
    }
  }
  return result;
}

}  // namespace aviv
