// Delta-debugging minimizer for fuzz failures: greedily shrinks a failing
// machine x block pair while the differential harness keeps returning the
// same failure signature (diff.h), so a fuzz hit lands as a ~10-line repro
// instead of a 500-line blob.
//
// Reductions tried, largest wins first:
//   block   drop a live-out (dead subgraph pruned) · replace an op node
//           with its first operand (subtree pruned)
//   machine drop a unit · drop a transfer path · drop a constraint · drop
//           one op from a unit's repertoire · drop an orphan regfile/bus ·
//           halve a register file
//
// Every candidate must still pass Machine::validate(); a candidate that
// changes the signature (including "the failure disappeared" and "a
// different failure appeared") is rejected. Each accepted step strictly
// decreases the structural size, so minimization terminates and the size
// trajectory is strictly monotone — the minimizer unit test asserts both.
#pragma once

#include <string>
#include <vector>

#include "fuzz/diff.h"
#include "ir/dag.h"
#include "isdl/machine.h"

namespace aviv {

// The metric minimization shrinks: op nodes + outputs + units + unit ops +
// transfers + constraints + register files + total registers.
[[nodiscard]] int structuralSize(const Machine& machine, const BlockDag& dag);

struct MinimizeStats {
  int attempts = 0;  // candidate re-runs of the differential harness
  int accepted = 0;  // candidates that kept the signature
  // structuralSize after each accepted step, starting size first. Strictly
  // decreasing by construction.
  std::vector<int> sizeTrajectory;
};

struct MinimizeResult {
  Machine machine{""};
  BlockDag dag{""};
  std::string signature;  // preserved failure signature
  MinimizeStats stats;
};

struct MinimizeOptions {
  // Upper bound on harness re-runs; minimization returns the best pair so
  // far when exhausted. The default is generous — candidates are tiny and
  // each accepted step shrinks the next round's candidate set.
  int maxAttempts = 2000;
};

// Shrinks (machine, dag) while runDifferential(..., diffOptions) keeps
// returning `signature`. The caller owns failpoint configuration: apply the
// repro's spec first so a planted fault keeps firing on every candidate
// run. diffOptions.quarantineDir is ignored (candidate runs never write
// artifacts).
[[nodiscard]] MinimizeResult minimizeFuzzCase(const Machine& machine,
                                              const BlockDag& dag,
                                              const DiffOptions& diffOptions,
                                              const std::string& signature,
                                              const MinimizeOptions& options = {});

}  // namespace aviv
