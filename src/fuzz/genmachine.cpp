#include "fuzz/genmachine.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <set>
#include <utility>
#include <vector>

#include "support/error.h"
#include "support/rng.h"
#include "support/strings.h"

namespace aviv {

namespace {

// Ops a generated unit may implement. Complex ops (MAC/MSU) are included so
// the pattern matcher gets exercised; the block generator never emits them
// directly (they enter coverings through matching, like in real front ends).
const Op kBinaryOps[] = {Op::kAdd, Op::kSub, Op::kMul, Op::kDiv, Op::kMod,
                         Op::kAnd, Op::kOr,  Op::kXor, Op::kShl, Op::kShr,
                         Op::kMin, Op::kMax, Op::kEq,  Op::kNe,  Op::kLt,
                         Op::kLe,  Op::kGt,  Op::kGe};
const Op kUnaryOps[] = {Op::kNeg, Op::kCompl, Op::kAbs};
const Op kComplexOps[] = {Op::kMac, Op::kMsu};

struct FamilyInfo {
  MachineFamily family;
  const char* name;
};
const FamilyInfo kFamilies[] = {
    {MachineFamily::kWideVliw, "wide"},
    {MachineFamily::kTinyBanks, "tiny"},
    {MachineFamily::kAsymmetricNet, "asym"},
    {MachineFamily::kBufferedUnit, "buffered"},
    {MachineFamily::kConstrained, "constrained"},
    {MachineFamily::kMinimal, "minimal"},
};

std::string seedTag(uint64_t seed) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%06llx",
                static_cast<unsigned long long>(seed & 0xffffff));
  return buf;
}

// Draws a unit's op repertoire: `count` distinct ops, mostly binary with a
// sprinkle of unary/complex. `mustHave` (if not kConst) is always included.
std::vector<UnitOp> drawOps(Rng& rng, int count, Op mustHave,
                            bool allowComplex) {
  std::set<Op> chosen;
  if (mustHave != Op::kConst) chosen.insert(mustHave);
  while (static_cast<int>(chosen.size()) < count) {
    const uint64_t roll = rng.below(10);
    Op op;
    if (roll < 7) {
      op = kBinaryOps[rng.below(std::size(kBinaryOps))];
    } else if (roll < 9) {
      op = kUnaryOps[rng.below(std::size(kUnaryOps))];
    } else if (allowComplex) {
      op = kComplexOps[rng.below(std::size(kComplexOps))];
    } else {
      op = kBinaryOps[rng.below(std::size(kBinaryOps))];
    }
    chosen.insert(op);
  }
  std::vector<UnitOp> ops;
  for (Op op : chosen) ops.push_back({op, toLower(opName(op)), 1});
  return ops;
}

// Every machine implements the {ADD, SUB, MUL} workhorse trio somewhere:
// the shipped paper kernels (and most generated blocks) lean on them, and a
// zoo member that rejects every kernel with "no unit implements MUL" would
// only ever exercise the error path. Missing ops land on random units.
void ensureCoreOps(std::vector<FunctionalUnit>& units, Rng& rng) {
  for (Op op : {Op::kAdd, Op::kSub, Op::kMul}) {
    bool have = false;
    for (const FunctionalUnit& u : units)
      if (u.findOp(op)) have = true;
    if (have) continue;
    FunctionalUnit& u = units[rng.below(units.size())];
    u.ops.push_back({op, toLower(opName(op)), 1});
  }
}

// Hub topology: every bank <-> data memory over `bus` (inter-bank traffic
// routes through memory, two hops).
void addHubTransfers(Machine& machine, MemoryId dm, BusId bus) {
  for (size_t i = 0; i < machine.regFiles().size(); ++i) {
    const Loc rf = Loc::regFile(static_cast<RegFileId>(i));
    machine.addTransfer({rf, Loc::memory(dm), bus});
    machine.addTransfer({Loc::memory(dm), rf, bus});
  }
}

// Complete topology: every storage pair connected over `bus` (arch1's
// "transfer complete" form).
void addCompleteTransfers(Machine& machine, BusId bus) {
  std::vector<Loc> locs;
  for (size_t i = 0; i < machine.regFiles().size(); ++i)
    locs.push_back(Loc::regFile(static_cast<RegFileId>(i)));
  for (size_t i = 0; i < machine.memories().size(); ++i)
    locs.push_back(Loc::memory(static_cast<MemoryId>(i)));
  for (const Loc& from : locs)
    for (const Loc& to : locs)
      if (!(from == to)) machine.addTransfer({from, to, bus});
}

// 0..maxCount random illegal-combination constraints over implemented ops.
// Every OpSel pair is distinct, so no constraint degenerates to banning a
// single op outright (groupings stay schedulable one-op-per-instruction).
void addRandomConstraints(Machine& machine, Rng& rng, int maxCount) {
  if (machine.units().size() < 2 || maxCount <= 0) return;
  const int count = static_cast<int>(rng.below(maxCount + 1));
  for (int c = 0; c < count; ++c) {
    Constraint constraint;
    constraint.note = "fz" + std::to_string(c);
    std::set<std::pair<UnitId, int>> used;
    const int width = rng.chance(0.3) ? 3 : 2;
    for (int s = 0; s < width; ++s) {
      const UnitId unit =
          static_cast<UnitId>(rng.below(machine.units().size()));
      const auto& ops = machine.unit(unit).ops;
      const int opIdx = static_cast<int>(rng.below(ops.size()));
      if (!used.insert({unit, opIdx}).second) continue;
      constraint.together.push_back({unit, ops[opIdx].op});
    }
    if (constraint.together.size() >= 2)
      machine.addConstraint(std::move(constraint));
  }
}

Machine genWideVliw(Rng& rng, uint64_t seed) {
  Machine machine("FzWide_" + seedTag(seed));
  const int numBanks = static_cast<int>(rng.intIn(2, 4));
  const int regs = static_cast<int>(rng.intIn(4, 8));
  for (int b = 0; b < numBanks; ++b)
    machine.addRegFile({"RF" + std::to_string(b), regs});
  const MemoryId dm = machine.addMemory({"DM", 256, true});
  const int numUnits = static_cast<int>(rng.intIn(6, 10));
  std::vector<FunctionalUnit> units;
  for (int u = 0; u < numUnits; ++u) {
    FunctionalUnit unit;
    unit.name = "U" + std::to_string(u);
    unit.regFile = static_cast<RegFileId>(u % numBanks);
    unit.ops = drawOps(rng, static_cast<int>(rng.intIn(2, 6)),
                       u == 0 ? Op::kAdd : Op::kConst, /*allowComplex=*/true);
    units.push_back(std::move(unit));
  }
  ensureCoreOps(units, rng);
  for (FunctionalUnit& unit : units) machine.addUnit(std::move(unit));
  const BusId b0 = machine.addBus({"B0", static_cast<int>(rng.intIn(1, 2))});
  if (rng.chance(0.5)) {
    addCompleteTransfers(machine, b0);
  } else {
    addHubTransfers(machine, dm, b0);
    // A second bus with direct bank-to-bank chords relieves the hub.
    const BusId b1 = machine.addBus({"B1", 1});
    for (int b = 0; b + 1 < numBanks; ++b) {
      machine.addTransfer({Loc::regFile(static_cast<RegFileId>(b)),
                           Loc::regFile(static_cast<RegFileId>(b + 1)), b1});
      machine.addTransfer({Loc::regFile(static_cast<RegFileId>(b + 1)),
                           Loc::regFile(static_cast<RegFileId>(b)), b1});
    }
  }
  addRandomConstraints(machine, rng, 2);
  return machine;
}

Machine genTinyBanks(Rng& rng, uint64_t seed) {
  Machine machine("FzTiny_" + seedTag(seed));
  const int numUnits = static_cast<int>(rng.intIn(2, 5));
  // 3 registers is the floor a sequential binary op needs (two pinned
  // operands + a result slot); 2-reg banks make the baseline's spiller
  // reject legitimately, which would turn every verdict into noise.
  for (int u = 0; u < numUnits; ++u)
    machine.addRegFile({"RF" + std::to_string(u), 3});
  const MemoryId dm =
      machine.addMemory({"DM", static_cast<int>(rng.intIn(64, 128)), true});
  std::vector<FunctionalUnit> units;
  for (int u = 0; u < numUnits; ++u) {
    FunctionalUnit unit;
    unit.name = "U" + std::to_string(u);
    unit.regFile = static_cast<RegFileId>(u);
    unit.ops = drawOps(rng, static_cast<int>(rng.intIn(2, 5)),
                       u == 0 ? Op::kAdd : Op::kConst, /*allowComplex=*/false);
    units.push_back(std::move(unit));
  }
  ensureCoreOps(units, rng);
  for (FunctionalUnit& unit : units) machine.addUnit(std::move(unit));
  const BusId bus = machine.addBus({"B0", 1});
  addHubTransfers(machine, dm, bus);
  return machine;
}

Machine genAsymmetricNet(Rng& rng, uint64_t seed) {
  Machine machine("FzAsym_" + seedTag(seed));
  const int numBanks = static_cast<int>(rng.intIn(3, 6));
  for (int b = 0; b < numBanks; ++b)
    machine.addRegFile(
        {"RF" + std::to_string(b), static_cast<int>(rng.intIn(3, 6))});
  const MemoryId dm = machine.addMemory({"DM", 256, true});
  const int numUnits = static_cast<int>(rng.intIn(numBanks, numBanks + 2));
  std::vector<FunctionalUnit> units;
  for (int u = 0; u < numUnits; ++u) {
    FunctionalUnit unit;
    unit.name = "U" + std::to_string(u);
    unit.regFile = static_cast<RegFileId>(u % numBanks);
    unit.ops = drawOps(rng, static_cast<int>(rng.intIn(2, 5)),
                       u == 0 ? Op::kAdd : Op::kConst, /*allowComplex=*/true);
    units.push_back(std::move(unit));
  }
  ensureCoreOps(units, rng);
  for (FunctionalUnit& unit : units) machine.addUnit(std::move(unit));
  const BusId bx = machine.addBus({"BX", 1});
  const BusId by = machine.addBus({"BY", static_cast<int>(rng.intIn(1, 2))});
  // Directed ring RF0 -> RF1 -> ... -> RF(n-1) -> RF0; direction matters,
  // most bank-to-bank routes are multi-hop.
  for (int b = 0; b < numBanks; ++b) {
    const Loc from = Loc::regFile(static_cast<RegFileId>(b));
    const Loc to = Loc::regFile(static_cast<RegFileId>((b + 1) % numBanks));
    machine.addTransfer({from, to, b % 2 == 0 ? bx : by});
  }
  // The memory is spliced into the ring at one entry and one exit point:
  // DM -> RF0 and RF(exit) -> DM. Everything stays reachable via the ring.
  const int exitBank = static_cast<int>(rng.below(numBanks));
  machine.addTransfer({Loc::memory(dm), Loc::regFile(0), bx});
  machine.addTransfer(
      {Loc::regFile(static_cast<RegFileId>(exitBank)), Loc::memory(dm), by});
  // Occasional chord shortcutting part of the ring: route diversity.
  if (numBanks >= 4 && rng.chance(0.6)) {
    const int from = static_cast<int>(rng.below(numBanks));
    const int to = (from + 2) % numBanks;
    machine.addTransfer({Loc::regFile(static_cast<RegFileId>(from)),
                         Loc::regFile(static_cast<RegFileId>(to)), by});
  }
  addRandomConstraints(machine, rng, 1);
  return machine;
}

Machine genBufferedUnit(Rng& rng, uint64_t seed) {
  Machine machine("FzBuf_" + seedTag(seed));
  const int numUnits = static_cast<int>(rng.intIn(3, 6));
  for (int u = 0; u < numUnits; ++u)
    machine.addRegFile({"B" + std::to_string(u), 3});
  const MemoryId dm = machine.addMemory({"DM", 128, true});
  std::vector<FunctionalUnit> units;
  for (int u = 0; u < numUnits; ++u) {
    FunctionalUnit unit;
    unit.name = "U" + std::to_string(u);
    unit.regFile = static_cast<RegFileId>(u);
    // Buffered units are specialists: 1..3 ops each.
    unit.ops = drawOps(rng, static_cast<int>(rng.intIn(1, 3)),
                       u == 0 ? Op::kAdd : Op::kConst, /*allowComplex=*/false);
    units.push_back(std::move(unit));
  }
  ensureCoreOps(units, rng);
  for (FunctionalUnit& unit : units) machine.addUnit(std::move(unit));
  // Exposed datapath: one private point-to-point link bus per producer ->
  // consumer edge (a closed ring of buffers), and only unit 0's buffer
  // talks to memory — every operand load and result store funnels through
  // that one port.
  for (int u = 0; u < numUnits; ++u) {
    const BusId link = machine.addBus({"L" + std::to_string(u), 1});
    machine.addTransfer({Loc::regFile(static_cast<RegFileId>(u)),
                         Loc::regFile(static_cast<RegFileId>(
                             (u + 1) % numUnits)),
                         link});
  }
  const BusId mport = machine.addBus({"MP", 1});
  machine.addTransfer({Loc::memory(dm), Loc::regFile(0), mport});
  machine.addTransfer({Loc::regFile(0), Loc::memory(dm), mport});
  return machine;
}

Machine genConstrained(Rng& rng, uint64_t seed) {
  Machine machine("FzCstr_" + seedTag(seed));
  const int numBanks = static_cast<int>(rng.intIn(2, 3));
  for (int b = 0; b < numBanks; ++b)
    machine.addRegFile({"RF" + std::to_string(b), 4});
  machine.addMemory({"DM", 256, true});
  const int numUnits = static_cast<int>(rng.intIn(3, 5));
  std::vector<FunctionalUnit> units;
  for (int u = 0; u < numUnits; ++u) {
    FunctionalUnit unit;
    unit.name = "U" + std::to_string(u);
    unit.regFile = static_cast<RegFileId>(u % numBanks);
    unit.ops = drawOps(rng, static_cast<int>(rng.intIn(3, 6)),
                       u == 0 ? Op::kAdd : Op::kConst, /*allowComplex=*/true);
    units.push_back(std::move(unit));
  }
  ensureCoreOps(units, rng);
  for (FunctionalUnit& unit : units) machine.addUnit(std::move(unit));
  const BusId bus = machine.addBus({"B0", 1});
  addCompleteTransfers(machine, bus);
  // The family's point: a thicket of illegal combinations for the clique
  // splitter to carve around.
  addRandomConstraints(machine, rng, 8);
  return machine;
}

Machine genMinimal(Rng& rng, uint64_t seed) {
  Machine machine("FzMin_" + seedTag(seed));
  machine.addRegFile({"RF0", static_cast<int>(rng.intIn(3, 4))});
  const MemoryId dm = machine.addMemory({"DM", 64, true});
  const int numUnits = static_cast<int>(rng.intIn(1, 2));
  std::vector<FunctionalUnit> units;
  for (int u = 0; u < numUnits; ++u) {
    FunctionalUnit unit;
    unit.name = "U" + std::to_string(u);
    unit.regFile = 0;  // both units share the single bank
    unit.ops = drawOps(rng, static_cast<int>(rng.intIn(2, 4)),
                       u == 0 ? Op::kAdd : Op::kConst, /*allowComplex=*/false);
    units.push_back(std::move(unit));
  }
  ensureCoreOps(units, rng);
  for (FunctionalUnit& unit : units) machine.addUnit(std::move(unit));
  const BusId bus = machine.addBus({"B0", 1});
  addHubTransfers(machine, dm, bus);
  return machine;
}

}  // namespace

const char* familyName(MachineFamily family) {
  for (const FamilyInfo& info : kFamilies)
    if (info.family == family) return info.name;
  return "?";
}

MachineFamily familyFromName(const std::string& name) {
  for (const FamilyInfo& info : kFamilies)
    if (name == info.name) return info.family;
  throw Error("unknown machine family '" + name +
              "' (wide, tiny, asym, buffered, constrained, minimal)");
}

Machine generateMachine(const MachineGenSpec& spec) {
  // Salt the stream with the family so family F at seed S and family G at
  // seed S draw independent machines.
  Rng rng(spec.seed * 0x100 + static_cast<uint64_t>(spec.family) + 1);
  Machine machine = [&] {
    switch (spec.family) {
      case MachineFamily::kWideVliw: return genWideVliw(rng, spec.seed);
      case MachineFamily::kTinyBanks: return genTinyBanks(rng, spec.seed);
      case MachineFamily::kAsymmetricNet:
        return genAsymmetricNet(rng, spec.seed);
      case MachineFamily::kBufferedUnit:
        return genBufferedUnit(rng, spec.seed);
      case MachineFamily::kConstrained: return genConstrained(rng, spec.seed);
      case MachineFamily::kMinimal: return genMinimal(rng, spec.seed);
    }
    throw Error("unknown machine family");
  }();
  machine.validate();
  return machine;
}

}  // namespace aviv
