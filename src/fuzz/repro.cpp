#include "fuzz/repro.h"

#include <filesystem>
#include <sstream>

#include "ir/emit.h"
#include "ir/parser.h"
#include "isdl/emit.h"
#include "isdl/parser.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/io.h"
#include "support/strings.h"

namespace aviv {

namespace fs = std::filesystem;

namespace {

// meta values are one line each; fold multi-line error text (e.g. a
// ParseError diagnostic list) onto one.
std::string oneLine(std::string s) {
  for (char& c : s)
    if (c == '\n' || c == '\r') c = ' ';
  return s;
}

}  // namespace

std::string writeFuzzRepro(const std::string& outDir, const Machine& machine,
                           const BlockDag& dag, const FuzzCase& info,
                           const DiffOptions& options,
                           const DiffResult& result) {
  const std::string dir = outDir + "/" + machine.name() + "-" + dag.name();
  fs::create_directories(dir);
  writeFile(dir + "/machine.isdl", emitMachineText(machine));
  writeFile(dir + "/block.blk", emitBlockText(dag));

  std::ostringstream meta;
  meta << "machine=" << machine.name() << "\n";
  meta << "block=" << dag.name() << "\n";
  meta << "family=" << familyName(info.family) << "\n";
  meta << "machineSeed=" << info.machineSeed << "\n";
  meta << "blockSeed=" << info.blockSeed << "\n";
  meta << "iteration=" << info.iteration << "\n";
  meta << "vectors=" << options.vectors << "\n";
  meta << "vectorSeed=" << options.vectorSeed << "\n";
  meta << "timeLimitSeconds=" << options.timeLimitSeconds << "\n";
  meta << "failpoints=" << info.failpoints << "\n";
  meta << "verdict=" << verdictName(result.verdict) << "\n";
  meta << "signature=" << result.signature << "\n";
  meta << "detail=" << oneLine(result.detail) << "\n";
  if (!result.quarantinePath.empty())
    meta << "quarantine=" << result.quarantinePath << "\n";
  meta << "replay=fuzz_gen --replay " << dir << "\n";
  writeFile(dir + "/meta.txt", meta.str());
  return dir;
}

FuzzRepro loadFuzzRepro(const std::string& dir) {
  FuzzRepro repro;
  repro.machine = parseMachine(readFile(dir + "/machine.isdl"), "machine.isdl");
  repro.dag = parseBlock(readFile(dir + "/block.blk"));
  for (const std::string& line : split(readFile(dir + "/meta.txt"), '\n')) {
    const size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    try {
      if (key == "family") repro.info.family = familyFromName(value);
      if (key == "machineSeed") repro.info.machineSeed = std::stoull(value);
      if (key == "blockSeed") repro.info.blockSeed = std::stoull(value);
      if (key == "iteration") repro.info.iteration = std::stoi(value);
      if (key == "vectors") repro.options.vectors = std::stoi(value);
      if (key == "vectorSeed") repro.options.vectorSeed = std::stoull(value);
      if (key == "timeLimitSeconds")
        repro.options.timeLimitSeconds = std::stod(value);
      if (key == "failpoints") repro.info.failpoints = value;
      if (key == "signature") repro.signature = value;
      if (key == "detail") repro.detail = value;
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error("fuzz repro meta.txt: bad value for '" + key + "'");
    }
  }
  if (repro.signature.empty())
    throw Error("fuzz repro meta.txt: missing signature");
  return repro;
}

FuzzReplayResult replayFuzzRepro(const std::string& dir) {
  const FuzzRepro repro = loadFuzzRepro(dir);
  FuzzReplayResult replay;
  if (!repro.info.failpoints.empty())
    FailPoints::instance().configure(repro.info.failpoints);
  try {
    replay.result = runDifferential(repro.machine, repro.dag, repro.options);
  } catch (...) {
    if (!repro.info.failpoints.empty()) FailPoints::instance().clear();
    throw;
  }
  if (!repro.info.failpoints.empty()) FailPoints::instance().clear();
  replay.reproduced = replay.result.signature == repro.signature;
  return replay;
}

}  // namespace aviv
