#include "fuzz/diff.h"

#include <utility>
#include <vector>

#include "driver/codegen.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "verify/quarantine.h"
#include "verify/verify.h"

namespace aviv {

namespace {

// One engine's compile, reduced to its scope-independent image. The
// CodeGenerator (and the CompiledBlock referencing its session) dies here;
// only copies survive.
struct SideImage {
  EngineOutcome outcome;
  CodeImage image;
  std::vector<std::string> symbolNames;
};

SideImage compileOn(Engine engine, const Machine& machine, const BlockDag& dag,
                    const DiffOptions& options) {
  SideImage side;
  DriverOptions dopts;
  dopts.engine = engine;
  dopts.recordSymbolNames = true;
  // No safety nets: the harness wants the raw engine outcome, not the
  // ladder's recovery of it.
  dopts.baselineFallback = false;
  dopts.verify.level = VerifyLevel::kOff;
  dopts.core = CodegenOptions::heuristicsOn();
  dopts.core.timeLimitSeconds = options.timeLimitSeconds;
  // Tighter ceilings than production: a hostile generated input should
  // reject in milliseconds, not grind through the default gigabyte budget.
  dopts.core.maxSndNodes = 200'000;
  dopts.core.maxSndBytes = 64ull << 20;
  dopts.core.maxTotalCliques = 500'000;
  try {
    CodeGenerator gen(machine, dopts);
    CompiledBlock block = gen.compileBlock(dag);
    side.outcome.compiled = true;
    side.image = std::move(block.portableImage);
    side.symbolNames = std::move(block.symbolNames);
  } catch (const InternalError& e) {
    side.outcome.crashed = true;
    side.outcome.detail = e.what();
  } catch (const Error& e) {
    // ResourceLimitExceeded, DeadlineExceeded (surfaced as Error),
    // unsatisfiable-input errors: the clean rejection taxonomy.
    side.outcome.rejected = true;
    side.outcome.detail = e.what();
  } catch (const std::exception& e) {
    side.outcome.escaped = true;
    side.outcome.detail = e.what();
  } catch (...) {
    side.outcome.escaped = true;
    side.outcome.detail = "non-standard exception";
  }
  return side;
}

std::string sideTag(bool heuristic, bool baseline) {
  if (heuristic && baseline) return "both";
  return heuristic ? "heuristic" : "baseline";
}

}  // namespace

const char* verdictName(DiffVerdict verdict) {
  switch (verdict) {
    case DiffVerdict::kPass: return "pass";
    case DiffVerdict::kReject: return "reject";
    case DiffVerdict::kCrash: return "crash";
    case DiffVerdict::kEscape: return "escape";
    case DiffVerdict::kMiscompile: return "miscompile";
  }
  return "?";
}

bool isFailureVerdict(DiffVerdict verdict) {
  return verdict == DiffVerdict::kCrash || verdict == DiffVerdict::kEscape ||
         verdict == DiffVerdict::kMiscompile;
}

DiffResult runDifferential(const Machine& machine, const BlockDag& dag,
                           const DiffOptions& options) {
  DiffResult result;
  SideImage heur = compileOn(Engine::kHeuristic, machine, dag, options);
  SideImage base = compileOn(Engine::kBaseline, machine, dag, options);

  // Planted fault: corrupt the baseline image between compile and verify,
  // manufacturing an engine disagreement the pipeline must catch.
  if (base.outcome.compiled &&
      FailPoints::instance().shouldFail("fuzz-engine-disagree")) {
    corruptImageForTesting(base.image);
    result.plantedFault = true;
  }

  VerifyOptions vopts;
  vopts.level = VerifyLevel::kAll;
  vopts.vectors = options.vectors;
  vopts.seed = options.vectorSeed;
  VerifyReport heurReport, baseReport;
  if (heur.outcome.compiled) {
    heurReport =
        verifyCompiledBlock(machine, dag, heur.image, heur.symbolNames, vopts);
    heur.outcome.verifyFailed = !heurReport.passed;
    if (heur.outcome.verifyFailed) heur.outcome.detail = heurReport.detail();
  }
  if (base.outcome.compiled) {
    baseReport =
        verifyCompiledBlock(machine, dag, base.image, base.symbolNames, vopts);
    base.outcome.verifyFailed = !baseReport.passed;
    if (base.outcome.verifyFailed) base.outcome.detail = baseReport.detail();
  }

  result.heuristic = heur.outcome;
  result.baseline = base.outcome;

  // Failure priority: escape > crash > miscompile — an escape IS more
  // alarming than the invariant that fired on the same input.
  if (heur.outcome.escaped || base.outcome.escaped) {
    result.verdict = DiffVerdict::kEscape;
    result.signature = std::string("escape:") +
                       sideTag(heur.outcome.escaped, base.outcome.escaped);
    result.detail = heur.outcome.escaped ? heur.outcome.detail
                                         : base.outcome.detail;
  } else if (heur.outcome.crashed || base.outcome.crashed) {
    result.verdict = DiffVerdict::kCrash;
    result.signature = std::string("crash:") +
                       sideTag(heur.outcome.crashed, base.outcome.crashed);
    result.detail =
        heur.outcome.crashed ? heur.outcome.detail : base.outcome.detail;
  } else if (heur.outcome.verifyFailed || base.outcome.verifyFailed) {
    result.verdict = DiffVerdict::kMiscompile;
    result.signature =
        std::string("miscompile:") +
        sideTag(heur.outcome.verifyFailed, base.outcome.verifyFailed);
    result.detail = heur.outcome.verifyFailed ? heur.outcome.detail
                                              : base.outcome.detail;
    if (!options.quarantineDir.empty()) {
      // Quarantine through the standard verify artifact protocol so the
      // existing replay tooling handles fuzz hits unchanged.
      const bool heurFailed = heur.outcome.verifyFailed;
      result.quarantinePath = writeQuarantineArtifact(
          options.quarantineDir, machine, dag,
          heurFailed ? heur.image : base.image,
          heurFailed ? heur.symbolNames : base.symbolNames, vopts,
          heurFailed ? heurReport : baseReport);
    }
  } else if (heur.outcome.rejected || base.outcome.rejected) {
    result.verdict = DiffVerdict::kReject;
    result.signature = std::string("reject:") +
                       sideTag(heur.outcome.rejected, base.outcome.rejected);
    result.detail = heur.outcome.rejected ? heur.outcome.detail
                                          : base.outcome.detail;
  } else {
    result.verdict = DiffVerdict::kPass;
    result.signature = "pass";
  }
  return result;
}

}  // namespace aviv
