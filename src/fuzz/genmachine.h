// Generative machine fuzzing — seeded, deterministic emission of random
// *valid* ISDL machines drawn from parameterized stress families (DESIGN.md
// System 28). Each family caricatures an architecture shape the covering /
// assignment / scheduling engine must survive but that the five shipped
// machines never exhibit:
//
//   kWideVliw    — 6..10 functional units over a few shared banks: wide
//                  instruction words, large clique sets, dense parallelism.
//   kTinyBanks   — every unit owns a 3-register bank (the floor for one
//                  binary op's two operands + result): constant spill
//                  pressure, outputs-to-memory retries, Fig 9 machinery.
//   kAsymmetricNet — banks connected in a directed ring with the data
//                  memory spliced in: most operand routes are multi-hop
//                  and direction matters (stresses route selection).
//   kBufferedUnit — exposed-datapath shape (cf. the ASP work, 1804.10998):
//                  tiny per-unit buffer banks, point-to-point producer ->
//                  consumer links instead of a shared bus, one
//                  memory-attached unit.
//   kConstrained — a moderate machine plus many random illegal-combination
//                  constraints: clique splitting under hostile ISDL rules.
//   kMinimal     — 1..2 units, one bank, one bus: the degenerate serial
//                  end of the spectrum.
//
// Generated machines are valid by construction — Machine::validate()
// passes, and every unit's bank can reach and be reached from the data
// memory (the connectivity the covering flow needs to load operands and
// store results). A property test re-checks both across seeds.
#pragma once

#include <cstdint>
#include <string>

#include "isdl/machine.h"

namespace aviv {

enum class MachineFamily : uint8_t {
  kWideVliw,
  kTinyBanks,
  kAsymmetricNet,
  kBufferedUnit,
  kConstrained,
  kMinimal,
};

inline constexpr int kNumMachineFamilies =
    static_cast<int>(MachineFamily::kMinimal) + 1;

// Short stable name used in machine names, repro metadata, and the
// --families CLI flag ("wide", "tiny", "asym", "buffered", "constrained",
// "minimal").
[[nodiscard]] const char* familyName(MachineFamily family);

// Inverse of familyName; throws aviv::Error on unknown names.
[[nodiscard]] MachineFamily familyFromName(const std::string& name);

struct MachineGenSpec {
  MachineFamily family = MachineFamily::kWideVliw;
  uint64_t seed = 1;
};

// Deterministic in the spec: the same (family, seed) always yields the
// same machine, and the machine's name encodes both so artifacts are
// self-describing. The result validates and is fully connected (see file
// comment); it round-trips through emitMachineText / parseMachine.
[[nodiscard]] Machine generateMachine(const MachineGenSpec& spec);

}  // namespace aviv
