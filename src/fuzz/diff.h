// Differential compile harness — the fuzzer's oracle. One machine x block
// pair is compiled on BOTH engines (the heuristic covering flow and the
// sequential baseline, DriverOptions::engine) with the degradation ladder
// disabled, and each compiled image is differentially verified against the
// reference DAG interpreter (src/verify) over the same seeded vectors.
//
// Verdict taxonomy:
//   kPass       both engines compiled and verified — the interesting case
//               is that it is boring.
//   kReject     at least one engine cleanly rejected the input (Error /
//               ResourceLimitExceeded / DeadlineExceeded) and nothing
//               failed. One-sided rejection is legitimate: the baseline is
//               the weaker engine by design.
//   kCrash      an engine escaped with InternalError — an AVIV_REQUIRE
//               invariant tripped on a valid input. A bug.
//   kEscape     an engine threw something outside the aviv::Error taxonomy
//               (std::bad_alloc, std::logic_error, ...). A bug in the error
//               discipline itself.
//   kMiscompile a compiled image disagreed with the reference interpreter.
//               The worst bug. The failing image is quarantined via the
//               standard src/verify artifact protocol, so the existing
//               replay tooling picks it up unchanged.
//
// The planted failpoint `fuzz-engine-disagree` corrupts the baseline's
// image between compile and verify (corruptImageForTesting), manufacturing
// a kMiscompile on demand — the end-to-end proof that a fuzz hit flows to
// a quarantined, minimized, replayable repro.
#pragma once

#include <cstdint>
#include <string>

#include "ir/dag.h"
#include "isdl/machine.h"

namespace aviv {

enum class DiffVerdict : uint8_t {
  kPass,
  kReject,
  kCrash,
  kEscape,
  kMiscompile,
};

[[nodiscard]] const char* verdictName(DiffVerdict verdict);
// True for kCrash / kEscape / kMiscompile — the verdicts a fuzz run must
// report, quarantine, and minimize.
[[nodiscard]] bool isFailureVerdict(DiffVerdict verdict);

// What happened on one engine.
struct EngineOutcome {
  bool compiled = false;
  bool rejected = false;      // clean taxonomy rejection
  bool crashed = false;       // InternalError
  bool escaped = false;       // non-aviv exception
  bool verifyFailed = false;  // compiled but disagreed with the reference
  std::string detail;         // error text or verify mismatch description
};

struct DiffOptions {
  // Verification vectors per compiled image (both engines use the same
  // seeded vectors, so "verified" means agreement with the reference AND
  // with each other).
  int vectors = 4;
  uint64_t vectorSeed = 0x56455249;  // "VERI", the verifier default
  // Wall-clock budget per engine compile; expiry is a clean rejection.
  double timeLimitSeconds = 5.0;
  // Where kMiscompile failures write their src/verify quarantine artifact;
  // empty disables artifact writing (the verdict is unaffected).
  std::string quarantineDir;
};

struct DiffResult {
  DiffVerdict verdict = DiffVerdict::kPass;
  // Stable failure signature "<verdict>:<side>" (side: heuristic /
  // baseline / both), e.g. "miscompile:baseline". Deliberately excludes
  // error text: messages carry node counts and names that change while the
  // minimizer shrinks the input, the signature must not.
  std::string signature;
  std::string detail;  // human-readable one-liner
  EngineOutcome heuristic;
  EngineOutcome baseline;
  // Path of the src/verify artifact for kMiscompile (when
  // options.quarantineDir is set); empty otherwise.
  std::string quarantinePath;
  // True when the `fuzz-engine-disagree` failpoint fired on this run (the
  // baseline image was deliberately corrupted). Repro writers record an
  // always-fire spec so replays reproduce regardless of the original
  // probability/count schedule.
  bool plantedFault = false;
};

// Deterministic in (machine, dag, options): same inputs, same verdict.
[[nodiscard]] DiffResult runDifferential(const Machine& machine,
                                         const BlockDag& dag,
                                         const DiffOptions& options);

}  // namespace aviv
