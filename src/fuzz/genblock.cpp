#include "fuzz/genblock.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "ir/emit.h"
#include "ir/parser.h"
#include "support/error.h"
#include "support/rng.h"

namespace aviv {

namespace {

std::string blockName(uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "fzb_%06llx",
                static_cast<unsigned long long>(seed & 0xffffff));
  return buf;
}

}  // namespace

BlockDag generateBlock(const Machine& machine, const BlockGenSpec& spec) {
  Rng rng(spec.seed ^ 0xb10cb10cb10cb10cull);

  // The op pool: everything some unit implements with arity <= 2, so every
  // generated node has at least one legal (unit, op) selection.
  std::set<Op> poolSet;
  for (const FunctionalUnit& unit : machine.units())
    for (const UnitOp& uop : unit.ops)
      if (opArity(uop.op) <= 2) poolSet.insert(uop.op);
  if (poolSet.empty())
    throw Error("machine '" + machine.name() +
                "' implements no arity<=2 ops; cannot generate blocks");
  const std::vector<Op> pool(poolSet.begin(), poolSet.end());

  // Capacity shaping: blocks must always compile on the baseline engine (a
  // generator-caused rejection would make every differential verdict on the
  // pair vacuous). The spiller can relieve any pressure EXCEPT live-outs
  // (never evicted) and reload slots past the respill cap, so machines with
  // minimum-size banks get narrower, shorter, chain-shaped blocks, and the
  // live-out count is budgeted against the smallest bank below.
  int minBankRegs = machine.regFile(0).numRegs;
  for (const RegFile& rf : machine.regFiles())
    minBankRegs = std::min(minBankRegs, rf.numRegs);
  const bool tight = minBankRegs <= 3;

  BlockDag dag(blockName(spec.seed));
  std::vector<NodeId> nodes;
  const int numInputs = static_cast<int>(rng.intIn(2, 5));
  for (int i = 0; i < numInputs; ++i)
    nodes.push_back(dag.addInput("v" + std::to_string(i)));
  const int numConsts = static_cast<int>(rng.intIn(1, 2));
  for (int i = 0; i < numConsts; ++i)
    nodes.push_back(dag.addConst(rng.intIn(-9, 9)));

  // Operand picks are recency-biased so the DAG grows depth, not just a
  // flat fan of leaf pairs; CSE on insert may merge duplicate draws. Tight
  // machines chain on the newest value almost always, keeping the count of
  // simultaneously-live temporaries near one.
  auto pickOperand = [&] {
    if (tight && !nodes.empty() && rng.chance(0.5)) return nodes.back();
    if (nodes.size() > 4 && rng.chance(0.6))
      return nodes[nodes.size() - 1 - rng.below(4)];
    return nodes[rng.below(nodes.size())];
  };
  const int maxOps = tight ? std::min(spec.maxOps, 12) : spec.maxOps;
  const int targetOps = static_cast<int>(
      rng.intIn(std::min(spec.minOps, maxOps), maxOps));
  for (int i = 0; i < targetOps; ++i) {
    const Op op = pool[rng.below(pool.size())];
    std::vector<NodeId> operands;
    for (int a = 0; a < opArity(op); ++a) operands.push_back(pickOperand());
    nodes.push_back(dag.addOp(op, std::move(operands)));
  }

  // Live-outs must stay register-resident to the end of the block, and in
  // the worst case the engine computes them all in the machine's smallest
  // bank — so the output count is budgeted to leave that bank at least one
  // working slot. Excess sinks are folded into combining binary ops (never
  // dropped: the back end expects dead-code-free blocks).
  const size_t outputBudget =
      static_cast<size_t>(std::max(1, minBankRegs - 1));

  std::vector<Op> binaryPool;
  for (Op op : pool)
    if (opArity(op) == 2) binaryPool.push_back(op);
  // ensureCoreOps guarantees ADD on every generated machine.
  AVIV_CHECK(!binaryPool.empty());

  auto collectSinks = [&] {
    std::vector<NodeId> sinks;
    const auto users = dag.computeUsers();
    for (NodeId id = 0; id < dag.size(); ++id)
      if (!isLeafOp(dag.node(id).op) && users[id].empty())
        sinks.push_back(id);
    return sinks;
  };
  std::vector<NodeId> sinks = collectSinks();
  while (sinks.size() > outputBudget) {
    const Op op = binaryPool[rng.below(binaryPool.size())];
    dag.addOp(op, {sinks[sinks.size() - 2], sinks[sinks.size() - 1]});
    sinks = collectSinks();  // CSE may merge the fold with an existing node
  }

  // Every sink becomes a live-out, plus occasionally an interior node (so
  // multi-use outputs get exercised) while the budget allows.
  int out = 0;
  std::set<NodeId> outputNodes(sinks.begin(), sinks.end());
  for (NodeId id : sinks) dag.markOutput("o" + std::to_string(out++), id);
  for (NodeId id = 0; id < dag.size(); ++id) {
    if (static_cast<size_t>(out) >= outputBudget) break;
    if (isLeafOp(dag.node(id).op) || outputNodes.count(id)) continue;
    if (rng.chance(0.15)) {
      dag.markOutput("o" + std::to_string(out++), id);
      outputNodes.insert(id);
    }
  }

  // Round-trip through the block language twice: parse-time CSE can merge
  // duplicate draws, leaving gaps in the builder's node IDs that the
  // emitter's _tN names expose. The second parse renumbers densely, so the
  // returned DAG's emission is a fixpoint — the block.blk a repro bundle
  // records re-parses AND re-emits to itself byte for byte.
  return parseBlock(emitBlockText(parseBlock(emitBlockText(dag))));
}

}  // namespace aviv
