// Generative block fuzzing — seeded, deterministic emission of random
// *valid* BlockDags tailored to a machine: every op node draws from the ops
// some functional unit of that machine implements (arity <= 2; complex ops
// like MAC enter coverings through pattern matching, exactly as a real front
// end would hand them over), so generated blocks always have a legal
// covering and the property suite can require them to compile on the
// baseline engine.
//
// Unlike makeRandomDag (src/ir/random_dag.h, sized for allocator benchmarks)
// this generator emits constant leaves, comparison/shift/division ops, and
// multi-output blocks, and round-trips its result through emitBlockText /
// parseBlock before returning — the DAG a fuzz iteration compiles is
// bit-for-bit the DAG a quarantined block.blk re-parses to.
#pragma once

#include <cstdint>

#include "ir/dag.h"
#include "isdl/machine.h"

namespace aviv {

struct BlockGenSpec {
  uint64_t seed = 1;
  // Number of op nodes drawn (before CSE merges duplicates).
  int minOps = 3;
  int maxOps = 24;
};

// Deterministic in (machine op repertoire, spec). The block's name encodes
// the seed; all dead op nodes are marked live-out so the DAG is
// dead-code-free by construction.
[[nodiscard]] BlockDag generateBlock(const Machine& machine,
                                     const BlockGenSpec& spec);

}  // namespace aviv
