// Fuzz repro bundles — self-contained directories describing one failing
// fuzz iteration, one level above the src/verify quarantine artifact (which
// only exists for miscompiles; crashes and taxonomy escapes have no image
// to quarantine, but still need a standalone repro):
//
//   <outDir>/<machine>-<block>/
//     machine.isdl   re-parsable ISDL of the generated machine
//     block.blk      re-parsable source of the generated block
//     meta.txt       key=value: generator family/seeds, diff options,
//                    failpoint spec, recorded verdict signature
//     minimized/     (after `fuzz_gen --minimize`) the shrunken pair in
//                    the same bundle format
//
// Replaying re-parses machine and block, re-applies the recorded failpoint
// spec, re-runs the differential harness, and succeeds iff the recorded
// signature reproduces. Nothing from the originating session is needed:
// the bundle IS the bug report.
#pragma once

#include <cstdint>
#include <string>

#include "fuzz/diff.h"
#include "fuzz/genmachine.h"
#include "ir/dag.h"
#include "isdl/machine.h"

namespace aviv {

// Generator provenance of one fuzz iteration (recorded for humans and for
// `fuzz_gen --seed` re-derivation; replay itself only needs the emitted
// sources).
struct FuzzCase {
  MachineFamily family = MachineFamily::kWideVliw;
  uint64_t machineSeed = 0;
  uint64_t blockSeed = 0;
  int iteration = -1;
  // Failpoint spec a replay must re-apply to reproduce ("" = none). When
  // the planted `fuzz-engine-disagree` fault fired, this is its
  // always-fire spec, independent of the fuzz run's probability schedule.
  std::string failpoints;
};

// Writes the bundle; returns its path. Directory name is
// "<machine>-<block>" — both names encode their generator seeds, so
// distinct cases never collide and identical cases overwrite in place.
std::string writeFuzzRepro(const std::string& outDir, const Machine& machine,
                           const BlockDag& dag, const FuzzCase& info,
                           const DiffOptions& options,
                           const DiffResult& result);

// A loaded bundle, ready to re-run or minimize.
struct FuzzRepro {
  Machine machine{""};
  BlockDag dag{""};
  FuzzCase info;
  DiffOptions options;
  std::string signature;  // recorded failure signature
  std::string detail;
};

// Throws aviv::Error when the bundle is missing or malformed.
[[nodiscard]] FuzzRepro loadFuzzRepro(const std::string& dir);

struct FuzzReplayResult {
  bool reproduced = false;  // replay signature == recorded signature
  DiffResult result;
};

// Re-applies the bundle's failpoint spec (clearing the registry
// afterwards), re-runs the differential harness, and compares signatures.
[[nodiscard]] FuzzReplayResult replayFuzzRepro(const std::string& dir);

}  // namespace aviv
