// Parser for the ISDL dialect (DESIGN.md substitution #2).
//
// Grammar (see machines/*.isdl for real descriptions):
//
//   machine <name> {
//     regfile <name> size <n>;
//     memory <name> size <n> [data];        // 'data' = variable/spill home
//     bus <name> [capacity <n>];
//     unit <name> regfile <name> {
//       op <OPKIND> ["mnemonic"] [latency <n>];
//       ...
//     }
//     transfer <loc> -> <loc> bus <name>;    // directed path
//     transfer <loc> <-> <loc> bus <name>;   // both directions
//     transfer complete bus <name>;          // all-pairs among all storages
//     constraint ["note"] { U1.ADD, U2.MUL, ... }   // illegal combination
//   }
//
// Exactly one machine per file. Malformed input raises aviv::ParseError
// carrying every diagnostic found by panic-mode recovery (file:line:col:
// message, one per line); semantic errors on a well-formed parse raise
// plain aviv::Error. Nothing on this path aborts the process.
#pragma once

#include <string>
#include <string_view>

#include "isdl/machine.h"

namespace aviv {

[[nodiscard]] Machine parseMachine(std::string_view source,
                                   const std::string& sourceName = "<isdl>");

// Loads machines/<name>.isdl and parses it.
[[nodiscard]] Machine loadMachine(const std::string& name);

}  // namespace aviv
