#include "isdl/machine.h"

#include <set>

#include "support/error.h"

namespace aviv {

std::optional<int> FunctionalUnit::findOp(Op opKind) const {
  for (size_t i = 0; i < ops.size(); ++i)
    if (ops[i].op == opKind) return static_cast<int>(i);
  return std::nullopt;
}

RegFileId Machine::addRegFile(RegFile rf) {
  regFiles_.push_back(std::move(rf));
  return static_cast<RegFileId>(regFiles_.size() - 1);
}

MemoryId Machine::addMemory(Memory mem) {
  memories_.push_back(std::move(mem));
  return static_cast<MemoryId>(memories_.size() - 1);
}

BusId Machine::addBus(Bus bus) {
  buses_.push_back(std::move(bus));
  return static_cast<BusId>(buses_.size() - 1);
}

UnitId Machine::addUnit(FunctionalUnit unit) {
  units_.push_back(std::move(unit));
  return static_cast<UnitId>(units_.size() - 1);
}

void Machine::addTransfer(TransferPath path) {
  transfers_.push_back(path);
}

void Machine::addConstraint(Constraint constraint) {
  constraints_.push_back(std::move(constraint));
}

const RegFile& Machine::regFile(RegFileId id) const {
  AVIV_CHECK(id < regFiles_.size());
  return regFiles_[id];
}
const Memory& Machine::memory(MemoryId id) const {
  AVIV_CHECK(id < memories_.size());
  return memories_[id];
}
const Bus& Machine::bus(BusId id) const {
  AVIV_CHECK(id < buses_.size());
  return buses_[id];
}
const FunctionalUnit& Machine::unit(UnitId id) const {
  AVIV_CHECK(id < units_.size());
  return units_[id];
}

std::optional<RegFileId> Machine::findRegFile(const std::string& name) const {
  for (size_t i = 0; i < regFiles_.size(); ++i)
    if (regFiles_[i].name == name) return static_cast<RegFileId>(i);
  return std::nullopt;
}
std::optional<MemoryId> Machine::findMemory(const std::string& name) const {
  for (size_t i = 0; i < memories_.size(); ++i)
    if (memories_[i].name == name) return static_cast<MemoryId>(i);
  return std::nullopt;
}
std::optional<BusId> Machine::findBus(const std::string& name) const {
  for (size_t i = 0; i < buses_.size(); ++i)
    if (buses_[i].name == name) return static_cast<BusId>(i);
  return std::nullopt;
}
std::optional<UnitId> Machine::findUnit(const std::string& name) const {
  for (size_t i = 0; i < units_.size(); ++i)
    if (units_[i].name == name) return static_cast<UnitId>(i);
  return std::nullopt;
}

Loc Machine::unitLoc(UnitId id) const {
  return Loc::regFile(unit(id).regFile);
}

MemoryId Machine::dataMemory() const {
  for (size_t i = 0; i < memories_.size(); ++i)
    if (memories_[i].isDataMemory) return static_cast<MemoryId>(i);
  AVIV_CHECK_MSG(!memories_.empty(), "machine has no memory");
  return 0;
}

std::string Machine::locName(Loc loc) const {
  if (loc.isRegFile()) return regFile(loc.index).name;
  return memory(loc.index).name;
}

Machine Machine::withRegisterCount(int numRegs) const {
  AVIV_CHECK(numRegs >= 1);
  Machine copy = *this;
  for (RegFile& rf : copy.regFiles_) rf.numRegs = numRegs;
  return copy;
}

void Machine::validate() const {
  auto requireUnique = [](const std::string& kind, auto getName,
                          const auto& items) {
    std::set<std::string> seen;
    for (const auto& item : items) {
      const std::string name = getName(item);
      if (name.empty()) throw Error(kind + " with empty name");
      if (!seen.insert(name).second)
        throw Error("duplicate " + kind + " name '" + name + "'");
    }
  };
  requireUnique("regfile", [](const RegFile& r) { return r.name; }, regFiles_);
  requireUnique("memory", [](const Memory& m) { return m.name; }, memories_);
  requireUnique("bus", [](const Bus& b) { return b.name; }, buses_);
  requireUnique("unit", [](const FunctionalUnit& u) { return u.name; },
                units_);

  if (memories_.empty())
    throw Error("machine '" + name_ + "' declares no memory");
  if (units_.empty())
    throw Error("machine '" + name_ + "' declares no functional units");

  // Upper bounds are input hardening, not architectural limits: an ISDL
  // file served to the daemon must not be able to make the simulator or
  // the allocator commit gigabytes (state vectors are sized from these).
  constexpr int kMaxRegsPerFile = 4096;
  constexpr int kMaxMemoryWords = 1 << 22;  // 32 MiB of int64 state
  constexpr int kMaxBusCapacity = 1024;
  for (const RegFile& rf : regFiles_) {
    if (rf.numRegs < 1)
      throw Error("regfile '" + rf.name + "' must have >= 1 register");
    if (rf.numRegs > kMaxRegsPerFile)
      throw Error("regfile '" + rf.name + "' exceeds the register ceiling (" +
                  std::to_string(kMaxRegsPerFile) + ")");
  }
  for (const Memory& m : memories_) {
    if (m.sizeWords < 1)
      throw Error("memory '" + m.name + "' must have >= 1 word");
    if (m.sizeWords > kMaxMemoryWords)
      throw Error("memory '" + m.name + "' exceeds the size ceiling (" +
                  std::to_string(kMaxMemoryWords) + " words)");
  }
  for (const Bus& b : buses_) {
    if (b.capacity < 1)
      throw Error("bus '" + b.name + "' must have capacity >= 1");
    if (b.capacity > kMaxBusCapacity)
      throw Error("bus '" + b.name + "' exceeds the capacity ceiling (" +
                  std::to_string(kMaxBusCapacity) + ")");
  }

  for (const FunctionalUnit& u : units_) {
    if (u.regFile >= regFiles_.size())
      throw Error("unit '" + u.name + "' references undefined regfile");
    if (u.ops.empty())
      throw Error("unit '" + u.name + "' declares no operations");
    for (const UnitOp& op : u.ops) {
      if (!isMachineOp(op.op))
        throw Error("unit '" + u.name + "' declares leaf op");
      if (op.latency != 1)
        throw Error("unit '" + u.name + "' op " + std::string(opName(op.op)) +
                    ": only single-cycle operations are supported");
      if (op.mnemonic.empty())
        throw Error("unit '" + u.name + "' op " + std::string(opName(op.op)) +
                    " has empty mnemonic");
    }
  }

  auto checkLoc = [&](Loc loc, const std::string& context) {
    if (loc.isRegFile() && loc.index >= regFiles_.size())
      throw Error(context + ": undefined regfile");
    if (loc.isMemory() && loc.index >= memories_.size())
      throw Error(context + ": undefined memory");
  };
  for (const TransferPath& t : transfers_) {
    checkLoc(t.from, "transfer");
    checkLoc(t.to, "transfer");
    if (t.bus >= buses_.size()) throw Error("transfer references undefined bus");
    if (t.from == t.to) throw Error("transfer from a storage to itself");
  }

  for (const Constraint& c : constraints_) {
    if (c.together.size() < 2)
      throw Error("constraint must list at least two op-selections");
    for (const OpSel& sel : c.together) {
      if (sel.unit >= units_.size())
        throw Error("constraint references undefined unit");
      if (!units_[sel.unit].findOp(sel.op))
        throw Error("constraint references op " + std::string(opName(sel.op)) +
                    " not implemented by unit '" + units_[sel.unit].name + "'");
    }
  }
}

std::string Machine::summary() const {
  std::string s = "machine " + name_ + "\n";
  for (const FunctionalUnit& u : units_) {
    s += "  unit " + u.name + " (regfile " + regFile(u.regFile).name + ", " +
         std::to_string(regFile(u.regFile).numRegs) + " regs): ";
    for (size_t i = 0; i < u.ops.size(); ++i) {
      if (i != 0) s += ", ";
      s += std::string(opName(u.ops[i].op));
    }
    s += "\n";
  }
  for (const Memory& m : memories_) {
    s += "  memory " + m.name + " (" + std::to_string(m.sizeWords) +
         " words)" + (m.isDataMemory ? " [data]" : "") + "\n";
  }
  for (const Bus& b : buses_) {
    s += "  bus " + b.name + " (capacity " + std::to_string(b.capacity) +
         ")\n";
  }
  s += "  " + std::to_string(transfers_.size()) + " transfer paths, " +
       std::to_string(constraints_.size()) + " constraints\n";
  return s;
}

}  // namespace aviv
