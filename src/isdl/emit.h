// ISDL emitter: renders a validated Machine back into ISDL text that
// parseMachine accepts and that produces an equivalent machine (same
// storages, units, ops, transfer paths, and constraints in the same order).
// Used by the verification guardrail's quarantine artifacts so a mismatch
// repro is fully self-contained source text.
#pragma once

#include <string>

#include "isdl/machine.h"

namespace aviv {

[[nodiscard]] std::string emitMachineText(const Machine& machine);

}  // namespace aviv
