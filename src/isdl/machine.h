// Machine model — the semantic form of an ISDL description (paper Section
// II). Captures exactly the information AVIV consumes:
//   * storage resources: register files (one per functional unit in the
//     paper's example machine, but any unit->regfile mapping is allowed),
//     data memories, and buses with per-cycle transfer capacities;
//   * functional units with their operation repertoires (RTL op kind +
//     assembly mnemonic), including complex ops such as MAC;
//   * explicit data-transfer paths between storages (expanded to multi-step
//     routes by the TransferDatabase);
//   * constraints: operation combinations that may not be grouped into one
//     VLIW instruction (Section IV-C.3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/op.h"

namespace aviv {

using UnitId = uint16_t;
using RegFileId = uint16_t;
using MemoryId = uint16_t;
using BusId = uint16_t;
inline constexpr uint16_t kNoId16 = 0xffff;

// A storage location: a register file or a memory.
struct Loc {
  enum class Kind : uint8_t { kRegFile, kMemory };

  Kind kind = Kind::kRegFile;
  uint16_t index = kNoId16;

  [[nodiscard]] static Loc regFile(RegFileId id) {
    return {Kind::kRegFile, id};
  }
  [[nodiscard]] static Loc memory(MemoryId id) { return {Kind::kMemory, id}; }

  [[nodiscard]] bool isRegFile() const { return kind == Kind::kRegFile; }
  [[nodiscard]] bool isMemory() const { return kind == Kind::kMemory; }

  bool operator==(const Loc&) const = default;
  auto operator<=>(const Loc&) const = default;
};

struct RegFile {
  std::string name;
  int numRegs = 4;
};

struct Memory {
  std::string name;
  int sizeWords = 256;
  bool isDataMemory = false;  // home of named variables and spill slots
};

struct Bus {
  std::string name;
  int capacity = 1;  // transfers per cycle
};

// One operation a functional unit can perform.
struct UnitOp {
  Op op = Op::kAdd;
  std::string mnemonic;  // assembly spelling, e.g. "add"
  int latency = 1;       // cycles (the covering engine requires 1; validated)
};

struct FunctionalUnit {
  std::string name;
  RegFileId regFile = kNoId16;  // bank operands are read from / result lands in
  std::vector<UnitOp> ops;

  // Index into `ops` of the first op with the given kind; nullopt if the
  // unit cannot perform it.
  [[nodiscard]] std::optional<int> findOp(Op op) const;
};

// A directed physical transfer edge between two storages over a bus.
struct TransferPath {
  Loc from;
  Loc to;
  BusId bus = kNoId16;
};

// "Operation `op` executing on unit `unit`" — the granularity at which ISDL
// constraints are expressed (e.g. U2.MUL).
struct OpSel {
  UnitId unit = kNoId16;
  Op op = Op::kAdd;

  bool operator==(const OpSel&) const = default;
  auto operator<=>(const OpSel&) const = default;
};

// An instruction is illegal if it contains ALL the listed op-selections
// simultaneously (the ISDL "illegal combination" form the paper describes:
// operations are orthogonal by default, constraints carve out exceptions).
struct Constraint {
  std::vector<OpSel> together;
  std::string note;  // human-readable reason, shown in diagnostics
};

class Machine {
 public:
  explicit Machine(std::string name) : name_(std::move(name)) {}

  // --- construction (used by the ISDL parser and tests) ----------------
  RegFileId addRegFile(RegFile rf);
  MemoryId addMemory(Memory mem);
  BusId addBus(Bus bus);
  UnitId addUnit(FunctionalUnit unit);
  void addTransfer(TransferPath path);
  void addConstraint(Constraint constraint);

  // --- accessors --------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<RegFile>& regFiles() const {
    return regFiles_;
  }
  [[nodiscard]] const std::vector<Memory>& memories() const {
    return memories_;
  }
  [[nodiscard]] const std::vector<Bus>& buses() const { return buses_; }
  [[nodiscard]] const std::vector<FunctionalUnit>& units() const {
    return units_;
  }
  [[nodiscard]] const std::vector<TransferPath>& transfers() const {
    return transfers_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }

  [[nodiscard]] const RegFile& regFile(RegFileId id) const;
  [[nodiscard]] const Memory& memory(MemoryId id) const;
  [[nodiscard]] const Bus& bus(BusId id) const;
  [[nodiscard]] const FunctionalUnit& unit(UnitId id) const;

  [[nodiscard]] std::optional<RegFileId> findRegFile(
      const std::string& name) const;
  [[nodiscard]] std::optional<MemoryId> findMemory(
      const std::string& name) const;
  [[nodiscard]] std::optional<BusId> findBus(const std::string& name) const;
  [[nodiscard]] std::optional<UnitId> findUnit(const std::string& name) const;

  // The register-file location a unit reads/writes.
  [[nodiscard]] Loc unitLoc(UnitId id) const;
  // The memory where named variables and spill slots live.
  [[nodiscard]] MemoryId dataMemory() const;
  [[nodiscard]] Loc dataMemoryLoc() const {
    return Loc::memory(dataMemory());
  }

  [[nodiscard]] std::string locName(Loc loc) const;

  // Uniform register-count override used by the Table I experiments
  // ("#Registers per RegFile" column): returns a copy of this machine with
  // every register file resized to `numRegs`.
  [[nodiscard]] Machine withRegisterCount(int numRegs) const;

  // Structural sanity: valid indices, non-empty units, unique names, at
  // least one data memory. Throws aviv::Error (machine files are user
  // input).
  void validate() const;

  // Human-readable multi-line summary for the examples.
  [[nodiscard]] std::string summary() const;

 private:
  std::string name_;
  std::vector<RegFile> regFiles_;
  std::vector<Memory> memories_;
  std::vector<Bus> buses_;
  std::vector<FunctionalUnit> units_;
  std::vector<TransferPath> transfers_;
  std::vector<Constraint> constraints_;
};

}  // namespace aviv
