#include "isdl/parser.h"

#include "support/io.h"
#include "support/lexer.h"
#include "support/strings.h"

namespace aviv {

namespace {

constexpr size_t kMaxDiagnostics = 32;

bool isClauseKeyword(const Token& tok) {
  return tok.isIdent("regfile") || tok.isIdent("memory") ||
         tok.isIdent("bus") || tok.isIdent("unit") ||
         tok.isIdent("transfer") || tok.isIdent("constraint");
}

class IsdlParser {
 public:
  IsdlParser(std::string_view source, std::string sourceName)
      : lexer_(source, {"->", "<->"}), sourceName_(std::move(sourceName)) {}

  Machine parse() {
    // The header is unrecoverable: without a machine name there is nothing
    // to attach later clauses to.
    try {
      expectKeyword("machine");
      Machine machine(lexer_.expectIdent().text);
      lexer_.expectPunct("{");
      return parseBody(std::move(machine));
    } catch (const ParseError&) {
      throw;
    } catch (const Error& e) {
      throw ParseError(sourceName_, {toDiagnostic(e)});
    }
  }

 private:
  Machine parseBody(Machine machine) {
    while (!lexer_.peek().isPunct("}") &&
           !lexer_.peek().is(Token::Kind::kEnd) &&
           diags_.size() < kMaxDiagnostics) {
      const Token& head = lexer_.peek();
      try {
        if (head.isIdent("regfile")) {
          parseRegFile(machine);
        } else if (head.isIdent("memory")) {
          parseMemory(machine);
        } else if (head.isIdent("bus")) {
          parseBus(machine);
        } else if (head.isIdent("unit")) {
          parseUnit(machine);
        } else if (head.isIdent("transfer")) {
          parseTransfer(machine);
        } else if (head.isIdent("constraint")) {
          parseConstraint(machine);
        } else {
          throw Error(head.loc,
                      "expected a machine clause (regfile, memory, "
                      "bus, unit, transfer, constraint), got " +
                          head.describe());
        }
      } catch (const Error& e) {
        // Panic-mode: record the diagnostic, then resynchronize at the
        // next ';' or clause keyword so later clauses still get checked.
        diags_.push_back(toDiagnostic(e));
        while (!lexer_.peek().is(Token::Kind::kEnd) &&
               !lexer_.peek().isPunct("}") &&
               !isClauseKeyword(lexer_.peek())) {
          if (lexer_.next().isPunct(";")) break;
        }
      }
    }
    if (diags_.empty()) {
      lexer_.expectPunct("}");
      if (!lexer_.atEnd())
        throw Error(lexer_.peek().loc,
                    "trailing input after machine definition");
      machine.validate();
      return machine;
    }
    throw ParseError(sourceName_, std::move(diags_));
  }
  void parseRegFile(Machine& machine) {
    lexer_.next();  // 'regfile'
    RegFile rf;
    rf.name = lexer_.expectIdent().text;
    expectKeyword("size");
    rf.numRegs = static_cast<int>(lexer_.expectNumber().number);
    lexer_.expectPunct(";");
    machine.addRegFile(std::move(rf));
  }

  void parseMemory(Machine& machine) {
    lexer_.next();  // 'memory'
    Memory mem;
    mem.name = lexer_.expectIdent().text;
    expectKeyword("size");
    mem.sizeWords = static_cast<int>(lexer_.expectNumber().number);
    if (lexer_.tryConsumeIdent("data")) mem.isDataMemory = true;
    lexer_.expectPunct(";");
    machine.addMemory(std::move(mem));
  }

  void parseBus(Machine& machine) {
    lexer_.next();  // 'bus'
    Bus bus;
    bus.name = lexer_.expectIdent().text;
    if (lexer_.tryConsumeIdent("capacity"))
      bus.capacity = static_cast<int>(lexer_.expectNumber().number);
    lexer_.expectPunct(";");
    machine.addBus(std::move(bus));
  }

  void parseUnit(Machine& machine) {
    lexer_.next();  // 'unit'
    FunctionalUnit unit;
    const Token nameTok = lexer_.expectIdent();
    unit.name = nameTok.text;
    expectKeyword("regfile");
    const Token rfTok = lexer_.expectIdent();
    const auto rf = machine.findRegFile(rfTok.text);
    if (!rf)
      throw Error(rfTok.loc, "unknown regfile '" + rfTok.text +
                                 "' (declare regfiles before units)");
    unit.regFile = *rf;
    lexer_.expectPunct("{");
    while (!lexer_.peek().isPunct("}")) {
      expectKeyword("op");
      UnitOp unitOp;
      const Token opTok = lexer_.expectIdent();
      const auto op = opFromName(opTok.text);
      if (!op || isLeafOp(*op))
        throw Error(opTok.loc, "unknown operation kind '" + opTok.text + "'");
      unitOp.op = *op;
      if (lexer_.peek().is(Token::Kind::kString))
        unitOp.mnemonic = lexer_.next().text;
      else
        unitOp.mnemonic = toLower(opTok.text);
      if (lexer_.tryConsumeIdent("latency"))
        unitOp.latency = static_cast<int>(lexer_.expectNumber().number);
      lexer_.expectPunct(";");
      unit.ops.push_back(std::move(unitOp));
    }
    lexer_.expectPunct("}");
    machine.addUnit(std::move(unit));
  }

  Loc parseLoc(Machine& machine) {
    const Token tok = lexer_.expectIdent();
    if (const auto rf = machine.findRegFile(tok.text))
      return Loc::regFile(*rf);
    if (const auto mem = machine.findMemory(tok.text))
      return Loc::memory(*mem);
    throw Error(tok.loc, "unknown storage '" + tok.text + "'");
  }

  BusId parseBusRef(Machine& machine) {
    expectKeyword("bus");
    const Token tok = lexer_.expectIdent();
    const auto bus = machine.findBus(tok.text);
    if (!bus) throw Error(tok.loc, "unknown bus '" + tok.text + "'");
    return *bus;
  }

  void parseTransfer(Machine& machine) {
    lexer_.next();  // 'transfer'
    if (lexer_.tryConsumeIdent("complete")) {
      const BusId bus = parseBusRef(machine);
      lexer_.expectPunct(";");
      std::vector<Loc> locs;
      for (size_t i = 0; i < machine.regFiles().size(); ++i)
        locs.push_back(Loc::regFile(static_cast<RegFileId>(i)));
      for (size_t i = 0; i < machine.memories().size(); ++i)
        locs.push_back(Loc::memory(static_cast<MemoryId>(i)));
      for (const Loc& from : locs)
        for (const Loc& to : locs)
          if (!(from == to)) machine.addTransfer({from, to, bus});
      return;
    }
    const Loc from = parseLoc(machine);
    const Token arrow = lexer_.next();
    const bool both = arrow.isPunct("<->");
    if (!both && !arrow.isPunct("->"))
      throw Error(arrow.loc, "expected '->' or '<->', got " + arrow.describe());
    const Loc to = parseLoc(machine);
    const BusId bus = parseBusRef(machine);
    lexer_.expectPunct(";");
    machine.addTransfer({from, to, bus});
    if (both) machine.addTransfer({to, from, bus});
  }

  void parseConstraint(Machine& machine) {
    lexer_.next();  // 'constraint'
    Constraint constraint;
    if (lexer_.peek().is(Token::Kind::kString))
      constraint.note = lexer_.next().text;
    lexer_.expectPunct("{");
    do {
      const Token unitTok = lexer_.expectIdent();
      const auto unit = machine.findUnit(unitTok.text);
      if (!unit)
        throw Error(unitTok.loc, "unknown unit '" + unitTok.text + "'");
      lexer_.expectPunct(".");
      const Token opTok = lexer_.expectIdent();
      const auto op = opFromName(opTok.text);
      if (!op || isLeafOp(*op))
        throw Error(opTok.loc, "unknown operation kind '" + opTok.text + "'");
      constraint.together.push_back({*unit, *op});
    } while (lexer_.tryConsume(","));
    lexer_.expectPunct("}");
    machine.addConstraint(std::move(constraint));
  }

  void expectKeyword(std::string_view keyword) {
    const Token tok = lexer_.next();
    if (!tok.isIdent(keyword))
      throw Error(tok.loc, "expected '" + std::string(keyword) + "', got " +
                               tok.describe());
  }

  Lexer lexer_;
  std::string sourceName_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

Machine parseMachine(std::string_view source, const std::string& sourceName) {
  IsdlParser parser(source, sourceName);
  return parser.parse();
}

Machine loadMachine(const std::string& name) {
  return parseMachine(readFile(machinePath(name)), name + ".isdl");
}

}  // namespace aviv
