#include "isdl/databases.h"

#include <algorithm>
#include <deque>
#include <set>

#include "support/error.h"

namespace aviv {

// ---------------------------------------------------------------------
// OpDatabase
// ---------------------------------------------------------------------

OpDatabase::OpDatabase(const Machine& machine) : byOp_(kNumOps) {
  for (UnitId u = 0; u < machine.units().size(); ++u) {
    const FunctionalUnit& unit = machine.unit(u);
    for (size_t i = 0; i < unit.ops.size(); ++i) {
      byOp_[static_cast<size_t>(unit.ops[i].op)].push_back(
          {u, static_cast<int>(i)});
    }
  }
}

const std::vector<OpImpl>& OpDatabase::implsFor(Op op) const {
  static const std::vector<OpImpl> kEmpty;
  const auto i = static_cast<size_t>(op);
  if (i >= byOp_.size()) return kEmpty;
  return byOp_[i];
}

// ---------------------------------------------------------------------
// TransferDatabase
// ---------------------------------------------------------------------

size_t TransferDatabase::locIndex(Loc loc) const {
  return loc.isRegFile() ? loc.index : numRegFiles_ + loc.index;
}

TransferDatabase::TransferDatabase(const Machine& machine,
                                   int maxRoutesPerPair) {
  numRegFiles_ = machine.regFiles().size();
  numLocs_ = numRegFiles_ + machine.memories().size();
  cost_.assign(numLocs_ * numLocs_, kUnreachable);
  routes_.assign(numLocs_ * numLocs_, {});

  // Adjacency: outgoing transfer-path ids per loc.
  std::vector<std::vector<int>> out(numLocs_);
  for (size_t p = 0; p < machine.transfers().size(); ++p) {
    const TransferPath& path = machine.transfers()[p];
    out[locIndex(path.from)].push_back(static_cast<int>(p));
  }

  // For every target, reverse BFS gives distTo[t][loc]; forward DFS then
  // enumerates all minimal-hop routes (capped).
  std::vector<std::vector<int>> in(numLocs_);
  for (size_t p = 0; p < machine.transfers().size(); ++p)
    in[locIndex(machine.transfers()[p].to)].push_back(static_cast<int>(p));

  for (size_t t = 0; t < numLocs_; ++t) {
    std::vector<int> distTo(numLocs_, kUnreachable);
    distTo[t] = 0;
    std::deque<size_t> queue{t};
    while (!queue.empty()) {
      const size_t cur = queue.front();
      queue.pop_front();
      for (int pathId : in[cur]) {
        const size_t from =
            locIndex(machine.transfers()[static_cast<size_t>(pathId)].from);
        if (distTo[from] == kUnreachable) {
          distTo[from] = distTo[cur] + 1;
          queue.push_back(from);
        }
      }
    }

    for (size_t s = 0; s < numLocs_; ++s) {
      cost_[s * numLocs_ + t] = s == t ? 0 : distTo[s];
      if (s == t || distTo[s] == kUnreachable) continue;

      // Enumerate minimal routes s -> t by always stepping "downhill" in
      // distTo. Depth bounded by distTo[s], fan-out capped.
      auto& routeList = routes_[s * numLocs_ + t];
      std::vector<int> current;
      // Iterative DFS with explicit stack of (loc, next edge cursor).
      struct Frame {
        size_t loc;
        size_t cursor;
      };
      std::vector<Frame> stack{{s, 0}};
      while (!stack.empty() &&
             routeList.size() < static_cast<size_t>(maxRoutesPerPair)) {
        Frame& frame = stack.back();
        if (frame.loc == t) {
          routeList.push_back({current});
          stack.pop_back();
          if (!current.empty()) current.pop_back();
          continue;
        }
        bool descended = false;
        while (frame.cursor < out[frame.loc].size()) {
          const int pathId = out[frame.loc][frame.cursor++];
          const size_t next =
              locIndex(machine.transfers()[static_cast<size_t>(pathId)].to);
          if (distTo[next] == distTo[frame.loc] - 1) {
            current.push_back(pathId);
            stack.push_back({next, 0});
            descended = true;
            break;
          }
        }
        if (!descended) {
          stack.pop_back();
          if (!current.empty()) current.pop_back();
        }
      }
      AVIV_CHECK_MSG(!routeList.empty(),
                     "BFS found a distance but no route for loc pair ("
                         << s << "," << t << ")");
    }
  }
}

const std::vector<TransferRoute>& TransferDatabase::routes(Loc from,
                                                           Loc to) const {
  AVIV_CHECK(numLocs_ > 0);
  if (from == to) return empty_;
  const size_t idx = locIndex(from) * numLocs_ + locIndex(to);
  return routes_[idx];
}

int TransferDatabase::cost(Loc from, Loc to) const {
  AVIV_CHECK(numLocs_ > 0);
  return cost_[locIndex(from) * numLocs_ + locIndex(to)];
}

// ---------------------------------------------------------------------
// ConstraintDatabase
// ---------------------------------------------------------------------

ConstraintDatabase::ConstraintDatabase(const Machine& machine)
    : constraints_(machine.constraints()) {}

const Constraint* ConstraintDatabase::firstViolated(
    const std::vector<OpSel>& sels) const {
  if (constraints_.empty()) return nullptr;
  const std::set<OpSel> present(sels.begin(), sels.end());
  for (const Constraint& c : constraints_) {
    const bool violated =
        std::all_of(c.together.begin(), c.together.end(),
                    [&](const OpSel& sel) { return present.count(sel) > 0; });
    if (violated) return &c;
  }
  return nullptr;
}

}  // namespace aviv
