#include "isdl/emit.h"

namespace aviv {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string emitMachineText(const Machine& machine) {
  std::string text = "machine " + machine.name() + " {\n";
  for (const RegFile& rf : machine.regFiles())
    text += "  regfile " + rf.name + " size " + std::to_string(rf.numRegs) +
            ";\n";
  for (const Memory& mem : machine.memories())
    text += "  memory " + mem.name + " size " +
            std::to_string(mem.sizeWords) + (mem.isDataMemory ? " data" : "") +
            ";\n";
  for (const Bus& bus : machine.buses())
    text += "  bus " + bus.name + " capacity " +
            std::to_string(bus.capacity) + ";\n";
  for (const FunctionalUnit& unit : machine.units()) {
    text += "  unit " + unit.name + " regfile " +
            machine.regFile(unit.regFile).name + " {\n";
    for (const UnitOp& op : unit.ops)
      text += "    op " + std::string(opName(op.op)) + " " +
              quoted(op.mnemonic) + " latency " + std::to_string(op.latency) +
              ";\n";
    text += "  }\n";
  }
  for (const TransferPath& t : machine.transfers())
    text += "  transfer " + machine.locName(t.from) + " -> " +
            machine.locName(t.to) + " bus " + machine.bus(t.bus).name + ";\n";
  for (const Constraint& c : machine.constraints()) {
    text += "  constraint ";
    if (!c.note.empty()) text += quoted(c.note) + " ";
    text += "{ ";
    for (size_t i = 0; i < c.together.size(); ++i) {
      if (i > 0) text += ", ";
      text += machine.unit(c.together[i].unit).name + "." +
              std::string(opName(c.together[i].op));
    }
    text += " }\n";
  }
  text += "}\n";
  return text;
}

}  // namespace aviv
