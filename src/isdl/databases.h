// The databases AVIV derives from an ISDL description before building any
// Split-Node DAG (paper Section II):
//
//   * OpDatabase — correlates each SUIF-style basic operation with the
//     target-processor operations (unit, op-index pairs) that implement it.
//   * TransferDatabase — all possible data transfers: the explicit single
//     paths from the description, "subsequently expanded to include
//     multiple-step data transfers as well" via breadth-first search. For
//     architectures with multiple transfer paths it retains every distinct
//     minimal-hop route so the Section IV-B route selector has options.
//   * ConstraintDatabase — the illegal operation combinations used to
//     split illegal maximal cliques (Section IV-C.3).
#pragma once

#include <optional>
#include <vector>

#include "isdl/machine.h"

namespace aviv {

// One candidate implementation of an operation.
struct OpImpl {
  UnitId unit = kNoId16;
  int opIndex = 0;  // index into FunctionalUnit::ops
};

class OpDatabase {
 public:
  OpDatabase() = default;
  explicit OpDatabase(const Machine& machine);

  // Candidate implementations for `op` (possibly empty).
  [[nodiscard]] const std::vector<OpImpl>& implsFor(Op op) const;
  // True if at least one unit implements `op`.
  [[nodiscard]] bool isImplementable(Op op) const {
    return !implsFor(op).empty();
  }

 private:
  std::vector<std::vector<OpImpl>> byOp_;  // indexed by Op
};

// A multi-hop route: the sequence of TransferPath indices (into
// Machine::transfers()) a value follows from one storage to another.
struct TransferRoute {
  std::vector<int> pathIds;

  [[nodiscard]] int hops() const { return static_cast<int>(pathIds.size()); }
};

class TransferDatabase {
 public:
  // Cost reported for unreachable pairs; large but safely summable.
  static constexpr int kUnreachable = 1 << 20;

  TransferDatabase() = default;
  // `maxRoutesPerPair` caps how many distinct minimal routes are kept.
  explicit TransferDatabase(const Machine& machine, int maxRoutesPerPair = 8);

  // All minimal-hop routes from -> to. Empty if from == to (no transfer
  // needed) or unreachable (distinguish with cost()).
  [[nodiscard]] const std::vector<TransferRoute>& routes(Loc from,
                                                         Loc to) const;
  // Minimal hop count; 0 if from == to; kUnreachable if no route exists.
  [[nodiscard]] int cost(Loc from, Loc to) const;
  [[nodiscard]] bool reachable(Loc from, Loc to) const {
    return cost(from, to) < kUnreachable;
  }

  [[nodiscard]] size_t numLocs() const { return numLocs_; }

 private:
  [[nodiscard]] size_t locIndex(Loc loc) const;

  size_t numRegFiles_ = 0;
  size_t numLocs_ = 0;
  std::vector<int> cost_;                           // numLocs^2
  std::vector<std::vector<TransferRoute>> routes_;  // numLocs^2
  std::vector<TransferRoute> empty_;
};

class ConstraintDatabase {
 public:
  ConstraintDatabase() = default;
  explicit ConstraintDatabase(const Machine& machine);

  // Returns the first constraint violated by an instruction containing
  // exactly the given op-selections, or nullptr if the grouping is legal.
  // Duplicate OpSels in `sels` are allowed and treated as present-once.
  [[nodiscard]] const Constraint* firstViolated(
      const std::vector<OpSel>& sels) const;

  [[nodiscard]] bool allows(const std::vector<OpSel>& sels) const {
    return firstViolated(sels) == nullptr;
  }

  [[nodiscard]] size_t size() const { return constraints_.size(); }

 private:
  std::vector<Constraint> constraints_;
};

// Convenience bundle: everything derived from one machine.
struct MachineDatabases {
  MachineDatabases() = default;
  explicit MachineDatabases(const Machine& machine)
      : ops(machine), transfers(machine), constraints(machine) {}

  OpDatabase ops;
  TransferDatabase transfers;
  ConstraintDatabase constraints;
};

}  // namespace aviv
