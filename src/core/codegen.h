// Core covering pipeline (paper Fig 5, "Overall Algorithm for Covering the
// Split-Node DAG"):
//
//   1. build the Split-Node DAG,
//   2. explore split-node functional-unit assignments and select several of
//      the lowest-cost ones,
//   3. for each selected assignment: insert required transfers, generate
//      maximal groupings, cover with a minimal-cost legal set (inserting
//      loads/spills as register limits demand),
//   4. the assignment whose covering needed the fewest instructions wins.
//
// Detailed register allocation and peephole optimization (Sections IV-F/G)
// run afterwards — see regalloc/ and the driver.
#pragma once

#include "core/assign_explore.h"
#include "core/assigned.h"
#include "core/context.h"
#include "core/cover.h"
#include "core/options.h"
#include "core/splitnode.h"
#include "support/telemetry.h"
#include "support/thread_pool.h"

namespace aviv {

// Order-independent totals over the whole covering search — exploration plus
// every candidate covering, successful or register-infeasible. Summed per
// candidate, so jobs=1 and jobs=N produce identical values (the determinism
// invariant the service cache tests pin down).
struct SearchStats {
  size_t nodesVisited = 0;         // explore states expanded + clique
                                   // branch-and-bound recursions
  size_t prunedByBound = 0;        // explore bound rejections + clique
                                   // branches cut
  size_t backtracks = 0;           // beam drops + spill-forced regenerations
                                   // + register-infeasible candidates
  size_t candidatesAbandoned = 0;  // covering candidates with no fitting
                                   // member subset
  // Workspace-arena accounting over all candidate coverings. Chunk-boundary
  // waste is never charged (see support/arena.h), so calls/bytes are exact
  // per-candidate sums and highWater is a max of per-candidate peaks —
  // all three are jobs-invariant.
  uint64_t arenaCalls = 0;      // arena allocations across candidates
  uint64_t arenaBytes = 0;      // raw bytes requested across candidates
  uint64_t arenaHighWater = 0;  // max per-candidate arena peak (bytes)
};

// One improvement of the best complete covering, recorded at the candidate
// index where the serial reduction first sees it. The sequence is the
// deterministic prefix-minima over (instructions, spills, candidate index);
// only `seconds` (wall time since covering started) is run-dependent.
struct TrajectoryPoint {
  size_t candidate = 0;
  int instructions = 0;
  int spills = 0;
  double seconds = 0.0;
};

// Typed view over a block's phase-telemetry subtree (the session's single
// source of stage statistics) — see recordCoreStats / coreStatsView below.
struct CoreStats {
  size_t irNodes = 0;
  size_t sndNodes = 0;  // Split-Node DAG size (Table I column)
  ExploreStats explore;
  size_t assignmentsCovered = 0;  // assignments taken through full covering
  CoverStats cover;               // of the winning assignment
  SearchStats search;             // totals across ALL candidates
  std::vector<TrajectoryPoint> trajectory;  // best-cost-over-time
  bool timedOut = false;
  double seconds = 0.0;
};

struct CoreResult {
  Assignment assignment;
  AssignedGraph graph;  // winning assignment, spills applied
  Schedule schedule;
  CoreStats stats;
};

// Runs steps 1-4 above. Lifetimes: `ir`, `machine` and `dbs` must outlive
// the returned result (the graph references them).
//
// When `pool` is non-null and options.jobs > 1, the selected assignments are
// covered in parallel; the winner is reduced with a deterministic
// (instructions, spills, candidate index) tie-break so the result is
// bit-identical to the serial run. When `phase` is non-null the stage
// timings and counters are recorded under it (children "splitnode",
// "explore", "cover" — see recordCoreStats for the counter names).
//
// Deadline semantics (anytime algorithm): `deadline` defaults to a local
// budget armed from options.timeLimitSeconds (the context overloads pass
// the session deadline instead). Once it expires, no further candidate
// assignments are started and the best complete covering found so far is
// returned with stats.timedOut set; if it expires before ANY candidate
// completes — including mid-exploration — DeadlineExceeded is thrown and
// the driver degrades to the sequential baseline.
// `wsCache` (optional) supplies per-worker CoverWorkspaces; the context
// overloads pass the session cache so scratch survives across compiles.
[[nodiscard]] CoreResult coverBlock(const BlockDag& ir, const Machine& machine,
                                    const MachineDatabases& dbs,
                                    const CodegenOptions& options,
                                    ThreadPool* pool = nullptr,
                                    TelemetryNode* phase = nullptr,
                                    const Deadline* deadline = nullptr,
                                    WorkspaceCache* wsCache = nullptr);

// Session form: machine, databases, pool, and telemetry all come from `ctx`.
// Stage telemetry lands under ctx.telemetry().child("block:<name>") unless
// `phase` overrides the destination (the driver passes pre-created per-block
// subtrees so parallel block compiles never share a node).
[[nodiscard]] CoreResult coverBlock(const BlockDag& ir, CodegenContext& ctx,
                                    TelemetryNode* phase = nullptr);
[[nodiscard]] CoreResult coverBlock(const BlockDag& ir, CodegenContext& ctx,
                                    const CodegenOptions& options,
                                    TelemetryNode* phase = nullptr);

// Typed view plumbing: the telemetry tree is the session's single source of
// stage statistics; these convert between it and the stage-level structs.
// Layout under a block's phase node:
//   counters irNodes, sndNodes
//   child "explore": completeAssignments, statesExpanded, prunedByBound,
//                    beamDropped, capped
//   child "cover": assignmentsCovered, candidates, jobs, cliquesGenerated,
//                  cliqueRounds, cliqueRecursions, cliquePruned,
//                  candidatesEvaluated, candidatesAbandoned, spillsInserted,
//                  timedOut
//     children "best:<k>": the best-cost trajectory, counters candidate,
//                          instructions, spills (seconds = wall time, which
//                          sameShapeAs ignores)
//   child "search": nodesVisited, prunedByBound, backtracks,
//                   candidatesAbandoned (order-independent totals)
void recordCoreStats(const CoreStats& stats, TelemetryNode& phase);
[[nodiscard]] CoreStats coreStatsView(const TelemetryNode& phase);

}  // namespace aviv
