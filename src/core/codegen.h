// Core covering pipeline (paper Fig 5, "Overall Algorithm for Covering the
// Split-Node DAG"):
//
//   1. build the Split-Node DAG,
//   2. explore split-node functional-unit assignments and select several of
//      the lowest-cost ones,
//   3. for each selected assignment: insert required transfers, generate
//      maximal groupings, cover with a minimal-cost legal set (inserting
//      loads/spills as register limits demand),
//   4. the assignment whose covering needed the fewest instructions wins.
//
// Detailed register allocation and peephole optimization (Sections IV-F/G)
// run afterwards — see regalloc/ and the driver.
#pragma once

#include "core/assign_explore.h"
#include "core/assigned.h"
#include "core/cover.h"
#include "core/options.h"
#include "core/splitnode.h"

namespace aviv {

struct CoreStats {
  size_t irNodes = 0;
  size_t sndNodes = 0;  // Split-Node DAG size (Table I column)
  ExploreStats explore;
  size_t assignmentsCovered = 0;  // assignments taken through full covering
  CoverStats cover;               // of the winning assignment
  bool timedOut = false;
  double seconds = 0.0;
};

struct CoreResult {
  Assignment assignment;
  AssignedGraph graph;  // winning assignment, spills applied
  Schedule schedule;
  CoreStats stats;
};

// Runs steps 1-4 above. Lifetimes: `ir`, `machine` and `dbs` must outlive
// the returned result (the graph references them).
[[nodiscard]] CoreResult coverBlock(const BlockDag& ir, const Machine& machine,
                                    const MachineDatabases& dbs,
                                    const CodegenOptions& options);

}  // namespace aviv
