// AssignedGraph — the concrete node set of one functional-unit assignment
// ("the collection of functional unit assignments made to cover all the
// split-nodes, along with their associated transfer nodes", Section IV-C).
//
// Materialization takes one Assignment over the Split-Node DAG and produces
// the executable dependency graph the covering engine schedules:
//   * one kOp node per chosen alternative,
//   * transfer chains for every value that must move between storages
//     (deduplicated per (value, destination storage) — one move feeds every
//     consumer in that bank), with the Section IV-B route selector choosing
//     among multiple minimal routes by bus-congestion balance,
//   * variable loads from data memory for named inputs,
//   * (optionally) stores of block outputs back to data memory.
//
// The graph is mutated by the covering engine when loads and spills are
// inserted (Section IV-D / Fig 9): spilled values get a store chain to a
// spill slot, pending consumers are rewired onto load chains, and transfer
// nodes made redundant are deleted.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/assign_explore.h"
#include "core/splitnode.h"
#include "support/arena.h"
#include "support/bitset.h"
#include "support/smallvec.h"

namespace aviv {

struct CoverWorkspace;

using AgId = uint32_t;
inline constexpr AgId kNoAg = 0xffffffffu;

enum class AgKind : uint8_t {
  kOp,          // operation executing on a functional unit
  kTransfer,    // one hop of a storage-to-storage move
  kSpillStore,  // transfer hop landing a spilled value in data memory
  kSpillLoad,   // transfer hop reloading a spilled value from data memory
  kDeleted,     // removed (e.g. transfer made redundant by a spill)
};

struct AgNode {
  AgKind kind = AgKind::kOp;
  // kOp: the root IR node implemented. Transfer-ish: the IR node whose
  // value is moved (kNoNode for reloads of spilled non-leaf values).
  NodeId ir = kNoNode;

  // kOp only. covers/operandIr alias the SplitNodeDag's flat id pool while
  // the covering engine runs (zero-copy materialization); the winning
  // candidate calls AssignedGraph::detachPayloads() to re-home them into
  // graph-owned storage before the SND is destroyed.
  UnitId unit = kNoId16;
  Op machineOp = Op::kAdd;
  int unitOpIdx = -1;
  Span<const NodeId> covers;
  Span<const NodeId> operandIr;
  // Producing AgNode per operand; kNoAg for constant immediates. Backed by
  // the graph's flat def pool (mutable: spills retarget entries in place).
  Span<AgId> operandDefs;

  // Transfer-ish only.
  int pathId = -1;        // index into Machine::transfers() (bus, from, to)
  AgId valueSrc = kNoAg;  // immediate source node whose register is read;
                          // kNoAg when reading from data memory
  int spillSlot = -1;     // kSpillStore / kSpillLoad
  // Named data-memory cell this transfer touches: the input variable a leaf
  // load reads, or the output variable a store writes. Empty otherwise.
  std::string memVar;

  // Where the produced value lands: the unit's register file for kOp, the
  // hop destination for transfers (data memory for spill stores).
  Loc defLoc;

  // Dependency edges (deduplicated). Almost always <= 4 entries, so the
  // inline storage avoids two heap allocations per node per candidate.
  SmallVec<AgId, 4> preds;
  SmallVec<AgId, 4> succs;

  [[nodiscard]] bool isTransferish() const {
    return kind == AgKind::kTransfer || kind == AgKind::kSpillStore ||
           kind == AgKind::kSpillLoad;
  }
  [[nodiscard]] bool deleted() const { return kind == AgKind::kDeleted; }
  // True when the node's result occupies a register.
  [[nodiscard]] bool definesRegister() const {
    return !deleted() && defLoc.isRegFile();
  }
};

class AssignedGraph {
 public:
  // An empty graph (no IR / machine attached). Exists so CoreResult is
  // default-constructible: cache-hydrated compiles (src/service) carry a
  // CodeImage but no covering artifacts. Calling ir()/machine() on an
  // empty graph is invalid.
  AssignedGraph() = default;

  // Materializes an assignment. Throws aviv::Error when an output is a
  // constant (unsupported) or required routes are missing. When `ws` is
  // given, its arena provides the transient build scratch (busUse, opOf,
  // the value-availability table) — the caller must keep an ArenaScope
  // open around materialize + covering.
  //
  // NOTE: the returned graph's covers/operandIr spans alias `snd`'s pools;
  // call detachPayloads() before the graph outlives the SND.
  static AssignedGraph materialize(const SplitNodeDag& snd,
                                   const Assignment& assignment,
                                   const CodegenOptions& options,
                                   CoverWorkspace* ws = nullptr);

  // Copies every node's covers/operandIr out of the SND's pools into
  // graph-owned storage. Called on the winning candidate only (and by the
  // baseline path); idempotent per node payload but cheap enough to call
  // once unconditionally.
  void detachPayloads();

  // Deep copy: every span is re-homed into the clone's own pools, so the
  // clone is independent of the source graph (and of the source SND). The
  // graph is deliberately not copyable implicitly — the per-candidate hot
  // path must never deep-copy by accident.
  [[nodiscard]] AssignedGraph clone() const;

  [[nodiscard]] const BlockDag& ir() const { return *ir_; }
  [[nodiscard]] const Machine& machine() const { return *machine_; }

  [[nodiscard]] size_t size() const { return nodes_.size(); }
  [[nodiscard]] const AgNode& node(AgId id) const;
  [[nodiscard]] size_t numActiveNodes() const;

  // Output bindings: block output name -> AgNode producing its value.
  [[nodiscard]] const std::vector<std::pair<std::string, AgId>>& outputDefs()
      const {
    return outputDefs_;
  }

  // --- mutation (covering engine: spill insertion) ----------------------
  // Appends a spill-store chain moving `victim`'s value to a fresh spill
  // slot. Returns the ids of the new chain nodes (first reads the victim's
  // register; last is the kSpillStore landing in memory) and the slot.
  struct SpillStoreResult {
    std::vector<AgId> chain;
    int slot = -1;
  };
  SpillStoreResult addSpillStore(AgId victim, const TransferDatabase& xferDb);

  // Appends a spill-load chain moving spill slot `slot` into `destBank`.
  // `afterStore` is the kSpillStore the load depends on. Returns chain ids
  // (last lands in destBank).
  std::vector<AgId> addSpillLoad(int slot, Loc destBank, AgId afterStore,
                                 NodeId valueIr,
                                 const TransferDatabase& xferDb);

  // Rewires consumer's dependency + operand reference oldDef -> newDef.
  void retargetConsumer(AgId consumer, AgId oldDef, AgId newDef);

  // Marks a node deleted and unlinks all its edges. The node must have no
  // remaining successors.
  void deleteNode(AgId id);

  [[nodiscard]] int numSpillSlots() const { return nextSpillSlot_; }

  // Constant-pool cells referenced by this graph's loads (name -> value);
  // populated when CodegenOptions::constantsInMemory routed constants
  // through data memory.
  [[nodiscard]] const std::map<std::string, int64_t>& constPool() const {
    return constPool_;
  }

  // --- analyses ----------------------------------------------------------
  // descendants[i].test(j) == a dependency path i -> j exists. Recomputed on
  // demand after mutations.
  [[nodiscard]] std::vector<DynBitset> computeDescendants() const;
  // Workspace variant: reuses ws.desc's bitset storage (and ws.topoOrder /
  // ws.topoPending) instead of allocating fresh vectors each call.
  std::vector<DynBitset>& computeDescendantsInto(CoverWorkspace& ws) const;
  // Levels over active nodes (deleted nodes get 0).
  [[nodiscard]] std::vector<int> levelsFromTop() const;
  [[nodiscard]] std::vector<int> levelsFromBottom() const;
  // Bus of a transfer-ish node.
  [[nodiscard]] BusId busOf(AgId id) const;

  [[nodiscard]] std::string describe(AgId id) const;
  void verify() const;

 private:
  AgId append(AgNode node);
  void addDep(AgId from, AgId to);  // from produces, to consumes

  const BlockDag* ir_ = nullptr;
  const Machine* machine_ = nullptr;
  const TransferDatabase* xferDb_ = nullptr;
  std::vector<AgNode> nodes_;
  // Flat pools backing AgNode spans. defPool_ holds operandDefs (graph-owned
  // from the start); payloadPool_ receives covers/operandIr copies when
  // detachPayloads() re-homes them off the SND.
  FlatPool<AgId> defPool_;
  FlatPool<NodeId> payloadPool_;
  std::vector<std::pair<std::string, AgId>> outputDefs_;
  std::map<std::string, int64_t> constPool_;
  int nextSpillSlot_ = 0;
};

}  // namespace aviv
