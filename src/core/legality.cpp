#include "core/legality.h"

#include <algorithm>
#include <map>

#include "support/error.h"

namespace aviv {

namespace {

// Returns kNoAg when legal, else a node whose removal repairs (part of) the
// violation.
AgId findViolatingNode(const DynBitset& clique, const AssignedGraph& graph,
                       const ConstraintDatabase& constraints) {
  // Bus capacities.
  std::map<BusId, std::vector<AgId>> busLoad;
  clique.forEach([&](size_t i) {
    const AgId id = static_cast<AgId>(i);
    if (graph.node(id).isTransferish()) busLoad[graph.busOf(id)].push_back(id);
  });
  for (const auto& [bus, users] : busLoad) {
    if (static_cast<int>(users.size()) > graph.machine().bus(bus).capacity)
      return users.back();
  }

  // ISDL constraints over the operation selections.
  if (constraints.size() > 0) {
    std::vector<OpSel> sels;
    std::vector<AgId> selNodes;
    clique.forEach([&](size_t i) {
      const AgNode& n = graph.node(static_cast<AgId>(i));
      if (n.kind == AgKind::kOp) {
        sels.push_back({n.unit, n.machineOp});
        selNodes.push_back(static_cast<AgId>(i));
      }
    });
    if (const Constraint* violated = constraints.firstViolated(sels)) {
      // Drop the last clique member participating in the constraint.
      for (size_t i = selNodes.size(); i-- > 0;) {
        for (const OpSel& sel : violated->together) {
          if (sels[i] == sel) return selNodes[i];
        }
      }
      AVIV_UNREACHABLE("violated constraint without participating node");
    }
  }
  return kNoAg;
}

}  // namespace

bool cliqueIsLegal(const DynBitset& clique, const AssignedGraph& graph,
                   const ConstraintDatabase& constraints) {
  return findViolatingNode(clique, graph, constraints) == kNoAg;
}

std::vector<DynBitset> enforceLegality(std::vector<DynBitset> cliques,
                                       const AssignedGraph& graph,
                                       const ConstraintDatabase& constraints) {
  std::vector<DynBitset> legal;
  // Worklist: split until every piece is legal.
  while (!cliques.empty()) {
    DynBitset clique = std::move(cliques.back());
    cliques.pop_back();
    const AgId offender = findViolatingNode(clique, graph, constraints);
    if (offender == kNoAg) {
      legal.push_back(std::move(clique));
      continue;
    }
    AVIV_CHECK(clique.count() >= 2);
    // Split into {clique - offender} and {offender} — both strictly
    // smaller, so this terminates; singletons are always legal.
    DynBitset rest = clique;
    rest.reset(offender);
    DynBitset alone(clique.size());
    alone.set(offender);
    cliques.push_back(std::move(rest));
    cliques.push_back(std::move(alone));
  }

  // Dedup + drop strict subsets (splitting can produce both).
  std::sort(legal.begin(), legal.end(),
            [](const DynBitset& a, const DynBitset& b) {
              if (a.count() != b.count()) return a.count() > b.count();
              return a.lexLess(b);
            });
  legal.erase(std::unique(legal.begin(), legal.end()), legal.end());
  std::vector<DynBitset> result;
  for (const DynBitset& clique : legal) {
    bool subset = false;
    for (const DynBitset& kept : result) {
      if (clique.isSubsetOf(kept)) {
        subset = true;
        break;
      }
    }
    if (!subset) result.push_back(clique);
  }
  return result;
}

}  // namespace aviv
