// CoverWorkspace — per-worker scratch memory for the covering engine.
//
// One workspace is owned by each search worker (and cached on the
// CodegenContext between compiles, so a warm daemon re-covers blocks
// without touching malloc). It bundles:
//   * an Arena for per-candidate scratch (clique recursion buffers,
//     materialization maps) — rewound via ArenaScope after each candidate,
//     chunks retained;
//   * reusable DynBitsets and vectors for the covering engine's per-round
//     and per-clique sets, sized via clearAndResize so their heap storage
//     survives across candidates.
//
// Core headers that only need a CoverWorkspace* use a forward declaration
// (`struct CoverWorkspace;`) instead of this header, keeping include cycles
// out of assigned.h / parallel_matrix.h.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/parallel_matrix.h"
#include "support/arena.h"
#include "support/bitset.h"

namespace aviv {

struct CoverWorkspace {
  // Per-candidate scratch arena. Everything allocated here lives inside an
  // ArenaScope opened at candidate entry; the graph's own payload pools are
  // deliberately NOT here (the winning candidate escapes the scope).
  Arena arena{1 << 16};

  // Covering engine per-round/per-clique scratch (see cover.cpp).
  DynBitset covered;
  DynBitset ready;
  DynBitset eligible;
  DynBitset members;
  DynBitset readyAfter;
  DynBitset liveOut;
  DynBitset active;
  // Round-invariant pressure baseline: which covered producers are live
  // with no clique selected, and the bank pressure they induce. The
  // per-clique probe adjusts this instead of rescanning the graph.
  DynBitset baseLive;
  DynBitset retireTouched;
  std::vector<int> basePressure;
  std::vector<uint32_t> retireList;
  // Distinct clique ∩ ready sets already probed this round (storage
  // reused across rounds; seenCount marks the live prefix).
  std::vector<DynBitset> seenEligible;
  std::vector<uint8_t> seenAbandoned;

  // Flat pool of member indices for surviving candidates within one round:
  // each candidate records (offset, count) into this vector instead of
  // owning a std::vector of node ids.
  std::vector<uint32_t> memberPool;

  // Spill-pressure and scheduling scratch.
  std::vector<int> pressure;
  std::vector<uint32_t> tryOrder;
  std::vector<uint32_t> heights;

  // Graph-analysis scratch (descendants, topological order).
  std::vector<DynBitset> desc;
  std::vector<uint32_t> topoOrder;
  std::vector<uint32_t> topoPending;

  // Parallelism matrix reused across clique rounds and candidates (row
  // storage persists; rebuild() resizes in place).
  ParallelismMatrix matrix;
};

// Thread-safe pool of workspaces, cached on the CodegenContext so a warm
// daemon reuses the same scratch (arena chunks, bitset words) across
// compiles instead of re-allocating per request.
class WorkspaceCache {
 public:
  [[nodiscard]] std::unique_ptr<CoverWorkspace> acquire() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return std::make_unique<CoverWorkspace>();
    std::unique_ptr<CoverWorkspace> ws = std::move(free_.back());
    free_.pop_back();
    return ws;
  }
  void release(std::unique_ptr<CoverWorkspace> ws) {
    if (ws == nullptr) return;
    const std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(ws));
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<CoverWorkspace>> free_;
};

}  // namespace aviv
