// Split-node functional-unit assignment exploration (paper Section IV-A).
//
// Split nodes are visited in order of increasing level from the top of the
// Split-Node DAG (so every consumer is assigned before its producers). For
// each partial assignment and each alternative of the current split node an
// *incremental cost* is computed from the two factors the paper names:
// required data transfers (to already-assigned consumers, and loads of
// named-variable operands from data memory) and foregone parallelism
// (independent operations forced onto the same unit). With the pruning
// heuristic on, only minimum-incremental-cost alternatives are kept (Fig 6);
// with it off the enumeration is exhaustive. A branch-and-bound beam bounds
// the frontier, and the lowest-cost complete assignments are returned for
// detailed covering.
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "core/splitnode.h"
#include "support/arena.h"
#include "support/deadline.h"

namespace aviv {

// A complete functional-unit assignment: one chosen alternative per IR op
// node (kNoSnd for leaves and for nodes fused into another node's complex
// alternative).
struct Assignment {
  std::vector<SndId> chosenAlt;
  double cost = 0.0;

  // The alternative that computes the *value* of `irNode`: its own chosen
  // alt, or the complex alternative covering it. kNoSnd for leaves.
  [[nodiscard]] SndId producerAltOf(NodeId irNode,
                                    const SplitNodeDag& snd) const;
};

struct ExploreStats {
  size_t completeAssignments = 0;  // states alive at the end (pre keep-best)
  size_t statesExpanded = 0;       // state * alternative evaluations
  size_t prunedByBound = 0;        // alternatives rejected by the Fig 6
                                   // incremental-cost bound
  size_t beamDropped = 0;          // states discarded by beam truncation
  bool capped = false;             // hit maxAssignments / beam truncation
};

// One evaluated (partial state, alternative) pair; used by the Fig 6
// reproduction to print the pruning trace.
struct ExploreTraceEntry {
  int stateIdx = 0;
  NodeId ir = kNoNode;
  SndId alt = kNoSnd;
  double incrementalCost = 0.0;
  bool kept = false;
};

class AssignmentExplorer {
 public:
  // When `deadline` is non-null it is polled between node expansions and
  // every few hundred state evaluations; expiry throws DeadlineExceeded
  // (no partial assignment is usable — the driver degrades to the
  // sequential baseline instead).
  //
  // When `scratch` is non-null the per-state payloads (chosen-alternative
  // and fused-cover arrays) live there instead of in a local arena; explore()
  // rewinds whichever arena it used before returning, so a warm workspace
  // arena explores the next block without touching malloc.
  AssignmentExplorer(const SplitNodeDag& snd, const CodegenOptions& options,
                     const Deadline* deadline = nullptr,
                     Arena* scratch = nullptr);

  // Returns the selected assignments, lowest cost first (at most
  // options.assignKeepBest). Never empty for a buildable Split-Node DAG.
  [[nodiscard]] std::vector<Assignment> explore(
      ExploreStats* stats = nullptr,
      std::vector<ExploreTraceEntry>* trace = nullptr) const;

 private:
  const SplitNodeDag& snd_;
  const CodegenOptions& options_;
  const Deadline* deadline_;
  Arena* scratch_;
};

}  // namespace aviv
