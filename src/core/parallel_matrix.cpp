#include "core/parallel_matrix.h"

#include <cstdlib>

#include "support/error.h"
#include "support/table.h"

namespace aviv {

ParallelismMatrix::ParallelismMatrix(const AssignedGraph& graph,
                                     int levelWindow) {
  const size_t n = graph.size();
  rows_.assign(n, DynBitset(n));
  const auto desc = graph.computeDescendants();
  std::vector<int> top;
  std::vector<int> bottom;
  if (levelWindow >= 0) {
    top = graph.levelsFromTop();
    bottom = graph.levelsFromBottom();
  }

  const Machine& machine = graph.machine();
  for (AgId a = 0; a < n; ++a) {
    const AgNode& na = graph.node(a);
    if (na.deleted()) continue;
    for (AgId b = a + 1; b < n; ++b) {
      const AgNode& nb = graph.node(b);
      if (nb.deleted()) continue;
      if (desc[a].test(b) || desc[b].test(a)) continue;
      if (na.kind == AgKind::kOp && nb.kind == AgKind::kOp &&
          na.unit == nb.unit)
        continue;
      if (na.isTransferish() && nb.isTransferish()) {
        const BusId busA = graph.busOf(a);
        const BusId busB = graph.busOf(b);
        if (busA == busB && machine.bus(busA).capacity <= 1) continue;
      }
      if (levelWindow >= 0) {
        if (std::abs(top[a] - top[b]) > levelWindow ||
            std::abs(bottom[a] - bottom[b]) > levelWindow)
          continue;
      }
      rows_[a].set(b);
      rows_[b].set(a);
    }
  }
}

std::string ParallelismMatrix::str(
    const std::vector<AgId>& subset,
    const std::vector<std::string>& labels) const {
  AVIV_CHECK(subset.size() == labels.size());
  std::vector<std::string> headers{""};
  headers.insert(headers.end(), labels.begin(), labels.end());
  TextTable table(headers);
  for (size_t i = 0; i < subset.size(); ++i) {
    std::vector<std::string> row{labels[i]};
    for (size_t j = 0; j < subset.size(); ++j) {
      const bool conflict =
          i != j ? !parallel(subset[i], subset[j]) : false;
      row.push_back(conflict ? "1" : "0");
    }
    table.addRow(std::move(row));
  }
  return table.str();
}

}  // namespace aviv
