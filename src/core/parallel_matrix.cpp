#include "core/parallel_matrix.h"

#include <cstdlib>

#include "core/workspace.h"
#include "support/error.h"
#include "support/table.h"

namespace aviv {

ParallelismMatrix::ParallelismMatrix(const AssignedGraph& graph,
                                     int levelWindow) {
  CoverWorkspace ws;
  rebuild(graph, levelWindow, ws);
}

void ParallelismMatrix::rebuild(const AssignedGraph& graph, int levelWindow,
                                CoverWorkspace& ws) {
  const size_t n = graph.size();
  rows_.resize(n);
  for (DynBitset& row : rows_) row.clearAndResize(n);
  const std::vector<DynBitset>& desc = graph.computeDescendantsInto(ws);
  std::vector<int> top;
  std::vector<int> bottom;
  if (levelWindow >= 0) {
    top = graph.levelsFromTop();
    bottom = graph.levelsFromBottom();
  }

  const Machine& machine = graph.machine();
  for (AgId a = 0; a < n; ++a) {
    const AgNode& na = graph.node(a);
    if (na.deleted()) continue;
    for (AgId b = a + 1; b < n; ++b) {
      const AgNode& nb = graph.node(b);
      if (nb.deleted()) continue;
      if (desc[a].test(b) || desc[b].test(a)) continue;
      if (na.kind == AgKind::kOp && nb.kind == AgKind::kOp &&
          na.unit == nb.unit)
        continue;
      if (na.isTransferish() && nb.isTransferish()) {
        const BusId busA = graph.busOf(a);
        const BusId busB = graph.busOf(b);
        if (busA == busB && machine.bus(busA).capacity <= 1) continue;
      }
      if (levelWindow >= 0) {
        if (std::abs(top[a] - top[b]) > levelWindow ||
            std::abs(bottom[a] - bottom[b]) > levelWindow)
          continue;
      }
      rows_[a].set(b);
      rows_[b].set(a);
    }
  }
#if AVIV_DCHECKS_ENABLED
  // A deleted node participates in no instruction: its row must stay empty,
  // or the clique generator would schedule a ghost.
  for (AgId a = 0; a < n; ++a)
    if (graph.node(a).deleted())
      AVIV_DCHECK_MSG(rows_[a].none(),
                      "deleted node has parallelism-matrix entries");
#endif
}

std::string ParallelismMatrix::str(
    const std::vector<AgId>& subset,
    const std::vector<std::string>& labels) const {
  AVIV_CHECK(subset.size() == labels.size());
  std::vector<std::string> headers{""};
  headers.insert(headers.end(), labels.begin(), labels.end());
  TextTable table(headers);
  for (size_t i = 0; i < subset.size(); ++i) {
    std::vector<std::string> row{labels[i]};
    for (size_t j = 0; j < subset.size(); ++j) {
      const bool conflict =
          i != j ? !parallel(subset[i], subset[j]) : false;
      row.push_back(conflict ? "1" : "0");
    }
    table.addRow(std::move(row));
  }
  return table.str();
}

}  // namespace aviv
