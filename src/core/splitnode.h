// The Split-Node DAG (paper Section III) — the representation that encodes
// ALL possible implementations of a basic block on the target processor:
//
//   * a *leaf node* per IR leaf (named input / constant);
//   * a *split node* per IR operation node;
//   * an *alternative node* (the paper's "immediate descendants of a split
//     node") per (split node, target operation) pair — one for every
//     functional unit that can perform the operation, plus one per matched
//     complex instruction (Section III-B) which covers several IR nodes;
//   * *data transfer nodes* on every producer-alternative -> consumer-
//     alternative edge whose endpoints live in different storages, one per
//     hop of every minimal route from the TransferDatabase (multi-level
//     paths included, exactly as Section III-B requires).
//
// The structure is immutable after build; the assignment explorer, transfer
// selector, and materializer read it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/options.h"
#include "ir/dag.h"
#include "isdl/databases.h"
#include "isdl/machine.h"
#include "support/arena.h"

namespace aviv {

using SndId = uint32_t;
inline constexpr SndId kNoSnd = 0xffffffffu;

enum class SndKind : uint8_t { kLeaf, kSplit, kAlt, kTransfer };

struct SndNode {
  SndKind kind = SndKind::kLeaf;
  // kLeaf/kSplit: the IR node. kAlt: the root IR node implemented.
  // kTransfer: the IR node whose value is being moved.
  NodeId ir = kNoNode;

  // kAlt only.
  UnitId unit = kNoId16;
  Op machineOp = Op::kAdd;
  int unitOpIdx = -1;
  // IR nodes this alternative covers; size 1 for plain alternatives, > 1
  // for complex instructions (covers[0] is the root). Views into the dag's
  // flat id pool — valid for the dag's lifetime.
  Span<const NodeId> covers;
  // IR operands the alternative consumes (== the IR node's operands for
  // plain alternatives; the fused pattern's external operands for complex).
  Span<const NodeId> operandIr;

  // kTransfer only.
  int pathId = -1;           // index into Machine::transfers()
  SndId producer = kNoSnd;   // producing alt/leaf node
  SndId consumer = kNoSnd;   // consuming alt node
  int routeIdx = -1;         // which minimal route
  int hopIdx = -1;           // position within the route
};

// One multi-hop transfer chain (all hops of one route) between a producer
// alternative/leaf and a consumer alternative.
struct TransferChain {
  int routeIdx = 0;
  std::vector<SndId> hops;  // in movement order
};

class SplitNodeDag {
 public:
  // Builds the Split-Node DAG. Throws aviv::Error when the block cannot be
  // implemented on the machine (an op no unit performs, or a required
  // storage-to-storage move with no route).
  static SplitNodeDag build(const BlockDag& ir, const Machine& machine,
                            const MachineDatabases& dbs,
                            const CodegenOptions& options);

  [[nodiscard]] const BlockDag& ir() const { return *ir_; }
  [[nodiscard]] const Machine& machine() const { return *machine_; }
  [[nodiscard]] const MachineDatabases& databases() const { return *dbs_; }

  [[nodiscard]] size_t size() const { return nodes_.size(); }
  [[nodiscard]] const SndNode& node(SndId id) const;

  // Leaf SND node of an IR leaf; kNoSnd for op nodes.
  [[nodiscard]] SndId leafOf(NodeId irNode) const;
  // Split SND node of an IR op node; kNoSnd for leaves.
  [[nodiscard]] SndId splitOf(NodeId irNode) const;
  // All alternatives rooted at the given IR op node (plain + complex).
  [[nodiscard]] Span<const SndId> altsOf(NodeId irNode) const;

  // All minimal-route transfer chains for moving `producer`'s value into
  // `consumer`'s unit storage. Empty when no transfer is needed (same
  // storage). producer is an alt or leaf SND id; consumer an alt SND id.
  [[nodiscard]] const std::vector<TransferChain>& chains(SndId producer,
                                                         SndId consumer) const;

  [[nodiscard]] size_t numLeafNodes() const { return counts_[0]; }
  [[nodiscard]] size_t numSplitNodes() const { return counts_[1]; }
  [[nodiscard]] size_t numAltNodes() const { return counts_[2]; }
  [[nodiscard]] size_t numTransferNodes() const { return counts_[3]; }

  // Storage the value of `alt` (alt/leaf id) is produced into.
  [[nodiscard]] Loc producerLoc(SndId id) const;

  // Human-readable node label ("ADD@U2", "xfer RF1->RF2", ...).
  [[nodiscard]] std::string describe(SndId id) const;
  // Graphviz rendering (paper Fig 4 reproduction).
  [[nodiscard]] std::string dot() const;

  void verify() const;

 private:
  SplitNodeDag() = default;
  // Appends one node, enforcing the build-time resource ceilings
  // (CodegenOptions::maxSndNodes / maxSndBytes); throws
  // ResourceLimitExceeded past either one.
  SndId append(SndNode node);

  const BlockDag* ir_ = nullptr;
  const Machine* machine_ = nullptr;
  const MachineDatabases* dbs_ = nullptr;
  std::vector<SndNode> nodes_;
  // Flat pools backing the SndNode spans and the per-IR-node alternative
  // lists (structure-of-arrays: one shared buffer addressed by span instead
  // of a heap vector per node).
  FlatPool<NodeId> idPool_;
  FlatPool<SndId> altPool_;
  std::vector<SndId> leafOf_;   // per IR node
  std::vector<SndId> splitOf_;  // per IR node
  std::vector<Span<const SndId>> altsOf_;  // per IR node, into altPool_
  std::map<std::pair<SndId, SndId>, std::vector<TransferChain>> chains_;
  size_t counts_[4] = {0, 0, 0, 0};
  size_t maxNodes_ = 0;     // 0 = unlimited; set from CodegenOptions
  size_t maxBytes_ = 0;
  size_t approxBytes_ = 0;  // running arena estimate
};

// A complex-instruction pattern match found in the IR (Section III-B).
struct PatternMatch {
  Op machineOp = Op::kMac;     // the fused target op
  NodeId root = kNoNode;       // IR node whose value the pattern produces
  std::vector<NodeId> covers;  // root + interior nodes fused away
  std::vector<NodeId> operands;
};

// Finds all complex-instruction matches implementable on the machine
// (currently MAC: add(x, mul(a,b)) and MSU: sub(x, mul(a,b)) with a
// single-use, non-output interior multiply). Exposed for testing.
[[nodiscard]] std::vector<PatternMatch> matchComplexPatterns(
    const BlockDag& ir, const OpDatabase& ops);

}  // namespace aviv
