#include "core/assign_explore.h"

#include <algorithm>
#include <cmath>

#include "support/bitset.h"
#include "support/error.h"

namespace aviv {

SndId Assignment::producerAltOf(NodeId irNode, const SplitNodeDag& snd) const {
  if (isLeafOp(snd.ir().node(irNode).op)) return kNoSnd;
  if (chosenAlt[irNode] != kNoSnd) return chosenAlt[irNode];
  // Fused into a consumer's complex alternative; find it. The pattern
  // matcher guarantees the (single) user holds the covering alt.
  const auto users = snd.ir().computeUsers();
  AVIV_CHECK(users[irNode].size() == 1);
  const NodeId root = users[irNode][0];
  const SndId alt = chosenAlt[root];
  AVIV_CHECK(alt != kNoSnd);
  const auto& covers = snd.node(alt).covers;
  AVIV_CHECK(std::find(covers.begin(), covers.end(), irNode) != covers.end());
  return alt;
}

AssignmentExplorer::AssignmentExplorer(const SplitNodeDag& snd,
                                       const CodegenOptions& options,
                                       const Deadline* deadline, Arena* scratch)
    : snd_(snd), options_(options), deadline_(deadline), scratch_(scratch) {}

namespace {

// Exploration states hold their per-node arrays in the scratch arena; a
// State is two (pointer, length) views plus a cost, so the frontier vectors
// shuffle 40-byte values instead of deep-copying heap vectors. Branching
// allocCopy-s fresh arrays; the whole generation graph is released at once
// by explore()'s ArenaScope.
struct State {
  Span<SndId> chosenAlt;   // per IR node
  Span<uint8_t> covered;   // per IR node: fused into a complex alt
  double cost = 0.0;
};

// Descendant reachability over the IR DAG (node -> nodes depending on it).
std::vector<DynBitset> computeReachability(const BlockDag& ir) {
  std::vector<DynBitset> reach(ir.size(), DynBitset(ir.size()));
  const auto users = ir.computeUsers();
  // Reverse id order: users have larger ids, so their sets are final.
  for (size_t i = ir.size(); i-- > 0;) {
    for (NodeId user : users[i]) {
      reach[i].set(user);
      reach[i] |= reach[user];
    }
  }
  return reach;
}

}  // namespace

std::vector<Assignment> AssignmentExplorer::explore(
    ExploreStats* stats, std::vector<ExploreTraceEntry>* trace) const {
  const BlockDag& ir = snd_.ir();
  const Machine& machine = snd_.machine();
  const TransferDatabase& xferDb = snd_.databases().transfers;
  const Loc dataMem = machine.dataMemoryLoc();

  // Visit order: increasing level from the top (consumers first); ties by
  // fewest alternatives first (most-constrained-first), which also matches
  // the paper's Fig 6 walk (MUL before ADD).
  std::vector<NodeId> order;
  for (NodeId id = 0; id < ir.size(); ++id)
    if (isMachineOp(ir.node(id).op)) order.push_back(id);
  const auto levels = ir.levelsFromTop();
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (levels[a] != levels[b]) return levels[a] < levels[b];
    return snd_.altsOf(a).size() < snd_.altsOf(b).size();
  });

  const auto reach = computeReachability(ir);
  const auto users = ir.computeUsers();

  ExploreStats localStats;
  ExploreStats& st = stats != nullptr ? *stats : localStats;
  st = ExploreStats{};

  Arena localArena;
  Arena& arena = scratch_ != nullptr ? *scratch_ : localArena;
  const ArenaScope scope(arena);

  std::vector<State> states(1);
  states[0].chosenAlt = arena.allocSpan<SndId>(ir.size(), kNoSnd);
  states[0].covered = arena.allocSpan<uint8_t>(ir.size(), 0);

  // The alternative that consumes irNode's value on behalf of user u under
  // a given state (u itself, or the complex alt covering u).
  auto consumingAlt = [&](const State& s, NodeId u) -> SndId {
    if (s.chosenAlt[u] != kNoSnd) return s.chosenAlt[u];
    if (!s.covered[u]) return kNoSnd;  // not processed yet (cannot happen)
    AVIV_CHECK(users[u].size() == 1);
    return s.chosenAlt[users[u][0]];
  };

  auto incrementalCost = [&](const State& s, NodeId n, SndId altId) {
    const SndNode& alt = snd_.node(altId);
    const Loc myLoc = machine.unitLoc(alt.unit);
    double cost = 0.0;

    // (a) transfers to already-assigned consumers of n's value.
    for (NodeId u : users[n]) {
      const SndId consumer = consumingAlt(s, u);
      if (consumer == kNoSnd) continue;
      if (consumer == altId) continue;  // u fused into this very alt
      const SndNode& consumerAlt = snd_.node(consumer);
      // Count once per appearance of n among the consumer's operands.
      int uses = 0;
      for (NodeId operand : consumerAlt.operandIr) uses += operand == n;
      if (uses == 0) continue;  // n only feeds the fused-away interior
      const Loc consLoc = machine.unitLoc(consumerAlt.unit);
      cost += options_.transferCostWeight *
              static_cast<double>(xferDb.cost(myLoc, consLoc));
    }

    // (b) loads of named-variable operands from data memory. For complex
    // alternatives only the root node's own operands count: the fused
    // interior node's operand loads occur in the plain future too (at the
    // interior node), so charging them here would bias against fusion.
    const auto& rootOperands = ir.node(n).operands;
    for (NodeId operand : alt.operandIr) {
      const Op operandOp = ir.node(operand).op;
      const bool loadsFromMemory =
          operandOp == Op::kInput ||
          (operandOp == Op::kConst && options_.constantsInMemory);
      if (!loadsFromMemory) continue;
      if (alt.covers.size() > 1 &&
          std::find(rootOperands.begin(), rootOperands.end(), operand) ==
              rootOperands.end())
        continue;
      cost += options_.transferCostWeight *
              static_cast<double>(xferDb.cost(dataMem, myLoc));
    }

    // (c) foregone parallelism: independent, already-assigned operations
    // forced onto the same unit.
    for (NodeId m : order) {
      const SndId other = s.chosenAlt[m];
      if (other == kNoSnd || m == n) continue;
      if (snd_.node(other).unit != alt.unit) continue;
      const bool dependent = reach[m].test(n) || reach[n].test(m);
      if (!dependent) cost += options_.parallelismCostWeight;
    }

    // (d) complex instructions cover extra nodes with the same instruction.
    cost -= options_.complexCoverBonus *
            static_cast<double>(alt.covers.size() - 1);

    // (e) optional register-pressure awareness (paper Section VI, ongoing
    // work): a crude per-bank producer count against the bank size.
    if (options_.registerAwareAssignment) {
      const RegFileId bank = machine.unit(alt.unit).regFile;
      int producers = 1;
      for (NodeId m : order) {
        const SndId other = s.chosenAlt[m];
        if (other != kNoSnd && m != n &&
            machine.unit(snd_.node(other).unit).regFile == bank)
          ++producers;
      }
      const int excess = producers - machine.regFile(bank).numRegs;
      if (excess > 0)
        cost += options_.registerPressurePenalty * static_cast<double>(excess);
    }
    return cost;
  };

  for (const NodeId n : order) {
    if (deadline_ != nullptr) deadline_->check("assignment exploration");
    std::vector<State> next;
    next.reserve(states.size());
    for (size_t si = 0; si < states.size(); ++si) {
      const State& s = states[si];
      if (s.covered[n]) {
        next.push_back(s);  // spans: shallow, the arrays carry over
        continue;
      }
      const auto& alts = snd_.altsOf(n);
      std::vector<double> inc(alts.size());
      double minInc = 1e300;
      for (size_t a = 0; a < alts.size(); ++a) {
        inc[a] = incrementalCost(s, n, alts[a]);
        minInc = std::min(minInc, inc[a]);
        // Heuristics-off exploration grows multiplicatively; poll the
        // deadline often enough that a hard budget stops it within
        // milliseconds, but not on every evaluation.
        if (++st.statesExpanded % 256 == 0 && deadline_ != nullptr)
          deadline_->check("assignment exploration");
      }
      for (size_t a = 0; a < alts.size(); ++a) {
        const bool keep = !options_.assignPruneIncremental ||
                          inc[a] <= minInc + options_.assignPruneSlack + 1e-9;
        if (trace != nullptr) {
          trace->push_back({static_cast<int>(si), n, alts[a], inc[a], keep});
        }
        if (!keep) {
          ++st.prunedByBound;
          continue;
        }
        // A plain `State branch = s` would alias s's arrays (spans are
        // views); each kept branch needs its own copies to mutate.
        State branch;
        branch.chosenAlt = arena.allocCopy(s.chosenAlt.data(),
                                           s.chosenAlt.size());
        branch.covered = arena.allocCopy(s.covered.data(), s.covered.size());
        branch.cost = s.cost + inc[a];
        branch.chosenAlt[n] = alts[a];
        for (size_t c = 1; c < snd_.node(alts[a]).covers.size(); ++c)
          branch.covered[snd_.node(alts[a]).covers[c]] = 1;
        next.push_back(branch);
      }
    }
    states = std::move(next);
    AVIV_REQUIRE(!states.empty());

    const size_t cap = options_.assignBeamWidth > 0
                           ? static_cast<size_t>(options_.assignBeamWidth)
                           : options_.maxAssignments;
    if (states.size() > cap) {
      std::stable_sort(states.begin(), states.end(),
                       [](const State& a, const State& b) {
                         return a.cost < b.cost;
                       });
      st.beamDropped += states.size() - cap;
      states.resize(cap);
      st.capped = true;
    }
  }

  st.completeAssignments = states.size();
  std::stable_sort(
      states.begin(), states.end(),
      [](const State& a, const State& b) { return a.cost < b.cost; });
  const size_t keep = std::min<size_t>(
      states.size(),
      options_.assignKeepBest > 0 ? static_cast<size_t>(options_.assignKeepBest)
                                  : states.size());

  std::vector<Assignment> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    Assignment a;
    a.chosenAlt.assign(states[i].chosenAlt.begin(),
                       states[i].chosenAlt.end());
    a.cost = states[i].cost;
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace aviv
