// Pairwise-parallelism matrix over an AssignedGraph (paper Fig 7).
//
// Two nodes can execute in the same VLIW instruction iff:
//   * neither depends on the other (no directed path between them), and
//   * they do not contend for a resource: two operations on the same
//     functional unit, or two transfers on the same single-capacity bus
//     (multi-capacity buses are counted later, in the legality check), and
//   * (optional Section IV-C.2 heuristic) their levels from the top AND
//     from the bottom of the graph differ by at most the level window.
#pragma once

#include <string>
#include <vector>

#include "core/assigned.h"
#include "support/bitset.h"

namespace aviv {

class ParallelismMatrix {
 public:
  // An empty matrix; call rebuild() before use. Lets the covering engine
  // keep one matrix alive across rounds and reuse its row storage.
  ParallelismMatrix() = default;

  // `levelWindow` < 0 disables the level heuristic. Deleted nodes get empty
  // rows.
  ParallelismMatrix(const AssignedGraph& graph, int levelWindow);

  // Recomputes the matrix in place, reusing row storage and the workspace's
  // descendant/topo scratch instead of allocating per round.
  void rebuild(const AssignedGraph& graph, int levelWindow,
               CoverWorkspace& ws);

  [[nodiscard]] size_t size() const { return rows_.size(); }
  [[nodiscard]] bool parallel(AgId a, AgId b) const {
    return a != b && rows_[a].test(b);
  }
  // Bitset of nodes that can run in parallel with `id`.
  [[nodiscard]] const DynBitset& row(AgId id) const { return rows_[id]; }

  // Renders the paper's Fig 7 style 0/1 matrix (1 = conflict) for the given
  // subset of nodes, with the given display labels.
  [[nodiscard]] std::string str(const std::vector<AgId>& subset,
                                const std::vector<std::string>& labels) const;

 private:
  std::vector<DynBitset> rows_;
};

}  // namespace aviv
