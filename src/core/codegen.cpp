#include "core/codegen.h"

#include <optional>

#include "support/error.h"
#include "support/timer.h"

namespace aviv {

namespace {

// The covering/allocation machinery assumes every operation's value is
// consumed or live-out (the front end's DCE guarantees it; Section II).
void requireNoDeadOps(const BlockDag& ir) {
  std::vector<bool> live(ir.size(), false);
  for (const auto& [name, id] : ir.outputs()) live[id] = true;
  for (NodeId id = ir.size(); id-- > 0;) {
    for (NodeId operand : ir.node(id).operands)
      if (live[id]) live[operand] = true;
  }
  for (NodeId id = 0; id < ir.size(); ++id) {
    if (isMachineOp(ir.node(id).op) && !live[id])
      throw Error("block '" + ir.name() + "': " + ir.describe(id) +
                  " is dead (not reachable from any output) — run "
                  "eliminateDeadCode before compiling");
  }
}

}  // namespace

CoreResult coverBlock(const BlockDag& ir, const Machine& machine,
                      const MachineDatabases& dbs,
                      const CodegenOptions& options) {
  WallTimer timer;
  requireNoDeadOps(ir);
  // Register requirements below two per bank cannot even hold a binary
  // operation's operands; reject early with a clear message.
  for (const RegFile& rf : machine.regFiles()) {
    if (rf.numRegs < 2)
      throw Error("machine '" + machine.name() + "': register file " +
                  rf.name + " has fewer than 2 registers");
  }

  const SplitNodeDag snd = SplitNodeDag::build(ir, machine, dbs, options);

  CoreStats stats;
  stats.irNodes = ir.size();
  stats.sndNodes = snd.size();

  // Adaptive shortcut: enumerate tiny assignment spaces outright.
  CodegenOptions exploreOptions = options;
  if (options.smallSpaceExhaustive > 0) {
    size_t space = 1;
    for (NodeId id = 0; id < ir.size(); ++id) {
      if (isLeafOp(ir.node(id).op)) continue;
      space *= snd.altsOf(id).size();
      if (space > options.smallSpaceExhaustive) break;
    }
    if (space <= options.smallSpaceExhaustive) {
      exploreOptions.assignPruneIncremental = false;
      exploreOptions.assignBeamWidth = 0;
      exploreOptions.assignKeepBest = 1 << 30;
    }
  }
  AssignmentExplorer explorer(snd, exploreOptions);
  const std::vector<Assignment> assignments = explorer.explore(&stats.explore);
  AVIV_CHECK(!assignments.empty());

  std::optional<CoreResult> best;
  std::string lastFailure;
  auto tryAssignments = [&](const std::vector<Assignment>& candidates) {
    for (const Assignment& assignment : candidates) {
      if (options.timeLimitSeconds > 0 && best.has_value() &&
          timer.seconds() > options.timeLimitSeconds) {
        stats.timedOut = true;
        break;
      }
      AssignedGraph graph =
          AssignedGraph::materialize(snd, assignment, options);
      CoveringEngine engine(graph, dbs.transfers, dbs.constraints, options);
      CoverStats coverStats;
      Schedule schedule;
      try {
        schedule = engine.run(&coverStats);
      } catch (const Error& e) {
        // This assignment cannot satisfy the register limits; try others.
        lastFailure = e.what();
        continue;
      }
      stats.assignmentsCovered += 1;

      const bool better =
          !best.has_value() ||
          schedule.numInstructions() < best->schedule.numInstructions() ||
          (schedule.numInstructions() == best->schedule.numInstructions() &&
           coverStats.spillsInserted < best->stats.cover.spillsInserted);
      if (better) {
        CoreStats winnerStats = stats;
        winnerStats.cover = coverStats;
        best.emplace(CoreResult{assignment, std::move(graph),
                                std::move(schedule), winnerStats});
      }
    }
  };
  tryAssignments(assignments);

  if (!best.has_value()) {
    // Every selected assignment was register-infeasible (the paper's cost
    // function does not see register limits; Section VI names this as
    // ongoing work). Widen the search before giving up.
    CodegenOptions wide = options;
    wide.assignPruneIncremental = false;
    wide.assignBeamWidth = 256;
    wide.assignKeepBest = 64;
    AssignmentExplorer wideExplorer(snd, wide);
    tryAssignments(wideExplorer.explore());
  }
  if (!best.has_value())
    throw Error("block '" + ir.name() + "' on machine '" + machine.name() +
                "': no feasible schedule found (" + lastFailure + ")");
  // Refresh the shared counters accumulated after the winner was recorded.
  best->stats.irNodes = stats.irNodes;
  best->stats.sndNodes = stats.sndNodes;
  best->stats.explore = stats.explore;
  best->stats.assignmentsCovered = stats.assignmentsCovered;
  best->stats.timedOut = stats.timedOut;
  best->stats.seconds = timer.seconds();
  return std::move(*best);
}

}  // namespace aviv
