#include "core/codegen.h"

#include <atomic>
#include <optional>
#include <utility>

#include "support/error.h"
#include "support/failpoint.h"
#include "support/timer.h"

namespace aviv {

namespace {

// The covering/allocation machinery assumes every operation's value is
// consumed or live-out (the front end's DCE guarantees it; Section II).
void requireNoDeadOps(const BlockDag& ir) {
  std::vector<bool> live(ir.size(), false);
  for (const auto& [name, id] : ir.outputs()) live[id] = true;
  for (NodeId id = ir.size(); id-- > 0;) {
    for (NodeId operand : ir.node(id).operands)
      if (live[id]) live[operand] = true;
  }
  for (NodeId id = 0; id < ir.size(); ++id) {
    if (isMachineOp(ir.node(id).op) && !live[id])
      throw Error("block '" + ir.name() + "': " + ir.describe(id) +
                  " is dead (not reachable from any output) — run "
                  "eliminateDeadCode before compiling");
  }
}

// One fully-covered candidate assignment, with the keys the winner
// reduction orders by. The serial loop keeps the first candidate achieving
// the minimal (instructions, spills); the lexicographic minimum over
// (instructions, spills, index) reproduces that winner under any execution
// order, so jobs=1 and jobs=N are bit-identical.
struct Candidate {
  int instructions = 0;
  int spills = 0;
  size_t index = 0;
  Assignment assignment;
  AssignedGraph graph;
  Schedule schedule;
  CoverStats cover;
};

bool candidateBetter(const Candidate& a, int instructions, int spills,
                     size_t index) {
  if (instructions != a.instructions) return instructions < a.instructions;
  if (spills != a.spills) return spills < a.spills;
  return index < a.index;
}

}  // namespace

CoreResult coverBlock(const BlockDag& ir, const Machine& machine,
                      const MachineDatabases& dbs,
                      const CodegenOptions& options, ThreadPool* pool,
                      TelemetryNode* phase, const Deadline* deadline) {
  WallTimer timer;
  TelemetryNode scratch("block:" + ir.name());
  TelemetryNode& tel = phase != nullptr ? *phase : scratch;

  // Deadline-free callers still honor the legacy timeLimitSeconds knob: the
  // budget clock starts here, exactly as the old ad-hoc timer did.
  Deadline localDeadline;
  if (deadline == nullptr) {
    localDeadline.arm(options.timeLimitSeconds);
    deadline = &localDeadline;
  }

  // Fault-injection site for the daemon's isolation tests: a covering that
  // dies mid-request must degrade, not take the process down.
  if (FailPoints::instance().shouldFail("cover-internal"))
    throw InternalError("block '" + ir.name() +
                        "': fail point 'cover-internal' fired");

  requireNoDeadOps(ir);
  // Register requirements below two per bank cannot even hold a binary
  // operation's operands; reject early with a clear message.
  for (const RegFile& rf : machine.regFiles()) {
    if (rf.numRegs < 2)
      throw Error("machine '" + machine.name() + "': register file " +
                  rf.name + " has fewer than 2 registers");
  }

  deadline->check("split-node construction");
  const SplitNodeDag snd = [&] {
    PhaseScope ph(tel, "splitnode");
    return SplitNodeDag::build(ir, machine, dbs, options);
  }();

  CoreStats stats;
  stats.irNodes = ir.size();
  stats.sndNodes = snd.size();

  // Adaptive shortcut: enumerate tiny assignment spaces outright.
  CodegenOptions exploreOptions = options;
  if (options.smallSpaceExhaustive > 0) {
    size_t space = 1;
    for (NodeId id = 0; id < ir.size(); ++id) {
      if (isLeafOp(ir.node(id).op)) continue;
      space *= snd.altsOf(id).size();
      if (space > options.smallSpaceExhaustive) break;
    }
    if (space <= options.smallSpaceExhaustive) {
      exploreOptions.assignPruneIncremental = false;
      exploreOptions.assignBeamWidth = 0;
      exploreOptions.assignKeepBest = 1 << 30;
    }
  }
  const std::vector<Assignment> assignments = [&] {
    PhaseScope ph(tel, "explore");
    AssignmentExplorer explorer(snd, exploreOptions, deadline);
    return explorer.explore(&stats.explore);
  }();
  AVIV_REQUIRE(!assignments.empty());

  const bool parallel = pool != nullptr && options.jobs > 1;
  const int numWorkers = parallel ? pool->parallelism() : 1;

  std::optional<Candidate> best;
  std::string lastFailure;
  std::atomic<bool> anySuccess{false};
  std::atomic<bool> timedOut{false};

  // Covers every selected assignment (the parallel stage): each worker
  // materializes and covers candidates independently, keeping a worker-
  // local best; the serial reduction afterwards picks the deterministic
  // global winner and the highest-index failure message (what the serial
  // loop's "last failure" ends up being).
  auto tryAssignments = [&](const std::vector<Assignment>& candidates) {
    PhaseScope ph(tel, "cover");
    std::vector<std::optional<Candidate>> workerBest(
        static_cast<size_t>(numWorkers));
    std::vector<size_t> covered(static_cast<size_t>(numWorkers), 0);
    std::vector<std::pair<size_t, std::string>> failures(
        static_cast<size_t>(numWorkers));

    auto coverOne = [&](size_t index, int workerInt) {
      const auto worker = static_cast<size_t>(workerInt);
      if (deadline->expired()) {
        timedOut.store(true, std::memory_order_relaxed);
        return;
      }
      const Assignment& assignment = candidates[index];
      AssignedGraph graph =
          AssignedGraph::materialize(snd, assignment, options);
      CoveringEngine engine(graph, dbs.transfers, dbs.constraints, options,
                            deadline);
      CoverStats coverStats;
      Schedule schedule;
      try {
        schedule = engine.run(&coverStats);
      } catch (const DeadlineExceeded&) {
        // Budget ran out mid-covering: the partial schedule is unusable,
        // but an earlier candidate's complete covering (if any) still wins.
        timedOut.store(true, std::memory_order_relaxed);
        return;
      } catch (const Error& e) {
        // This assignment cannot satisfy the register limits; try others.
        auto& fail = failures[worker];
        if (fail.second.empty() || index > fail.first)
          fail = {index, e.what()};
        return;
      }
      ++covered[worker];
      anySuccess.store(true, std::memory_order_relaxed);
      std::optional<Candidate>& mine = workerBest[worker];
      const int instructions = schedule.numInstructions();
      if (!mine.has_value() ||
          candidateBetter(*mine, instructions, coverStats.spillsInserted,
                          index)) {
        mine.emplace(Candidate{instructions, coverStats.spillsInserted, index,
                               assignment, std::move(graph),
                               std::move(schedule), coverStats});
      }
    };

    if (parallel && candidates.size() > 1) {
      pool->parallelFor(candidates.size(), coverOne);
    } else {
      for (size_t i = 0; i < candidates.size(); ++i) coverOne(i, 0);
    }

    size_t failIndex = 0;
    std::string failMessage;
    for (size_t w = 0; w < static_cast<size_t>(numWorkers); ++w) {
      stats.assignmentsCovered += covered[w];
      if (!failures[w].second.empty() &&
          (failMessage.empty() || failures[w].first > failIndex)) {
        failIndex = failures[w].first;
        failMessage = std::move(failures[w].second);
      }
      std::optional<Candidate>& cand = workerBest[w];
      if (!cand.has_value()) continue;
      if (!best.has_value() ||
          candidateBetter(*best, cand->instructions, cand->spills,
                          cand->index))
        best = std::move(cand);
    }
    if (!failMessage.empty()) lastFailure = std::move(failMessage);
    ph.node().addCounter("candidates",
                         static_cast<int64_t>(candidates.size()));
  };
  tryAssignments(assignments);

  if (!best.has_value() && timedOut.load(std::memory_order_relaxed))
    throw DeadlineExceeded("block '" + ir.name() + "' on machine '" +
                           machine.name() +
                           "': deadline expired before any assignment was "
                           "covered");
  if (!best.has_value()) {
    // Every selected assignment was register-infeasible (the paper's cost
    // function does not see register limits; Section VI names this as
    // ongoing work). Widen the search before giving up.
    CodegenOptions wide = options;
    wide.assignPruneIncremental = false;
    wide.assignBeamWidth = 256;
    wide.assignKeepBest = 64;
    AssignmentExplorer wideExplorer(snd, wide, deadline);
    tryAssignments(wideExplorer.explore());
  }
  if (!best.has_value() && timedOut.load(std::memory_order_relaxed))
    throw DeadlineExceeded("block '" + ir.name() + "' on machine '" +
                           machine.name() +
                           "': deadline expired before any assignment was "
                           "covered");
  if (!best.has_value())
    throw Error("block '" + ir.name() + "' on machine '" + machine.name() +
                "': no feasible schedule found (" + lastFailure + ")");

  stats.cover = best->cover;
  stats.timedOut = timedOut.load(std::memory_order_relaxed);
  stats.seconds = timer.seconds();

  CoreResult result{std::move(best->assignment), std::move(best->graph),
                    std::move(best->schedule), stats};
  tel.child("cover").setCounter("jobs", numWorkers);
  recordCoreStats(result.stats, tel);
  tel.addSeconds(stats.seconds);
  return result;
}

CoreResult coverBlock(const BlockDag& ir, CodegenContext& ctx,
                      TelemetryNode* phase) {
  return coverBlock(ir, ctx, ctx.options(), phase);
}

CoreResult coverBlock(const BlockDag& ir, CodegenContext& ctx,
                      const CodegenOptions& options, TelemetryNode* phase) {
  TelemetryNode& tel = phase != nullptr
                           ? *phase
                           : ctx.telemetry().child("block:" + ir.name());
  return coverBlock(ir, ctx.machine(), ctx.databases(), options, ctx.pool(),
                    &tel, &ctx.deadline());
}

void recordCoreStats(const CoreStats& stats, TelemetryNode& phase) {
  phase.setCounter("irNodes", static_cast<int64_t>(stats.irNodes));
  phase.setCounter("sndNodes", static_cast<int64_t>(stats.sndNodes));
  TelemetryNode& explore = phase.child("explore");
  explore.setCounter("completeAssignments",
                     static_cast<int64_t>(stats.explore.completeAssignments));
  explore.setCounter("statesExpanded",
                     static_cast<int64_t>(stats.explore.statesExpanded));
  explore.setCounter("capped", stats.explore.capped ? 1 : 0);
  TelemetryNode& cover = phase.child("cover");
  cover.setCounter("assignmentsCovered",
                   static_cast<int64_t>(stats.assignmentsCovered));
  cover.setCounter("cliquesGenerated",
                   static_cast<int64_t>(stats.cover.cliquesGenerated));
  cover.setCounter("cliqueRounds",
                   static_cast<int64_t>(stats.cover.cliqueRounds));
  cover.setCounter("spillsInserted", stats.cover.spillsInserted);
  cover.setCounter("timedOut", stats.timedOut ? 1 : 0);
}

CoreStats coreStatsView(const TelemetryNode& phase) {
  CoreStats stats;
  stats.irNodes = static_cast<size_t>(phase.counter("irNodes"));
  stats.sndNodes = static_cast<size_t>(phase.counter("sndNodes"));
  stats.seconds = phase.seconds();
  if (const TelemetryNode* explore = phase.findChild("explore")) {
    stats.explore.completeAssignments =
        static_cast<size_t>(explore->counter("completeAssignments"));
    stats.explore.statesExpanded =
        static_cast<size_t>(explore->counter("statesExpanded"));
    stats.explore.capped = explore->counter("capped") != 0;
  }
  if (const TelemetryNode* cover = phase.findChild("cover")) {
    stats.assignmentsCovered =
        static_cast<size_t>(cover->counter("assignmentsCovered"));
    stats.cover.cliquesGenerated =
        static_cast<size_t>(cover->counter("cliquesGenerated"));
    stats.cover.cliqueRounds =
        static_cast<size_t>(cover->counter("cliqueRounds"));
    stats.cover.spillsInserted =
        static_cast<int>(cover->counter("spillsInserted"));
    stats.timedOut = cover->counter("timedOut") != 0;
  }
  return stats;
}

}  // namespace aviv
