#include "core/codegen.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/timer.h"

namespace aviv {

namespace {

// The covering/allocation machinery assumes every operation's value is
// consumed or live-out (the front end's DCE guarantees it; Section II).
void requireNoDeadOps(const BlockDag& ir) {
  std::vector<bool> live(ir.size(), false);
  for (const auto& [name, id] : ir.outputs()) live[id] = true;
  for (NodeId id = ir.size(); id-- > 0;) {
    for (NodeId operand : ir.node(id).operands)
      if (live[id]) live[operand] = true;
  }
  for (NodeId id = 0; id < ir.size(); ++id) {
    if (isMachineOp(ir.node(id).op) && !live[id])
      throw Error("block '" + ir.name() + "': " + ir.describe(id) +
                  " is dead (not reachable from any output) — run "
                  "eliminateDeadCode before compiling");
  }
}

// One fully-covered candidate assignment, with the keys the winner
// reduction orders by. The serial loop keeps the first candidate achieving
// the minimal (instructions, spills); the lexicographic minimum over
// (instructions, spills, index) reproduces that winner under any execution
// order, so jobs=1 and jobs=N are bit-identical.
struct Candidate {
  int instructions = 0;
  int spills = 0;
  size_t index = 0;
  Assignment assignment;
  AssignedGraph graph;
  Schedule schedule;
  CoverStats cover;
};

bool candidateBetter(const Candidate& a, int instructions, int spills,
                     size_t index) {
  if (instructions != a.instructions) return instructions < a.instructions;
  if (spills != a.spills) return spills < a.spills;
  return index < a.index;
}

}  // namespace

CoreResult coverBlock(const BlockDag& ir, const Machine& machine,
                      const MachineDatabases& dbs,
                      const CodegenOptions& options, ThreadPool* pool,
                      TelemetryNode* phase, const Deadline* deadline,
                      WorkspaceCache* wsCache) {
  WallTimer timer;
  TelemetryNode scratch("block:" + ir.name());
  TelemetryNode& tel = phase != nullptr ? *phase : scratch;

  // Deadline-free callers still honor the legacy timeLimitSeconds knob: the
  // budget clock starts here, exactly as the old ad-hoc timer did.
  Deadline localDeadline;
  if (deadline == nullptr) {
    localDeadline.arm(options.timeLimitSeconds);
    deadline = &localDeadline;
  }

  // Fault-injection site for the daemon's isolation tests: a covering that
  // dies mid-request must degrade, not take the process down.
  if (FailPoints::instance().shouldFail("cover-internal"))
    throw InternalError("block '" + ir.name() +
                        "': fail point 'cover-internal' fired");

  requireNoDeadOps(ir);
  // Register requirements below two per bank cannot even hold a binary
  // operation's operands; reject early with a clear message.
  for (const RegFile& rf : machine.regFiles()) {
    if (rf.numRegs < 2)
      throw Error("machine '" + machine.name() + "': register file " +
                  rf.name + " has fewer than 2 registers");
  }

  deadline->check("split-node construction");
  const SplitNodeDag snd = [&] {
    PhaseScope ph(tel, "splitnode");
    return SplitNodeDag::build(ir, machine, dbs, options);
  }();

  CoreStats stats;
  stats.irNodes = ir.size();
  stats.sndNodes = snd.size();

  // Adaptive shortcut: enumerate tiny assignment spaces outright.
  CodegenOptions exploreOptions = options;
  if (options.smallSpaceExhaustive > 0) {
    size_t space = 1;
    for (NodeId id = 0; id < ir.size(); ++id) {
      if (isLeafOp(ir.node(id).op)) continue;
      space *= snd.altsOf(id).size();
      if (space > options.smallSpaceExhaustive) break;
    }
    if (space <= options.smallSpaceExhaustive) {
      exploreOptions.assignPruneIncremental = false;
      exploreOptions.assignBeamWidth = 0;
      exploreOptions.assignKeepBest = 1 << 30;
    }
  }
  const bool parallel = pool != nullptr && options.jobs > 1;
  const int numWorkers = parallel ? pool->parallelism() : 1;

  // Per-worker covering workspaces, leased from the session cache (or a
  // call-local one) and shared by exploration (worker 0's arena) and both
  // tryAssignments passes. Returned to the cache on every exit path so a
  // warm session keeps its arena chunks.
  WorkspaceCache localWsCache;
  WorkspaceCache& wsPool = wsCache != nullptr ? *wsCache : localWsCache;
  struct WorkspaceLease {
    WorkspaceCache& cache;
    std::vector<std::unique_ptr<CoverWorkspace>> ws;
    WorkspaceLease(WorkspaceCache& cache, size_t n) : cache(cache), ws(n) {
      for (auto& w : ws) w = cache.acquire();
    }
    ~WorkspaceLease() {
      for (auto& w : ws) cache.release(std::move(w));
    }
  };
  WorkspaceLease lease(wsPool, static_cast<size_t>(numWorkers));

  const std::vector<Assignment> assignments = [&] {
    PhaseScope ph(tel, "explore");
    AssignmentExplorer explorer(snd, exploreOptions, deadline,
                                &lease.ws[0]->arena);
    return explorer.explore(&stats.explore);
  }();
  AVIV_REQUIRE(!assignments.empty());

  if (metrics::on()) {
    auto& registry = metrics::Registry::instance();
    registry.histogram("core.snd.nodes")
        .record(static_cast<int64_t>(snd.size()));
    registry.histogram("core.ir.nodes")
        .record(static_cast<int64_t>(ir.size()));
  }

  // Exploration's contribution to the search totals; per-candidate covering
  // contributions are summed inside tryAssignments.
  stats.search.nodesVisited += stats.explore.statesExpanded;
  stats.search.prunedByBound += stats.explore.prunedByBound;
  stats.search.backtracks += stats.explore.beamDropped;

  std::optional<Candidate> best;
  // Prefix-minima state for the best-cost trajectory (spans both
  // tryAssignments calls; indices only collide when the first call produced
  // no completion at all).
  std::optional<std::pair<int, int>> trajBest;
  std::string lastFailure;
  std::atomic<bool> anySuccess{false};
  std::atomic<bool> timedOut{false};

  // Covers every selected assignment (the parallel stage): each worker
  // materializes and covers candidates independently, keeping a worker-
  // local best; the serial reduction afterwards picks the deterministic
  // global winner and the highest-index failure message (what the serial
  // loop's "last failure" ends up being).
  auto tryAssignments = [&](const std::vector<Assignment>& candidates) {
    PhaseScope ph(tel, "cover");
    std::vector<std::optional<Candidate>> workerBest(
        static_cast<size_t>(numWorkers));
    std::vector<size_t> covered(static_cast<size_t>(numWorkers), 0);
    std::vector<std::pair<size_t, std::string>> failures(
        static_cast<size_t>(numWorkers));
    // Per-worker search-total accumulators (summed serially afterwards, so
    // the totals are independent of which worker covered which candidate).
    struct WorkerSearch {
      size_t cliqueRecursions = 0;
      size_t cliquePruned = 0;
      size_t candidatesAbandoned = 0;
      size_t spills = 0;
      size_t failed = 0;
      uint64_t arenaCalls = 0;
      uint64_t arenaBytes = 0;
      uint64_t arenaHighWater = 0;
    };
    std::vector<WorkerSearch> workerSearch(static_cast<size_t>(numWorkers));
    // Per-candidate completion records (disjoint slots — no contention);
    // the serial prefix-minima walk below turns them into the trajectory.
    struct Completion {
      bool completed = false;
      int instructions = 0;
      int spills = 0;
      double seconds = 0.0;
      int64_t tsNanos = 0;
    };
    std::vector<Completion> completions(candidates.size());

    auto coverOne = [&](size_t index, int workerInt) {
      const auto worker = static_cast<size_t>(workerInt);
      if (deadline->expired()) {
        timedOut.store(true, std::memory_order_relaxed);
        return;
      }
      trace::Span span("search", "cover.candidate");
      span.arg("index", static_cast<int64_t>(index));
      const Assignment& assignment = candidates[index];
      WorkerSearch& search = workerSearch[worker];
      CoverWorkspace& ws = *lease.ws[worker];
      // Everything a candidate allocates in the workspace arena is released
      // here; the graph's own pools are untouched (the winner escapes).
      const ArenaScope candidateScope(ws.arena);
      ws.arena.resetHighWater();
      const ArenaStats arenaBefore = ws.arena.stats();
      // Per-candidate arena deltas: exact sums/maxima independent of worker
      // placement (see SearchStats), recorded on the same paths cover stats
      // are (completed + register-infeasible, not deadline-expired).
      auto recordArena = [&] {
        const ArenaStats& after = ws.arena.stats();
        search.arenaCalls += after.allocCalls - arenaBefore.allocCalls;
        search.arenaBytes += after.bytesRequested - arenaBefore.bytesRequested;
        const uint64_t peak = after.highWater - arenaBefore.inUse;
        search.arenaHighWater = std::max(search.arenaHighWater, peak);
      };
      AssignedGraph graph =
          AssignedGraph::materialize(snd, assignment, options, &ws);
      CoveringEngine engine(graph, dbs.transfers, dbs.constraints, options,
                            deadline, &ws);
      CoverStats coverStats;
      Schedule schedule;
      try {
        schedule = engine.run(&coverStats);
      } catch (const DeadlineExceeded&) {
        // Budget ran out mid-covering: the partial schedule is unusable,
        // but an earlier candidate's complete covering (if any) still wins.
        timedOut.store(true, std::memory_order_relaxed);
        return;
      } catch (const Error& e) {
        // This assignment cannot satisfy the register limits; try others.
        // Its partial covering work still happened — count it (the partial
        // stats are deterministic: each candidate fails at the same point
        // regardless of the worker that ran it).
        search.cliqueRecursions += coverStats.cliqueRecursions;
        search.cliquePruned += coverStats.cliquePruned;
        search.candidatesAbandoned += coverStats.candidatesAbandoned;
        search.spills += static_cast<size_t>(coverStats.spillsInserted);
        search.failed += 1;
        recordArena();
        auto& fail = failures[worker];
        if (fail.second.empty() || index > fail.first)
          fail = {index, e.what()};
        return;
      }
      search.cliqueRecursions += coverStats.cliqueRecursions;
      search.cliquePruned += coverStats.cliquePruned;
      search.candidatesAbandoned += coverStats.candidatesAbandoned;
      search.spills += static_cast<size_t>(coverStats.spillsInserted);
      recordArena();
      ++covered[worker];
      anySuccess.store(true, std::memory_order_relaxed);
      std::optional<Candidate>& mine = workerBest[worker];
      const int instructions = schedule.numInstructions();
      Completion& done = completions[index];
      done.completed = true;
      done.instructions = instructions;
      done.spills = coverStats.spillsInserted;
      done.seconds = timer.seconds();
      if (trace::on())
        done.tsNanos = trace::Tracer::instance().nowNanos();
      span.arg("instructions", instructions);
      if (!mine.has_value() ||
          candidateBetter(*mine, instructions, coverStats.spillsInserted,
                          index)) {
        mine.emplace(Candidate{instructions, coverStats.spillsInserted, index,
                               assignment, std::move(graph),
                               std::move(schedule), coverStats});
      }
    };

    if (parallel && candidates.size() > 1) {
      pool->parallelFor(candidates.size(), coverOne);
    } else {
      for (size_t i = 0; i < candidates.size(); ++i) coverOne(i, 0);
    }

    size_t failIndex = 0;
    std::string failMessage;
    for (size_t w = 0; w < static_cast<size_t>(numWorkers); ++w) {
      stats.assignmentsCovered += covered[w];
      const WorkerSearch& search = workerSearch[w];
      stats.search.nodesVisited += search.cliqueRecursions;
      stats.search.prunedByBound += search.cliquePruned;
      stats.search.backtracks += search.spills + search.failed;
      stats.search.candidatesAbandoned += search.candidatesAbandoned;
      stats.search.arenaCalls += search.arenaCalls;
      stats.search.arenaBytes += search.arenaBytes;
      stats.search.arenaHighWater =
          std::max(stats.search.arenaHighWater, search.arenaHighWater);
      if (!failures[w].second.empty() &&
          (failMessage.empty() || failures[w].first > failIndex)) {
        failIndex = failures[w].first;
        failMessage = std::move(failures[w].second);
      }
      std::optional<Candidate>& cand = workerBest[w];
      if (!cand.has_value()) continue;
      if (!best.has_value() ||
          candidateBetter(*best, cand->instructions, cand->spills,
                          cand->index))
        best = std::move(cand);
    }
    if (!failMessage.empty()) lastFailure = std::move(failMessage);

    // Best-cost trajectory: the deterministic prefix-minima of
    // (instructions, spills) in candidate-index order. Equals what the
    // serial loop would have called "best so far" after each improvement;
    // only the wall-clock seconds differ between runs.
    for (size_t i = 0; i < completions.size(); ++i) {
      const Completion& done = completions[i];
      if (!done.completed) continue;
      const std::pair<int, int> key{done.instructions, done.spills};
      if (trajBest.has_value() && !(key < *trajBest)) continue;
      trajBest = key;
      stats.trajectory.push_back(
          {i, done.instructions, done.spills, done.seconds});
      trace::counterAt("search", "cover.best-cost", "instructions",
                       done.instructions, done.tsNanos);
    }
    ph.node().addCounter("candidates",
                         static_cast<int64_t>(candidates.size()));
  };
  tryAssignments(assignments);

  if (!best.has_value() && timedOut.load(std::memory_order_relaxed))
    throw DeadlineExceeded("block '" + ir.name() + "' on machine '" +
                           machine.name() +
                           "': deadline expired before any assignment was "
                           "covered");
  if (!best.has_value()) {
    // Every selected assignment was register-infeasible (the paper's cost
    // function does not see register limits; Section VI names this as
    // ongoing work). Widen the search before giving up.
    CodegenOptions wide = options;
    wide.assignPruneIncremental = false;
    wide.assignBeamWidth = 256;
    wide.assignKeepBest = 64;
    AssignmentExplorer wideExplorer(snd, wide, deadline,
                                    &lease.ws[0]->arena);
    tryAssignments(wideExplorer.explore());
  }
  if (!best.has_value() && timedOut.load(std::memory_order_relaxed))
    throw DeadlineExceeded("block '" + ir.name() + "' on machine '" +
                           machine.name() +
                           "': deadline expired before any assignment was "
                           "covered");
  if (!best.has_value())
    throw Error("block '" + ir.name() + "' on machine '" + machine.name() +
                "': no feasible schedule found (" + lastFailure + ")");

  // The winner's covers/operandIr spans still alias the SND's pools; re-home
  // them into graph-owned storage before the result outlives `snd`.
  best->graph.detachPayloads();

  stats.cover = best->cover;
  stats.timedOut = timedOut.load(std::memory_order_relaxed);
  stats.seconds = timer.seconds();

  if (metrics::on()) {
    auto& registry = metrics::Registry::instance();
    registry.counter("search.nodesVisited")
        .add(static_cast<int64_t>(stats.search.nodesVisited));
    registry.counter("search.prunedByBound")
        .add(static_cast<int64_t>(stats.search.prunedByBound));
    registry.counter("search.backtracks")
        .add(static_cast<int64_t>(stats.search.backtracks));
    registry.counter("search.candidatesAbandoned")
        .add(static_cast<int64_t>(stats.search.candidatesAbandoned));
    registry.counter("alloc.arena.calls")
        .add(static_cast<int64_t>(stats.search.arenaCalls));
    registry.counter("alloc.arena.bytes")
        .add(static_cast<int64_t>(stats.search.arenaBytes));
    registry.histogram("alloc.arena.highWater")
        .record(static_cast<int64_t>(stats.search.arenaHighWater));
  }

  CoreResult result{std::move(best->assignment), std::move(best->graph),
                    std::move(best->schedule), stats};
  tel.child("cover").setCounter("jobs", numWorkers);
  recordCoreStats(result.stats, tel);
  tel.addSeconds(stats.seconds);
  return result;
}

CoreResult coverBlock(const BlockDag& ir, CodegenContext& ctx,
                      TelemetryNode* phase) {
  return coverBlock(ir, ctx, ctx.options(), phase);
}

CoreResult coverBlock(const BlockDag& ir, CodegenContext& ctx,
                      const CodegenOptions& options, TelemetryNode* phase) {
  TelemetryNode& tel = phase != nullptr
                           ? *phase
                           : ctx.telemetry().child("block:" + ir.name());
  return coverBlock(ir, ctx.machine(), ctx.databases(), options, ctx.pool(),
                    &tel, &ctx.deadline(), &ctx.workspaces());
}

void recordCoreStats(const CoreStats& stats, TelemetryNode& phase) {
  phase.setCounter("irNodes", static_cast<int64_t>(stats.irNodes));
  phase.setCounter("sndNodes", static_cast<int64_t>(stats.sndNodes));
  TelemetryNode& explore = phase.child("explore");
  explore.setCounter("completeAssignments",
                     static_cast<int64_t>(stats.explore.completeAssignments));
  explore.setCounter("statesExpanded",
                     static_cast<int64_t>(stats.explore.statesExpanded));
  explore.setCounter("prunedByBound",
                     static_cast<int64_t>(stats.explore.prunedByBound));
  explore.setCounter("beamDropped",
                     static_cast<int64_t>(stats.explore.beamDropped));
  explore.setCounter("capped", stats.explore.capped ? 1 : 0);
  TelemetryNode& cover = phase.child("cover");
  cover.setCounter("assignmentsCovered",
                   static_cast<int64_t>(stats.assignmentsCovered));
  cover.setCounter("cliquesGenerated",
                   static_cast<int64_t>(stats.cover.cliquesGenerated));
  cover.setCounter("cliqueRounds",
                   static_cast<int64_t>(stats.cover.cliqueRounds));
  cover.setCounter("cliqueRecursions",
                   static_cast<int64_t>(stats.cover.cliqueRecursions));
  cover.setCounter("cliquePruned",
                   static_cast<int64_t>(stats.cover.cliquePruned));
  cover.setCounter("candidatesEvaluated",
                   static_cast<int64_t>(stats.cover.candidatesEvaluated));
  cover.setCounter("candidatesAbandoned",
                   static_cast<int64_t>(stats.cover.candidatesAbandoned));
  cover.setCounter("spillsInserted", stats.cover.spillsInserted);
  cover.setCounter("timedOut", stats.timedOut ? 1 : 0);
  for (size_t k = 0; k < stats.trajectory.size(); ++k) {
    const TrajectoryPoint& point = stats.trajectory[k];
    TelemetryNode& node = cover.child("best:" + std::to_string(k));
    node.setCounter("candidate", static_cast<int64_t>(point.candidate));
    node.setCounter("instructions", point.instructions);
    node.setCounter("spills", point.spills);
    node.addSeconds(point.seconds - node.seconds());  // set, not accumulate
  }
  TelemetryNode& search = phase.child("search");
  search.setCounter("nodesVisited",
                    static_cast<int64_t>(stats.search.nodesVisited));
  search.setCounter("prunedByBound",
                    static_cast<int64_t>(stats.search.prunedByBound));
  search.setCounter("backtracks",
                    static_cast<int64_t>(stats.search.backtracks));
  search.setCounter("candidatesAbandoned",
                    static_cast<int64_t>(stats.search.candidatesAbandoned));
  search.setCounter("arenaCalls",
                    static_cast<int64_t>(stats.search.arenaCalls));
  search.setCounter("arenaBytes",
                    static_cast<int64_t>(stats.search.arenaBytes));
  search.setCounter("arenaHighWater",
                    static_cast<int64_t>(stats.search.arenaHighWater));
}

CoreStats coreStatsView(const TelemetryNode& phase) {
  CoreStats stats;
  stats.irNodes = static_cast<size_t>(phase.counter("irNodes"));
  stats.sndNodes = static_cast<size_t>(phase.counter("sndNodes"));
  stats.seconds = phase.seconds();
  if (const TelemetryNode* explore = phase.findChild("explore")) {
    stats.explore.completeAssignments =
        static_cast<size_t>(explore->counter("completeAssignments"));
    stats.explore.statesExpanded =
        static_cast<size_t>(explore->counter("statesExpanded"));
    stats.explore.prunedByBound =
        static_cast<size_t>(explore->counter("prunedByBound"));
    stats.explore.beamDropped =
        static_cast<size_t>(explore->counter("beamDropped"));
    stats.explore.capped = explore->counter("capped") != 0;
  }
  if (const TelemetryNode* cover = phase.findChild("cover")) {
    stats.assignmentsCovered =
        static_cast<size_t>(cover->counter("assignmentsCovered"));
    stats.cover.cliquesGenerated =
        static_cast<size_t>(cover->counter("cliquesGenerated"));
    stats.cover.cliqueRounds =
        static_cast<size_t>(cover->counter("cliqueRounds"));
    stats.cover.cliqueRecursions =
        static_cast<size_t>(cover->counter("cliqueRecursions"));
    stats.cover.cliquePruned =
        static_cast<size_t>(cover->counter("cliquePruned"));
    stats.cover.candidatesEvaluated =
        static_cast<size_t>(cover->counter("candidatesEvaluated"));
    stats.cover.candidatesAbandoned =
        static_cast<size_t>(cover->counter("candidatesAbandoned"));
    stats.cover.spillsInserted =
        static_cast<int>(cover->counter("spillsInserted"));
    stats.timedOut = cover->counter("timedOut") != 0;
    for (size_t k = 0;; ++k) {
      const TelemetryNode* node = cover->findChild("best:" + std::to_string(k));
      if (node == nullptr) break;
      stats.trajectory.push_back(
          {static_cast<size_t>(node->counter("candidate")),
           static_cast<int>(node->counter("instructions")),
           static_cast<int>(node->counter("spills")), node->seconds()});
    }
  }
  if (const TelemetryNode* search = phase.findChild("search")) {
    stats.search.nodesVisited =
        static_cast<size_t>(search->counter("nodesVisited"));
    stats.search.prunedByBound =
        static_cast<size_t>(search->counter("prunedByBound"));
    stats.search.backtracks =
        static_cast<size_t>(search->counter("backtracks"));
    stats.search.candidatesAbandoned =
        static_cast<size_t>(search->counter("candidatesAbandoned"));
    stats.search.arenaCalls =
        static_cast<uint64_t>(search->counter("arenaCalls"));
    stats.search.arenaBytes =
        static_cast<uint64_t>(search->counter("arenaBytes"));
    stats.search.arenaHighWater =
        static_cast<uint64_t>(search->counter("arenaHighWater"));
  }
  return stats;
}

}  // namespace aviv
