// Maximal-clique generation over the pairwise-parallelism matrix — the
// paper's Fig 8 algorithm, verbatim: a growth loop that first absorbs every
// candidate whose addition precludes no other candidate (with the `i <
// index` pruning that stops branches whose cliques were already produced
// from a smaller seed), then branches on each remaining candidate.
//
// Every VLIW instruction the covering engine may emit is one of these
// cliques (possibly shrunk). referenceMaximalCliques is an independent
// Bron-Kerbosch implementation used by the property tests to prove the
// Fig 8 pruning loses nothing.
#pragma once

#include <vector>

#include "core/parallel_matrix.h"
#include "support/arena.h"
#include "support/bitset.h"

namespace aviv {

struct CliqueGenStats {
  size_t emitted = 0;      // maximal cliques produced (after dedup)
  size_t recursions = 0;   // gen_max_clique invocations
  size_t pruned = 0;       // branches cut by the i < index condition
  bool capped = false;     // hit maxCliques
};

// All maximal cliques of parallel nodes among `active`. Results are
// deduplicated and deterministically ordered. `maxCliques` bounds runaway
// generation (sets stats->capped). When `scratch` is given the recursion's
// clique/candidate sets live in it as raw word buffers (rewound per seed);
// otherwise a private arena is used. Output and stats are identical either
// way.
[[nodiscard]] std::vector<DynBitset> generateMaximalCliques(
    const ParallelismMatrix& matrix, const DynBitset& active,
    size_t maxCliques, CliqueGenStats* stats = nullptr,
    Arena* scratch = nullptr);

// Reference Bron-Kerbosch (with pivoting) for property tests.
[[nodiscard]] std::vector<DynBitset> referenceMaximalCliques(
    const ParallelismMatrix& matrix, const DynBitset& active);

}  // namespace aviv
