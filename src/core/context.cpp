#include "core/context.h"

namespace aviv {

namespace {
const Machine& validated(Machine& machine) {
  machine.validate();
  return machine;
}
}  // namespace

CodegenContext::CodegenContext(Machine machine, CodegenOptions options,
                               uint64_t seed)
    : machine_(std::move(machine)),
      dbs_(validated(machine_)),
      options_(options),
      seed_(seed),
      telemetry_("codegen") {
  telemetry_.setCounter("seed", static_cast<int64_t>(seed_));
  telemetry_.setCounter("jobs", jobs());
  deadline_.arm(options_.timeLimitSeconds);
  if (options_.jobs > 1)
    pool_ = std::make_unique<ThreadPool>(options_.jobs);
}

}  // namespace aviv
