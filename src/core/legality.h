// Section IV-C.3 — eliminating illegal instructions. The clique generator
// merges on pairwise parallelism only; a whole grouping can still be illegal
// on the target: it may violate an ISDL constraint (an explicitly illegal
// operation combination) or oversubscribe a multi-capacity bus (pairwise
// checks cannot count three transfers on a capacity-2 bus). Illegal cliques
// are split into smaller cliques until every proposed instruction is legal.
#pragma once

#include <vector>

#include "core/assigned.h"
#include "isdl/databases.h"
#include "support/bitset.h"

namespace aviv {

// True iff the grouping satisfies every ISDL constraint and every bus
// capacity.
[[nodiscard]] bool cliqueIsLegal(const DynBitset& clique,
                                 const AssignedGraph& graph,
                                 const ConstraintDatabase& constraints);

// Splits every illegal clique into legal sub-cliques (dropping the specific
// node whose removal repairs the violation, recursively), dedups, and
// removes cliques that are strict subsets of other cliques in the result.
[[nodiscard]] std::vector<DynBitset> enforceLegality(
    std::vector<DynBitset> cliques, const AssignedGraph& graph,
    const ConstraintDatabase& constraints);

}  // namespace aviv
