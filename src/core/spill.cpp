#include "core/spill.h"

#include <cstdint>

#include "support/error.h"

namespace aviv {

namespace {

DynBitset liveOutSetOf(const AssignedGraph& graph) {
  DynBitset liveOut(graph.size());
  for (const auto& [name, def] : graph.outputDefs())
    if (def != kNoAg) liveOut.set(def);
  return liveOut;
}

int remainingConsumers(const AssignedGraph& graph, AgId v,
                       const DynBitset& covered, const DynBitset* extra) {
  int remaining = 0;
  for (AgId succ : graph.node(v).succs) {
    const bool isCovered =
        covered.test(succ) || (extra != nullptr && extra->test(succ));
    remaining += isCovered ? 0 : 1;
  }
  return remaining;
}

}  // namespace

std::vector<int> bankPressure(const AssignedGraph& graph,
                              const DynBitset& covered,
                              const DynBitset* extra) {
  const DynBitset liveOut = liveOutSetOf(graph);
  std::vector<int> pressure;
  bankPressureInto(graph, liveOut, covered, extra, pressure);
  return pressure;
}

void bankPressureInto(const AssignedGraph& graph, const DynBitset& liveOut,
                      const DynBitset& covered, const DynBitset* extra,
                      std::vector<int>& pressure) {
  pressure.assign(graph.machine().regFiles().size(), 0);
  for (AgId v = 0; v < graph.size(); ++v) {
    const AgNode& n = graph.node(v);
    if (!n.definesRegister()) continue;
    const bool isCovered =
        covered.test(v) || (extra != nullptr && extra->test(v));
    if (!isCovered) continue;
    const bool live = liveOut.test(v) ||
                      remainingConsumers(graph, v, covered, extra) > 0;
    if (live) pressure[n.defLoc.index] += 1;
  }
}

bool pressureWithinLimits(const AssignedGraph& graph,
                          const std::vector<int>& pressure) {
  for (size_t bank = 0; bank < pressure.size(); ++bank)
    if (pressure[bank] >
        graph.machine().regFile(static_cast<RegFileId>(bank)).numRegs)
      return false;
  return true;
}

inline constexpr int kMaxRespillsPerSlot = 4;

AgId performSpill(AssignedGraph& graph, const TransferDatabase& xferDb,
                  const DynBitset& covered, SpillState& state) {
  const Machine& machine = graph.machine();
  const DynBitset liveOut = liveOutSetOf(graph);

  // Most-needed resource: the bank with the least slack right now.
  const auto pressureNow = bankPressure(graph, covered);
  RegFileId worstBank = kNoId16;
  int worstSlack = INT32_MAX;
  for (size_t bank = 0; bank < pressureNow.size(); ++bank) {
    const int slack =
        machine.regFile(static_cast<RegFileId>(bank)).numRegs -
        pressureNow[bank];
    if (slack < worstSlack) {
      worstSlack = slack;
      worstBank = static_cast<RegFileId>(bank);
    }
  }
  AVIV_CHECK(worstBank != kNoId16);

  // Victim: live value in that bank with the fewest pending reloads.
  AgId victim = kNoAg;
  int victimConsumers = INT32_MAX;
  for (AgId v = 0; v < graph.size(); ++v) {
    const AgNode& n = graph.node(v);
    if (!n.definesRegister() || !covered.test(v)) continue;
    if (n.defLoc.index != worstBank) continue;
    if (liveOut.test(v)) continue;  // outputs must stay resident
    if (state.spilled.count(v)) continue;
    // A reload can be evicted (its value is already in memory), but only a
    // bounded number of times per slot, or eviction churn never ends.
    if (n.kind == AgKind::kSpillLoad &&
        state.respills[n.spillSlot] >= kMaxRespillsPerSlot)
      continue;
    const int remaining = remainingConsumers(graph, v, covered, nullptr);
    if (remaining <= 0) continue;
    if (remaining < victimConsumers ||
        (remaining == victimConsumers && v < victim)) {
      victimConsumers = remaining;
      victim = v;
    }
  }
  if (victim == kNoAg)
    throw Error("block '" + graph.ir().name() + "' on machine '" +
                machine.name() +
                "': register files too small — no spillable value in bank " +
                machine.regFile(worstBank).name);

  // Fig 9: store the victim, rewire pending consumers to reloads, delete
  // now-redundant transfer chains.
  std::vector<AgId> pendingConsumers;
  for (AgId succ : graph.node(victim).succs)
    if (!covered.test(succ)) pendingConsumers.push_back(succ);
  AVIV_CHECK(!pendingConsumers.empty());

  int slot = -1;
  AgId afterStore = kNoAg;
  if (graph.node(victim).kind == AgKind::kSpillLoad) {
    // Evicting a reload: its value is already in its spill slot; rewire
    // pending consumers onto fresh reloads of the same slot — no store.
    slot = graph.node(victim).spillSlot;
    state.respills[slot] += 1;
    AVIV_CHECK(!graph.node(victim).preds.empty());
    afterStore = graph.node(victim).preds.front();
  } else {
    const auto store = graph.addSpillStore(victim, xferDb);
    state.spilled.insert(victim);
    slot = store.slot;
    afterStore = store.chain.back();
  }
  const NodeId valueIr = graph.node(victim).ir;

  // One reload chain per consumer ("load nodes before each remaining
  // consumer"): a private reload dies at its consumer, so the spill
  // genuinely relieves the bank.
  auto reloadInto = [&](Loc bank) -> AgId {
    return graph.addSpillLoad(slot, bank, afterStore, valueIr, xferDb)
        .back();
  };
  auto fixConsumer = [&](auto&& self, AgId consumer, AgId def) -> void {
    const AgNode& c = graph.node(consumer);
    if (c.kind == AgKind::kOp) {
      graph.retargetConsumer(consumer, def, reloadInto(c.defLoc));
      return;
    }
    AVIV_CHECK(c.isTransferish());
    const SmallVec<AgId, 4> downstream = c.succs;  // snapshot
    for (AgId d : downstream) {
      AVIV_CHECK(!covered.test(d));
      self(self, d, consumer);
    }
    graph.deleteNode(consumer);
  };
  for (AgId consumer : pendingConsumers)
    fixConsumer(fixConsumer, consumer, victim);

  graph.verify();
  return victim;
}

}  // namespace aviv
