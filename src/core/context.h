// CodegenContext — one pipeline session of the AVIV back end. A session owns
// everything the stages share: a validated copy of the target machine, the
// databases derived from it (op correlation, expanded transfers,
// constraints), the session options (including the worker count `jobs`), a
// deterministic per-session RNG seed, the phase-telemetry tree every stage
// reports into, and the thread pool the parallel stages draw workers from.
//
// The context must outlive every result produced through it (compiled
// blocks reference its machine). TelemetryNode is not thread-safe: parallel
// stages write to disjoint per-block subtrees created before fanning out.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/options.h"
#include "core/workspace.h"
#include "isdl/databases.h"
#include "isdl/machine.h"
#include "support/deadline.h"
#include "support/hash.h"
#include "support/telemetry.h"
#include "support/thread_pool.h"

namespace aviv {

class CodegenContext {
 public:
  static constexpr uint64_t kDefaultSeed = 0x41564956ull;  // "AVIV"

  // Validates and takes ownership of `machine`, builds the databases, and
  // (when options.jobs > 1) spawns the session thread pool up front so
  // parallel stages never race on its creation.
  explicit CodegenContext(Machine machine, CodegenOptions options = {},
                          uint64_t seed = kDefaultSeed);

  [[nodiscard]] const Machine& machine() const { return machine_; }
  [[nodiscard]] const MachineDatabases& databases() const { return dbs_; }
  [[nodiscard]] const CodegenOptions& options() const { return options_; }
  [[nodiscard]] uint64_t seed() const { return seed_; }
  [[nodiscard]] int jobs() const { return options_.jobs > 1 ? options_.jobs : 1; }

  // Session thread pool; nullptr when the session is single-threaded.
  [[nodiscard]] ThreadPool* pool() { return pool_.get(); }

  // The session's wall-clock budget / cancellation token, polled
  // cooperatively by the covering stages (assign_explore, CoveringEngine,
  // coverBlock's candidate loop). The constructor arms it from
  // options.timeLimitSeconds; the driver re-arms it at every
  // compileBlock/compileProgram entry so the budget is per compile, not
  // per session. Unarmed (timeLimitSeconds <= 0) it never expires.
  [[nodiscard]] Deadline& deadline() { return deadline_; }
  [[nodiscard]] const Deadline& deadline() const { return deadline_; }

  [[nodiscard]] TelemetryNode& telemetry() { return telemetry_; }
  [[nodiscard]] const TelemetryNode& telemetry() const { return telemetry_; }

  // Session-lifetime pool of covering workspaces: per-worker scratch
  // (arenas, bitsets, matrix rows) survives across blocks and compiles, so
  // a warm daemon session re-covers without re-allocating.
  [[nodiscard]] WorkspaceCache& workspaces() { return workspaces_; }

  // Memo slot for the service layer's canonical machine fingerprint
  // (src/service/fingerprint.*). The machine is immutable after
  // validation, so the fingerprint is computed once per session. Set it
  // before any parallel region; reads afterwards are lock-free.
  [[nodiscard]] const std::optional<Hash128>& machineFingerprint() const {
    return machineFp_;
  }
  void setMachineFingerprint(Hash128 fp) { machineFp_ = fp; }

 private:
  Machine machine_;
  MachineDatabases dbs_;
  CodegenOptions options_;
  uint64_t seed_;
  TelemetryNode telemetry_;
  Deadline deadline_;
  std::unique_ptr<ThreadPool> pool_;
  WorkspaceCache workspaces_;
  std::optional<Hash128> machineFp_;
};

}  // namespace aviv
