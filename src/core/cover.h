// The covering engine (paper Sections IV-D and IV-E): selects a minimum-
// cost set of maximal cliques covering every node of an assignment, which
// simultaneously fixes the VLIW instruction grouping, the schedule (cliques
// are selected bottom-up, producers before consumers), and the register-bank
// allocation feasibility (a running liveness upper bound per bank; when all
// remaining selectable cliques would exceed a bank, a victim value is
// spilled: a store chain is appended, pending consumers are rewired onto
// reload chains, redundant transfers are deleted — Fig 9 — and the cliques
// are regenerated).
#pragma once

#include <memory>
#include <vector>

#include "core/assigned.h"
#include "core/options.h"
#include "core/workspace.h"
#include "isdl/databases.h"
#include "support/bitset.h"
#include "support/deadline.h"

namespace aviv {

// The covering solution: one inner vector per VLIW instruction, in schedule
// order; members are AgNode ids (ascending within an instruction).
struct Schedule {
  std::vector<std::vector<AgId>> instrs;

  [[nodiscard]] int numInstructions() const {
    return static_cast<int>(instrs.size());
  }
  // cycle[agId] = instruction index; -1 for unscheduled/deleted nodes.
  [[nodiscard]] std::vector<int> cycles(size_t graphSize) const;
};

struct CoverStats {
  size_t cliquesGenerated = 0;  // across all regeneration rounds
  size_t cliqueRounds = 0;
  size_t cliqueRecursions = 0;      // branch-and-bound recursions in clique
                                    // generation, summed across rounds
  size_t cliquePruned = 0;          // clique branches cut by the bound
  size_t candidatesEvaluated = 0;   // clique ∩ ready candidates scored
  size_t candidatesAbandoned = 0;   // candidates abandoned with no fitting
                                    // member subset (register pressure)
  int spillsInserted = 0;  // victim values spilled (Table I "#Spills")
};

class CoveringEngine {
 public:
  // `graph` is mutated when spills are inserted. `xferDb` provides spill
  // store/load routes. When `deadline` is non-null it is polled once per
  // covering round; expiry throws DeadlineExceeded (the partially covered
  // schedule is unusable — callers keep an earlier complete candidate or
  // degrade to the baseline). When `ws` is given all per-round/per-clique
  // scratch (bitsets, pressure vectors, the parallelism matrix, the clique
  // recursion arena) lives in it, so a warm workspace covers a candidate
  // without touching malloc; otherwise a private workspace is created.
  CoveringEngine(AssignedGraph& graph, const TransferDatabase& xferDb,
                 const ConstraintDatabase& constraints,
                 const CodegenOptions& options,
                 const Deadline* deadline = nullptr,
                 CoverWorkspace* ws = nullptr);

  // Runs the covering; throws aviv::Error when the register files are too
  // small to hold the block's outputs / any feasible schedule.
  [[nodiscard]] Schedule run(CoverStats* stats = nullptr);

 private:
  AssignedGraph& graph_;
  const TransferDatabase& xferDb_;
  const ConstraintDatabase& constraints_;
  const CodegenOptions& options_;
  const Deadline* deadline_;
  CoverWorkspace* ws_;
  std::unique_ptr<CoverWorkspace> ownedWs_;  // fallback when ws == nullptr
};

// Asserts (AVIV_REQUIRE — recoverable, so a daemon request that trips an
// invariant fails without killing the process) that `schedule` is a valid
// execution of `graph`: every active node exactly once, dependencies
// strictly earlier, unit/bus/constraint legality per instruction, and
// per-bank register pressure within the machine's register counts.
void verifySchedule(const AssignedGraph& graph, const Schedule& schedule,
                    const ConstraintDatabase& constraints);

}  // namespace aviv
