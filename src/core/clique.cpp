#include "core/clique.h"

#include <algorithm>

#include "support/error.h"

namespace aviv {

namespace {

// The recursion works on raw word buffers bump-allocated from an arena (one
// clique + cand pair per branch, rewound as each branch returns), so a round
// of generation touches malloc only for the emitted cliques themselves.
struct Generator {
  const ParallelismMatrix& matrix;
  const DynBitset& active;
  size_t maxCliques;
  CliqueGenStats* stats;
  Arena& arena;
  size_t n;      // node count (bits per set)
  size_t words;  // uint64_t words per set
  std::vector<DynBitset> out;

  [[nodiscard]] uint64_t* allocSet() { return arena.alloc<uint64_t>(words); }

  // Paper Fig 8. `clique` is the current clique; `cand` the nodes parallel
  // with every clique member; `index` the largest seed/branch node so far.
  // Both buffers are owned (mutated) by this invocation.
  void gen(uint64_t* clique, uint64_t* cand, size_t index) {
    if (stats != nullptr) ++stats->recursions;
    if (out.size() >= maxCliques) {
      if (stats != nullptr) stats->capped = true;
      return;
    }

    // First loop: absorb nodes that preclude no other candidate.
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = bits::findFirst(cand, 0, n); i < n;
           i = bits::findFirst(cand, i + 1, n)) {
        // "adding i will not preclude adding any other node": every other
        // candidate is parallel with i, i.e. cand & ~row(i) is {i} or empty.
        const uint64_t* row = matrix.row(static_cast<AgId>(i)).wordData();
        const size_t selfWord = i >> 6;
        bool anyPrecluded = false;
        for (size_t w = 0; w < words; ++w) {
          uint64_t precluded = cand[w] & ~row[w];
          if (w == selfWord) precluded &= ~(uint64_t{1} << (i & 63));
          if (precluded != 0) {
            anyPrecluded = true;
            break;
          }
        }
        if (anyPrecluded) continue;
        if (i < index) {
          // Pruning condition: every maximal clique through this branch was
          // already generated starting from i.
          if (stats != nullptr) ++stats->pruned;
          return;
        }
        bits::set(clique, i);
        bits::reset(cand, i);
        changed = true;
      }
    }

    if (!bits::any(cand, words)) {
      DynBitset emitted;
      emitted.assignWords(n, clique);
      out.push_back(std::move(emitted));
      return;
    }

    // Second loop: branch on each remaining candidate.
    for (size_t i = bits::findFirst(cand, 0, n); i < n;
         i = bits::findFirst(cand, i + 1, n)) {
      const Arena::Mark branchMark = arena.mark();
      uint64_t* nextClique = allocSet();
      bits::copy(nextClique, clique, words);
      bits::set(nextClique, i);
      uint64_t* nextCand = allocSet();
      bits::andInto(nextCand, cand, matrix.row(static_cast<AgId>(i)).wordData(),
                    words);
      gen(nextClique, nextCand, std::max(i, index));
      arena.rewind(branchMark);
      if (out.size() >= maxCliques) return;
    }
  }

  void run() {
    for (size_t seed = active.findFirst(); seed < active.size();
         seed = active.findFirst(seed + 1)) {
      const Arena::Mark seedMark = arena.mark();
      uint64_t* clique = allocSet();
      bits::clear(clique, words);
      bits::set(clique, seed);
      // Candidates: neighbours within the active set.
      uint64_t* cand = allocSet();
      bits::andInto(cand, matrix.row(static_cast<AgId>(seed)).wordData(),
                    active.wordData(), words);
      gen(clique, cand, seed);
      arena.rewind(seedMark);
      if (out.size() >= maxCliques) {
        if (stats != nullptr && active.findFirst(seed + 1) < active.size())
          stats->capped = true;
        break;
      }
    }
  }
};

void sortAndDedup(std::vector<DynBitset>& cliques) {
  std::sort(cliques.begin(), cliques.end(),
            [](const DynBitset& a, const DynBitset& b) { return a.lexLess(b); });
  cliques.erase(std::unique(cliques.begin(), cliques.end()), cliques.end());
}

}  // namespace

std::vector<DynBitset> generateMaximalCliques(const ParallelismMatrix& matrix,
                                              const DynBitset& active,
                                              size_t maxCliques,
                                              CliqueGenStats* stats,
                                              Arena* scratch) {
  AVIV_CHECK(active.size() == matrix.size());
  Arena localArena;
  Arena& arena = scratch != nullptr ? *scratch : localArena;
  const ArenaScope scope(arena);
  Generator gen{matrix, active,        maxCliques,         stats,
                arena,  active.size(), active.wordCount(), {}};
  gen.run();
  sortAndDedup(gen.out);
  if (stats != nullptr) stats->emitted = gen.out.size();
  return gen.out;
}

namespace {

void bronKerbosch(const ParallelismMatrix& matrix, DynBitset r, DynBitset p,
                  DynBitset x, std::vector<DynBitset>& out) {
  if (p.none() && x.none()) {
    out.push_back(std::move(r));
    return;
  }
  // Pivot: candidate from p | x with the most neighbours in p.
  DynBitset px = p;
  px |= x;
  size_t pivot = px.findFirst();
  size_t bestDeg = 0;
  for (size_t u = px.findFirst(); u < px.size(); u = px.findFirst(u + 1)) {
    const size_t deg = p.intersectCount(matrix.row(u));
    if (deg >= bestDeg) {
      bestDeg = deg;
      pivot = u;
    }
  }
  DynBitset branch = p;
  branch.andNot(matrix.row(pivot));
  for (size_t v = branch.findFirst(); v < branch.size();
       v = branch.findFirst(v + 1)) {
    DynBitset r2 = r;
    r2.set(v);
    DynBitset p2 = p;
    p2 &= matrix.row(v);
    DynBitset x2 = x;
    x2 &= matrix.row(v);
    bronKerbosch(matrix, std::move(r2), std::move(p2), std::move(x2), out);
    p.reset(v);
    x.set(v);
  }
}

}  // namespace

std::vector<DynBitset> referenceMaximalCliques(const ParallelismMatrix& matrix,
                                               const DynBitset& active) {
  AVIV_CHECK(active.size() == matrix.size());
  std::vector<DynBitset> out;
  DynBitset p = active;
  // Restrict rows to active implicitly by intersecting p/x with active rows:
  // start from p = active and never add non-active nodes.
  bronKerbosch(matrix, DynBitset(active.size()), std::move(p),
               DynBitset(active.size()), out);
  // Bron-Kerbosch over the full rows can include non-active neighbours in
  // its maximality notion; rows already exclude deleted nodes, and callers
  // pass active = uncovered. Intersect defensively and re-dedup.
  for (DynBitset& clique : out) clique &= active;
  sortAndDedup(out);
  return out;
}

}  // namespace aviv
