#include "core/clique.h"

#include <algorithm>

#include "support/error.h"

namespace aviv {

namespace {

struct Generator {
  const ParallelismMatrix& matrix;
  const DynBitset& active;
  size_t maxCliques;
  CliqueGenStats* stats;
  std::vector<DynBitset> out;

  // Restricted parallel row: neighbours within the active set.
  [[nodiscard]] DynBitset activeRow(size_t i) const {
    DynBitset row = matrix.row(i);
    row &= active;
    return row;
  }

  // Paper Fig 8. `clique` is the current clique; `cand` the nodes parallel
  // with every clique member; `index` the largest seed/branch node so far.
  void gen(DynBitset clique, DynBitset cand, size_t index) {
    if (stats != nullptr) ++stats->recursions;
    if (out.size() >= maxCliques) {
      if (stats != nullptr) stats->capped = true;
      return;
    }

    // First loop: absorb nodes that preclude no other candidate.
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = cand.findFirst(); i < cand.size();
           i = cand.findFirst(i + 1)) {
        // "adding i will not preclude adding any other node": every other
        // candidate is parallel with i.
        DynBitset precluded = cand;
        precluded.andNot(matrix.row(i));
        precluded.reset(i);
        if (precluded.any()) continue;
        if (i < index) {
          // Pruning condition: every maximal clique through this branch was
          // already generated starting from i.
          if (stats != nullptr) ++stats->pruned;
          return;
        }
        clique.set(i);
        cand.reset(i);
        changed = true;
      }
    }

    if (cand.none()) {
      out.push_back(clique);
      return;
    }

    // Second loop: branch on each remaining candidate.
    for (size_t i = cand.findFirst(); i < cand.size();
         i = cand.findFirst(i + 1)) {
      DynBitset nextClique = clique;
      nextClique.set(i);
      DynBitset nextCand = cand;
      nextCand &= matrix.row(i);
      gen(std::move(nextClique), std::move(nextCand), std::max(i, index));
      if (out.size() >= maxCliques) return;
    }
  }

  void run() {
    for (size_t seed = active.findFirst(); seed < active.size();
         seed = active.findFirst(seed + 1)) {
      DynBitset clique(active.size());
      clique.set(seed);
      gen(std::move(clique), activeRow(seed), seed);
      if (out.size() >= maxCliques) {
        if (stats != nullptr && active.findFirst(seed + 1) < active.size())
          stats->capped = true;
        break;
      }
    }
  }
};

void sortAndDedup(std::vector<DynBitset>& cliques) {
  std::sort(cliques.begin(), cliques.end(),
            [](const DynBitset& a, const DynBitset& b) { return a.lexLess(b); });
  cliques.erase(std::unique(cliques.begin(), cliques.end()), cliques.end());
}

}  // namespace

std::vector<DynBitset> generateMaximalCliques(const ParallelismMatrix& matrix,
                                              const DynBitset& active,
                                              size_t maxCliques,
                                              CliqueGenStats* stats) {
  AVIV_CHECK(active.size() == matrix.size());
  Generator gen{matrix, active, maxCliques, stats, {}};
  gen.run();
  sortAndDedup(gen.out);
  if (stats != nullptr) stats->emitted = gen.out.size();
  return gen.out;
}

namespace {

void bronKerbosch(const ParallelismMatrix& matrix, DynBitset r, DynBitset p,
                  DynBitset x, std::vector<DynBitset>& out) {
  if (p.none() && x.none()) {
    out.push_back(std::move(r));
    return;
  }
  // Pivot: candidate from p | x with the most neighbours in p.
  DynBitset px = p;
  px |= x;
  size_t pivot = px.findFirst();
  size_t bestDeg = 0;
  for (size_t u = px.findFirst(); u < px.size(); u = px.findFirst(u + 1)) {
    const size_t deg = p.intersectCount(matrix.row(u));
    if (deg >= bestDeg) {
      bestDeg = deg;
      pivot = u;
    }
  }
  DynBitset branch = p;
  branch.andNot(matrix.row(pivot));
  for (size_t v = branch.findFirst(); v < branch.size();
       v = branch.findFirst(v + 1)) {
    DynBitset r2 = r;
    r2.set(v);
    DynBitset p2 = p;
    p2 &= matrix.row(v);
    DynBitset x2 = x;
    x2 &= matrix.row(v);
    bronKerbosch(matrix, std::move(r2), std::move(p2), std::move(x2), out);
    p.reset(v);
    x.set(v);
  }
}

}  // namespace

std::vector<DynBitset> referenceMaximalCliques(const ParallelismMatrix& matrix,
                                               const DynBitset& active) {
  AVIV_CHECK(active.size() == matrix.size());
  std::vector<DynBitset> out;
  DynBitset p = active;
  // Restrict rows to active implicitly by intersecting p/x with active rows:
  // start from p = active and never add non-active nodes.
  bronKerbosch(matrix, DynBitset(active.size()), std::move(p),
               DynBitset(active.size()), out);
  // Bron-Kerbosch over the full rows can include non-active neighbours in
  // its maximality notion; rows already exclude deleted nodes, and callers
  // pass active = uncovered. Intersect defensively and re-dedup.
  for (DynBitset& clique : out) clique &= active;
  sortAndDedup(out);
  return out;
}

}  // namespace aviv
