// Spill insertion (paper Section IV-D / Fig 9), shared by the covering
// engine and the phase-ordered baseline scheduler: pick a victim value in
// the most-needed register bank, append a store chain to a spill slot,
// rewire every pending consumer onto its own reload chain, and delete
// transfer nodes the spill made redundant.
#pragma once

#include <map>
#include <set>

#include "core/assigned.h"
#include "isdl/databases.h"
#include "support/bitset.h"

namespace aviv {

// Per-bank count of live values given the covered set (a value is live when
// it is covered, occupies a register, and still has uncovered consumers or
// is a block output).
[[nodiscard]] std::vector<int> bankPressure(const AssignedGraph& graph,
                                            const DynBitset& covered,
                                            const DynBitset* extra = nullptr);

// Hot-path variant: writes into `pressure` (reusing its storage) and takes
// the live-out set precomputed by the caller — output bindings never change
// during a covering run, so the covering engine computes it once instead of
// once per pressure probe.
void bankPressureInto(const AssignedGraph& graph, const DynBitset& liveOut,
                      const DynBitset& covered, const DynBitset* extra,
                      std::vector<int>& pressure);

[[nodiscard]] bool pressureWithinLimits(const AssignedGraph& graph,
                                        const std::vector<int>& pressure);

// Book-keeping carried across spills of one covering run.
struct SpillState {
  std::set<AgId> spilled;        // victims already spilled once
  std::map<int, int> respills;   // per spill slot: reload evictions so far
};

// Performs one spill. `covered` must reflect the already-scheduled nodes.
// Two victim classes:
//   * an ordinary live value: a store chain is appended and pending
//     consumers are rewired onto fresh reload chains (Fig 9);
//   * a register-squatting reload (its value is already in memory): no
//     store is needed — pending consumers are simply rewired onto new
//     reloads of the same slot, freeing the register (bounded per slot to
//     guarantee termination).
// Returns the victim. Throws aviv::Error when no spillable value exists in
// the saturated bank (the assignment is register-infeasible).
AgId performSpill(AssignedGraph& graph, const TransferDatabase& xferDb,
                  const DynBitset& covered, SpillState& state);

}  // namespace aviv
