#include "core/cover.h"

#include <algorithm>
#include <cstdlib>
#include <tuple>
#include <cstdio>
#include <map>
#include <set>

#include "core/clique.h"
#include "core/legality.h"
#include "core/spill.h"
#include "core/parallel_matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"

namespace aviv {

std::vector<int> Schedule::cycles(size_t graphSize) const {
  std::vector<int> cycle(graphSize, -1);
  for (size_t c = 0; c < instrs.size(); ++c)
    for (AgId id : instrs[c]) cycle[id] = static_cast<int>(c);
  return cycle;
}

CoveringEngine::CoveringEngine(AssignedGraph& graph,
                               const TransferDatabase& xferDb,
                               const ConstraintDatabase& constraints,
                               const CodegenOptions& options,
                               const Deadline* deadline)
    : graph_(graph),
      xferDb_(xferDb),
      constraints_(constraints),
      options_(options),
      deadline_(deadline) {}

namespace {

// Live-out values (block outputs) never die.
DynBitset liveOutSet(const AssignedGraph& graph) {
  DynBitset liveOut(graph.size());
  for (const auto& [name, def] : graph.outputDefs())
    if (def != kNoAg) liveOut.set(def);
  return liveOut;
}

}  // namespace

Schedule CoveringEngine::run(CoverStats* stats) {
  CoverStats localStats;
  CoverStats& st = stats != nullptr ? *stats : localStats;
  st = CoverStats{};

  Schedule schedule;
  DynBitset covered(graph_.size());
  for (AgId id = 0; id < graph_.size(); ++id)
    if (graph_.node(id).deleted()) covered.set(id);

  SpillState spillState;
  std::vector<DynBitset> cliques;
  std::vector<int> heights;  // level from top: critical-path priority
  bool rebuild = true;
  const size_t spillGuard = 4 * graph_.size() + 64;

  while (true) {
    if (covered.count() == graph_.size()) break;
    if (deadline_ != nullptr) {
      trace::instant("search", "cover.deadline-poll", {}, "covered",
                     static_cast<int64_t>(covered.count()), "total",
                     static_cast<int64_t>(graph_.size()));
      deadline_->check("covering");
    }

    if (rebuild) {
      trace::Span roundSpan("search", "cover.clique-round");
      const ParallelismMatrix matrix(graph_, options_.cliqueLevelWindow);
      DynBitset active(graph_.size(), true);
      active.andNot(covered);
      CliqueGenStats genStats;
      cliques = enforceLegality(
          generateMaximalCliques(matrix, active, options_.maxCliquesPerRound,
                                 &genStats),
          graph_, constraints_);
      st.cliqueRecursions += genStats.recursions;
      st.cliquePruned += genStats.pruned;
      roundSpan.arg("cliques", static_cast<int64_t>(genStats.emitted));
      roundSpan.arg("recursions", static_cast<int64_t>(genStats.recursions));
      if (metrics::on()) {
        auto& registry = metrics::Registry::instance();
        auto& sizes = registry.histogram("cover.clique.size");
        for (const DynBitset& clique : cliques)
          sizes.record(static_cast<int64_t>(clique.count()));
        registry.counter("search.cliqueRecursions")
            .add(static_cast<int64_t>(genStats.recursions));
        registry.counter("search.cliquePruned")
            .add(static_cast<int64_t>(genStats.pruned));
      }
      // If the generation cap truncated the clique set, guarantee coverage
      // with singletons so every node remains schedulable.
      if (genStats.capped) {
        DynBitset inSomeClique(graph_.size());
        for (const DynBitset& clique : cliques) inSomeClique |= clique;
        active.forEach([&](size_t i) {
          if (inSomeClique.test(i)) return;
          DynBitset singleton(graph_.size());
          singleton.set(i);
          cliques.push_back(std::move(singleton));
        });
      }
      st.cliquesGenerated += cliques.size();
      st.cliqueRounds += 1;
      // Hard ceiling across rounds: the per-round cap bounds each rebuild,
      // but a hostile parallelism graph can keep regenerating huge clique
      // sets round after round. Recoverable — the driver degrades to the
      // baseline generator.
      if (options_.maxTotalCliques != 0 &&
          st.cliquesGenerated > options_.maxTotalCliques)
        throw ResourceLimitExceeded("total cliques", st.cliquesGenerated,
                                    options_.maxTotalCliques);
      heights = graph_.levelsFromTop();
      rebuild = false;
    }

    // Ready nodes: uncovered with all predecessors covered.
    DynBitset ready(graph_.size());
    for (AgId id = 0; id < graph_.size(); ++id) {
      if (covered.test(id)) continue;
      bool allPreds = true;
      for (AgId pred : graph_.node(id).preds) allPreds &= covered.test(pred);
      if (allPreds) ready.set(id);
    }
    AVIV_REQUIRE_MSG(ready.any(),
                     "covering deadlock: uncovered nodes but none ready");


    // Candidate selection: largest number of ready uncovered nodes whose
    // register requirements fit. A maximal clique whose full ready set
    // would exceed a bank is shrunk to its largest fitting subset (operation
    // nodes preferred — they kill operands — then transfers).
    struct Candidate {
      size_t cliqueIdx;
      DynBitset members;  // fitting subset of clique ∩ ready ∩ uncovered
      size_t score;
    };
    std::vector<Candidate> candidates;
    bool anyReadyClique = false;
    for (size_t ci = 0; ci < cliques.size(); ++ci) {
      DynBitset eligible = cliques[ci];
      eligible.andNot(covered);
      eligible &= ready;
      if (eligible.none()) continue;
      anyReadyClique = true;
      ++st.candidatesEvaluated;

      DynBitset members(graph_.size());
      if (pressureWithinLimits(graph_,
                             bankPressure(graph_, covered, &eligible))) {
        members = eligible;
      } else {
        // Greedy fit: ops first (they retire operand values), then
        // transfers, in id order.
        std::vector<AgId> tryOrder;
        eligible.forEach([&](size_t i) {
          if (graph_.node(static_cast<AgId>(i)).kind == AgKind::kOp)
            tryOrder.push_back(static_cast<AgId>(i));
        });
        eligible.forEach([&](size_t i) {
          if (graph_.node(static_cast<AgId>(i)).kind != AgKind::kOp)
            tryOrder.push_back(static_cast<AgId>(i));
        });
        for (AgId id : tryOrder) {
          members.set(id);
          if (!pressureWithinLimits(graph_,
                                    bankPressure(graph_, covered, &members)))
            members.reset(id);
        }
      }
      const size_t score = members.count();
      if (score == 0) {
        // No member subset fits the register banks: the candidate is
        // abandoned and the spill path may have to fire this round.
        ++st.candidatesAbandoned;
        continue;
      }
      candidates.push_back({ci, std::move(members), score});
    }

    if (!candidates.empty()) {
      // Max score first.
      size_t bestScore = 0;
      for (const Candidate& c : candidates)
        bestScore = std::max(bestScore, c.score);
      std::vector<const Candidate*> tied;
      for (const Candidate& c : candidates)
        if (c.score == bestScore) tied.push_back(&c);

      // Section IV-D tie-break: a one-step lookahead estimating how well the
      // rest can be covered, refined by critical-path height so operand
      // chains that gate the most downstream work are started first.
      auto lookaheadScore = [&](const Candidate& cand) -> size_t {
        DynBitset coveredAfter = covered;
        coveredAfter |= cand.members;
        DynBitset readyAfter(graph_.size());
        for (AgId id = 0; id < graph_.size(); ++id) {
          if (coveredAfter.test(id)) continue;
          bool allPreds = true;
          for (AgId pred : graph_.node(id).preds)
            allPreds &= coveredAfter.test(pred);
          if (allPreds) readyAfter.set(id);
        }
        size_t next = 0;
        for (const DynBitset& clique : cliques) {
          DynBitset m = clique;
          m.andNot(coveredAfter);
          m &= readyAfter;
          next = std::max(next, m.count());
        }
        return next;
      };
      auto heightKey = [&](const Candidate& cand) {
        int maxHeight = 0;
        long sumHeight = 0;
        cand.members.forEach([&](size_t i) {
          maxHeight = std::max(maxHeight, heights[i]);
          sumHeight += heights[i];
        });
        return std::make_pair(maxHeight, sumHeight);
      };

      const Candidate* chosen = tied.front();
      if (tied.size() > 1) {
        size_t bestNext = options_.coverLookahead ? lookaheadScore(*chosen) : 0;
        auto bestHeight = heightKey(*chosen);
        for (size_t t = 1; t < tied.size(); ++t) {
          const Candidate* cand = tied[t];
          const size_t next =
              options_.coverLookahead ? lookaheadScore(*cand) : 0;
          const auto height = heightKey(*cand);
          if (std::tie(next, height) > std::tie(bestNext, bestHeight)) {
            bestNext = next;
            bestHeight = height;
            chosen = cand;
          }
        }
      }

      std::vector<AgId> instr;
      chosen->members.forEach(
          [&](size_t i) { instr.push_back(static_cast<AgId>(i)); });
      covered |= chosen->members;
      schedule.instrs.push_back(std::move(instr));
      continue;
    }

    // No selectable clique: all remaining groupings would exceed register
    // resources (Section IV-D spill path).
    if (std::getenv("AVIV_COVER_DEBUG") != nullptr) {
      fprintf(stderr, "[cover] spill needed; covered=%zu/%zu ready=%zu\n",
              covered.count(), covered.size(), ready.count());
      ready.forEach([&](size_t i) {
        fprintf(stderr, "[cover]   ready %s\n",
                graph_.describe(static_cast<AgId>(i)).c_str());
      });
    }
    AVIV_REQUIRE_MSG(anyReadyClique,
                     "ready nodes exist but no clique contains one");
    if (st.spillsInserted >= static_cast<int>(spillGuard))
      throw Error("block '" + graph_.ir().name() + "' on machine '" +
                  graph_.machine().name() +
                  "': this functional-unit assignment cannot satisfy the "
                  "register limits (spill limit reached)");

    trace::instant("search", "cover.spill", {}, "spillsSoFar",
                   st.spillsInserted, "covered",
                   static_cast<int64_t>(covered.count()));
    performSpill(graph_, xferDb_, covered, spillState);
    st.spillsInserted += 1;

    // Graph grew: extend the bookkeeping (scheduled bits are preserved by
    // the resize; new nodes start uncovered; deletions become covered).
    covered.resize(graph_.size(), false);
    for (AgId id = 0; id < graph_.size(); ++id)
      if (graph_.node(id).deleted()) covered.set(id);
    graph_.verify();
    rebuild = true;
  }

  verifySchedule(graph_, schedule, constraints_);
  return schedule;
}

void verifySchedule(const AssignedGraph& graph, const Schedule& schedule,
                    const ConstraintDatabase& constraints) {
  const Machine& machine = graph.machine();
  const auto cycle = schedule.cycles(graph.size());

  // Every active node exactly once.
  std::vector<int> seen(graph.size(), 0);
  for (const auto& instr : schedule.instrs)
    for (AgId id : instr) seen[id] += 1;
  for (AgId id = 0; id < graph.size(); ++id) {
    const bool active = !graph.node(id).deleted();
    AVIV_REQUIRE_MSG(seen[id] == (active ? 1 : 0),
                   graph.describe(id) << " scheduled " << seen[id]
                                      << " times");
  }

  for (size_t c = 0; c < schedule.instrs.size(); ++c) {
    const auto& instr = schedule.instrs[c];
    // Dependencies strictly earlier.
    for (AgId id : instr) {
      for (AgId pred : graph.node(id).preds) {
        AVIV_REQUIRE_MSG(cycle[pred] >= 0 &&
                           cycle[pred] < static_cast<int>(c),
                       graph.describe(id) << " scheduled before its operand "
                                          << graph.describe(pred));
      }
    }
    // Unit exclusivity.
    std::set<UnitId> units;
    std::map<BusId, int> busLoad;
    std::vector<OpSel> sels;
    for (AgId id : instr) {
      const AgNode& n = graph.node(id);
      if (n.kind == AgKind::kOp) {
        AVIV_REQUIRE_MSG(units.insert(n.unit).second,
                       "two ops on unit " << machine.unit(n.unit).name
                                          << " in instruction " << c);
        sels.push_back({n.unit, n.machineOp});
      } else if (n.isTransferish()) {
        busLoad[graph.busOf(id)] += 1;
      }
    }
    for (const auto& [bus, load] : busLoad)
      AVIV_REQUIRE_MSG(load <= machine.bus(bus).capacity,
                     "bus " << machine.bus(bus).name << " oversubscribed in "
                            << c);
    AVIV_REQUIRE_MSG(constraints.allows(sels),
                   "ISDL constraint violated in instruction " << c);
  }

  // Register pressure: per-bank live counts after each cycle.
  DynBitset liveOut = liveOutSet(graph);
  std::vector<int> lastUse(graph.size(), -1);
  for (AgId id = 0; id < graph.size(); ++id) {
    for (AgId pred : graph.node(id).preds)
      lastUse[pred] = std::max(lastUse[pred], cycle[id]);
  }
  for (size_t c = 0; c < schedule.instrs.size(); ++c) {
    std::vector<int> pressure(machine.regFiles().size(), 0);
    for (AgId id = 0; id < graph.size(); ++id) {
      const AgNode& n = graph.node(id);
      if (!n.definesRegister() || cycle[id] < 0) continue;
      const bool born = cycle[id] <= static_cast<int>(c);
      const bool aliveLater =
          liveOut.test(id) || lastUse[id] > static_cast<int>(c);
      // Dead defs (evicted reloads) occupy a register at their write
      // instant even though nothing reads them afterwards.
      const bool deadDefHere = cycle[id] == static_cast<int>(c) &&
                               lastUse[id] < 0 && !liveOut.test(id);
      if ((born && aliveLater) || deadDefHere)
        pressure[n.defLoc.index] += 1;
    }
    for (size_t bank = 0; bank < pressure.size(); ++bank)
      AVIV_REQUIRE_MSG(
          pressure[bank] <=
              machine.regFile(static_cast<RegFileId>(bank)).numRegs,
          "bank " << machine.regFile(static_cast<RegFileId>(bank)).name
                  << " exceeds its registers after instruction " << c);
  }
}

}  // namespace aviv
