#include "core/cover.h"

#include <algorithm>
#include <cstdlib>
#include <tuple>
#include <cstdio>
#include <map>
#include <set>

#include "core/clique.h"
#include "core/legality.h"
#include "core/spill.h"
#include "core/parallel_matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"

namespace aviv {

std::vector<int> Schedule::cycles(size_t graphSize) const {
  std::vector<int> cycle(graphSize, -1);
  for (size_t c = 0; c < instrs.size(); ++c)
    for (AgId id : instrs[c]) cycle[id] = static_cast<int>(c);
  return cycle;
}

CoveringEngine::CoveringEngine(AssignedGraph& graph,
                               const TransferDatabase& xferDb,
                               const ConstraintDatabase& constraints,
                               const CodegenOptions& options,
                               const Deadline* deadline, CoverWorkspace* ws)
    : graph_(graph),
      xferDb_(xferDb),
      constraints_(constraints),
      options_(options),
      deadline_(deadline),
      ws_(ws) {
  if (ws_ == nullptr) {
    ownedWs_ = std::make_unique<CoverWorkspace>();
    ws_ = ownedWs_.get();
  }
}

namespace {

// Live-out values (block outputs) never die.
DynBitset liveOutSet(const AssignedGraph& graph) {
  DynBitset liveOut(graph.size());
  for (const auto& [name, def] : graph.outputDefs())
    if (def != kNoAg) liveOut.set(def);
  return liveOut;
}

}  // namespace

Schedule CoveringEngine::run(CoverStats* stats) {
  CoverStats localStats;
  CoverStats& st = stats != nullptr ? *stats : localStats;
  st = CoverStats{};

  Schedule schedule;
  CoverWorkspace& ws = *ws_;
  DynBitset& covered = ws.covered;
  covered.clearAndResize(graph_.size());
  for (AgId id = 0; id < graph_.size(); ++id)
    if (graph_.node(id).deleted()) covered.set(id);

  // Output bindings never change during covering, so the live-out set for
  // the pressure probes is computed once (extended in place after spills).
  DynBitset& liveOut = ws.liveOut;
  liveOut.clearAndResize(graph_.size());
  for (const auto& [name, def] : graph_.outputDefs())
    if (def != kNoAg) liveOut.set(def);

  SpillState spillState;
  std::vector<DynBitset> cliques;
  std::vector<int> heights;  // level from top: critical-path priority
  bool rebuild = true;
  const size_t spillGuard = 4 * graph_.size() + 64;

  while (true) {
    if (covered.count() == graph_.size()) break;
    if (deadline_ != nullptr) {
      trace::instant("search", "cover.deadline-poll", {}, "covered",
                     static_cast<int64_t>(covered.count()), "total",
                     static_cast<int64_t>(graph_.size()));
      deadline_->check("covering");
    }

    if (rebuild) {
      trace::Span roundSpan("search", "cover.clique-round");
      ws.matrix.rebuild(graph_, options_.cliqueLevelWindow, ws);
      DynBitset& active = ws.active;
      active.clearAndResize(graph_.size());
      active.setAll();
      active.andNot(covered);
      CliqueGenStats genStats;
      cliques = enforceLegality(
          generateMaximalCliques(ws.matrix, active,
                                 options_.maxCliquesPerRound, &genStats,
                                 &ws.arena),
          graph_, constraints_);
      st.cliqueRecursions += genStats.recursions;
      st.cliquePruned += genStats.pruned;
      roundSpan.arg("cliques", static_cast<int64_t>(genStats.emitted));
      roundSpan.arg("recursions", static_cast<int64_t>(genStats.recursions));
      if (metrics::on()) {
        auto& registry = metrics::Registry::instance();
        auto& sizes = registry.histogram("cover.clique.size");
        for (const DynBitset& clique : cliques)
          sizes.record(static_cast<int64_t>(clique.count()));
        registry.counter("search.cliqueRecursions")
            .add(static_cast<int64_t>(genStats.recursions));
        registry.counter("search.cliquePruned")
            .add(static_cast<int64_t>(genStats.pruned));
      }
      // If the generation cap truncated the clique set, guarantee coverage
      // with singletons so every node remains schedulable.
      if (genStats.capped) {
        DynBitset inSomeClique(graph_.size());
        for (const DynBitset& clique : cliques) inSomeClique |= clique;
        active.forEach([&](size_t i) {
          if (inSomeClique.test(i)) return;
          DynBitset singleton(graph_.size());
          singleton.set(i);
          cliques.push_back(std::move(singleton));
        });
      }
      st.cliquesGenerated += cliques.size();
      st.cliqueRounds += 1;
      // Hard ceiling across rounds: the per-round cap bounds each rebuild,
      // but a hostile parallelism graph can keep regenerating huge clique
      // sets round after round. Recoverable — the driver degrades to the
      // baseline generator.
      if (options_.maxTotalCliques != 0 &&
          st.cliquesGenerated > options_.maxTotalCliques)
        throw ResourceLimitExceeded("total cliques", st.cliquesGenerated,
                                    options_.maxTotalCliques);
      heights = graph_.levelsFromTop();
      rebuild = false;
    }

    // A clique whose members are all covered can never intersect a ready
    // set again (ready ⊆ uncovered), so later rounds and the lookahead need
    // not rescan it. Stable removal keeps the enumeration order — and with
    // it every tie-break — unchanged.
    std::erase_if(cliques, [&](const DynBitset& clique) {
      return clique.isSubsetOf(covered);
    });

    // Ready nodes: uncovered with all predecessors covered.
    DynBitset& ready = ws.ready;
    ready.clearAndResize(graph_.size());
    for (AgId id = 0; id < graph_.size(); ++id) {
      if (covered.test(id)) continue;
      bool allPreds = true;
      for (AgId pred : graph_.node(id).preds) allPreds &= covered.test(pred);
      if (allPreds) ready.set(id);
    }
    AVIV_REQUIRE_MSG(ready.any(),
                     "covering deadlock: uncovered nodes but none ready");

    // Pressure baseline for this round: `covered` is fixed across the clique
    // scan below, so the live set of covered producers (and the bank
    // pressure they induce) is computed once. The per-clique probe then only
    // adjusts for the clique's own members and for the covered producers
    // whose last uncovered consumers those members are — equivalent to
    // bankPressureInto(graph_, liveOut, covered, &eligible, ...) but
    // O(clique size) instead of O(graph size) per candidate.
    DynBitset& baseLive = ws.baseLive;
    baseLive.clearAndResize(graph_.size());
    std::vector<int>& basePressure = ws.basePressure;
    basePressure.assign(graph_.machine().regFiles().size(), 0);
    for (AgId v = 0; v < graph_.size(); ++v) {
      const AgNode& n = graph_.node(v);
      if (!n.definesRegister() || !covered.test(v)) continue;
      bool live = liveOut.test(v);
      if (!live)
        for (AgId succ : n.succs)
          if (!covered.test(succ)) {
            live = true;
            break;
          }
      if (live) {
        baseLive.set(v);
        basePressure[n.defLoc.index] += 1;
      }
    }
    DynBitset& retireTouched = ws.retireTouched;
    retireTouched.clearAndResize(graph_.size());

    // Candidate selection: largest number of ready uncovered nodes whose
    // register requirements fit. A maximal clique whose full ready set
    // would exceed a bank is shrunk to its largest fitting subset (operation
    // nodes preferred — they kill operands — then transfers). Surviving
    // candidates are (offset, count) slices into ws.memberPool instead of
    // per-candidate bitsets.
    struct Candidate {
      size_t cliqueIdx;
      size_t memberBegin;  // slice into ws.memberPool (ascending ids)
      size_t score;        // slice length == member count
    };
    std::vector<Candidate> candidates;
    ws.memberPool.clear();
    bool anyReadyClique = false;
    // Distinct eligible sets probed so far this round. The probe and the
    // member shrink are pure functions of (eligible, covered), and a
    // duplicate candidate can never win a strict tie-break against its
    // original — so repeats are resolved without re-probing: a duplicate
    // of a survivor is dropped, a duplicate of an abandoned set is
    // abandoned again.
    size_t seenCount = 0;
    ws.seenAbandoned.clear();
    for (size_t ci = 0; ci < cliques.size(); ++ci) {
      // ready excludes covered by construction, so clique ∩ ready equals
      // the old clique ∩ ~covered ∩ ready. Most cliques miss the ready set
      // entirely; the intersects probe skips them without copying.
      if (!cliques[ci].intersects(ready)) continue;
      DynBitset& eligible = ws.eligible;
      eligible = cliques[ci];
      eligible &= ready;
      anyReadyClique = true;
      ++st.candidatesEvaluated;

      bool duplicate = false;
      for (size_t j = 0; j < seenCount; ++j) {
        if (ws.seenEligible[j] != eligible) continue;
        duplicate = true;
        if (ws.seenAbandoned[j] != 0) ++st.candidatesAbandoned;
        break;
      }
      if (duplicate) continue;
      if (seenCount < ws.seenEligible.size())
        ws.seenEligible[seenCount] = eligible;
      else
        ws.seenEligible.push_back(eligible);
      ws.seenAbandoned.push_back(0);
      const size_t seenIdx = seenCount++;

      const DynBitset* members = &eligible;
      // Incremental pressure probe (see the baseline above): start from the
      // round's base pressure, add the clique's own register-defining
      // members, and retire covered producers whose every remaining
      // consumer sits in the clique.
      ws.pressure = basePressure;
      ws.retireList.clear();
      eligible.forEach([&](size_t i) {
        const auto m = static_cast<AgId>(i);
        const AgNode& n = graph_.node(m);
        if (n.definesRegister()) {
          bool live = liveOut.test(m);
          if (!live)
            for (AgId succ : n.succs)
              if (!covered.test(succ) && !eligible.test(succ)) {
                live = true;
                break;
              }
          if (live) ws.pressure[n.defLoc.index] += 1;
        }
        for (AgId pred : n.preds) {
          // Only covered producers counted live via an uncovered consumer
          // can flip; liveOut producers never retire.
          if (!baseLive.test(pred) || liveOut.test(pred)) continue;
          if (retireTouched.test(pred)) continue;
          retireTouched.set(pred);
          ws.retireList.push_back(pred);
          bool stillLive = false;
          for (AgId succ : graph_.node(pred).succs)
            if (!covered.test(succ) && !eligible.test(succ)) {
              stillLive = true;
              break;
            }
          if (!stillLive) ws.pressure[graph_.node(pred).defLoc.index] -= 1;
        }
      });
      for (const uint32_t pred : ws.retireList) retireTouched.reset(pred);
      if (!pressureWithinLimits(graph_, ws.pressure)) {
        // Greedy fit: ops first (they retire operand values), then
        // transfers, in id order.
        ws.tryOrder.clear();
        eligible.forEach([&](size_t i) {
          if (graph_.node(static_cast<AgId>(i)).kind == AgKind::kOp)
            ws.tryOrder.push_back(static_cast<uint32_t>(i));
        });
        eligible.forEach([&](size_t i) {
          if (graph_.node(static_cast<AgId>(i)).kind != AgKind::kOp)
            ws.tryOrder.push_back(static_cast<uint32_t>(i));
        });
        DynBitset& fit = ws.members;
        fit.clearAndResize(graph_.size());
        for (uint32_t id : ws.tryOrder) {
          fit.set(id);
          bankPressureInto(graph_, liveOut, covered, &fit, ws.pressure);
          if (!pressureWithinLimits(graph_, ws.pressure)) fit.reset(id);
        }
        members = &fit;
      }
      const size_t memberBegin = ws.memberPool.size();
      members->forEach(
          [&](size_t i) { ws.memberPool.push_back(static_cast<uint32_t>(i)); });
      const size_t score = ws.memberPool.size() - memberBegin;
      if (score == 0) {
        // No member subset fits the register banks: the candidate is
        // abandoned and the spill path may have to fire this round.
        ++st.candidatesAbandoned;
        ws.seenAbandoned[seenIdx] = 1;
        continue;
      }
      candidates.push_back({ci, memberBegin, score});
    }

    if (!candidates.empty()) {
      // Max score first.
      size_t bestScore = 0;
      for (const Candidate& c : candidates)
        bestScore = std::max(bestScore, c.score);
      std::vector<const Candidate*> tied;
      for (const Candidate& c : candidates)
        if (c.score == bestScore) tied.push_back(&c);

      // Section IV-D tie-break: a one-step lookahead estimating how well the
      // rest can be covered, refined by critical-path height so operand
      // chains that gate the most downstream work are started first.
      auto lookaheadScore = [&](const Candidate& cand) -> size_t {
        // Simulate covering the members in place (`covered` is restored
        // before returning). Ready-set delta: the members leave it, and the
        // only nodes that can join are their successors — everyone else's
        // predecessors are untouched.
        DynBitset& readyAfter = ws.readyAfter;
        readyAfter = ready;
        for (size_t k = 0; k < cand.score; ++k) {
          const uint32_t m = ws.memberPool[cand.memberBegin + k];
          covered.set(m);
          readyAfter.reset(m);
        }
        for (size_t k = 0; k < cand.score; ++k) {
          const uint32_t m = ws.memberPool[cand.memberBegin + k];
          for (AgId succ : graph_.node(m).succs) {
            if (covered.test(succ)) continue;
            bool allPreds = true;
            for (AgId pred : graph_.node(succ).preds)
              allPreds &= covered.test(pred);
            if (allPreds) readyAfter.set(succ);
          }
        }
        // readyAfter excludes covered-after by construction, so the old
        // clique ∩ ~coveredAfter ∩ readyAfter count is a plain intersection
        // — and no clique can beat |readyAfter| itself.
        size_t next = 0;
        const size_t cap = readyAfter.count();
        for (const DynBitset& clique : cliques) {
          next = std::max(next, clique.intersectCount(readyAfter));
          if (next == cap) break;
        }
        for (size_t k = 0; k < cand.score; ++k)
          covered.reset(ws.memberPool[cand.memberBegin + k]);
        return next;
      };
      auto heightKey = [&](const Candidate& cand) {
        int maxHeight = 0;
        long sumHeight = 0;
        for (size_t k = 0; k < cand.score; ++k) {
          const uint32_t i = ws.memberPool[cand.memberBegin + k];
          maxHeight = std::max(maxHeight, heights[i]);
          sumHeight += heights[i];
        }
        return std::make_pair(maxHeight, sumHeight);
      };

      const Candidate* chosen = tied.front();
      if (tied.size() > 1) {
        size_t bestNext = options_.coverLookahead ? lookaheadScore(*chosen) : 0;
        auto bestHeight = heightKey(*chosen);
        for (size_t t = 1; t < tied.size(); ++t) {
          const Candidate* cand = tied[t];
          const size_t next =
              options_.coverLookahead ? lookaheadScore(*cand) : 0;
          const auto height = heightKey(*cand);
          if (std::tie(next, height) > std::tie(bestNext, bestHeight)) {
            bestNext = next;
            bestHeight = height;
            chosen = cand;
          }
        }
      }

      std::vector<AgId> instr;
      instr.reserve(chosen->score);
      for (size_t k = 0; k < chosen->score; ++k) {
        const AgId id = ws.memberPool[chosen->memberBegin + k];
        instr.push_back(id);
        covered.set(id);
      }
      schedule.instrs.push_back(std::move(instr));
      continue;
    }

    // No selectable clique: all remaining groupings would exceed register
    // resources (Section IV-D spill path).
    if (std::getenv("AVIV_COVER_DEBUG") != nullptr) {
      fprintf(stderr, "[cover] spill needed; covered=%zu/%zu ready=%zu\n",
              covered.count(), covered.size(), ready.count());
      ready.forEach([&](size_t i) {
        fprintf(stderr, "[cover]   ready %s\n",
                graph_.describe(static_cast<AgId>(i)).c_str());
      });
    }
    AVIV_REQUIRE_MSG(anyReadyClique,
                     "ready nodes exist but no clique contains one");
    if (st.spillsInserted >= static_cast<int>(spillGuard))
      throw Error("block '" + graph_.ir().name() + "' on machine '" +
                  graph_.machine().name() +
                  "': this functional-unit assignment cannot satisfy the "
                  "register limits (spill limit reached)");

    trace::instant("search", "cover.spill", {}, "spillsSoFar",
                   st.spillsInserted, "covered",
                   static_cast<int64_t>(covered.count()));
    performSpill(graph_, xferDb_, covered, spillState);
    st.spillsInserted += 1;

    // Graph grew: extend the bookkeeping (scheduled bits are preserved by
    // the resize; new nodes start uncovered; deletions become covered).
    covered.resize(graph_.size(), false);
    liveOut.resize(graph_.size(), false);
    for (AgId id = 0; id < graph_.size(); ++id)
      if (graph_.node(id).deleted()) covered.set(id);
    graph_.verify();
    rebuild = true;
  }

  verifySchedule(graph_, schedule, constraints_);
  return schedule;
}

void verifySchedule(const AssignedGraph& graph, const Schedule& schedule,
                    const ConstraintDatabase& constraints) {
  const Machine& machine = graph.machine();
  const auto cycle = schedule.cycles(graph.size());

  // Every active node exactly once.
  std::vector<int> seen(graph.size(), 0);
  for (const auto& instr : schedule.instrs)
    for (AgId id : instr) seen[id] += 1;
  for (AgId id = 0; id < graph.size(); ++id) {
    const bool active = !graph.node(id).deleted();
    AVIV_REQUIRE_MSG(seen[id] == (active ? 1 : 0),
                   graph.describe(id) << " scheduled " << seen[id]
                                      << " times");
  }

  for (size_t c = 0; c < schedule.instrs.size(); ++c) {
    const auto& instr = schedule.instrs[c];
    // Dependencies strictly earlier.
    for (AgId id : instr) {
      for (AgId pred : graph.node(id).preds) {
        AVIV_REQUIRE_MSG(cycle[pred] >= 0 &&
                           cycle[pred] < static_cast<int>(c),
                       graph.describe(id) << " scheduled before its operand "
                                          << graph.describe(pred));
      }
    }
    // Unit exclusivity.
    std::set<UnitId> units;
    std::map<BusId, int> busLoad;
    std::vector<OpSel> sels;
    for (AgId id : instr) {
      const AgNode& n = graph.node(id);
      if (n.kind == AgKind::kOp) {
        AVIV_REQUIRE_MSG(units.insert(n.unit).second,
                       "two ops on unit " << machine.unit(n.unit).name
                                          << " in instruction " << c);
        sels.push_back({n.unit, n.machineOp});
      } else if (n.isTransferish()) {
        busLoad[graph.busOf(id)] += 1;
      }
    }
    for (const auto& [bus, load] : busLoad)
      AVIV_REQUIRE_MSG(load <= machine.bus(bus).capacity,
                     "bus " << machine.bus(bus).name << " oversubscribed in "
                            << c);
    AVIV_REQUIRE_MSG(constraints.allows(sels),
                   "ISDL constraint violated in instruction " << c);
  }

  // Register pressure: per-bank live counts after each cycle.
  DynBitset liveOut = liveOutSet(graph);
  std::vector<int> lastUse(graph.size(), -1);
  for (AgId id = 0; id < graph.size(); ++id) {
    for (AgId pred : graph.node(id).preds)
      lastUse[pred] = std::max(lastUse[pred], cycle[id]);
  }
  for (size_t c = 0; c < schedule.instrs.size(); ++c) {
    std::vector<int> pressure(machine.regFiles().size(), 0);
    for (AgId id = 0; id < graph.size(); ++id) {
      const AgNode& n = graph.node(id);
      if (!n.definesRegister() || cycle[id] < 0) continue;
      const bool born = cycle[id] <= static_cast<int>(c);
      const bool aliveLater =
          liveOut.test(id) || lastUse[id] > static_cast<int>(c);
      // Dead defs (evicted reloads) occupy a register at their write
      // instant even though nothing reads them afterwards.
      const bool deadDefHere = cycle[id] == static_cast<int>(c) &&
                               lastUse[id] < 0 && !liveOut.test(id);
      if ((born && aliveLater) || deadDefHere)
        pressure[n.defLoc.index] += 1;
    }
    for (size_t bank = 0; bank < pressure.size(); ++bank)
      AVIV_REQUIRE_MSG(
          pressure[bank] <=
              machine.regFile(static_cast<RegFileId>(bank)).numRegs,
          "bank " << machine.regFile(static_cast<RegFileId>(bank)).name
                  << " exceeds its registers after instruction " << c);
  }
}

}  // namespace aviv
