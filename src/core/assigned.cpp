#include "core/assigned.h"

#include <algorithm>

#include "core/workspace.h"
#include "support/error.h"

namespace aviv {

AgId AssignedGraph::append(AgNode node) {
  const auto id = static_cast<AgId>(nodes_.size());
  nodes_.push_back(std::move(node));
  return id;
}

void AssignedGraph::addDep(AgId from, AgId to) {
  AVIV_CHECK(from < nodes_.size() && to < nodes_.size() && from != to);
  auto& succs = nodes_[from].succs;
  if (std::find(succs.begin(), succs.end(), to) == succs.end())
    succs.push_back(to);
  auto& preds = nodes_[to].preds;
  if (std::find(preds.begin(), preds.end(), from) == preds.end())
    preds.push_back(from);
}

const AgNode& AssignedGraph::node(AgId id) const {
  AVIV_CHECK(id < nodes_.size());
  return nodes_[id];
}

size_t AssignedGraph::numActiveNodes() const {
  size_t n = 0;
  for (const AgNode& node : nodes_) n += node.deleted() ? 0 : 1;
  return n;
}

namespace {

// Section IV-B: among several minimal routes pick the one whose buses are
// least congested so far ("the cost function is based solely on
// parallelism").
size_t selectRoute(const std::vector<TransferRoute>& routes,
                   const Machine& machine, Span<const int> busUse) {
  AVIV_CHECK(!routes.empty());
  size_t best = 0;
  int bestScore = INT32_MAX;
  for (size_t r = 0; r < routes.size(); ++r) {
    int score = 0;
    for (int pathId : routes[r].pathIds)
      score += busUse[machine.transfers()[static_cast<size_t>(pathId)].bus];
    if (score < bestScore) {
      bestScore = score;
      best = r;
    }
  }
  return best;
}

}  // namespace

AssignedGraph AssignedGraph::materialize(const SplitNodeDag& snd,
                                         const Assignment& assignment,
                                         const CodegenOptions& options,
                                         CoverWorkspace* ws) {
  const BlockDag& ir = snd.ir();
  const Machine& machine = snd.machine();
  const TransferDatabase& xferDb = snd.databases().transfers;

  AssignedGraph g;
  g.ir_ = &ir;
  g.machine_ = &machine;
  g.xferDb_ = &xferDb;
  g.nodes_.reserve(ir.size() * 3);

  // Transient build scratch comes from the workspace arena when a workspace
  // is supplied (per-candidate scope, rewound by the caller).
  Arena localArena;
  Arena& arena = ws != nullptr ? ws->arena : localArena;
  Span<int> busUse = arena.allocSpan<int>(machine.buses().size(), 0);
  Span<AgId> opOf = arena.allocSpan<AgId>(ir.size(), kNoAg);
  // Value-availability table, (IR value node, storage) -> AgNode holding the
  // value there; flat-indexed by valueIr * numLocs + locKey instead of a
  // std::map (the hottest lookup during materialization).
  const size_t numRegFiles = machine.regFiles().size();
  const size_t numLocs = numRegFiles + machine.memories().size();
  Span<AgId> avail = arena.allocSpan<AgId>(ir.size() * numLocs, kNoAg);
  auto availSlot = [&](NodeId valueIr, Loc loc) -> AgId& {
    const size_t key = loc.isMemory() ? numRegFiles + loc.index : loc.index;
    AVIV_DCHECK(key < numLocs);
    return avail[valueIr * numLocs + key];
  };

  // Builds (or reuses) the move of `valueIr`'s value into `dest`; returns
  // the AgNode whose result is the value in `dest`.
  auto resolveValue = [&](NodeId valueIr, Loc dest) -> AgId {
    if (const AgId hit = availSlot(valueIr, dest); hit != kNoAg) return hit;

    const bool leaf = isLeafOp(ir.node(valueIr).op);
    AgId srcAg = kNoAg;
    Loc srcLoc = machine.dataMemoryLoc();
    if (!leaf) {
      srcAg = opOf[valueIr];
      AVIV_CHECK_MSG(srcAg != kNoAg,
                     "operand " << ir.describe(valueIr) << " has no producer");
      srcLoc = g.nodes_[srcAg].defLoc;
      AVIV_CHECK(!(srcLoc == dest));  // avail would have hit
    }
    const auto& routes = xferDb.routes(srcLoc, dest);
    if (routes.empty())
      throw Error("machine '" + machine.name() + "' cannot move a value from " +
                  machine.locName(srcLoc) + " to " + machine.locName(dest));
    const size_t routeIdx = selectRoute(routes, machine, busUse);

    AgId prev = srcAg;
    AgId last = kNoAg;
    for (int pathId : routes[routeIdx].pathIds) {
      const TransferPath& path =
          machine.transfers()[static_cast<size_t>(pathId)];
      busUse[path.bus] += 1;
      AgNode hop;
      hop.kind = AgKind::kTransfer;
      hop.ir = valueIr;
      hop.pathId = pathId;
      hop.valueSrc = prev;  // kNoAg for the first hop of a leaf load
      if (prev == kNoAg) {
        const DagNode& leafNode = ir.node(valueIr);
        if (leafNode.op == Op::kConst) {
          hop.memVar = "$c" + std::to_string(leafNode.value);
          g.constPool_[hop.memVar] = leafNode.value;
        } else {
          hop.memVar = leafNode.name;
        }
      }
      hop.defLoc = path.to;
      // A route hop landing in a memory needs a scratch cell (allocated
      // from the spill-slot arena) for the next hop to read back.
      if (path.to.isMemory()) hop.spillSlot = g.nextSpillSlot_++;
      last = g.append(std::move(hop));
      if (prev != kNoAg) g.addDep(prev, last);
      // Intermediate landings are reusable copies of the value (first
      // landing wins, matching the old map's emplace semantics).
      if (AgId& slot = availSlot(valueIr, path.to); slot == kNoAg) slot = last;
      prev = last;
    }
    return last;
  };

  // Operation nodes in IR order (operands precede consumers).
  for (NodeId irNode = 0; irNode < ir.size(); ++irNode) {
    const SndId altId = assignment.chosenAlt.empty()
                            ? kNoSnd
                            : assignment.chosenAlt[irNode];
    if (altId == kNoSnd) continue;
    const SndNode& alt = snd.node(altId);
    const Loc opLoc = machine.unitLoc(alt.unit);
    AgNode op;
    op.kind = AgKind::kOp;
    op.ir = irNode;
    op.unit = alt.unit;
    op.machineOp = alt.machineOp;
    op.unitOpIdx = alt.unitOpIdx;
    // Zero-copy: the spans keep aliasing the SND's pools until the winning
    // candidate detaches them.
    op.covers = alt.covers;
    op.operandIr = alt.operandIr;
    op.defLoc = opLoc;
    const AgId opId = g.append(std::move(op));
    opOf[irNode] = opId;
    if (AgId& slot = availSlot(irNode, opLoc); slot == kNoAg) slot = opId;

    // operandDefs is allocated at full size up front (entries for constant
    // immediates stay kNoAg), then filled as operands resolve. Keep local
    // copies of the spans: resolveValue appends nodes, invalidating
    // references into nodes_ (never the pooled storage they point at).
    const Span<const NodeId> operands = alt.operandIr;
    Span<AgId> defs = g.defPool_.appendFill(operands.size(), kNoAg);
    g.nodes_[opId].operandDefs = defs;
    for (size_t i = 0; i < operands.size(); ++i) {
      const NodeId operand = operands[i];
      if (ir.node(operand).op == Op::kConst && !options.constantsInMemory)
        continue;
      const AgId def = resolveValue(operand, opLoc);
      defs[i] = def;
      g.addDep(def, opId);
    }
  }

  // Output placement. Constant outputs are routed through a constant-pool
  // cell and a register (the pool machinery works per-value even when
  // constantsInMemory is off for operands).
  for (const auto& [name, outId] : ir.outputs()) {
    const DagNode& outNode = ir.node(outId);
    if (options.outputsToMemory) {
      if (outNode.op == Op::kInput && name == outNode.name) {
        // Already resident in data memory under exactly this name.
        g.outputDefs_.emplace_back(name, kNoAg);
        continue;
      }
      // Store the value back to data memory under the output's name. An
      // input-aliased output (y = x) is first loaded into a register (data
      // memory has no memory-to-memory move).
      AgId def = kNoAg;
      if (isLeafOp(outNode.op)) {
        for (size_t rf = 0; rf < machine.regFiles().size() && def == kNoAg;
             ++rf) {
          const Loc dest = Loc::regFile(static_cast<RegFileId>(rf));
          if (xferDb.reachable(machine.dataMemoryLoc(), dest) &&
              xferDb.reachable(dest, machine.dataMemoryLoc()))
            def = resolveValue(outId, dest);
        }
        if (def == kNoAg)
          throw Error("machine '" + machine.name() +
                      "' cannot round-trip a value through a register file");
      } else {
        def = opOf[outId];
      }
      AVIV_CHECK(def != kNoAg);
      const Loc srcLoc = g.nodes_[def].defLoc;
      const auto& routes = xferDb.routes(srcLoc, machine.dataMemoryLoc());
      if (routes.empty())
        throw Error("machine '" + machine.name() +
                    "' cannot store outputs to data memory from " +
                    machine.locName(srcLoc));
      const size_t routeIdx = selectRoute(routes, machine, busUse);
      AgId prev = def;
      for (int pathId : routes[routeIdx].pathIds) {
        const TransferPath& path =
            machine.transfers()[static_cast<size_t>(pathId)];
        busUse[path.bus] += 1;
        AgNode hop;
        hop.kind = AgKind::kTransfer;
        hop.ir = outId;
        hop.pathId = pathId;
        hop.valueSrc = prev;
        hop.defLoc = path.to;
        if (path.to.isMemory()) hop.memVar = name;
        const AgId hopId = g.append(std::move(hop));
        g.addDep(prev, hopId);
        prev = hopId;
      }
      g.outputDefs_.emplace_back(name, kNoAg);
      continue;
    }
    // Outputs stay in registers.
    if (isLeafOp(outNode.op)) {
      // Load the variable into some register file reachable from memory.
      AgId def = kNoAg;
      for (size_t rf = 0; rf < machine.regFiles().size() && def == kNoAg;
           ++rf) {
        const Loc dest = Loc::regFile(static_cast<RegFileId>(rf));
        if (xferDb.reachable(machine.dataMemoryLoc(), dest))
          def = resolveValue(outId, dest);
      }
      if (def == kNoAg)
        throw Error("machine '" + machine.name() +
                    "' has no register file reachable from data memory");
      g.outputDefs_.emplace_back(name, def);
      continue;
    }
    AVIV_CHECK(opOf[outId] != kNoAg);
    g.outputDefs_.emplace_back(name, opOf[outId]);
  }

  g.verify();
  return g;
}

// ---------------------------------------------------------------------
// Spill mutations (Section IV-D / Fig 9)
// ---------------------------------------------------------------------

AssignedGraph::SpillStoreResult AssignedGraph::addSpillStore(
    AgId victim, const TransferDatabase& xferDb) {
  AVIV_CHECK(victim < nodes_.size());
  AVIV_CHECK(nodes_[victim].definesRegister());
  const Loc srcLoc = nodes_[victim].defLoc;
  const Loc dm = machine_->dataMemoryLoc();
  const auto& routes = xferDb.routes(srcLoc, dm);
  if (routes.empty())
    throw Error("machine '" + machine_->name() +
                "' cannot spill: no route from " + machine_->locName(srcLoc) +
                " to data memory");

  SpillStoreResult result;
  result.slot = nextSpillSlot_++;
  AgId prev = victim;
  const auto& route = routes.front();
  for (size_t hop = 0; hop < route.pathIds.size(); ++hop) {
    const int pathId = route.pathIds[hop];
    const TransferPath& path =
        machine_->transfers()[static_cast<size_t>(pathId)];
    AgNode n;
    n.kind = hop + 1 == route.pathIds.size() ? AgKind::kSpillStore
                                             : AgKind::kTransfer;
    n.ir = nodes_[victim].ir;
    n.pathId = pathId;
    n.valueSrc = prev;
    n.defLoc = path.to;
    n.spillSlot = result.slot;
    const AgId id = append(std::move(n));
    addDep(prev, id);
    result.chain.push_back(id);
    prev = id;
  }
  AVIV_CHECK(nodes_[result.chain.back()].defLoc == dm);
  return result;
}

std::vector<AgId> AssignedGraph::addSpillLoad(int slot, Loc destBank,
                                              AgId afterStore, NodeId valueIr,
                                              const TransferDatabase& xferDb) {
  const Loc dm = machine_->dataMemoryLoc();
  const auto& routes = xferDb.routes(dm, destBank);
  if (routes.empty())
    throw Error("machine '" + machine_->name() +
                "' cannot reload a spill into " + machine_->locName(destBank));
  std::vector<AgId> chain;
  AgId prev = kNoAg;
  const auto& route = routes.front();
  for (size_t hop = 0; hop < route.pathIds.size(); ++hop) {
    const int pathId = route.pathIds[hop];
    const TransferPath& path =
        machine_->transfers()[static_cast<size_t>(pathId)];
    AgNode n;
    n.kind = hop == 0 ? AgKind::kSpillLoad : AgKind::kTransfer;
    n.ir = valueIr;
    n.pathId = pathId;
    n.valueSrc = prev;
    n.defLoc = path.to;
    n.spillSlot = hop == 0 ? slot : -1;
    const AgId id = append(std::move(n));
    if (hop == 0)
      addDep(afterStore, id);
    else
      addDep(prev, id);
    chain.push_back(id);
    prev = id;
  }
  AVIV_CHECK(nodes_[chain.back()].defLoc == destBank);
  return chain;
}

void AssignedGraph::retargetConsumer(AgId consumer, AgId oldDef, AgId newDef) {
  AVIV_CHECK(consumer < nodes_.size() && oldDef < nodes_.size() &&
             newDef < nodes_.size());
  AgNode& c = nodes_[consumer];
  bool changed = false;
  for (AgId& def : c.operandDefs) {
    if (def == oldDef) {
      def = newDef;
      changed = true;
    }
  }
  if (c.valueSrc == oldDef) {
    c.valueSrc = newDef;
    changed = true;
  }
  AVIV_CHECK_MSG(changed, "retargetConsumer: consumer does not read oldDef");
  // Unlink the old dependency, link the new one.
  auto& oldSuccs = nodes_[oldDef].succs;
  oldSuccs.erase(std::remove(oldSuccs.begin(), oldSuccs.end(), consumer),
                 oldSuccs.end());
  auto& preds = c.preds;
  preds.erase(std::remove(preds.begin(), preds.end(), oldDef), preds.end());
  addDep(newDef, consumer);
}

void AssignedGraph::deleteNode(AgId id) {
  AVIV_CHECK(id < nodes_.size());
  AgNode& n = nodes_[id];
  AVIV_CHECK_MSG(n.succs.empty(), "deleteNode with live successors: "
                                      << describe(id));
  for (AgId pred : n.preds) {
    auto& succs = nodes_[pred].succs;
    succs.erase(std::remove(succs.begin(), succs.end(), id), succs.end());
  }
  n.preds.clear();
  n.operandDefs = {};
  n.valueSrc = kNoAg;
  n.kind = AgKind::kDeleted;
}

AssignedGraph AssignedGraph::clone() const {
  AssignedGraph c;
  c.ir_ = ir_;
  c.machine_ = machine_;
  c.xferDb_ = xferDb_;
  c.nodes_ = nodes_;  // spans still alias the source pools here...
  c.outputDefs_ = outputDefs_;
  c.constPool_ = constPool_;
  c.nextSpillSlot_ = nextSpillSlot_;
  // ...so re-home every span into the clone's own pools.
  for (AgNode& n : c.nodes_) {
    if (!n.covers.empty()) n.covers = c.payloadPool_.append(n.covers);
    if (!n.operandIr.empty())
      n.operandIr = c.payloadPool_.append(n.operandIr);
    if (!n.operandDefs.empty())
      n.operandDefs = c.defPool_.append(Span<const AgId>(n.operandDefs));
  }
  return c;
}

void AssignedGraph::detachPayloads() {
  for (AgNode& n : nodes_) {
    if (!n.covers.empty()) n.covers = payloadPool_.append(n.covers);
    if (!n.operandIr.empty()) n.operandIr = payloadPool_.append(n.operandIr);
  }
}

// ---------------------------------------------------------------------
// Analyses
// ---------------------------------------------------------------------

namespace {

// Kahn topological order over active nodes, written into `order`. The order
// vector doubles as the FIFO (ids are consumed by advancing a head index),
// which visits nodes in exactly the same sequence as a deque-based queue
// without a second container.
void topoOrderInto(const std::vector<AgNode>& nodes,
                   std::vector<uint32_t>& pending,
                   std::vector<AgId>& order) {
  pending.assign(nodes.size(), 0);
  order.clear();
  order.reserve(nodes.size());
  for (AgId id = 0; id < nodes.size(); ++id) {
    if (nodes[id].deleted()) continue;
    pending[id] = static_cast<uint32_t>(nodes[id].preds.size());
    if (pending[id] == 0) order.push_back(id);
  }
  size_t head = 0;
  while (head < order.size()) {
    const AgId id = order[head++];
    for (AgId succ : nodes[id].succs) {
      if (--pending[succ] == 0) order.push_back(succ);
    }
  }
  size_t active = 0;
  for (const AgNode& n : nodes) active += n.deleted() ? 0 : 1;
  AVIV_CHECK_MSG(order.size() == active, "assigned graph has a cycle");
}

std::vector<AgId> topoOrder(const std::vector<AgNode>& nodes) {
  std::vector<uint32_t> pending;
  std::vector<AgId> order;
  topoOrderInto(nodes, pending, order);
  return order;
}

}  // namespace

std::vector<DynBitset> AssignedGraph::computeDescendants() const {
  std::vector<DynBitset> desc(nodes_.size(), DynBitset(nodes_.size()));
  const auto order = topoOrder(nodes_);
  for (size_t i = order.size(); i-- > 0;) {
    const AgId id = order[i];
    for (AgId succ : nodes_[id].succs) {
      desc[id].set(succ);
      desc[id] |= desc[succ];
    }
  }
  return desc;
}

std::vector<DynBitset>& AssignedGraph::computeDescendantsInto(
    CoverWorkspace& ws) const {
  const size_t n = nodes_.size();
  if (ws.desc.size() < n) ws.desc.resize(n);
  for (size_t i = 0; i < n; ++i) ws.desc[i].clearAndResize(n);
  topoOrderInto(nodes_, ws.topoPending, ws.topoOrder);
  for (size_t i = ws.topoOrder.size(); i-- > 0;) {
    const AgId id = ws.topoOrder[i];
    for (AgId succ : nodes_[id].succs) {
      ws.desc[id].set(succ);
      ws.desc[id] |= ws.desc[succ];
    }
  }
  return ws.desc;
}

std::vector<int> AssignedGraph::levelsFromTop() const {
  std::vector<int> level(nodes_.size(), 0);
  const auto order = topoOrder(nodes_);
  for (size_t i = order.size(); i-- > 0;) {
    const AgId id = order[i];
    int lvl = 0;
    for (AgId succ : nodes_[id].succs) lvl = std::max(lvl, level[succ] + 1);
    level[id] = lvl;
  }
  return level;
}

std::vector<int> AssignedGraph::levelsFromBottom() const {
  std::vector<int> level(nodes_.size(), 0);
  for (const AgId id : topoOrder(nodes_)) {
    int lvl = 0;
    for (AgId pred : nodes_[id].preds) lvl = std::max(lvl, level[pred] + 1);
    level[id] = lvl;
  }
  return level;
}

BusId AssignedGraph::busOf(AgId id) const {
  const AgNode& n = node(id);
  AVIV_CHECK(n.isTransferish());
  return machine_->transfers()[static_cast<size_t>(n.pathId)].bus;
}

std::string AssignedGraph::describe(AgId id) const {
  const AgNode& n = node(id);
  const std::string tag = "a" + std::to_string(id) + ":";
  switch (n.kind) {
    case AgKind::kOp:
      return tag + std::string(opName(n.machineOp)) + "@" +
             machine_->unit(n.unit).name + "(" + ir_->describe(n.ir) + ")";
    case AgKind::kTransfer:
    case AgKind::kSpillStore:
    case AgKind::kSpillLoad: {
      const TransferPath& p =
          machine_->transfers()[static_cast<size_t>(n.pathId)];
      std::string kind = n.kind == AgKind::kTransfer
                             ? "xfer"
                             : (n.kind == AgKind::kSpillStore ? "spill"
                                                              : "reload");
      return tag + kind + " " + machine_->locName(p.from) + "->" +
             machine_->locName(p.to);
    }
    case AgKind::kDeleted:
      return tag + "<deleted>";
  }
  return tag + "<?>";
}

void AssignedGraph::verify() const {
  for (AgId id = 0; id < nodes_.size(); ++id) {
    const AgNode& n = nodes_[id];
    if (n.deleted()) {
      AVIV_CHECK(n.preds.empty() && n.succs.empty());
      continue;
    }
    // Edge symmetry.
    for (AgId pred : n.preds) {
      AVIV_CHECK(!nodes_[pred].deleted());
      const auto& succs = nodes_[pred].succs;
      AVIV_CHECK(std::find(succs.begin(), succs.end(), id) != succs.end());
    }
    for (AgId succ : n.succs) {
      AVIV_CHECK(!nodes_[succ].deleted());
      const auto& preds = nodes_[succ].preds;
      AVIV_CHECK(std::find(preds.begin(), preds.end(), id) != preds.end());
    }
    if (n.kind == AgKind::kOp) {
      AVIV_CHECK(n.operandDefs.size() == n.operandIr.size());
      for (size_t i = 0; i < n.operandDefs.size(); ++i) {
        const AgId def = n.operandDefs[i];
        if (def == kNoAg) {
          AVIV_CHECK(ir_->node(n.operandIr[i]).op == Op::kConst);
          continue;
        }
        // The operand's value must be present in this op's register file.
        AVIV_CHECK_MSG(nodes_[def].defLoc == n.defLoc,
                       describe(id) << " operand " << i << " defined in "
                                    << machine_->locName(nodes_[def].defLoc));
        const auto& preds = n.preds;
        AVIV_CHECK(std::find(preds.begin(), preds.end(), def) != preds.end());
      }
    }
    if (n.isTransferish()) {
      const TransferPath& p =
          machine_->transfers()[static_cast<size_t>(n.pathId)];
      AVIV_CHECK(n.defLoc == p.to);
      if (n.valueSrc != kNoAg) {
        AVIV_CHECK_MSG(nodes_[n.valueSrc].defLoc == p.from,
                       describe(id) << " reads value from wrong storage");
      } else {
        AVIV_CHECK(p.from.isMemory());
      }
    }
  }
  (void)topoOrder(nodes_);  // asserts acyclicity
}

}  // namespace aviv
