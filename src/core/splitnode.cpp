#include "core/splitnode.h"

#include <algorithm>

#include "support/dot.h"
#include "support/error.h"

namespace aviv {

// ---------------------------------------------------------------------
// Complex-instruction pattern matching (Section III-B)
// ---------------------------------------------------------------------

std::vector<PatternMatch> matchComplexPatterns(const BlockDag& ir,
                                               const OpDatabase& ops) {
  std::vector<PatternMatch> matches;
  const auto users = ir.computeUsers();

  std::vector<bool> isOutput(ir.size(), false);
  for (const auto& [name, id] : ir.outputs()) isOutput[id] = true;

  // An interior node can be fused away only if the pattern root is its sole
  // consumer and its value is not observable (not an output).
  auto fusable = [&](NodeId interior, NodeId root) {
    return users[interior].size() == 1 && users[interior][0] == root &&
           !isOutput[interior];
  };

  for (NodeId id = 0; id < ir.size(); ++id) {
    const DagNode& n = ir.node(id);
    if (n.op == Op::kAdd && ops.isImplementable(Op::kMac)) {
      // MAC r = a*b + x: either operand may be the multiply.
      for (int mulSide = 0; mulSide < 2; ++mulSide) {
        const NodeId mul = n.operands[static_cast<size_t>(mulSide)];
        const NodeId other = n.operands[static_cast<size_t>(1 - mulSide)];
        if (ir.node(mul).op != Op::kMul || !fusable(mul, id)) continue;
        // add(m, m): the addend operand would be the covered multiply
        // itself, which no longer exists as a value once fused (users is
        // deduplicated, so fusable() alone does not catch the double use).
        if (other == mul) continue;
        PatternMatch m;
        m.machineOp = Op::kMac;
        m.root = id;
        m.covers = {id, mul};
        m.operands = {ir.node(mul).operands[0], ir.node(mul).operands[1],
                      other};
        matches.push_back(std::move(m));
      }
    }
    if (n.op == Op::kSub && ops.isImplementable(Op::kMsu)) {
      // MSU r = x - a*b: only the subtrahend may be the multiply.
      const NodeId mul = n.operands[1];
      const NodeId other = n.operands[0];
      // other != mul: sub(m, m) must not fuse — see the MAC case above.
      if (ir.node(mul).op == Op::kMul && fusable(mul, id) && other != mul) {
        PatternMatch m;
        m.machineOp = Op::kMsu;
        m.root = id;
        m.covers = {id, mul};
        m.operands = {ir.node(mul).operands[0], ir.node(mul).operands[1],
                      other};
        matches.push_back(std::move(m));
      }
    }
  }
  return matches;
}

// ---------------------------------------------------------------------
// SplitNodeDag
// ---------------------------------------------------------------------

SndId SplitNodeDag::append(SndNode node) {
  if (maxNodes_ != 0 && nodes_.size() >= maxNodes_)
    throw ResourceLimitExceeded("split-node count", nodes_.size() + 1,
                                maxNodes_);
  approxBytes_ += sizeof(SndNode) +
                  (node.covers.size() + node.operandIr.size()) *
                      sizeof(NodeId);
  if (maxBytes_ != 0 && approxBytes_ > maxBytes_)
    throw ResourceLimitExceeded("split-node arena bytes", approxBytes_,
                                maxBytes_);
  const auto id = static_cast<SndId>(nodes_.size());
  counts_[static_cast<size_t>(node.kind)]++;
  nodes_.push_back(std::move(node));
  return id;
}

namespace {

// An alternative whose distinct register-resident operands outnumber the
// unit's register file can never be scheduled (the operands cannot coexist
// in the bank), so it is dropped at build time.
bool altFitsRegisterFile(const BlockDag& ir, const Machine& machine,
                         UnitId unit, const std::vector<NodeId>& operandIr,
                         bool constantsInMemory) {
  std::vector<NodeId> distinct;
  for (NodeId operand : operandIr) {
    if (ir.node(operand).op == Op::kConst && !constantsInMemory)
      continue;  // inline immediate
    if (std::find(distinct.begin(), distinct.end(), operand) ==
        distinct.end())
      distinct.push_back(operand);
  }
  return static_cast<int>(distinct.size()) <=
         machine.regFile(machine.unit(unit).regFile).numRegs;
}

}  // namespace

SplitNodeDag SplitNodeDag::build(const BlockDag& ir, const Machine& machine,
                                 const MachineDatabases& dbs,
                                 const CodegenOptions& options) {
  SplitNodeDag snd;
  snd.ir_ = &ir;
  snd.machine_ = &machine;
  snd.dbs_ = &dbs;
  snd.maxNodes_ = options.maxSndNodes;
  snd.maxBytes_ = options.maxSndBytes;
  snd.leafOf_.assign(ir.size(), kNoSnd);
  snd.splitOf_.assign(ir.size(), kNoSnd);
  // Alternative lists are gathered per IR node here, then flattened into
  // altPool_ once every alternative exists (before the transfer phase,
  // which only reads them).
  std::vector<std::vector<SndId>> altsBuild(ir.size());

  // Leaves and split nodes + plain alternatives.
  for (NodeId id = 0; id < ir.size(); ++id) {
    const DagNode& n = ir.node(id);
    if (isLeafOp(n.op)) {
      SndNode leaf;
      leaf.kind = SndKind::kLeaf;
      leaf.ir = id;
      snd.leafOf_[id] = snd.append(std::move(leaf));
      continue;
    }
    SndNode split;
    split.kind = SndKind::kSplit;
    split.ir = id;
    snd.splitOf_[id] = snd.append(std::move(split));

    const auto& impls = dbs.ops.implsFor(n.op);
    if (impls.empty())
      throw Error("no functional unit of machine '" + machine.name() +
                  "' implements " + std::string(opName(n.op)) +
                  " (required by " + ir.describe(id) + " in block '" +
                  ir.name() + "')");
    for (const OpImpl& impl : impls) {
      if (!altFitsRegisterFile(ir, machine, impl.unit, n.operands,
                               options.constantsInMemory))
        continue;
      SndNode alt;
      alt.kind = SndKind::kAlt;
      alt.ir = id;
      alt.unit = impl.unit;
      alt.machineOp = n.op;
      alt.unitOpIdx = impl.opIndex;
      alt.covers = snd.idPool_.append({id});
      alt.operandIr = snd.idPool_.append(n.operands);
      altsBuild[id].push_back(snd.append(std::move(alt)));
    }
    if (altsBuild[id].empty())
      throw Error("machine '" + machine.name() + "': no register file large "
                  "enough to hold the operands of " + ir.describe(id) +
                  " in block '" + ir.name() + "'");
  }

  // Complex-instruction alternatives.
  if (options.enableComplexPatterns) {
    for (const PatternMatch& match : matchComplexPatterns(ir, dbs.ops)) {
      for (const OpImpl& impl : dbs.ops.implsFor(match.machineOp)) {
        if (!altFitsRegisterFile(ir, machine, impl.unit, match.operands,
                                 options.constantsInMemory))
          continue;
        SndNode alt;
        alt.kind = SndKind::kAlt;
        alt.ir = match.root;
        alt.unit = impl.unit;
        alt.machineOp = match.machineOp;
        alt.unitOpIdx = impl.opIndex;
        alt.covers = snd.idPool_.append(match.covers);
        alt.operandIr = snd.idPool_.append(match.operands);
        altsBuild[match.root].push_back(snd.append(std::move(alt)));
      }
    }
  }

  // Flatten the alternative lists: every alternative exists now, and the
  // remaining phases only read them.
  snd.altsOf_.reserve(ir.size());
  for (NodeId id = 0; id < ir.size(); ++id)
    snd.altsOf_.push_back(snd.altPool_.append(altsBuild[id]));

  // Transfer chains: for every consumer alternative and every operand
  // producer alternative/leaf, one chain per minimal route between their
  // storages.
  const Loc dataMem = machine.dataMemoryLoc();
  const size_t numAltsTotal = snd.nodes_.size();
  for (SndId consumer = 0; consumer < numAltsTotal; ++consumer) {
    if (snd.nodes_[consumer].kind != SndKind::kAlt) continue;
    const Loc consLoc = machine.unitLoc(snd.nodes_[consumer].unit);
    // Copy the span by value: appending transfer nodes below grows nodes_,
    // which would invalidate a reference into it (the pooled ids it points
    // at are stable).
    const Span<const NodeId> consOperands = snd.nodes_[consumer].operandIr;
    for (const NodeId operand : consOperands) {
      const DagNode& opNode = ir.node(operand);
      if (opNode.op == Op::kConst && !options.constantsInMemory)
        continue;  // inline immediate

      SndId leafProducer[1];
      Span<const SndId> producers;
      if (isLeafOp(opNode.op)) {
        leafProducer[0] = snd.leafOf_[operand];
        producers = Span<const SndId>(leafProducer, 1);
      } else {
        producers = snd.altsOf_[operand];
      }
      for (const SndId producer : producers) {
        const Loc prodLoc = snd.producerLoc(producer);
        if (prodLoc == consLoc) continue;
        const auto key = std::make_pair(producer, consumer);
        if (snd.chains_.count(key)) continue;  // operand repeated
        if (!dbs.transfers.reachable(prodLoc, consLoc))
          throw Error("machine '" + machine.name() + "' has no route from " +
                      machine.locName(prodLoc) + " to " +
                      machine.locName(consLoc) + " (needed to feed " +
                      snd.describe(consumer) + ")");
        std::vector<TransferChain> chainList;
        const auto& routes = dbs.transfers.routes(prodLoc, consLoc);
        for (size_t r = 0; r < routes.size(); ++r) {
          TransferChain chain;
          chain.routeIdx = static_cast<int>(r);
          for (size_t hop = 0; hop < routes[r].pathIds.size(); ++hop) {
            SndNode xfer;
            xfer.kind = SndKind::kTransfer;
            xfer.ir = operand;
            xfer.pathId = routes[r].pathIds[hop];
            xfer.producer = producer;
            xfer.consumer = consumer;
            xfer.routeIdx = static_cast<int>(r);
            xfer.hopIdx = static_cast<int>(hop);
            chain.hops.push_back(snd.append(std::move(xfer)));
          }
          chainList.push_back(std::move(chain));
        }
        snd.chains_[key] = std::move(chainList);
      }
    }
  }
  (void)dataMem;
  snd.verify();
  return snd;
}

const SndNode& SplitNodeDag::node(SndId id) const {
  AVIV_CHECK(id < nodes_.size());
  return nodes_[id];
}

SndId SplitNodeDag::leafOf(NodeId irNode) const {
  AVIV_CHECK(irNode < leafOf_.size());
  return leafOf_[irNode];
}

SndId SplitNodeDag::splitOf(NodeId irNode) const {
  AVIV_CHECK(irNode < splitOf_.size());
  return splitOf_[irNode];
}

Span<const SndId> SplitNodeDag::altsOf(NodeId irNode) const {
  AVIV_CHECK(irNode < altsOf_.size());
  return altsOf_[irNode];
}

const std::vector<TransferChain>& SplitNodeDag::chains(SndId producer,
                                                       SndId consumer) const {
  static const std::vector<TransferChain> kEmpty;
  const auto it = chains_.find(std::make_pair(producer, consumer));
  return it == chains_.end() ? kEmpty : it->second;
}

Loc SplitNodeDag::producerLoc(SndId id) const {
  const SndNode& n = node(id);
  switch (n.kind) {
    case SndKind::kLeaf:
      // Named inputs always live in data memory; constants do too when the
      // constant pool is enabled (the only case this is queried for them).
      return machine_->dataMemoryLoc();
    case SndKind::kAlt:
      return machine_->unitLoc(n.unit);
    case SndKind::kTransfer:
      return machine_->transfers()[static_cast<size_t>(n.pathId)].to;
    case SndKind::kSplit:
      break;
  }
  AVIV_UNREACHABLE("producerLoc of split node");
}

std::string SplitNodeDag::describe(SndId id) const {
  const SndNode& n = node(id);
  switch (n.kind) {
    case SndKind::kLeaf:
      return "leaf(" + ir_->describe(n.ir) + ")";
    case SndKind::kSplit:
      return "split(" + ir_->describe(n.ir) + ")";
    case SndKind::kAlt: {
      std::string s = std::string(opName(n.machineOp)) + "@" +
                      machine_->unit(n.unit).name;
      if (n.covers.size() > 1) {
        s += "[covers";
        for (NodeId c : n.covers) s += " n" + std::to_string(c);
        s += "]";
      }
      return s;
    }
    case SndKind::kTransfer: {
      const TransferPath& p =
          machine_->transfers()[static_cast<size_t>(n.pathId)];
      return "xfer " + machine_->locName(p.from) + "->" +
             machine_->locName(p.to) + " (n" + std::to_string(n.ir) + ")";
    }
  }
  return "<snd>";
}

std::string SplitNodeDag::dot() const {
  DotWriter dw("snd_" + ir_->name());
  dw.addRaw("rankdir=BT;");
  auto name = [](SndId id) { return "s" + std::to_string(id); };
  for (SndId id = 0; id < nodes_.size(); ++id) {
    const SndNode& n = nodes_[id];
    std::string attrs;
    switch (n.kind) {
      case SndKind::kLeaf:
        attrs = "shape=plaintext, label=\"" +
                DotWriter::escape(ir_->node(n.ir).name) + "\"";
        break;
      case SndKind::kSplit:
        attrs = "shape=diamond, label=\"" +
                DotWriter::escape(std::string(opName(ir_->node(n.ir).op))) +
                "\"";
        break;
      case SndKind::kAlt:
        attrs = "shape=ellipse, label=\"" + DotWriter::escape(describe(id)) +
                "\"";
        break;
      case SndKind::kTransfer:
        attrs = "shape=box, style=dashed, label=\"T\"";
        break;
    }
    dw.addNode(name(id), attrs);
  }
  // Split -> alternatives.
  for (NodeId irNode = 0; irNode < ir_->size(); ++irNode) {
    for (SndId alt : altsOf_[irNode]) dw.addEdge(name(alt), name(splitOf_[irNode]));
  }
  // Producer -> (chain ->) consumer edges.
  for (const auto& [key, chainList] : chains_) {
    const auto [producer, consumer] = key;
    for (const TransferChain& chain : chainList) {
      SndId prev = producer;
      for (SndId hop : chain.hops) {
        dw.addEdge(name(prev), name(hop), "style=dashed");
        prev = hop;
      }
      dw.addEdge(name(prev), name(consumer), "style=dashed");
    }
  }
  // Direct same-storage operand edges (producer feeds consumer without
  // transfer): drawn through the operand's split node for readability.
  for (SndId consumer = 0; consumer < nodes_.size(); ++consumer) {
    if (nodes_[consumer].kind != SndKind::kAlt) continue;
    for (NodeId operand : nodes_[consumer].operandIr) {
      if (isLeafOp(ir_->node(operand).op)) continue;
      dw.addEdge(name(splitOf_[operand]), name(consumer));
    }
  }
  return dw.str();
}

void SplitNodeDag::verify() const {
  for (NodeId irNode = 0; irNode < ir_->size(); ++irNode) {
    const bool leaf = isLeafOp(ir_->node(irNode).op);
    AVIV_CHECK((leafOf_[irNode] != kNoSnd) == leaf);
    AVIV_CHECK((splitOf_[irNode] != kNoSnd) == !leaf);
    // Every split node has at least one alternative.
    if (!leaf) AVIV_CHECK_MSG(!altsOf_[irNode].empty(),
                              "no alternative for " << ir_->describe(irNode));
    for (SndId alt : altsOf_[irNode]) {
      const SndNode& a = node(alt);
      AVIV_CHECK(a.kind == SndKind::kAlt);
      AVIV_CHECK(!a.covers.empty() && a.covers[0] == irNode);
      AVIV_CHECK(static_cast<int>(a.operandIr.size()) ==
                 opArity(a.machineOp));
      // The unit really implements the op.
      const FunctionalUnit& unit = machine_->unit(a.unit);
      AVIV_CHECK(static_cast<size_t>(a.unitOpIdx) < unit.ops.size());
      AVIV_CHECK(unit.ops[static_cast<size_t>(a.unitOpIdx)].op ==
                 a.machineOp);
    }
  }
  // Transfer chains hop continuously from producer storage to consumer
  // storage.
  for (const auto& [key, chainList] : chains_) {
    const auto [producer, consumer] = key;
    const Loc from = producerLoc(producer);
    const Loc to = machine_->unitLoc(node(consumer).unit);
    for (const TransferChain& chain : chainList) {
      AVIV_CHECK(!chain.hops.empty());
      Loc cur = from;
      for (SndId hop : chain.hops) {
        const TransferPath& p =
            machine_->transfers()[static_cast<size_t>(node(hop).pathId)];
        AVIV_CHECK(p.from == cur);
        cur = p.to;
      }
      AVIV_CHECK(cur == to);
    }
  }
}

}  // namespace aviv
