// Knobs for the AVIV covering flow. Defaults match the paper's
// "heuristics on" configuration; the Table I/II benches flip them to
// reproduce the parenthesized heuristics-off columns, and the ablation bench
// sweeps them.
#pragma once

#include <cstddef>

namespace aviv {

struct CodegenOptions {
  // --- Section IV-A: split-node functional-unit assignment exploration ---
  // Keep only minimum-incremental-cost alternatives at each split node
  // (the paper's pruning, Fig 6). When false every alternative is explored.
  bool assignPruneIncremental = true;
  // Slack added to the minimum incremental cost when pruning: alternatives
  // with cost <= min + slack survive. 0 is the paper's strict pruning;
  // small positive values trade exploration time for occasionally better
  // assignments (see the ablation bench).
  double assignPruneSlack = 0.0;
  // Cap on concurrently-kept partial assignments (branch-and-bound beam).
  // <= 0 disables the cap.
  int assignBeamWidth = 32;
  // How many of the lowest-cost complete assignments are explored in detail
  // ("select several lowest cost assignments").
  int assignKeepBest = 4;
  // Hard safety cap on complete assignments enumerated in heuristics-off
  // mode (the count grows multiplicatively, Section IV-A).
  size_t maxAssignments = 2'000'000;
  // When the total number of possible assignments (product of per-node
  // alternative counts) is at most this, skip the pruning and enumerate
  // them all — the pruning exists to curb multiplicative growth, and
  // covering a few hundred assignments is cheaper than mispruning. 0
  // disables the shortcut (strict paper behavior).
  size_t smallSpaceExhaustive = 512;
  // Cost weight for one required data transfer (paper uses 1).
  double transferCostWeight = 1.0;
  // Cost weight for one precluded parallel-execution pair (paper uses 1).
  double parallelismCostWeight = 1.0;
  // Bonus per extra IR node covered by a complex instruction alternative.
  double complexCoverBonus = 1.0;
  // Paper Section VI "ongoing work" extension: penalize assignments likely
  // to exceed register resources already during assignment exploration.
  bool registerAwareAssignment = false;
  double registerPressurePenalty = 2.0;

  // --- Section III-B: complex instruction pattern matching ---
  bool enableComplexPatterns = true;

  // --- Section IV-C: maximal clique generation ---
  // Level-window heuristic (IV-C.2): only merge nodes whose levels from top
  // AND bottom differ by at most this much. < 0 disables the heuristic.
  int cliqueLevelWindow = -1;
  // Safety cap on generated cliques per covering round.
  size_t maxCliquesPerRound = 250'000;

  // --- Section IV-D: covering ---
  // Lookahead tie-break among equally-covering cliques.
  bool coverLookahead = true;

  // Wall-clock budget for the whole covering flow (0 = unlimited), backed
  // by the session Deadline (support/deadline.h) and polled inside
  // assignment exploration, every covering round, and the candidate loop.
  // Anytime semantics: when the budget runs out after at least one
  // candidate covering completed, the best solution found so far is
  // returned and stats.timedOut flags the quality loss; when it runs out
  // before any covering completed, DeadlineExceeded is thrown and the
  // driver degrades to the sequential baseline (CompiledBlock::degraded).
  double timeLimitSeconds = 0.0;

  // Materialize constants through a data-memory constant pool instead of
  // inline immediates: each distinct constant gets a pool cell and uses are
  // bus loads, like named variables. Required when immediates exceed the
  // binary encoding's field width, and models DSPs without immediate
  // operands.
  bool constantsInMemory = false;

  // --- pipeline-session parallelism ---
  // Total worker threads for the embarrassingly-parallel stages: covering
  // the selected candidate assignments inside coverBlock, and compiling
  // independent blocks inside compileProgram. Results are bit-identical to
  // jobs = 1: the candidate winner is reduced with a deterministic
  // (instructions, spills, candidate index) tie-break and per-block symbol
  // scopes are merged in block order. 1 = fully serial.
  int jobs = 1;

  // --- robustness: resource ceilings ---
  // Guard rails against pathological or hostile inputs (adversarially deep
  // DAGs, dense parallelism graphs): exceeding one throws a recoverable
  // ResourceLimitExceeded (support/error.h) that the driver routes into
  // the baseline-fallback path with the ceilings lifted. 0 = unlimited.
  // Hard cap on split-node DAG nodes (leaves + splits + alternatives +
  // transfer hops) built for one block.
  size_t maxSndNodes = 1'000'000;
  // Approximate cap on bytes held by the split-node arena (node structs
  // plus their covers/operand payloads).
  size_t maxSndBytes = 512ull << 20;
  // Hard cap on cliques generated across all rounds of one covering (the
  // per-round maxCliquesPerRound cap truncates softly; this one stops a
  // covering whose rounds keep regenerating huge clique sets).
  size_t maxTotalCliques = 5'000'000;

  // --- output placement ---
  // Store block outputs back to data memory (required for multi-block
  // programs whose successor blocks reload them); when false outputs stay
  // in registers and the CodeImage records their final location.
  bool outputsToMemory = false;

  // Enumerates every field that can change the compiled output, as
  // (name, value) pairs, for the service layer's canonical fingerprint
  // (src/service/fingerprint.*). The field name anchors each value, so
  // reordering or adding fields changes the fingerprint predictably.
  // Deliberately omitted:
  //   * `jobs` — parallel covering/compilation is bit-identical to serial,
  //     so a cache populated at any worker count replays at any other.
  // New covering-relevant fields MUST be added here; the fingerprint test
  // cross-checks that mutating each listed field changes the hash.
  template <class Sink>
  void forEachFingerprintField(Sink&& sink) const {
    sink("assignPruneIncremental", assignPruneIncremental);
    sink("assignPruneSlack", assignPruneSlack);
    sink("assignBeamWidth", assignBeamWidth);
    sink("assignKeepBest", assignKeepBest);
    sink("maxAssignments", maxAssignments);
    sink("smallSpaceExhaustive", smallSpaceExhaustive);
    sink("transferCostWeight", transferCostWeight);
    sink("parallelismCostWeight", parallelismCostWeight);
    sink("complexCoverBonus", complexCoverBonus);
    sink("registerAwareAssignment", registerAwareAssignment);
    sink("registerPressurePenalty", registerPressurePenalty);
    sink("enableComplexPatterns", enableComplexPatterns);
    sink("cliqueLevelWindow", cliqueLevelWindow);
    sink("maxCliquesPerRound", maxCliquesPerRound);
    sink("coverLookahead", coverLookahead);
    sink("timeLimitSeconds", timeLimitSeconds);
    sink("constantsInMemory", constantsInMemory);
    sink("maxSndNodes", maxSndNodes);
    sink("maxSndBytes", maxSndBytes);
    sink("maxTotalCliques", maxTotalCliques);
    sink("outputsToMemory", outputsToMemory);
  }

  // Convenience: the paper's "heuristics turned off" configuration
  // (exhaustive assignment enumeration, no level window). Note this is
  // still not an exact algorithm — the covering schedule search remains
  // greedy, exactly as the paper states.
  [[nodiscard]] static CodegenOptions heuristicsOff() {
    CodegenOptions opts;
    opts.assignPruneIncremental = false;
    opts.assignBeamWidth = 0;
    opts.assignKeepBest = 1 << 30;
    opts.cliqueLevelWindow = -1;
    return opts;
  }

  // The paper's default heuristic configuration with the clique
  // level-window reduction enabled.
  [[nodiscard]] static CodegenOptions heuristicsOn() {
    CodegenOptions opts;
    opts.cliqueLevelWindow = 2;
    return opts;
  }
};

}  // namespace aviv
