#include "asmgen/encode.h"

#include "support/error.h"

namespace aviv {

int SymbolTable::intern(const std::string& name) {
  const auto it = addrOf_.find(name);
  if (it != addrOf_.end()) return it->second;
  const int addr = next_++;
  addrOf_[name] = addr;
  return addr;
}

int SymbolTable::lookup(const std::string& name) const {
  const auto it = addrOf_.find(name);
  if (it == addrOf_.end())
    throw Error("no data-memory address assigned to variable '" + name + "'");
  return it->second;
}

int SymbolScope::intern(const std::string& name) {
  if (table_ != nullptr) return table_->intern(name);
  const auto it = ordinalOf_.find(name);
  if (it != ordinalOf_.end()) return provisionalAddr(it->second);
  const int ordinal = static_cast<int>(names_.size());
  ordinalOf_[name] = ordinal;
  names_.push_back(name);
  return provisionalAddr(ordinal);
}

void resolveSymbols(CodeImage& image, const SymbolScope& scope,
                    SymbolTable& table) {
  if (!scope.deferred()) return;
  std::vector<int> finalAddr;
  finalAddr.reserve(scope.recorded().size());
  for (const std::string& name : scope.recorded())
    finalAddr.push_back(table.intern(name));
  auto fix = [&](int& addr) {
    if (SymbolScope::isProvisional(addr))
      addr = finalAddr[static_cast<size_t>(SymbolScope::ordinalOf(addr))];
  };
  for (auto& cell : image.constPool) fix(cell.first);
  for (EncInstr& instr : image.instrs)
    for (EncXfer& xfer : instr.xfers) fix(xfer.memAddr);
  for (OutputBinding& binding : image.outputs) fix(binding.memAddr);
}

void rebindSymbols(CodeImage& image, const std::vector<std::string>& names,
                   SymbolScope& scope) {
  std::vector<int> newAddr;
  newAddr.reserve(names.size());
  for (const std::string& name : names) newAddr.push_back(scope.intern(name));
  auto fix = [&](int& addr) {
    if (!SymbolScope::isProvisional(addr)) return;
    const int ordinal = SymbolScope::ordinalOf(addr);
    AVIV_CHECK_MSG(ordinal >= 0 &&
                       static_cast<size_t>(ordinal) < newAddr.size(),
                   "cached image references symbol ordinal "
                       << ordinal << " outside its " << newAddr.size()
                       << " recorded names");
    addr = newAddr[static_cast<size_t>(ordinal)];
  };
  for (auto& cell : image.constPool) fix(cell.first);
  for (EncInstr& instr : image.instrs)
    for (EncXfer& xfer : instr.xfers) fix(xfer.memAddr);
  for (OutputBinding& binding : image.outputs) fix(binding.memAddr);
}

CodeImage encodeBlock(const AssignedGraph& graph, const Schedule& schedule,
                      const RegAssignment& regs, SymbolTable& symbols) {
  SymbolScope scope(symbols);
  return encodeBlock(graph, schedule, regs, scope);
}

CodeImage encodeBlock(const AssignedGraph& graph, const Schedule& schedule,
                      const RegAssignment& regs, SymbolScope& symbols) {
  const Machine& machine = graph.machine();
  const BlockDag& ir = graph.ir();

  CodeImage image;
  image.blockName = ir.name();
  image.machineName = machine.name();
  image.numSpillSlots = graph.numSpillSlots();
  const int memWords = machine.memory(machine.dataMemory()).sizeWords;
  image.spillBase = memWords - image.numSpillSlots;

  // Intern every input variable up front so addresses are stable, then the
  // constant-pool cells this block references.
  for (const std::string& input : ir.inputNames()) symbols.intern(input);
  for (const auto& [cell, value] : graph.constPool())
    image.constPool.emplace_back(symbols.intern(cell), value);

  auto regOf = [&](AgId id) {
    const int reg = regs.regOf[id];
    AVIV_CHECK_MSG(reg >= 0, "no register for " << graph.describe(id));
    return reg;
  };

  for (const auto& instrNodes : schedule.instrs) {
    EncInstr instr;
    for (const AgId id : instrNodes) {
      const AgNode& n = graph.node(id);
      if (n.kind == AgKind::kOp) {
        EncOp op;
        op.unit = n.unit;
        op.op = n.machineOp;
        op.mnemonic = machine.unit(n.unit)
                          .ops[static_cast<size_t>(n.unitOpIdx)]
                          .mnemonic;
        op.dstReg = regOf(id);
        for (size_t i = 0; i < n.operandDefs.size(); ++i) {
          EncOperand src;
          if (n.operandDefs[i] == kNoAg) {
            src.isImm = true;
            src.imm = ir.node(n.operandIr[i]).value;
          } else {
            src.reg = regOf(n.operandDefs[i]);
          }
          op.srcs.push_back(src);
        }
        instr.ops.push_back(std::move(op));
        continue;
      }
      AVIV_CHECK(n.isTransferish());
      const TransferPath& path =
          machine.transfers()[static_cast<size_t>(n.pathId)];
      EncXfer xfer;
      xfer.bus = path.bus;
      xfer.from = path.from;
      xfer.to = path.to;
      if (path.from.isRegFile()) {
        AVIV_CHECK(n.valueSrc != kNoAg);
        xfer.srcReg = regOf(n.valueSrc);
      } else if (n.valueSrc != kNoAg &&
                 graph.node(n.valueSrc).spillSlot >= 0) {
        // Reading a scratch cell a previous route hop parked the value in.
        const int slot = graph.node(n.valueSrc).spillSlot;
        xfer.memAddr = image.spillBase + slot;
        xfer.comment = "scratch" + std::to_string(slot);
      } else {
        // Reading data memory: named variable or spill slot.
        if (n.kind == AgKind::kSpillLoad) {
          AVIV_CHECK(n.spillSlot >= 0);
          xfer.memAddr = image.spillBase + n.spillSlot;
          xfer.comment = "spill" + std::to_string(n.spillSlot);
        } else {
          AVIV_CHECK(!n.memVar.empty());
          xfer.memAddr = symbols.intern(n.memVar);
          xfer.comment = n.memVar;
        }
      }
      if (path.to.isRegFile()) {
        xfer.dstReg = regOf(id);
      } else {
        if (n.spillSlot >= 0) {
          xfer.memAddr = image.spillBase + n.spillSlot;
          xfer.comment = "spill" + std::to_string(n.spillSlot);
        } else {
          AVIV_CHECK(!n.memVar.empty());
          xfer.memAddr = symbols.intern(n.memVar);
          xfer.comment = n.memVar;
        }
      }
      instr.xfers.push_back(std::move(xfer));
    }
    image.instrs.push_back(std::move(instr));
  }

  // Output bindings.
  for (const auto& [name, def] : graph.outputDefs()) {
    OutputBinding binding;
    binding.name = name;
    if (def == kNoAg) {
      binding.inMemory = true;
      // Output stored under its own name; for input-aliased outputs the
      // value sits under the input variable's cell.
      const NodeId outIr = [&] {
        for (const auto& [n, id] : ir.outputs())
          if (n == name) return id;
        AVIV_UNREACHABLE("output binding without IR output");
      }();
      const DagNode& outNode = ir.node(outIr);
      binding.memAddr = outNode.op == Op::kInput ? symbols.intern(outNode.name)
                                                 : symbols.intern(name);
    } else {
      binding.loc = graph.node(def).defLoc;
      binding.reg = regOf(def);
    }
    image.outputs.push_back(std::move(binding));
  }

  // Deferred scopes cannot know the merged table size yet; the driver
  // re-checks after resolveSymbols.
  if (!symbols.deferred() && symbols.sizeWords() > image.spillBase)
    throw Error("data memory of machine '" + machine.name() +
                "' too small: " + std::to_string(symbols.sizeWords()) +
                " variable words overlap " +
                std::to_string(image.numSpillSlots) + " spill slots");
  return image;
}

}  // namespace aviv
