// Binary instruction encoding — the paper's Fig 1 assembler leg: "the
// automatically generated assembler transforms the code produced by the
// compiler to a binary file that is used as input to an instruction-level
// simulator".
//
// The instruction word format is derived from the machine description, the
// way ISDL's format section would drive an assembler generator:
//
//   word := [unit slot]*  [bus slot]*      (fixed layout, LSB first)
//   unit slot := present(1) opcode(ceil lg #ops) dst(ceil lg regs)
//                { isImm(1) src(max(ceil lg regs, kImmBits)) } per operand
//   bus slot  := present(1) srcLoc(ceil lg #locs) srcIdx(addr/reg bits)
//                dstLoc(...) dstIdx(...)
//
// Operand counts per unit slot are sized for the unit's widest op.
// Immediates are kImmBits-bit signed; larger constants must go through the
// constant pool (CodegenOptions::constantsInMemory). A bus with capacity c
// contributes c slots.
//
// BinaryImage also carries the loader metadata (symbol addresses, output
// bindings, spill area) a real object file would hold; serialize/parse give
// a stable on-disk format and decode() reconstructs a CodeImage that must
// round-trip bit-exactly (tested) and simulate identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asmgen/code_image.h"
#include "isdl/machine.h"

namespace aviv {

inline constexpr int kImmBits = 16;

// Bit-level layout computed from a machine.
class BinaryFormat {
 public:
  explicit BinaryFormat(const Machine& machine);

  [[nodiscard]] int bitsPerInstruction() const { return bitsPerInstr_; }
  [[nodiscard]] int wordsPerInstruction() const {
    return (bitsPerInstr_ + 63) / 64;
  }
  // Human-readable field map (for documentation / debugging).
  [[nodiscard]] std::string describe() const;

  // --- layout queries used by encoder/decoder -------------------------
  struct UnitSlot {
    int offset = 0;       // bit offset of the present flag
    int opcodeBits = 0;
    int dstBits = 0;
    int operandCount = 0;
    int srcFieldBits = 0;  // per operand, excluding the isImm flag
    int totalBits = 0;
  };
  struct BusSlot {
    int offset = 0;
    int locBits = 0;
    int idxBits = 0;  // max(reg bits, memory address bits)
    int totalBits = 0;
  };
  [[nodiscard]] const UnitSlot& unitSlot(UnitId unit) const {
    return unitSlots_[unit];
  }
  // Slot `k` of bus `bus` (k < capacity).
  [[nodiscard]] const BusSlot& busSlot(BusId bus, int k) const;
  [[nodiscard]] int busSlotCount(BusId bus) const;

  [[nodiscard]] const Machine& machine() const { return *machine_; }

 private:
  const Machine* machine_;
  std::vector<UnitSlot> unitSlots_;
  std::vector<std::vector<BusSlot>> busSlots_;  // per bus, per capacity slot
  int bitsPerInstr_ = 0;
};

struct BinaryImage {
  std::string blockName;
  std::string machineName;
  int bitsPerInstruction = 0;
  std::vector<uint64_t> code;  // wordsPerInstruction() per instruction
  int numInstructions = 0;

  // Loader metadata.
  std::vector<std::pair<std::string, int>> symbols;  // name -> DM address
  std::vector<OutputBinding> outputs;
  int spillBase = 0;
  int numSpillSlots = 0;
  std::vector<std::pair<int, int64_t>> constPool;

  // ROM footprint in bytes (the paper's optimization target).
  [[nodiscard]] size_t romBytes() const {
    return static_cast<size_t>(numInstructions) *
           static_cast<size_t>((bitsPerInstruction + 7) / 8);
  }
};

// Encodes a CodeImage. Throws aviv::Error if an immediate exceeds kImmBits
// signed range (route large constants through the constant pool).
[[nodiscard]] BinaryImage assembleBinary(const CodeImage& image,
                                         const Machine& machine,
                                         const SymbolTable& symbols);

// Reconstructs a CodeImage (including mnemonics) from a binary. The result
// must be semantically identical to the original; asmText round-trips.
[[nodiscard]] CodeImage disassembleBinary(const BinaryImage& binary,
                                          const Machine& machine);

// Stable textual serialization of a BinaryImage ("object file") and its
// inverse. Throws aviv::Error on malformed input.
[[nodiscard]] std::string serializeBinary(const BinaryImage& binary);
[[nodiscard]] BinaryImage parseBinary(const std::string& text);

}  // namespace aviv
