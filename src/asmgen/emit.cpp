#include "asmgen/code_image.h"

#include "support/error.h"

namespace aviv {

namespace {

std::string regName(const Machine& machine, Loc loc, int reg) {
  AVIV_CHECK(loc.isRegFile());
  return machine.regFile(loc.index).name + ".r" + std::to_string(reg);
}

std::string memRef(const Machine& machine, Loc loc, int addr,
                   const std::string& comment) {
  AVIV_CHECK(loc.isMemory());
  std::string s =
      machine.memory(loc.index).name + "[" + std::to_string(addr) + "]";
  if (!comment.empty()) s += "{" + comment + "}";
  return s;
}

}  // namespace

std::string CodeImage::asmText(const Machine& machine) const {
  std::string out = "; block " + blockName + " on " + machineName + " — " +
                    std::to_string(instrs.size()) + " instructions\n";
  for (size_t c = 0; c < instrs.size(); ++c) {
    const EncInstr& instr = instrs[c];
    std::string line = "i" + std::to_string(c) + ": {";
    bool first = true;
    for (const EncOp& op : instr.ops) {
      if (!first) line += " |";
      first = false;
      line += " " + machine.unit(op.unit).name + ": " + op.mnemonic + " " +
              regName(machine, machine.unitLoc(op.unit), op.dstReg);
      for (const EncOperand& src : op.srcs) {
        line += ", ";
        line += src.isImm ? "#" + std::to_string(src.imm)
                          : regName(machine, machine.unitLoc(op.unit), src.reg);
      }
    }
    for (const EncXfer& xfer : instr.xfers) {
      if (!first) line += " |";
      first = false;
      line += " " + machine.bus(xfer.bus).name + ": mov ";
      line += xfer.to.isRegFile()
                  ? regName(machine, xfer.to, xfer.dstReg)
                  : memRef(machine, xfer.to, xfer.memAddr, xfer.comment);
      line += ", ";
      line += xfer.from.isRegFile()
                  ? regName(machine, xfer.from, xfer.srcReg)
                  : memRef(machine, xfer.from, xfer.memAddr, xfer.comment);
    }
    line += " }";
    out += line + "\n";
  }
  for (const OutputBinding& binding : outputs) {
    out += "; output " + binding.name + " in ";
    out += binding.inMemory
               ? memRef(machine, Loc::memory(machine.dataMemory()),
                        binding.memAddr, "")
               : regName(machine, binding.loc, binding.reg);
    out += "\n";
  }
  return out;
}

}  // namespace aviv
