#include "asmgen/binary.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/error.h"

namespace aviv {

namespace {

// Bits needed to represent values 0..n-1 (at least 1).
int ceilLog2(int n) {
  int bits = 1;
  while ((1 << bits) < n) ++bits;
  return bits;
}

size_t locIndexOf(const Machine& machine, Loc loc) {
  return loc.isRegFile() ? loc.index
                         : machine.regFiles().size() + loc.index;
}

Loc locOf(const Machine& machine, size_t idx) {
  if (idx < machine.regFiles().size())
    return Loc::regFile(static_cast<RegFileId>(idx));
  const size_t mem = idx - machine.regFiles().size();
  AVIV_CHECK(mem < machine.memories().size());
  return Loc::memory(static_cast<MemoryId>(mem));
}

class BitWriter {
 public:
  void write(uint64_t value, int bits) {
    AVIV_CHECK(bits > 0 && bits <= 64);
    for (int i = 0; i < bits; ++i) {
      const size_t word = pos_ / 64;
      if (word >= words_.size()) words_.push_back(0);
      if ((value >> i) & 1) words_[word] |= uint64_t{1} << (pos_ % 64);
      ++pos_;
    }
  }
  void padTo(size_t bits) {
    AVIV_CHECK(pos_ <= bits);
    while (pos_ < bits) write(0, 1);
  }
  [[nodiscard]] std::vector<uint64_t> take() { return std::move(words_); }

 private:
  std::vector<uint64_t> words_;
  size_t pos_ = 0;
};

class BitReader {
 public:
  BitReader(const uint64_t* words, size_t numWords)
      : words_(words), numWords_(numWords) {}

  uint64_t read(int bits) {
    AVIV_CHECK(bits > 0 && bits <= 64);
    uint64_t value = 0;
    for (int i = 0; i < bits; ++i) {
      const size_t word = pos_ / 64;
      AVIV_CHECK(word < numWords_);
      value |= ((words_[word] >> (pos_ % 64)) & 1) << i;
      ++pos_;
    }
    return value;
  }
  void seek(size_t bit) { pos_ = bit; }

 private:
  const uint64_t* words_;
  size_t numWords_;
  size_t pos_ = 0;
};

int64_t signExtend(uint64_t value, int bits) {
  const uint64_t sign = uint64_t{1} << (bits - 1);
  return static_cast<int64_t>((value ^ sign)) - static_cast<int64_t>(sign);
}

}  // namespace

// ---------------------------------------------------------------------
// BinaryFormat
// ---------------------------------------------------------------------

BinaryFormat::BinaryFormat(const Machine& machine) : machine_(&machine) {
  int offset = 0;

  int maxIdxBits = 1;
  for (const RegFile& rf : machine.regFiles())
    maxIdxBits = std::max(maxIdxBits, ceilLog2(rf.numRegs));
  for (const Memory& mem : machine.memories())
    maxIdxBits = std::max(maxIdxBits, ceilLog2(mem.sizeWords));
  const int locBits = ceilLog2(static_cast<int>(
      machine.regFiles().size() + machine.memories().size()));

  for (UnitId u = 0; u < machine.units().size(); ++u) {
    const FunctionalUnit& unit = machine.unit(u);
    UnitSlot slot;
    slot.offset = offset;
    slot.opcodeBits = ceilLog2(static_cast<int>(unit.ops.size()));
    slot.dstBits = ceilLog2(machine.regFile(unit.regFile).numRegs);
    for (const UnitOp& op : unit.ops)
      slot.operandCount = std::max(slot.operandCount, opArity(op.op));
    slot.srcFieldBits =
        std::max(ceilLog2(machine.regFile(unit.regFile).numRegs), kImmBits);
    slot.totalBits = 1 + slot.opcodeBits + slot.dstBits +
                     slot.operandCount * (1 + slot.srcFieldBits);
    offset += slot.totalBits;
    unitSlots_.push_back(slot);
  }

  for (BusId b = 0; b < machine.buses().size(); ++b) {
    std::vector<BusSlot> slots;
    for (int k = 0; k < machine.bus(b).capacity; ++k) {
      BusSlot slot;
      slot.offset = offset;
      slot.locBits = locBits;
      slot.idxBits = maxIdxBits;
      slot.totalBits = 1 + 2 * (slot.locBits + slot.idxBits);
      offset += slot.totalBits;
      slots.push_back(slot);
    }
    busSlots_.push_back(std::move(slots));
  }
  bitsPerInstr_ = offset;
}

const BinaryFormat::BusSlot& BinaryFormat::busSlot(BusId bus, int k) const {
  AVIV_CHECK(bus < busSlots_.size());
  AVIV_CHECK(k >= 0 && static_cast<size_t>(k) < busSlots_[bus].size());
  return busSlots_[bus][static_cast<size_t>(k)];
}

int BinaryFormat::busSlotCount(BusId bus) const {
  AVIV_CHECK(bus < busSlots_.size());
  return static_cast<int>(busSlots_[bus].size());
}

std::string BinaryFormat::describe() const {
  std::string s = "instruction word: " + std::to_string(bitsPerInstr_) +
                  " bits (" + std::to_string(wordsPerInstruction()) +
                  " x 64-bit words)\n";
  for (UnitId u = 0; u < machine_->units().size(); ++u) {
    const UnitSlot& slot = unitSlots_[u];
    s += "  [" + std::to_string(slot.offset) + "..] unit " +
         machine_->unit(u).name + ": present(1) opcode(" +
         std::to_string(slot.opcodeBits) + ") dst(" +
         std::to_string(slot.dstBits) + ") + " +
         std::to_string(slot.operandCount) + " x {imm(1) src(" +
         std::to_string(slot.srcFieldBits) + ")}\n";
  }
  for (BusId b = 0; b < machine_->buses().size(); ++b) {
    for (int k = 0; k < busSlotCount(b); ++k) {
      const BusSlot& slot = busSlot(b, k);
      s += "  [" + std::to_string(slot.offset) + "..] bus " +
           machine_->bus(b).name + " slot " + std::to_string(k) +
           ": present(1) 2 x {loc(" + std::to_string(slot.locBits) +
           ") idx(" + std::to_string(slot.idxBits) + ")}\n";
    }
  }
  return s;
}

// ---------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------

BinaryImage assembleBinary(const CodeImage& image, const Machine& machine,
                           const SymbolTable& symbols) {
  const BinaryFormat format(machine);
  BinaryImage binary;
  binary.blockName = image.blockName;
  binary.machineName = machine.name();
  binary.bitsPerInstruction = format.bitsPerInstruction();
  binary.numInstructions = image.numInstructions();
  binary.outputs = image.outputs;
  binary.spillBase = image.spillBase;
  binary.numSpillSlots = image.numSpillSlots;
  binary.constPool = image.constPool;
  for (const auto& [name, addr] : symbols.all())
    binary.symbols.emplace_back(name, addr);

  for (const EncInstr& instr : image.instrs) {
    BitWriter writer;
    // Deterministic slot assembly: gather per-unit / per-bus occupancy.
    std::vector<const EncOp*> opOfUnit(machine.units().size(), nullptr);
    for (const EncOp& op : instr.ops) {
      AVIV_CHECK_MSG(opOfUnit[op.unit] == nullptr, "two ops on one unit");
      opOfUnit[op.unit] = &op;
    }
    std::vector<std::vector<const EncXfer*>> xfersOfBus(
        machine.buses().size());
    for (const EncXfer& xfer : instr.xfers)
      xfersOfBus[xfer.bus].push_back(&xfer);

    for (UnitId u = 0; u < machine.units().size(); ++u) {
      const auto& slot = format.unitSlot(u);
      const EncOp* op = opOfUnit[u];
      if (op == nullptr) {
        writer.write(0, slot.totalBits);  // absent: all-zero slot
        continue;
      }
      writer.write(1, 1);
      // Opcode: index of the (op kind) in the unit's repertoire.
      const auto opcode = machine.unit(u).findOp(op->op);
      AVIV_CHECK(opcode.has_value());
      writer.write(static_cast<uint64_t>(*opcode), slot.opcodeBits);
      writer.write(static_cast<uint64_t>(op->dstReg), slot.dstBits);
      for (int i = 0; i < slot.operandCount; ++i) {
        if (i < static_cast<int>(op->srcs.size())) {
          const EncOperand& src = op->srcs[static_cast<size_t>(i)];
          writer.write(src.isImm ? 1 : 0, 1);
          if (src.isImm) {
            if (src.imm < -(1 << (kImmBits - 1)) ||
                src.imm >= (1 << (kImmBits - 1)))
              throw Error("immediate " + std::to_string(src.imm) +
                          " exceeds the " + std::to_string(kImmBits) +
                          "-bit encoding range (enable the constant pool: "
                          "CodegenOptions::constantsInMemory)");
            writer.write(static_cast<uint64_t>(src.imm) &
                             ((uint64_t{1} << slot.srcFieldBits) - 1),
                         slot.srcFieldBits);
          } else {
            writer.write(static_cast<uint64_t>(src.reg), slot.srcFieldBits);
          }
        } else {
          writer.write(0, 1 + slot.srcFieldBits);
        }
      }
    }

    for (BusId b = 0; b < machine.buses().size(); ++b) {
      const auto& xfers = xfersOfBus[b];
      AVIV_CHECK_MSG(static_cast<int>(xfers.size()) <= format.busSlotCount(b),
                     "bus oversubscribed during assembly");
      for (int k = 0; k < format.busSlotCount(b); ++k) {
        const auto& slot = format.busSlot(b, k);
        if (k >= static_cast<int>(xfers.size())) {
          writer.write(0, slot.totalBits);
          continue;
        }
        const EncXfer& xfer = *xfers[static_cast<size_t>(k)];
        writer.write(1, 1);
        writer.write(locIndexOf(machine, xfer.from), slot.locBits);
        writer.write(static_cast<uint64_t>(
                         xfer.from.isRegFile() ? xfer.srcReg : xfer.memAddr),
                     slot.idxBits);
        writer.write(locIndexOf(machine, xfer.to), slot.locBits);
        writer.write(static_cast<uint64_t>(
                         xfer.to.isRegFile() ? xfer.dstReg : xfer.memAddr),
                     slot.idxBits);
      }
    }

    writer.padTo(static_cast<size_t>(format.wordsPerInstruction()) * 64);
    const auto words = writer.take();
    AVIV_CHECK(static_cast<int>(words.size()) ==
               format.wordsPerInstruction());
    binary.code.insert(binary.code.end(), words.begin(), words.end());
  }
  return binary;
}

// ---------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------

CodeImage disassembleBinary(const BinaryImage& binary,
                            const Machine& machine) {
  if (binary.machineName != machine.name())
    throw Error("binary was assembled for machine '" + binary.machineName +
                "', not '" + machine.name() + "'");
  const BinaryFormat format(machine);
  if (binary.bitsPerInstruction != format.bitsPerInstruction())
    throw Error("binary instruction width mismatch (stale machine "
                "description?)");

  // Reverse symbol map for listing comments.
  std::map<int, std::string> nameOfAddr;
  for (const auto& [name, addr] : binary.symbols) nameOfAddr[addr] = name;
  auto commentFor = [&](int addr) -> std::string {
    if (addr >= binary.spillBase)
      return "spill" + std::to_string(addr - binary.spillBase);
    const auto it = nameOfAddr.find(addr);
    return it == nameOfAddr.end() ? std::string{} : it->second;
  };

  CodeImage image;
  image.blockName = binary.blockName;
  image.machineName = binary.machineName;
  image.outputs = binary.outputs;
  image.spillBase = binary.spillBase;
  image.numSpillSlots = binary.numSpillSlots;
  image.constPool = binary.constPool;

  const int wordsPer = format.wordsPerInstruction();
  AVIV_CHECK(binary.code.size() ==
             static_cast<size_t>(binary.numInstructions) *
                 static_cast<size_t>(wordsPer));

  for (int c = 0; c < binary.numInstructions; ++c) {
    BitReader reader(binary.code.data() +
                         static_cast<size_t>(c) * static_cast<size_t>(wordsPer),
                     static_cast<size_t>(wordsPer));
    EncInstr instr;
    for (UnitId u = 0; u < machine.units().size(); ++u) {
      const auto& slot = format.unitSlot(u);
      reader.seek(static_cast<size_t>(slot.offset));
      if (reader.read(1) == 0) continue;
      EncOp op;
      op.unit = u;
      const auto opcode = reader.read(slot.opcodeBits);
      if (opcode >= machine.unit(u).ops.size())
        throw Error("corrupt binary: bad opcode on unit " +
                    machine.unit(u).name);
      const UnitOp& unitOp = machine.unit(u).ops[opcode];
      op.op = unitOp.op;
      op.mnemonic = unitOp.mnemonic;
      op.dstReg = static_cast<int>(reader.read(slot.dstBits));
      for (int i = 0; i < opArity(op.op); ++i) {
        EncOperand src;
        src.isImm = reader.read(1) != 0;
        const uint64_t raw = reader.read(slot.srcFieldBits);
        if (src.isImm)
          src.imm = signExtend(raw, slot.srcFieldBits);
        else
          src.reg = static_cast<int>(raw);
        op.srcs.push_back(src);
      }
      instr.ops.push_back(std::move(op));
    }
    for (BusId b = 0; b < machine.buses().size(); ++b) {
      for (int k = 0; k < format.busSlotCount(b); ++k) {
        const auto& slot = format.busSlot(b, k);
        reader.seek(static_cast<size_t>(slot.offset));
        if (reader.read(1) == 0) continue;
        EncXfer xfer;
        xfer.bus = b;
        xfer.from = locOf(machine, reader.read(slot.locBits));
        const int srcIdx = static_cast<int>(reader.read(slot.idxBits));
        xfer.to = locOf(machine, reader.read(slot.locBits));
        const int dstIdx = static_cast<int>(reader.read(slot.idxBits));
        if (xfer.from.isRegFile())
          xfer.srcReg = srcIdx;
        else
          xfer.memAddr = srcIdx;
        if (xfer.to.isRegFile())
          xfer.dstReg = dstIdx;
        else
          xfer.memAddr = dstIdx;
        if (xfer.memAddr >= 0) xfer.comment = commentFor(xfer.memAddr);
        instr.xfers.push_back(std::move(xfer));
      }
    }
    image.instrs.push_back(std::move(instr));
  }
  return image;
}

// ---------------------------------------------------------------------
// Object-file serialization
// ---------------------------------------------------------------------

std::string serializeBinary(const BinaryImage& binary) {
  std::ostringstream out;
  out << "AVIVBIN 1\n";
  out << "machine " << binary.machineName << "\n";
  out << "block " << binary.blockName << "\n";
  out << "bits " << binary.bitsPerInstruction << "\n";
  out << "instrs " << binary.numInstructions << "\n";
  out << "spill " << binary.spillBase << " " << binary.numSpillSlots << "\n";
  out << "symbols " << binary.symbols.size() << "\n";
  for (const auto& [name, addr] : binary.symbols)
    out << name << " " << addr << "\n";
  out << "outputs " << binary.outputs.size() << "\n";
  for (const OutputBinding& b : binary.outputs) {
    if (b.inMemory)
      out << b.name << " mem " << b.memAddr << "\n";
    else
      out << b.name << " reg " << b.loc.index << " " << b.reg << "\n";
  }
  out << "pool " << binary.constPool.size() << "\n";
  for (const auto& [addr, value] : binary.constPool)
    out << addr << " " << value << "\n";
  out << "code " << binary.code.size() << "\n";
  out << std::hex;
  for (uint64_t word : binary.code) out << "0x" << word << "\n";
  return out.str();
}

BinaryImage parseBinary(const std::string& text) {
  std::istringstream in(text);
  std::string keyword;
  auto expect = [&](const std::string& expected) {
    in >> keyword;
    if (!in || keyword != expected)
      throw Error("malformed AVIV binary: expected '" + expected + "'");
  };

  BinaryImage binary;
  int version = 0;
  expect("AVIVBIN");
  in >> version;
  if (!in || version != 1)
    throw Error("unsupported AVIV binary version");
  expect("machine");
  in >> binary.machineName;
  expect("block");
  in >> binary.blockName;
  expect("bits");
  in >> binary.bitsPerInstruction;
  expect("instrs");
  in >> binary.numInstructions;
  expect("spill");
  in >> binary.spillBase >> binary.numSpillSlots;

  expect("symbols");
  size_t numSymbols = 0;
  in >> numSymbols;
  for (size_t i = 0; i < numSymbols; ++i) {
    std::string name;
    int addr = 0;
    in >> name >> addr;
    if (!in) throw Error("malformed AVIV binary: symbol table");
    binary.symbols.emplace_back(name, addr);
  }

  expect("outputs");
  size_t numOutputs = 0;
  in >> numOutputs;
  for (size_t i = 0; i < numOutputs; ++i) {
    OutputBinding b;
    std::string kind;
    in >> b.name >> kind;
    if (kind == "mem") {
      b.inMemory = true;
      in >> b.memAddr;
    } else if (kind == "reg") {
      uint16_t index = 0;
      in >> index >> b.reg;
      b.loc = Loc::regFile(index);
    } else {
      throw Error("malformed AVIV binary: output binding kind '" + kind +
                  "'");
    }
    if (!in) throw Error("malformed AVIV binary: outputs");
    binary.outputs.push_back(std::move(b));
  }

  expect("pool");
  size_t poolSize = 0;
  in >> poolSize;
  for (size_t i = 0; i < poolSize; ++i) {
    int addr = 0;
    int64_t value = 0;
    in >> addr >> value;
    if (!in) throw Error("malformed AVIV binary: constant pool");
    binary.constPool.emplace_back(addr, value);
  }

  expect("code");
  size_t numWords = 0;
  in >> numWords;
  in >> std::hex;
  for (size_t i = 0; i < numWords; ++i) {
    uint64_t word = 0;
    in >> word;
    if (!in) throw Error("malformed AVIV binary: code section");
    binary.code.push_back(word);
  }
  return binary;
}

}  // namespace aviv
