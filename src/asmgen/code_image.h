// CodeImage — the fully-encoded form of a compiled block: every operation
// has concrete register numbers, every transfer concrete source/destination
// registers or data-memory addresses. This is what both the textual
// assembly emitter and the instruction-level simulator consume (paper Fig 1:
// the assembler and simulator legs of the framework).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/op.h"
#include "isdl/machine.h"

namespace aviv {

// Data-memory address assignment for named variables, shared across all
// blocks of a program so inter-block dataflow lines up.
class SymbolTable {
 public:
  // Address of `name`, allocating the next free word on first use.
  int intern(const std::string& name);
  // Address of `name`; throws aviv::Error if not interned.
  [[nodiscard]] int lookup(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const {
    return addrOf_.count(name) > 0;
  }
  [[nodiscard]] const std::map<std::string, int>& all() const {
    return addrOf_;
  }
  [[nodiscard]] int sizeWords() const { return next_; }

 private:
  std::map<std::string, int> addrOf_;
  int next_ = 0;
};

struct EncOperand {
  bool isImm = false;
  int reg = -1;      // register index in the unit's bank
  int64_t imm = 0;
};

// One functional-unit operation slot.
struct EncOp {
  UnitId unit = kNoId16;
  Op op = Op::kAdd;
  std::string mnemonic;
  int dstReg = -1;
  std::vector<EncOperand> srcs;
};

// One bus transfer slot (register move, variable load, spill store/reload,
// output store).
struct EncXfer {
  BusId bus = kNoId16;
  Loc from;
  Loc to;
  int srcReg = -1;   // when from is a register file
  int dstReg = -1;   // when to is a register file
  int memAddr = -1;  // when from/to is a memory
  std::string comment;  // variable name / spill slot tag for listings
};

struct EncInstr {
  std::vector<EncOp> ops;
  std::vector<EncXfer> xfers;
};

// Where a block output lives when the block finishes.
struct OutputBinding {
  std::string name;
  bool inMemory = false;  // true: at memAddr in data memory
  Loc loc;                // register file, when !inMemory
  int reg = -1;
  int memAddr = -1;
};

struct CodeImage {
  std::string blockName;
  std::string machineName;
  std::vector<EncInstr> instrs;
  std::vector<OutputBinding> outputs;
  int spillBase = 0;       // first data-memory word used for spill slots
  int numSpillSlots = 0;
  // Constant-pool initializers: (address, value) the loader must place in
  // data memory before execution.
  std::vector<std::pair<int, int64_t>> constPool;

  [[nodiscard]] int numInstructions() const {
    return static_cast<int>(instrs.size());
  }
  // Human-readable VLIW assembly listing.
  [[nodiscard]] std::string asmText(const Machine& machine) const;
};

}  // namespace aviv
