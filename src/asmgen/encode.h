// Encoding: AssignedGraph + Schedule + RegAssignment -> CodeImage.
// Assigns data-memory addresses for named variables through the shared
// SymbolTable and places spill slots at the top of data memory (re-used
// across blocks — spilled values never live across block boundaries).
#pragma once

#include "asmgen/code_image.h"
#include "core/assigned.h"
#include "core/cover.h"
#include "regalloc/regalloc.h"

namespace aviv {

// Throws aviv::Error when data memory is too small for the variables plus
// spill slots.
[[nodiscard]] CodeImage encodeBlock(const AssignedGraph& graph,
                                    const Schedule& schedule,
                                    const RegAssignment& regs,
                                    SymbolTable& symbols);

}  // namespace aviv
