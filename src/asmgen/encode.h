// Encoding: AssignedGraph + Schedule + RegAssignment -> CodeImage.
// Assigns data-memory addresses for named variables through the shared
// SymbolTable and places spill slots at the top of data memory (re-used
// across blocks — spilled values never live across block boundaries).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "asmgen/code_image.h"
#include "core/assigned.h"
#include "core/cover.h"
#include "regalloc/regalloc.h"

namespace aviv {

// Symbol interning scope for encodeBlock. Direct mode wraps a shared
// SymbolTable (the classic single-threaded path). Deferred mode hands out
// provisional negative addresses and records every name in first-use order,
// so independent blocks can encode concurrently against private scopes and
// be merged afterwards (resolveSymbols) in block order — reproducing the
// exact address assignment a serial shared-table run would have made.
class SymbolScope {
 public:
  SymbolScope() = default;  // deferred (recording) mode
  explicit SymbolScope(SymbolTable& table) : table_(&table) {}

  // Address of `name`: the shared table's address in direct mode, a
  // provisional address in deferred mode.
  int intern(const std::string& name);

  [[nodiscard]] bool deferred() const { return table_ == nullptr; }
  // Direct mode only: words used in the shared table so far.
  [[nodiscard]] int sizeWords() const { return table_->sizeWords(); }
  // Deferred mode: every name interned, in first-use order.
  [[nodiscard]] const std::vector<std::string>& recorded() const {
    return names_;
  }

  // Provisional-address encoding. Real data-memory addresses are >= 0 and
  // -1 means "unset" throughout the image structs, so <= -2 is free.
  [[nodiscard]] static int provisionalAddr(int ordinal) {
    return -2 - ordinal;
  }
  [[nodiscard]] static bool isProvisional(int addr) { return addr <= -2; }
  [[nodiscard]] static int ordinalOf(int addr) { return -2 - addr; }

 private:
  SymbolTable* table_ = nullptr;          // null in deferred mode
  std::map<std::string, int> ordinalOf_;  // deferred mode: name -> ordinal
  std::vector<std::string> names_;        // deferred mode: first-use order
};

// Interns `scope`'s recorded names into `table` (first-use order) and
// rewrites every provisional data-memory address in `image` — constant-pool
// cells, transfer addresses, output bindings — to its final merged address.
// Calling this per block, in block order, yields the identical SymbolTable a
// serial shared-table encode would have built. No-op for a direct scope.
void resolveSymbols(CodeImage& image, const SymbolScope& scope,
                    SymbolTable& table);

// Replays a scope-independent image (provisional addresses whose ordinal i
// refers to names[i]) into `scope`: each name is interned in first-use
// order and the provisional addresses are rewritten to whatever the scope
// hands out — final addresses for a direct scope, the scope's own
// provisional addresses for a deferred one (resolved later by
// resolveSymbols). This is how the compilation service's cached CodeImages
// are hydrated for any consumer; the inverse direction (recording) is a
// deferred-scope encodeBlock. AVIV_CHECK-fails if the image references an
// ordinal outside `names`.
void rebindSymbols(CodeImage& image, const std::vector<std::string>& names,
                   SymbolScope& scope);

// Throws aviv::Error when data memory is too small for the variables plus
// spill slots (in deferred mode that check is postponed to the merge —
// the final table size is unknown while blocks encode in parallel).
[[nodiscard]] CodeImage encodeBlock(const AssignedGraph& graph,
                                    const Schedule& schedule,
                                    const RegAssignment& regs,
                                    SymbolScope& symbols);
// Convenience: direct scope over `symbols`.
[[nodiscard]] CodeImage encodeBlock(const AssignedGraph& graph,
                                    const Schedule& schedule,
                                    const RegAssignment& regs,
                                    SymbolTable& symbols);

}  // namespace aviv
