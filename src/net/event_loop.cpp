#include "net/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cstring>

#if defined(__linux__)
#include <sys/epoll.h>
#define AVIV_NET_HAVE_EPOLL 1
#else
#define AVIV_NET_HAVE_EPOLL 0
#endif

#include "support/error.h"

namespace aviv::net {

namespace {

[[noreturn]] void throwErrno(const char* what) {
  throw Error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop(Backend backend) {
#if AVIV_NET_HAVE_EPOLL
  usingEpoll_ = backend != Backend::kPoll;
#else
  if (backend == Backend::kEpoll)
    throw Error("event loop: epoll backend unavailable on this platform");
  usingEpoll_ = false;
#endif
#if AVIV_NET_HAVE_EPOLL
  if (usingEpoll_) {
    epollFd_ = Fd(::epoll_create1(EPOLL_CLOEXEC));
    if (!epollFd_.valid()) throwErrno("epoll_create1");
  }
#endif
  int pipeFds[2];
  if (::pipe(pipeFds) < 0) throwErrno("pipe");
  wakePipe_[0] = Fd(pipeFds[0]);
  wakePipe_[1] = Fd(pipeFds[1]);
  setNonBlocking(wakePipe_[0].get());
  setNonBlocking(wakePipe_[1].get());
  // The wake pipe is a plain watched fd; its callback just drains it.
  add(wakePipe_[0].get(), kRead, [this](uint32_t) { drainWakePipe(); });
}

EventLoop::~EventLoop() = default;

void EventLoop::add(int fd, uint32_t interest, Callback callback) {
  AVIV_CHECK(fd >= 0);
  AVIV_CHECK(entries_.find(fd) == entries_.end());
  Entry entry;
  entry.interest = interest;
  entry.generation = nextGeneration_++;
  entry.callback = std::move(callback);
  entries_.emplace(fd, std::move(entry));
  backendAdd(fd, interest);
}

void EventLoop::modify(int fd, uint32_t interest) {
  auto it = entries_.find(fd);
  AVIV_CHECK(it != entries_.end());
  if (it->second.interest == interest) return;
  it->second.interest = interest;
  backendModify(fd, interest);
}

void EventLoop::remove(int fd) {
  auto it = entries_.find(fd);
  if (it == entries_.end()) return;
  backendRemove(fd);
  entries_.erase(it);
}

void EventLoop::wakeup() {
  const char byte = 0;
  // Best effort: a full pipe already guarantees a pending wake.
  [[maybe_unused]] const ssize_t n =
      ::write(wakePipe_[1].get(), &byte, 1);
}

void EventLoop::drainWakePipe() {
  char buf[256];
  while (::read(wakePipe_[0].get(), buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::backendAdd(int fd, uint32_t interest) {
#if AVIV_NET_HAVE_EPOLL
  if (usingEpoll_) {
    epoll_event ev{};
    ev.events = (interest & kRead ? EPOLLIN : 0u) |
                (interest & kWrite ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0)
      throwErrno("epoll_ctl(ADD)");
  }
#else
  (void)fd;
  (void)interest;
#endif
}

void EventLoop::backendModify(int fd, uint32_t interest) {
#if AVIV_NET_HAVE_EPOLL
  if (usingEpoll_) {
    epoll_event ev{};
    ev.events = (interest & kRead ? EPOLLIN : 0u) |
                (interest & kWrite ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0)
      throwErrno("epoll_ctl(MOD)");
  }
#else
  (void)fd;
  (void)interest;
#endif
}

void EventLoop::backendRemove(int fd) {
#if AVIV_NET_HAVE_EPOLL
  if (usingEpoll_) {
    epoll_event ev{};  // non-null for pre-2.6.9 kernels, per the man page
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_DEL, fd, &ev);
  }
#else
  (void)fd;
#endif
}

int EventLoop::waitReady(int timeoutMs,
                         std::vector<std::pair<int, uint32_t>>* ready) {
#if AVIV_NET_HAVE_EPOLL
  if (usingEpoll_) {
    static constexpr int kMaxEvents = 256;
    epoll_event events[kMaxEvents];
    const int n = ::epoll_wait(epollFd_.get(), events, kMaxEvents, timeoutMs);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throwErrno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      uint32_t bits = 0;
      if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0)
        bits |= kRead;
      if ((events[i].events & EPOLLOUT) != 0) bits |= kWrite;
      const int fd = events[i].data.fd;
      if (bits != 0) ready->emplace_back(fd, bits);
    }
    return n;
  }
#endif
  // poll fallback: rebuild the pollfd set from the registry every wait.
  // O(fds) per call, which is fine for the fallback path; epoll carries
  // the thousand-connection runs.
  std::vector<pollfd> fds;
  fds.reserve(entries_.size());
  for (const auto& [fd, entry] : entries_) {
    pollfd p{};
    p.fd = fd;
    p.events = static_cast<short>((entry.interest & kRead ? POLLIN : 0) |
                                  (entry.interest & kWrite ? POLLOUT : 0));
    fds.push_back(p);
  }
  const int n = ::poll(fds.data(), fds.size(), timeoutMs);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throwErrno("poll");
  }
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    uint32_t bits = 0;
    if ((p.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0)
      bits |= kRead;
    if ((p.revents & POLLOUT) != 0) bits |= kWrite;
    if (bits != 0) ready->emplace_back(p.fd, bits);
  }
  return n;
}

int EventLoop::runOnce(int timeoutMs) {
  std::vector<std::pair<int, uint32_t>> ready;
  waitReady(timeoutMs, &ready);

  // Re-validate before each dispatch: an earlier callback this round may
  // have removed the fd (or removed + re-added it, changing generation).
  struct Pending {
    int fd;
    uint32_t bits;
    uint64_t generation;
  };
  std::vector<Pending> snapshot;
  snapshot.reserve(ready.size());
  for (const auto& [fd, bits] : ready) {
    auto it = entries_.find(fd);
    if (it == entries_.end()) continue;
    snapshot.push_back({fd, bits, it->second.generation});
  }
  int dispatched = 0;
  for (const Pending& pending : snapshot) {
    auto it = entries_.find(pending.fd);
    if (it == entries_.end() || it->second.generation != pending.generation)
      continue;
    ++dispatched;
    // Invoke through a copy: the callback may remove its own registration,
    // which would otherwise destroy the std::function mid-call.
    const Callback callback = it->second.callback;
    callback(pending.bits);
  }
  return dispatched;
}

}  // namespace aviv::net
