// EventLoop — the readiness core of the compile server: a single-threaded
// epoll dispatcher (Linux) with a poll(2) fallback selected at runtime, so
// the same binary runs on any POSIX system and tests can exercise both
// backends. Callbacks are registered per fd with a read/write interest
// mask; runOnce() waits for readiness and dispatches.
//
// Thread model: add/modify/remove/runOnce belong to the loop thread.
// wakeup() is the one cross-thread (and async-signal-safe) entry point — a
// byte written to an internal pipe that makes the current or next runOnce
// return promptly; worker threads use it to hand completions back, and
// signal handlers use it to cut short the poll timeout.
//
// Re-entrancy: a callback may add/modify/remove any fd, including its own.
// Dispatch snapshots the ready set first and re-validates each entry (fd
// still registered, same registration generation) before invoking, so a
// callback that closes a neighbour's fd — or closes its own and lets the
// OS recycle the number — cannot cause a stale dispatch.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/socket.h"

namespace aviv::net {

class EventLoop {
 public:
  // Interest / readiness bits. Errors and hangups are folded into kRead:
  // the callback's read attempt observes the EOF/error and handles it.
  static constexpr uint32_t kRead = 1;
  static constexpr uint32_t kWrite = 2;

  enum class Backend {
    kAuto,   // epoll on Linux, poll elsewhere
    kEpoll,  // Linux only; throws where unsupported
    kPoll,
  };

  explicit EventLoop(Backend backend = Backend::kAuto);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  using Callback = std::function<void(uint32_t ready)>;

  void add(int fd, uint32_t interest, Callback callback);
  void modify(int fd, uint32_t interest);
  void remove(int fd);
  [[nodiscard]] bool watching(int fd) const {
    return entries_.find(fd) != entries_.end();
  }
  [[nodiscard]] size_t size() const { return entries_.size(); }

  // Waits up to timeoutMs (-1 = forever) and dispatches ready callbacks.
  // Returns the number of callbacks invoked (0 on timeout or bare wakeup).
  int runOnce(int timeoutMs);

  // Thread-safe and async-signal-safe: nudges runOnce awake.
  void wakeup();
  // The raw write end of the wake pipe, for signal handlers that want to
  // write() it directly.
  [[nodiscard]] int wakeupFd() const { return wakePipe_[1].get(); }

  [[nodiscard]] const char* backendName() const {
    return usingEpoll_ ? "epoll" : "poll";
  }

 private:
  struct Entry {
    uint32_t interest = 0;
    uint64_t generation = 0;
    Callback callback;
  };

  void backendAdd(int fd, uint32_t interest);
  void backendModify(int fd, uint32_t interest);
  void backendRemove(int fd);
  int waitReady(int timeoutMs, std::vector<std::pair<int, uint32_t>>* ready);
  void drainWakePipe();

  bool usingEpoll_ = false;
  Fd epollFd_;
  Fd wakePipe_[2];  // [0] read end (watched), [1] write end
  std::unordered_map<int, Entry> entries_;
  uint64_t nextGeneration_ = 1;
};

}  // namespace aviv::net
