// Thin POSIX socket helpers shared by the compile server (src/net/server.h)
// and its clients (tools/loadgen.cpp, tests). Std + POSIX only; every
// failure surfaces as aviv::Error (never errno-checking left to callers).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>

namespace aviv::net {

// An endpoint spec: "unix:/path/to.sock" or "host:port" ("127.0.0.1:7070";
// host defaults to 127.0.0.1 when omitted, as in ":7070"; port 0 asks the
// kernel for an ephemeral port — the bound address reports the real one).
struct Endpoint {
  bool isUnix = false;
  std::string path;              // unix sockets
  std::string host = "127.0.0.1";  // TCP; numeric IPv4 or "localhost"
  uint16_t port = 0;

  [[nodiscard]] std::string str() const;
};

// Throws aviv::Error on a malformed spec.
[[nodiscard]] Endpoint parseEndpoint(const std::string& spec);

// Move-only owning fd.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

// Binds + listens on `endpoint` (non-blocking listener). Unix paths are
// unlinked first so a stale socket file from a crashed server cannot block
// restart. `bound` (optional) receives the actual endpoint — for TCP port
// 0 this is how callers learn the kernel-assigned port.
[[nodiscard]] Fd listenOn(const Endpoint& endpoint, int backlog,
                          Endpoint* bound);

// Blocking connect; throws aviv::Error on failure.
[[nodiscard]] Fd connectTo(const Endpoint& endpoint);

void setNonBlocking(int fd);

// Result of one non-blocking read()/write() attempt.
struct IoResult {
  ssize_t n = 0;          // bytes moved (0 with eof=false: wouldBlock)
  bool wouldBlock = false;
  bool eof = false;       // read: peer closed
  int error = 0;          // errno on hard failure; 0 otherwise
};

[[nodiscard]] IoResult readSome(int fd, char* buf, size_t cap);
[[nodiscard]] IoResult writeSome(int fd, const char* buf, size_t n);

// Best-effort bump of RLIMIT_NOFILE's soft limit toward the hard limit so
// thousand-connection runs don't die on accept(EMFILE). Returns the soft
// limit in effect afterwards.
uint64_t raiseFdLimit();

}  // namespace aviv::net
