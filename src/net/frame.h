// Length-prefixed binary framing for the compile-server wire protocol
// (DESIGN.md §6.7), mirroring the AVCE cache framing: magic, version, type,
// payload size, payload checksum. A frame's payload is opaque bytes; the
// request/response payload codecs below put the avivd request-line grammar
// and the typed response (status detail + wall/queue timings) inside it.
//
// Wire layout, little-endian, 24-byte header:
//
//   offset  size  field
//        0     4  magic       "AVNF" (0x464e5641 LE)
//        4     2  version     kFrameVersion; mismatch poisons the stream
//        6     1  type        FrameType
//        7     1  reserved    must be 0
//        8     8  payloadSize bytes following the header
//       16     8  checksum    hash64(payload) (support/hash.h)
//   24  payloadSize  payload
//
// FrameDecoder is incremental: feed() whatever the socket produced, then
// next() until it reports kNeedMore. Every protocol violation — bad magic,
// stale version, unknown type, a declared payload larger than the
// configured cap (rejected BEFORE any payload buffering), checksum
// mismatch — surfaces as Status::kError with a message; the decoder is
// then poisoned and the connection must be dropped. A connection that
// closes mid-frame is detectable via midFrame(). Nothing here throws on
// hostile bytes; the payload codecs throw aviv::Error (the PR 3 taxonomy)
// on truncated payloads, which callers treat as a protocol error.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace aviv::net {

enum class FrameType : uint8_t {
  kRequest = 1,     // client -> server: one request line
  kOk = 2,          // compiled, at least one block cold
  kHit = 3,         // compiled, every block served from the result cache
  kDegraded = 4,    // compiled via the degradation ladder (baseline)
  kQuarantined = 5, // verification caught a miscompile; baseline emitted
  kError = 6,       // request failed (parse, compile, protocol)
  kRetryAfter = 7,  // shed by admission control; retry later
  // Liveness beat on the supervisor<->worker socketpair (src/proc): a busy
  // worker emits one every heartbeat interval so the supervisor can tell
  // "slow compile" from "wedged process". Never sent on client-facing
  // sockets; empty payload.
  kHeartbeat = 8,
};

[[nodiscard]] const char* frameTypeName(FrameType type);
[[nodiscard]] bool isResponseType(FrameType type);

inline constexpr uint32_t kFrameMagic = 0x464e5641;  // "AVNF" little-endian
inline constexpr uint16_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 24;
// Default cap on a declared payload; a frame claiming more is a protocol
// error, rejected from the 24 header bytes alone.
inline constexpr uint64_t kDefaultMaxPayload = 4ull << 20;

[[nodiscard]] std::string encodeFrame(FrameType type,
                                      std::string_view payload);

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

class FrameDecoder {
 public:
  explicit FrameDecoder(uint64_t maxPayload = kDefaultMaxPayload)
      : maxPayload_(maxPayload) {}

  void feed(const char* data, size_t n);

  enum class Status {
    kFrame,     // *out holds the next complete frame
    kNeedMore,  // no complete frame buffered; feed more bytes
    kError,     // protocol violation; see error(). Decoder is poisoned.
  };
  Status next(Frame* out);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool poisoned() const { return poisoned_; }
  // True when a frame prefix (a partial header or header + partial
  // payload) is buffered — an EOF now is a torn, mid-frame close.
  [[nodiscard]] bool midFrame() const { return !poisoned_ && buffered() > 0; }
  [[nodiscard]] size_t buffered() const { return buf_.size() - pos_; }

 private:
  uint64_t maxPayload_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
  std::string error_;
};

// --- payload codecs -------------------------------------------------------
// Decoders throw aviv::Error on truncated or malformed payloads.

struct RequestPayload {
  uint64_t id = 0;       // echoed back in the response
  bool wantAsm = false;  // include the assembly text in the response body
  std::string line;      // one avivd request line (service/request.h grammar)
};

[[nodiscard]] std::string encodeRequestPayload(const RequestPayload& p);
[[nodiscard]] RequestPayload decodeRequestPayload(std::string_view data);

struct ResponsePayload {
  uint64_t id = 0;
  uint64_t wallMicros = 0;   // request execution wall time
  uint64_t queueMicros = 0;  // admission-queue wait before execution
  std::string detail;  // status detail line, or the error message
  std::string body;    // assembly text when requested; else empty
};

[[nodiscard]] std::string encodeResponsePayload(const ResponsePayload& p);
[[nodiscard]] ResponsePayload decodeResponsePayload(std::string_view data);

}  // namespace aviv::net
