#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "support/error.h"
#include "support/strings.h"

namespace aviv::net {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

sockaddr_un unixAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcpAddr(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  std::string host = endpoint.host;
  if (host == "localhost" || host.empty()) host = "127.0.0.1";
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw Error("listen: bad IPv4 host '" + endpoint.host + "'");
  return addr;
}

}  // namespace

std::string Endpoint::str() const {
  if (isUnix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

Endpoint parseEndpoint(const std::string& spec) {
  Endpoint endpoint;
  if (startsWith(spec, "unix:")) {
    endpoint.isUnix = true;
    endpoint.path = spec.substr(5);
    if (endpoint.path.empty())
      throw Error("endpoint 'unix:' needs a socket path");
    return endpoint;
  }
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos)
    throw Error("endpoint '" + spec +
                "' must be unix:PATH or HOST:PORT (e.g. 127.0.0.1:7070)");
  if (colon > 0) endpoint.host = spec.substr(0, colon);
  const std::string portText = spec.substr(colon + 1);
  try {
    const int port = std::stoi(portText);
    if (port < 0 || port > 65535) throw std::out_of_range("port");
    endpoint.port = static_cast<uint16_t>(port);
  } catch (const std::exception&) {
    throw Error("endpoint '" + spec + "': bad port '" + portText + "'");
  }
  return endpoint;
}

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void setNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throwErrno("fcntl(O_NONBLOCK)");
}

Fd listenOn(const Endpoint& endpoint, int backlog, Endpoint* bound) {
  Fd fd(::socket(endpoint.isUnix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throwErrno("socket");
  if (endpoint.isUnix) {
    ::unlink(endpoint.path.c_str());  // stale file from a crashed server
    const sockaddr_un addr = unixAddr(endpoint.path);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0)
      throwErrno("bind " + endpoint.str());
  } else {
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = tcpAddr(endpoint);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0)
      throwErrno("bind " + endpoint.str());
  }
  if (::listen(fd.get(), backlog) < 0) throwErrno("listen " + endpoint.str());
  setNonBlocking(fd.get());
  if (bound != nullptr) {
    *bound = endpoint;
    if (!endpoint.isUnix) {
      sockaddr_in actual{};
      socklen_t len = sizeof(actual);
      if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual),
                        &len) == 0)
        bound->port = ntohs(actual.sin_port);
    }
  }
  return fd;
}

Fd connectTo(const Endpoint& endpoint) {
  Fd fd(::socket(endpoint.isUnix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throwErrno("socket");
  int rc;
  if (endpoint.isUnix) {
    const sockaddr_un addr = unixAddr(endpoint.path);
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } else {
    const sockaddr_in addr = tcpAddr(endpoint);
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  }
  if (rc < 0) throwErrno("connect " + endpoint.str());
  return fd;
}

IoResult readSome(int fd, char* buf, size_t cap) {
  IoResult result;
  for (;;) {
    const ssize_t n = ::read(fd, buf, cap);
    if (n > 0) {
      result.n = n;
      return result;
    }
    if (n == 0) {
      result.eof = true;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.wouldBlock = true;
      return result;
    }
    result.error = errno;
    return result;
  }
}

IoResult writeSome(int fd, const char* buf, size_t n) {
  IoResult result;
  for (;;) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE,
    // not kill the daemon with SIGPIPE.
    const ssize_t written = ::send(fd, buf, n, MSG_NOSIGNAL);
    if (written >= 0) {
      result.n = written;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.wouldBlock = true;
      return result;
    }
    result.error = errno;
    return result;
  }
}

uint64_t raiseFdLimit() {
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) != 0) return 0;
  if (limit.rlim_cur < limit.rlim_max) {
    rlimit raised = limit;
    raised.rlim_cur = limit.rlim_max;
    if (setrlimit(RLIMIT_NOFILE, &raised) == 0) return raised.rlim_cur;
  }
  return limit.rlim_cur;
}

}  // namespace aviv::net
