// CompileServer — the socket front end of the avivd compile service
// (DESIGN.md §6.7). A single event-loop thread (the caller of serve())
// owns all sockets: it accepts connections, decodes request frames
// (net/frame.h), and admits them into a bounded queue; the session
// ThreadPool's workers drain that queue, run the request handler, and hand
// encoded response frames back to the loop through a completion queue +
// wakeup pipe. The server knows nothing about compilation — the handler
// (avivd plugs in service/request.h's parse + execute) maps one request
// line to a typed response.
//
// Admission control and backpressure, in order of engagement:
//   * Bounded queue: a request arriving while `queueCapacity` requests are
//     already admitted-but-unstarted is answered RETRY_AFTER immediately
//     (a "shed") and costs O(1) memory — the server prefers telling a
//     client to come back over growing without bound.
//   * Per-connection write backpressure: when a connection's outbound
//     buffer exceeds writeHighWater (a client that sends but does not
//     read), the server stops READING from that connection until the
//     buffer drains below writeLowWater. Its pipelined requests then park
//     in the kernel socket buffer, propagating the pressure to the client.
//   * Frame cap: a request frame declaring a payload above maxFrameBytes
//     poisons the connection before any payload is buffered.
//
// Graceful drain (SIGTERM/SIGINT → requestStop() or a sig_atomic flag):
// stop accepting, stop reading, finish every admitted request, flush every
// outbound buffer, then close. A well-behaved client loses zero responses;
// a connection that stalls past drainTimeoutMs is dropped so shutdown
// always terminates.
//
// Fail-points (support/failpoint.h): `net-accept` (accepted connection
// dropped), `net-read` (connection read error), `net-write` (transient
// write failure, retried on the next writable event) — all recover per
// the PR 3 taxonomy, covered by the fault-injection CI matrix.
#pragma once

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"
#include "net/socket.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace aviv::net {

struct ServerConfig {
  Endpoint listen;
  int backlog = 512;
  // Admitted-but-unstarted requests; beyond this the server sheds with
  // RETRY_AFTER instead of growing memory.
  int queueCapacity = 256;
  uint64_t maxFrameBytes = kDefaultMaxPayload;
  // Outbound-buffer watermarks for per-connection read pausing.
  size_t writeHighWater = 1u << 20;
  size_t writeLowWater = 256u << 10;
  // Suggested client retry delay carried in RETRY_AFTER responses, and the
  // cadence at which serve() re-checks its stop flag.
  int retryAfterMs = 50;
  int pollIntervalMs = 50;
  // Drain gives stalled connections this long to accept their responses
  // before dropping them; guarantees shutdown terminates.
  int drainTimeoutMs = 30000;
  EventLoop::Backend backend = EventLoop::Backend::kAuto;
};

struct NetRequest {
  uint64_t id = 0;
  bool wantAsm = false;
  std::string line;
};

struct NetResponse {
  FrameType type = FrameType::kError;
  std::string detail;
  std::string body;
  // Worker crashes consumed producing this response (handler running over
  // a src/proc pool); surfaces in ServerStats::crashRetried.
  int crashRetries = 0;
};

// Runs on a ThreadPool worker; must be thread-safe and must not throw
// (exceptions are converted to kError responses as a backstop).
using RequestHandler = std::function<NetResponse(const NetRequest&)>;

struct ServerStats {
  int64_t accepted = 0;
  int64_t acceptErrors = 0;
  int64_t connectionsClosed = 0;
  int64_t requests = 0;        // request frames admitted or shed
  int64_t shed = 0;            // answered RETRY_AFTER by admission control
  int64_t responses = 0;       // response frames fully handed to a socket
  int64_t ok = 0;
  int64_t hits = 0;
  int64_t degraded = 0;
  int64_t quarantined = 0;
  int64_t errors = 0;          // kError responses produced
  // Responses that consumed at least one compile-worker crash (retried on
  // a healthy worker or answered by the crash-loop breaker) — only nonzero
  // under --isolate-workers.
  int64_t crashRetried = 0;
  int64_t readErrors = 0;
  int64_t writeErrors = 0;     // transient write failures (retried)
  int64_t frameErrors = 0;     // protocol violations (connection dropped)
  int64_t tornConnections = 0; // peer closed mid-frame
  int64_t droppedResponses = 0;  // completion for an already-gone connection
  int64_t maxQueueDepth = 0;
  int64_t readPauses = 0;      // backpressure engagements
};

class CompileServer {
 public:
  CompileServer(ServerConfig config, ThreadPool& pool,
                RequestHandler handler);
  ~CompileServer();
  CompileServer(const CompileServer&) = delete;
  CompileServer& operator=(const CompileServer&) = delete;

  // Binds and listens; returns the bound endpoint (with the real port for
  // TCP port 0). Throws aviv::Error on failure.
  Endpoint start();

  // Runs the event loop on the calling thread until requestStop() is
  // called or *stopFlag becomes nonzero (nullable), then drains and
  // returns. The flag is polled every pollIntervalMs and on every wakeup,
  // so a signal handler that sets it and write()s wakeupFd() stops the
  // loop promptly.
  void serve(const volatile std::sig_atomic_t* stopFlag = nullptr);

  // Thread-safe programmatic stop (tests, embedding).
  void requestStop();
  // Async-signal-safe nudge target: write one byte here from a signal
  // handler after setting the stop flag.
  [[nodiscard]] int wakeupFd() const { return loop_.wakeupFd(); }

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] int queueDepth() const;
  [[nodiscard]] size_t openConnections() const { return connections_.size(); }

 private:
  struct Connection {
    uint64_t id = 0;
    Fd fd;
    FrameDecoder decoder;
    std::string outbuf;
    size_t outPos = 0;  // flushed prefix of outbuf
    int inFlight = 0;   // admitted requests not yet answered
    bool readPaused = false;
    bool closing = false;  // close once outbuf drains and inFlight == 0

    explicit Connection(uint64_t maxFrame) : decoder(maxFrame) {}
    [[nodiscard]] size_t pendingOut() const { return outbuf.size() - outPos; }
  };

  struct Job {
    uint64_t connId = 0;
    NetRequest request;
    double enqueueSeconds = 0;  // server clock at admission
  };

  struct Completion {
    uint64_t connId = 0;
    FrameType type = FrameType::kError;
    std::string frame;  // fully encoded response frame
  };

  // Loop-thread handlers. Only closeConnection() destroys a Connection, so
  // any call into flushConnection()/closeConnection() invalidates held
  // Connection& — callers re-look-up through the id map afterwards.
  void onAcceptable();
  void onConnectionEvent(uint64_t connId, uint32_t ready);
  void readFromConnection(uint64_t connId);
  void handleFrame(Connection& conn, Frame frame);
  // Returns false when the connection was closed (write error, or a
  // finished `closing` connection).
  bool flushConnection(uint64_t connId);
  void updateBackpressure(Connection& conn);
  void closeConnection(uint64_t connId);
  void drainCompletions();
  void enqueueResponse(Connection& conn, FrameType type,
                       const ResponsePayload& payload);
  void drain();
  void bumpStat(int64_t ServerStats::*field, int64_t delta = 1);

  // Worker side.
  void workerLoop();
  [[nodiscard]] bool admit(Job job);  // false: queue full (caller sheds)

  ServerConfig config_;
  ThreadPool& pool_;
  RequestHandler handler_;
  EventLoop loop_;
  WallTimer clock_;

  Fd listener_;
  Endpoint bound_;
  bool started_ = false;
  bool draining_ = false;
  std::atomic<bool> stopRequested_{false};

  uint64_t nextConnId_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;

  mutable std::mutex queueMu_;
  std::condition_variable queueCv_;
  std::deque<Job> queue_;
  bool stopWorkers_ = false;
  std::thread pumpThread_;  // runs pool_.parallelFor over workerLoop

  std::mutex completionMu_;
  std::vector<Completion> completions_;
  std::atomic<int> inFlightJobs_{0};  // admitted, response not yet queued

  mutable std::mutex statsMu_;
  ServerStats stats_;
};

}  // namespace aviv::net
