#include "net/frame.h"

#include "support/error.h"
#include "support/hash.h"
#include "support/serial.h"

namespace aviv::net {

const char* frameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kRequest: return "request";
    case FrameType::kOk: return "ok";
    case FrameType::kHit: return "hit";
    case FrameType::kDegraded: return "degraded";
    case FrameType::kQuarantined: return "quarantined";
    case FrameType::kError: return "error";
    case FrameType::kRetryAfter: return "retry-after";
    case FrameType::kHeartbeat: return "heartbeat";
  }
  return "unknown";
}

bool isResponseType(FrameType type) {
  switch (type) {
    case FrameType::kOk:
    case FrameType::kHit:
    case FrameType::kDegraded:
    case FrameType::kQuarantined:
    case FrameType::kError:
    case FrameType::kRetryAfter:
      return true;
    case FrameType::kRequest:
    case FrameType::kHeartbeat:
      return false;
  }
  return false;
}

namespace {

bool validType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(FrameType::kRequest) &&
         raw <= static_cast<uint8_t>(FrameType::kHeartbeat);
}

}  // namespace

std::string encodeFrame(FrameType type, std::string_view payload) {
  ByteWriter w;
  w.u32(kFrameMagic);
  w.u16(kFrameVersion);
  w.u8(static_cast<uint8_t>(type));
  w.u8(0);  // reserved
  w.u64(payload.size());
  w.u64(hash64(payload.data(), payload.size()));
  std::string out = w.take();
  out.append(payload.data(), payload.size());
  return out;
}

void FrameDecoder::feed(const char* data, size_t n) {
  if (poisoned_) return;  // the connection is dead; stop buffering
  // Compact the consumed prefix before it can dominate the buffer.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Status FrameDecoder::next(Frame* out) {
  if (poisoned_) return Status::kError;
  if (buffered() < kFrameHeaderBytes) return Status::kNeedMore;

  ByteReader header(std::string_view(buf_).substr(pos_, kFrameHeaderBytes));
  const uint32_t magic = header.u32();
  const uint16_t version = header.u16();
  const uint8_t rawType = header.u8();
  const uint8_t reserved = header.u8();
  const uint64_t payloadSize = header.u64();
  const uint64_t checksum = header.u64();

  auto poison = [&](const std::string& message) {
    poisoned_ = true;
    error_ = message;
    buf_.clear();
    pos_ = 0;
    return Status::kError;
  };

  if (magic != kFrameMagic) return poison("frame: bad magic");
  if (version != kFrameVersion)
    return poison("frame: unsupported version " + std::to_string(version));
  if (!validType(rawType))
    return poison("frame: unknown type " + std::to_string(rawType));
  if (reserved != 0) return poison("frame: nonzero reserved byte");
  // The cap check uses only the 24 header bytes: an attacker declaring a
  // huge payload is rejected before one payload byte is buffered, let
  // alone allocated.
  if (payloadSize > maxPayload_)
    return poison("frame: declared payload " + std::to_string(payloadSize) +
                  " exceeds cap " + std::to_string(maxPayload_));

  if (buffered() < kFrameHeaderBytes + payloadSize) return Status::kNeedMore;

  const std::string_view payload =
      std::string_view(buf_).substr(pos_ + kFrameHeaderBytes,
                                    static_cast<size_t>(payloadSize));
  if (hash64(payload.data(), payload.size()) != checksum)
    return poison("frame: payload checksum mismatch");

  out->type = static_cast<FrameType>(rawType);
  out->payload.assign(payload.data(), payload.size());
  pos_ += kFrameHeaderBytes + static_cast<size_t>(payloadSize);
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return Status::kFrame;
}

std::string encodeRequestPayload(const RequestPayload& p) {
  ByteWriter w;
  w.u64(p.id);
  w.u8(p.wantAsm ? 1 : 0);
  w.str(p.line);
  return w.take();
}

RequestPayload decodeRequestPayload(std::string_view data) {
  ByteReader r(data);
  RequestPayload p;
  p.id = r.u64();
  p.wantAsm = r.u8() != 0;
  p.line = r.str();
  if (!r.atEnd()) throw Error("request payload: trailing bytes");
  return p;
}

std::string encodeResponsePayload(const ResponsePayload& p) {
  ByteWriter w;
  w.u64(p.id);
  w.u64(p.wallMicros);
  w.u64(p.queueMicros);
  w.str(p.detail);
  w.str(p.body);
  return w.take();
}

ResponsePayload decodeResponsePayload(std::string_view data) {
  ByteReader r(data);
  ResponsePayload p;
  p.id = r.u64();
  p.wallMicros = r.u64();
  p.queueMicros = r.u64();
  p.detail = r.str();
  p.body = r.str();
  if (!r.atEnd()) throw Error("response payload: trailing bytes");
  return p;
}

}  // namespace aviv::net
