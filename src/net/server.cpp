#include "net/server.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/failpoint.h"

namespace aviv::net {

CompileServer::CompileServer(ServerConfig config, ThreadPool& pool,
                             RequestHandler handler)
    : config_(std::move(config)),
      pool_(pool),
      handler_(std::move(handler)),
      loop_(config_.backend) {
  AVIV_CHECK(config_.queueCapacity >= 1);
  AVIV_CHECK(handler_ != nullptr);
}

CompileServer::~CompileServer() {
  {
    std::lock_guard<std::mutex> lock(queueMu_);
    stopWorkers_ = true;
    queue_.clear();
  }
  queueCv_.notify_all();
  if (pumpThread_.joinable()) pumpThread_.join();
}

Endpoint CompileServer::start() {
  AVIV_CHECK(!started_);
  raiseFdLimit();
  listener_ = listenOn(config_.listen, config_.backlog, &bound_);
  loop_.add(listener_.get(), EventLoop::kRead,
            [this](uint32_t) { onAcceptable(); });
  // Workers: each of the pool's participants runs one workerLoop until the
  // server stops — the bounded queue feeds the session ThreadPool.
  pumpThread_ = std::thread([this] {
    pool_.parallelFor(static_cast<size_t>(pool_.parallelism()),
                      [this](size_t, int) { workerLoop(); });
  });
  started_ = true;
  return bound_;
}

void CompileServer::requestStop() {
  stopRequested_.store(true, std::memory_order_relaxed);
  loop_.wakeup();
}

ServerStats CompileServer::stats() const {
  std::lock_guard<std::mutex> lock(statsMu_);
  return stats_;
}

int CompileServer::queueDepth() const {
  std::lock_guard<std::mutex> lock(queueMu_);
  return static_cast<int>(queue_.size());
}

void CompileServer::serve(const volatile std::sig_atomic_t* stopFlag) {
  AVIV_CHECK(started_);
  for (;;) {
    if (stopRequested_.load(std::memory_order_relaxed)) break;
    if (stopFlag != nullptr && *stopFlag != 0) break;
    loop_.runOnce(config_.pollIntervalMs);
    drainCompletions();
  }
  drain();
}

void CompileServer::bumpStat(int64_t ServerStats::*field, int64_t delta) {
  std::lock_guard<std::mutex> lock(statsMu_);
  stats_.*field += delta;
}

// --- accept path ----------------------------------------------------------

void CompileServer::onAcceptable() {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      // EMFILE, ECONNABORTED, ...: count and keep serving — an accept
      // failure must never take down the loop.
      bumpStat(&ServerStats::acceptErrors);
      return;
    }
    Fd accepted(fd);
    if (FailPoints::instance().shouldFail("net-accept")) {
      // Injected accept failure: the connection is dropped before any
      // frame is read; the client sees a clean close and reconnects.
      bumpStat(&ServerStats::acceptErrors);
      continue;
    }
    try {
      setNonBlocking(accepted.get());
    } catch (const Error&) {
      bumpStat(&ServerStats::acceptErrors);
      continue;
    }
    const uint64_t connId = nextConnId_++;
    auto conn = std::make_unique<Connection>(config_.maxFrameBytes);
    conn->id = connId;
    conn->fd = std::move(accepted);
    const int connFd = conn->fd.get();
    connections_.emplace(connId, std::move(conn));
    loop_.add(connFd, EventLoop::kRead, [this, connId](uint32_t ready) {
      onConnectionEvent(connId, ready);
    });
    if (metrics::on())
      metrics::Registry::instance().counter("net.accepted").add(1);
    bumpStat(&ServerStats::accepted);
  }
}

// --- connection I/O -------------------------------------------------------
// Discipline: only closeConnection() erases a connection, and only
// flushConnection(id)/closeConnection(id) are called while no Connection&
// is held — every path re-validates through the id map after either.

void CompileServer::onConnectionEvent(uint64_t connId, uint32_t ready) {
  if ((ready & EventLoop::kWrite) != 0 && !flushConnection(connId)) return;
  auto it = connections_.find(connId);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if ((ready & EventLoop::kRead) != 0 && !conn.readPaused && !conn.closing &&
      !draining_)
    readFromConnection(connId);
}

void CompileServer::readFromConnection(uint64_t connId) {
  char buf[64 << 10];
  for (;;) {
    auto it = connections_.find(connId);
    if (it == connections_.end()) return;
    Connection& conn = *it->second;
    if (conn.readPaused || conn.closing) return;

    if (FailPoints::instance().shouldFail("net-read")) {
      // Injected read failure — same recovery as a hard socket error: the
      // connection is dropped, the server keeps serving everyone else.
      bumpStat(&ServerStats::readErrors);
      closeConnection(connId);
      return;
    }
    const IoResult io = readSome(conn.fd.get(), buf, sizeof(buf));
    if (io.wouldBlock) return;
    if (io.error != 0) {
      bumpStat(&ServerStats::readErrors);
      closeConnection(connId);
      return;
    }
    if (io.eof) {
      if (conn.decoder.midFrame()) {
        // Torn mid-frame close: the buffered request prefix can never
        // complete, and the peer is gone — drop it.
        bumpStat(&ServerStats::tornConnections);
        closeConnection(connId);
        return;
      }
      // Half-close: the client is done sending but may still be reading
      // (shutdown(SHUT_WR) idiom). Answer what was admitted, then close.
      conn.closing = true;
      updateBackpressure(conn);
      if (conn.inFlight == 0 && conn.pendingOut() == 0)
        closeConnection(connId);
      else
        flushConnection(connId);
      return;
    }
    conn.decoder.feed(buf, static_cast<size_t>(io.n));

    Frame frame;
    for (;;) {
      const FrameDecoder::Status status = conn.decoder.next(&frame);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kError) {
        // Protocol violation: answer with a final error frame (id 0 — the
        // stream is unparseable, so no request id exists) and close once
        // it flushes.
        bumpStat(&ServerStats::frameErrors);
        ResponsePayload payload;
        payload.detail = conn.decoder.error();
        enqueueResponse(conn, FrameType::kError, payload);
        conn.closing = true;
        updateBackpressure(conn);
        flushConnection(connId);
        return;
      }
      handleFrame(conn, std::move(frame));
      if (conn.closing || conn.readPaused) {
        flushConnection(connId);
        return;
      }
    }
    // Flush shed/error responses produced while decoding, then continue
    // reading; flushConnection may close, so the loop re-validates.
    if (conn.pendingOut() > 0 && !flushConnection(connId)) return;
  }
}

void CompileServer::handleFrame(Connection& conn, Frame frame) {
  if (frame.type != FrameType::kRequest) {
    bumpStat(&ServerStats::frameErrors);
    conn.closing = true;
    return;
  }
  RequestPayload request;
  try {
    request = decodeRequestPayload(frame.payload);
  } catch (const Error& e) {
    bumpStat(&ServerStats::frameErrors);
    ResponsePayload payload;
    payload.detail = e.what();
    enqueueResponse(conn, FrameType::kError, payload);
    conn.closing = true;
    return;
  }

  bumpStat(&ServerStats::requests);
  if (metrics::on())
    metrics::Registry::instance().counter("net.requests").add(1);

  Job job;
  job.connId = conn.id;
  job.request.id = request.id;
  job.request.wantAsm = request.wantAsm;
  job.request.line = std::move(request.line);
  job.enqueueSeconds = clock_.seconds();
  if (!admit(std::move(job))) {
    // Load shed: answer immediately instead of queueing without bound.
    bumpStat(&ServerStats::shed);
    if (metrics::on())
      metrics::Registry::instance().counter("net.shed").add(1);
    trace::instant("net", "net.shed");
    ResponsePayload payload;
    payload.id = request.id;
    payload.detail = "queue full; retry after " +
                     std::to_string(config_.retryAfterMs) + "ms";
    enqueueResponse(conn, FrameType::kRetryAfter, payload);
    return;
  }
  ++conn.inFlight;
}

bool CompileServer::admit(Job job) {
  {
    std::lock_guard<std::mutex> lock(queueMu_);
    if (static_cast<int>(queue_.size()) >= config_.queueCapacity)
      return false;
    queue_.push_back(std::move(job));
    inFlightJobs_.fetch_add(1, std::memory_order_relaxed);
    const auto depth = static_cast<int64_t>(queue_.size());
    std::lock_guard<std::mutex> statsLock(statsMu_);
    stats_.maxQueueDepth = std::max(stats_.maxQueueDepth, depth);
  }
  queueCv_.notify_one();
  return true;
}

// --- worker side ----------------------------------------------------------

void CompileServer::workerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queueMu_);
      queueCv_.wait(lock, [this] { return stopWorkers_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopWorkers_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const double queueSeconds = clock_.seconds() - job.enqueueSeconds;
    NetResponse response;
    double wallSeconds = 0;
    {
      trace::Span span("net", "net.request");
      span.arg("queue_us", static_cast<int64_t>(queueSeconds * 1e6));
      const WallTimer timer;
      try {
        response = handler_(job.request);
      } catch (const std::exception& e) {
        // Backstop: handlers are supposed to catch their own failures.
        response.type = FrameType::kError;
        response.detail = e.what();
        response.body.clear();
      }
      wallSeconds = timer.seconds();
    }
    if (response.crashRetries > 0) bumpStat(&ServerStats::crashRetried);
    if (metrics::on()) {
      auto& registry = metrics::Registry::instance();
      registry.histogram("net.request.wall.us")
          .record(static_cast<int64_t>(wallSeconds * 1e6));
      registry.histogram("net.request.queue.us")
          .record(static_cast<int64_t>(queueSeconds * 1e6));
    }

    ResponsePayload payload;
    payload.id = job.request.id;
    payload.wallMicros = static_cast<uint64_t>(wallSeconds * 1e6);
    payload.queueMicros = static_cast<uint64_t>(queueSeconds * 1e6);
    payload.detail = std::move(response.detail);
    payload.body = std::move(response.body);
    Completion completion;
    completion.connId = job.connId;
    completion.type = response.type;
    completion.frame =
        encodeFrame(response.type, encodeResponsePayload(payload));
    {
      std::lock_guard<std::mutex> lock(completionMu_);
      completions_.push_back(std::move(completion));
    }
    inFlightJobs_.fetch_sub(1, std::memory_order_relaxed);
    loop_.wakeup();
  }
}

// --- completion + write path ----------------------------------------------

void CompileServer::drainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completionMu_);
    batch.swap(completions_);
  }
  std::vector<uint64_t> touched;
  for (Completion& completion : batch) {
    switch (completion.type) {
      case FrameType::kOk: bumpStat(&ServerStats::ok); break;
      case FrameType::kHit: bumpStat(&ServerStats::hits); break;
      case FrameType::kDegraded: bumpStat(&ServerStats::degraded); break;
      case FrameType::kQuarantined:
        bumpStat(&ServerStats::quarantined);
        break;
      case FrameType::kError: bumpStat(&ServerStats::errors); break;
      default: break;
    }
    auto it = connections_.find(completion.connId);
    if (it == connections_.end()) {
      // The client vanished before its answer was ready.
      bumpStat(&ServerStats::droppedResponses);
      continue;
    }
    Connection& conn = *it->second;
    AVIV_CHECK(conn.inFlight > 0);
    --conn.inFlight;
    conn.outbuf.append(completion.frame);
    bumpStat(&ServerStats::responses);
    touched.push_back(completion.connId);
  }
  for (const uint64_t connId : touched) flushConnection(connId);
}

void CompileServer::enqueueResponse(Connection& conn, FrameType type,
                                    const ResponsePayload& payload) {
  bumpStat(&ServerStats::responses);
  if (type == FrameType::kError) bumpStat(&ServerStats::errors);
  conn.outbuf.append(encodeFrame(type, encodeResponsePayload(payload)));
  updateBackpressure(conn);
}

bool CompileServer::flushConnection(uint64_t connId) {
  auto it = connections_.find(connId);
  if (it == connections_.end()) return false;
  Connection& conn = *it->second;
  while (conn.pendingOut() > 0) {
    if (FailPoints::instance().shouldFail("net-write")) {
      // Injected transient write failure: leave the buffer in place; the
      // write interest below retries on the next writable event.
      bumpStat(&ServerStats::writeErrors);
      break;
    }
    const IoResult io = writeSome(
        conn.fd.get(), conn.outbuf.data() + conn.outPos, conn.pendingOut());
    if (io.wouldBlock) break;
    if (io.error != 0) {
      bumpStat(&ServerStats::writeErrors);
      closeConnection(connId);
      return false;
    }
    conn.outPos += static_cast<size_t>(io.n);
  }
  if (conn.pendingOut() == 0) {
    conn.outbuf.clear();
    conn.outPos = 0;
    if (conn.closing && conn.inFlight == 0) {
      closeConnection(connId);
      return false;
    }
  } else if (conn.outPos > (1u << 20)) {
    // Compact the flushed prefix so a slow reader cannot pin it forever.
    conn.outbuf.erase(0, conn.outPos);
    conn.outPos = 0;
  }
  updateBackpressure(conn);
  return true;
}

void CompileServer::updateBackpressure(Connection& conn) {
  const size_t pending = conn.pendingOut();
  if (!conn.readPaused && !conn.closing && pending > config_.writeHighWater) {
    conn.readPaused = true;
    bumpStat(&ServerStats::readPauses);
  } else if (conn.readPaused && pending < config_.writeLowWater) {
    conn.readPaused = false;
  }
  uint32_t interest = 0;
  if (!conn.readPaused && !conn.closing && !draining_)
    interest |= EventLoop::kRead;
  if (pending > 0) interest |= EventLoop::kWrite;
  loop_.modify(conn.fd.get(), interest);
}

void CompileServer::closeConnection(uint64_t connId) {
  auto it = connections_.find(connId);
  if (it == connections_.end()) return;
  loop_.remove(it->second->fd.get());
  connections_.erase(it);
  bumpStat(&ServerStats::connectionsClosed);
}

// --- graceful drain -------------------------------------------------------

void CompileServer::drain() {
  draining_ = true;
  if (listener_.valid()) {
    loop_.remove(listener_.get());
    listener_.reset();
    if (config_.listen.isUnix) ::unlink(config_.listen.path.c_str());
  }
  // Stop reading everywhere: admitted work finishes, new bytes park in the
  // kernel buffers until the close.
  for (auto& [connId, conn] : connections_)
    loop_.modify(conn->fd.get(),
                 conn->pendingOut() > 0 ? EventLoop::kWrite : 0u);

  const WallTimer drainTimer;
  for (;;) {
    drainCompletions();
    bool outputPending = false;
    for (auto& [connId, conn] : connections_)
      if (conn->pendingOut() > 0) outputPending = true;
    const bool queueEmpty = queueDepth() == 0;
    const bool workIdle = inFlightJobs_.load(std::memory_order_relaxed) == 0;
    bool completionsEmpty;
    {
      std::lock_guard<std::mutex> lock(completionMu_);
      completionsEmpty = completions_.empty();
    }
    if (queueEmpty && workIdle && completionsEmpty && !outputPending) break;
    if (drainTimer.millis() > config_.drainTimeoutMs) {
      // Give up on stalled peers; count their unstarted requests as
      // dropped so the loss is visible.
      std::lock_guard<std::mutex> lock(queueMu_);
      inFlightJobs_.fetch_sub(static_cast<int>(queue_.size()),
                              std::memory_order_relaxed);
      bumpStat(&ServerStats::droppedResponses,
               static_cast<int64_t>(queue_.size()));
      queue_.clear();
      break;
    }
    loop_.runOnce(config_.pollIntervalMs);
  }

  {
    std::lock_guard<std::mutex> lock(queueMu_);
    stopWorkers_ = true;
  }
  queueCv_.notify_all();
  if (pumpThread_.joinable()) pumpThread_.join();
  drainCompletions();  // responses for connections we are about to close

  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (auto& [connId, conn] : connections_) ids.push_back(connId);
  for (const uint64_t connId : ids) closeConnection(connId);
}

}  // namespace aviv::net
