// Block-language emitter: renders a BlockDag back into source text that
// parseBlock accepts and that evaluates identically under the reference
// interpreter. Used by the verification guardrail to write self-contained
// quarantine artifacts (src/verify/quarantine.h): the replayed artifact
// re-parses this text instead of trusting any binary IR dump.
//
// The emission is semantic, not structural: re-parsing value-numbers the
// nodes again, so shared subexpressions may get different ids, but
// evalDagOutputs over the round-tripped DAG is identical for all inputs.
#pragma once

#include <string>

#include "ir/dag.h"

namespace aviv {

[[nodiscard]] std::string emitBlockText(const BlockDag& dag);

}  // namespace aviv
