#include "ir/emit.h"

#include <set>

#include "support/error.h"

namespace aviv {

namespace {

// Infix spelling for the ops the block language writes as operators;
// nullptr for the intrinsic-call ops (min/max/abs/mac/msu).
const char* infixSpelling(Op op) {
  switch (op) {
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kMod: return "%";
    case Op::kAnd: return "&";
    case Op::kOr: return "|";
    case Op::kXor: return "^";
    case Op::kShl: return "<<";
    case Op::kShr: return ">>";
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    default: return nullptr;
  }
}

std::string lowerName(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return out;
}

}  // namespace

std::string emitBlockText(const BlockDag& dag) {
  // Temp-name prefix that cannot collide with any input name: one more
  // leading underscore than the longest underscore run opening an input.
  std::string prefix = "_t";
  for (const DagNode& node : dag.nodes()) {
    if (node.op != Op::kInput) continue;
    size_t run = 0;
    while (run < node.name.size() && node.name[run] == '_') ++run;
    if (run + 1 >= prefix.size()) prefix = std::string(run + 1, '_') + "t";
  }

  // Per-node reference expression. Leaves inline (name / literal); op nodes
  // get a temp statement and are referenced by temp name.
  std::vector<std::string> ref(dag.size());
  std::string body;
  for (NodeId id = 0; id < dag.size(); ++id) {
    const DagNode& node = dag.node(id);
    if (node.op == Op::kInput) {
      ref[id] = node.name;
      continue;
    }
    if (node.op == Op::kConst) {
      ref[id] = node.value < 0
                    ? "(0 - " + std::to_string(-(node.value + 1)) + " - 1)"
                    : std::to_string(node.value);
      continue;
    }
    const std::string temp = prefix + std::to_string(id);
    std::string expr;
    if (const char* spelling = infixSpelling(node.op)) {
      expr = "(" + ref[node.operands[0]] + " " + spelling + " " +
             ref[node.operands[1]] + ")";
    } else if (node.op == Op::kNeg) {
      expr = "(0 - " + ref[node.operands[0]] + ")";
    } else if (node.op == Op::kCompl) {
      expr = "(~" + ref[node.operands[0]] + ")";
    } else {
      // Intrinsic call: min/max/abs/mac/msu.
      expr = lowerName(opName(node.op)) + "(";
      for (size_t i = 0; i < node.operands.size(); ++i) {
        if (i > 0) expr += ", ";
        expr += ref[node.operands[i]];
      }
      expr += ")";
    }
    body += "  " + temp + " = " + expr + ";\n";
    ref[id] = temp;
  }

  std::string text = "block " + dag.name() + " {\n";
  const std::vector<std::string> inputs = dag.inputNames();
  if (!inputs.empty()) {
    text += "  input";
    for (size_t i = 0; i < inputs.size(); ++i)
      text += (i == 0 ? " " : ", ") + inputs[i];
    text += ";\n";
  }
  if (!dag.outputs().empty()) {
    text += "  output";
    bool first = true;
    for (const auto& [name, id] : dag.outputs()) {
      text += (first ? " " : ", ") + name;
      first = false;
    }
    text += ";\n";
  }
  text += body;
  for (const auto& [name, id] : dag.outputs()) {
    if (ref[id] == name) continue;  // output marks an input of the same name
    text += "  " + name + " = " + ref[id] + ";\n";
  }
  text += "}\n";
  return text;
}

}  // namespace aviv
