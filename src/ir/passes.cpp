#include "ir/passes.h"

#include "support/error.h"

namespace aviv {

namespace {

// Incremental rebuild of a DAG under a node remapping.
class Rewriter {
 public:
  explicit Rewriter(const BlockDag& in)
      : in_(in), out_(in.name(), /*cse=*/true), map_(in.size(), kNoNode) {}

  [[nodiscard]] NodeId mapped(NodeId oldId) const {
    AVIV_CHECK(map_[oldId] != kNoNode);
    return map_[oldId];
  }
  void setMapped(NodeId oldId, NodeId newId) { map_[oldId] = newId; }
  [[nodiscard]] bool isMapped(NodeId oldId) const {
    return map_[oldId] != kNoNode;
  }

  BlockDag finish() {
    for (const auto& [outName, outId] : in_.outputs())
      out_.markOutput(outName, mapped(outId));
    return std::move(out_);
  }

  BlockDag& out() { return out_; }

 private:
  const BlockDag& in_;
  BlockDag out_;
  std::vector<NodeId> map_;
};

bool isConst(const BlockDag& dag, NodeId id, int64_t value) {
  const DagNode& n = dag.node(id);
  return n.op == Op::kConst && n.value == value;
}

// Algebraic simplification of `op` applied to already-rewritten operand ids
// in `out`. Returns kNoNode when no identity applies.
NodeId trySimplify(BlockDag& out, Op op, const std::vector<NodeId>& ops) {
  const auto a = ops.size() > 0 ? ops[0] : kNoNode;
  const auto b = ops.size() > 1 ? ops[1] : kNoNode;
  switch (op) {
    case Op::kAdd:
      if (isConst(out, a, 0)) return b;
      if (isConst(out, b, 0)) return a;
      break;
    case Op::kSub:
      if (isConst(out, b, 0)) return a;
      if (a == b) return out.addConst(0);
      break;
    case Op::kMul:
      if (isConst(out, a, 1)) return b;
      if (isConst(out, b, 1)) return a;
      if (isConst(out, a, 0) || isConst(out, b, 0)) return out.addConst(0);
      break;
    case Op::kDiv:
      if (isConst(out, b, 1)) return a;
      break;
    case Op::kAnd:
      if (a == b) return a;
      if (isConst(out, a, 0) || isConst(out, b, 0)) return out.addConst(0);
      if (isConst(out, a, -1)) return b;
      if (isConst(out, b, -1)) return a;
      break;
    case Op::kOr:
      if (a == b) return a;
      if (isConst(out, a, 0)) return b;
      if (isConst(out, b, 0)) return a;
      break;
    case Op::kXor:
      if (a == b) return out.addConst(0);
      if (isConst(out, a, 0)) return b;
      if (isConst(out, b, 0)) return a;
      break;
    case Op::kShl:
    case Op::kShr:
      if (isConst(out, b, 0)) return a;
      break;
    case Op::kMin:
    case Op::kMax:
      if (a == b) return a;
      break;
    default:
      break;
  }
  return kNoNode;
}

}  // namespace

BlockDag foldConstants(const BlockDag& dag) {
  Rewriter rw(dag);
  for (NodeId id = 0; id < dag.size(); ++id) {
    const DagNode& n = dag.node(id);
    if (n.op == Op::kConst) {
      rw.setMapped(id, rw.out().addConst(n.value));
      continue;
    }
    if (n.op == Op::kInput) {
      rw.setMapped(id, rw.out().addInput(n.name));
      continue;
    }
    std::vector<NodeId> newOps;
    newOps.reserve(n.operands.size());
    bool allConst = true;
    for (NodeId operand : n.operands) {
      const NodeId mapped = rw.mapped(operand);
      newOps.push_back(mapped);
      allConst &= rw.out().node(mapped).op == Op::kConst;
    }
    if (allConst) {
      int64_t vals[3] = {0, 0, 0};
      for (size_t i = 0; i < newOps.size(); ++i)
        vals[i] = rw.out().node(newOps[i]).value;
      rw.setMapped(id,
                   rw.out().addConst(evalOp(n.op, vals[0], vals[1], vals[2])));
      continue;
    }
    if (const NodeId simplified = trySimplify(rw.out(), n.op, newOps);
        simplified != kNoNode) {
      rw.setMapped(id, simplified);
      continue;
    }
    rw.setMapped(id, rw.out().addOp(n.op, std::move(newOps)));
  }
  return rw.finish();
}

BlockDag eliminateDeadCode(const BlockDag& dag) {
  std::vector<bool> live(dag.size(), false);
  std::vector<NodeId> stack;
  for (const auto& [outName, outId] : dag.outputs()) {
    if (!live[outId]) {
      live[outId] = true;
      stack.push_back(outId);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId operand : dag.node(id).operands) {
      if (!live[operand]) {
        live[operand] = true;
        stack.push_back(operand);
      }
    }
  }

  Rewriter rw(dag);
  for (NodeId id = 0; id < dag.size(); ++id) {
    const DagNode& n = dag.node(id);
    if (n.op == Op::kInput) {
      // Inputs survive DCE: they define the block signature.
      rw.setMapped(id, rw.out().addInput(n.name));
      continue;
    }
    if (!live[id]) continue;
    if (n.op == Op::kConst) {
      rw.setMapped(id, rw.out().addConst(n.value));
      continue;
    }
    std::vector<NodeId> newOps;
    for (NodeId operand : n.operands) newOps.push_back(rw.mapped(operand));
    rw.setMapped(id, rw.out().addOp(n.op, std::move(newOps)));
  }
  return rw.finish();
}

namespace {

// Exponent k when value == 2^k and k >= 1; -1 otherwise.
int powerOfTwoExponent(int64_t value) {
  if (value < 2) return -1;
  const auto uvalue = static_cast<uint64_t>(value);
  if ((uvalue & (uvalue - 1)) != 0) return -1;
  int k = 0;
  while ((uvalue >> k) != 1) ++k;
  return k;
}

}  // namespace

BlockDag strengthReduce(const BlockDag& dag,
                        const std::function<bool(Op)>& machineImplements) {
  Rewriter rw(dag);
  for (NodeId id = 0; id < dag.size(); ++id) {
    const DagNode& n = dag.node(id);
    if (n.op == Op::kConst) {
      rw.setMapped(id, rw.out().addConst(n.value));
      continue;
    }
    if (n.op == Op::kInput) {
      rw.setMapped(id, rw.out().addInput(n.name));
      continue;
    }
    std::vector<NodeId> ops;
    for (NodeId operand : n.operands) ops.push_back(rw.mapped(operand));

    if (n.op == Op::kMul) {
      // Normalize the constant side.
      NodeId value = kNoNode;
      int64_t factor = 0;
      for (int side = 0; side < 2; ++side) {
        const DagNode& candidate = rw.out().node(ops[static_cast<size_t>(side)]);
        if (candidate.op == Op::kConst) {
          factor = candidate.value;
          value = ops[static_cast<size_t>(1 - side)];
        }
      }
      const int k = value != kNoNode ? powerOfTwoExponent(factor) : -1;
      if (k >= 1 && machineImplements(Op::kShl)) {
        rw.setMapped(id, rw.out().addOp(Op::kShl,
                                        {value, rw.out().addConst(k)}));
        continue;
      }
      if (k == 1 && machineImplements(Op::kAdd)) {
        rw.setMapped(id, rw.out().addOp(Op::kAdd, {value, value}));
        continue;
      }
    }
    rw.setMapped(id, rw.out().addOp(n.op, std::move(ops)));
  }
  return rw.finish();
}

BlockDag optimize(const BlockDag& dag) {
  BlockDag current = foldConstants(dag);
  while (true) {
    BlockDag next = eliminateDeadCode(foldConstants(current));
    if (next.size() == current.size()) return next;
    current = std::move(next);
  }
}

}  // namespace aviv
