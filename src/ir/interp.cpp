#include "ir/interp.h"

#include "support/error.h"

namespace aviv {

std::vector<int64_t> evalDag(const BlockDag& dag,
                             const std::map<std::string, int64_t>& inputs) {
  std::vector<int64_t> values(dag.size(), 0);
  for (NodeId id = 0; id < dag.size(); ++id) {
    const DagNode& n = dag.node(id);
    switch (n.op) {
      case Op::kConst:
        values[id] = n.value;
        break;
      case Op::kInput: {
        const auto it = inputs.find(n.name);
        if (it == inputs.end())
          throw Error("missing value for input '" + n.name + "' of block '" +
                      dag.name() + "'");
        values[id] = it->second;
        break;
      }
      default: {
        int64_t a = 0;
        int64_t b = 0;
        int64_t c = 0;
        const auto& ops = n.operands;
        if (ops.size() > 0) a = values[ops[0]];
        if (ops.size() > 1) b = values[ops[1]];
        if (ops.size() > 2) c = values[ops[2]];
        values[id] = evalOp(n.op, a, b, c);
        break;
      }
    }
  }
  return values;
}

std::map<std::string, int64_t> evalDagOutputs(
    const BlockDag& dag, const std::map<std::string, int64_t>& inputs) {
  const std::vector<int64_t> values = evalDag(dag, inputs);
  std::map<std::string, int64_t> out;
  for (const auto& [outName, outId] : dag.outputs()) out[outName] = values[outId];
  return out;
}

std::map<std::string, int64_t> evalProgram(const Program& program,
                                           std::map<std::string, int64_t> vars,
                                           size_t maxSteps) {
  program.validate();
  size_t blockIdx = 0;
  for (size_t step = 0; step < maxSteps; ++step) {
    const BlockDag& dag = program.block(blockIdx);
    const auto outs = evalDagOutputs(dag, vars);
    for (const auto& [outName, value] : outs) vars[outName] = value;

    const Terminator& term = program.terminator(blockIdx);
    switch (term.kind) {
      case TermKind::kReturn:
        return vars;
      case TermKind::kJump:
        blockIdx = program.blockIndex(term.target);
        break;
      case TermKind::kBranch:
        blockIdx = program.blockIndex(outs.at(term.condVar) != 0
                                          ? term.target
                                          : term.elseTarget);
        break;
    }
  }
  throw Error("program '" + program.name() + "' exceeded " +
              std::to_string(maxSteps) + " block executions");
}

}  // namespace aviv
