// Reference interpreter for BlockDags and Programs.
//
// This is the ground truth the instruction-level simulator's results are
// checked against: for random inputs, simulating the VLIW code AVIV emitted
// must produce exactly these values (DESIGN.md invariant "End-to-end").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/dag.h"
#include "ir/program.h"

namespace aviv {

// Values of every node given the named input bindings. Missing inputs are an
// error; extra bindings are ignored.
[[nodiscard]] std::vector<int64_t> evalDag(
    const BlockDag& dag, const std::map<std::string, int64_t>& inputs);

// Just the named outputs.
[[nodiscard]] std::map<std::string, int64_t> evalDagOutputs(
    const BlockDag& dag, const std::map<std::string, int64_t>& inputs);

// Executes a whole Program (multi-block with branches) starting at its entry
// block. Each block reads its inputs from `vars`, writes its outputs back to
// `vars`, then the terminator picks the next block. Returns the final
// variable environment. `maxSteps` bounds looping programs.
[[nodiscard]] std::map<std::string, int64_t> evalProgram(
    const Program& program, std::map<std::string, int64_t> vars,
    size_t maxSteps = 10000);

}  // namespace aviv
