#include "ir/program.h"

#include "support/error.h"

namespace aviv {

void Program::addBlock(BlockDag dag, Terminator term) {
  for (const BlockDag& existing : blocks_) {
    if (existing.name() == dag.name())
      throw Error("duplicate block name '" + dag.name() + "' in program '" +
                  name_ + "'");
  }
  blocks_.push_back(std::move(dag));
  terms_.push_back(std::move(term));
}

size_t Program::blockIndex(const std::string& blockName) const {
  for (size_t i = 0; i < blocks_.size(); ++i)
    if (blocks_[i].name() == blockName) return i;
  throw Error("no block named '" + blockName + "' in program '" + name_ +
              "'");
}

void Program::validate() const {
  if (blocks_.empty()) throw Error("program '" + name_ + "' has no blocks");
  for (size_t i = 0; i < blocks_.size(); ++i) {
    blocks_[i].verify();
    const Terminator& term = terms_[i];
    auto checkTarget = [&](const std::string& target) {
      (void)blockIndex(target);  // throws if absent
    };
    switch (term.kind) {
      case TermKind::kReturn:
        break;
      case TermKind::kJump:
        checkTarget(term.target);
        break;
      case TermKind::kBranch: {
        checkTarget(term.target);
        checkTarget(term.elseTarget);
        bool found = false;
        for (const auto& [outName, outId] : blocks_[i].outputs())
          found |= outName == term.condVar;
        if (!found)
          throw Error("branch condition '" + term.condVar +
                      "' is not an output of block '" + blocks_[i].name() +
                      "'");
        break;
      }
    }
  }
}

}  // namespace aviv
