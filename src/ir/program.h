// Program — a collection of basic blocks connected by control-flow edges,
// which is exactly the input the paper says AVIV receives from its front end
// ("a number of basic block DAGs connected through control flow
// information", Section II). Per Section III-C, block bodies go through the
// Split-Node DAG flow while the control-flow instructions themselves are
// covered by conventional (trivial tree) matching.
#pragma once

#include <string>
#include <vector>

#include "ir/dag.h"

namespace aviv {

enum class TermKind {
  kReturn,  // leave the program
  kJump,    // unconditional goto target
  kBranch,  // if (condVar != 0) goto target else elseTarget
};

struct Terminator {
  TermKind kind = TermKind::kReturn;
  std::string target;      // kJump / kBranch taken side
  std::string elseTarget;  // kBranch fall-through side
  std::string condVar;     // kBranch condition; must be an output of the block
};

class Program {
 public:
  explicit Program(std::string name) : name_(std::move(name)) {}

  // Appends a block; the first block added is the entry block.
  void addBlock(BlockDag dag, Terminator term);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] size_t numBlocks() const { return blocks_.size(); }
  [[nodiscard]] const BlockDag& block(size_t i) const { return blocks_.at(i); }
  [[nodiscard]] const Terminator& terminator(size_t i) const {
    return terms_.at(i);
  }
  // Index of a block by name; throws aviv::Error if absent.
  [[nodiscard]] size_t blockIndex(const std::string& blockName) const;

  // Checks that every branch target names an existing block and every branch
  // condition is an output of its block. Throws aviv::Error on violation
  // (these are user errors in the block source).
  void validate() const;

 private:
  std::string name_;
  std::vector<BlockDag> blocks_;
  std::vector<Terminator> terms_;
};

}  // namespace aviv
