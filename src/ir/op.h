// Machine-independent operation vocabulary.
//
// This is the op set shared by the IR DAGs (SUIF-like basic operations, paper
// Section II) and the ISDL machine descriptions (which declare, per
// functional unit, which of these ops the unit implements, plus complex ops
// like MAC that the pattern matcher maps onto multi-node IR subgraphs).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace aviv {

enum class Op : uint8_t {
  // Leaves (never implemented by a functional unit).
  kConst,  // integer literal; materialized as an immediate
  kInput,  // named live-in value; resides in data memory at block entry

  // Binary arithmetic / logic.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kMin,
  kMax,

  // Comparisons (produce 0/1; used by conditional branches).
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,

  // Unary.
  kNeg,    // two's complement negate
  kCompl,  // bitwise complement (the paper's COMPL example op)
  kAbs,

  // Complex machine ops produced by pattern matching (Section III-B).
  kMac,  // a * b + c
  kMsu,  // c - a * b
};

inline constexpr int kNumOps = static_cast<int>(Op::kMsu) + 1;

// Number of value operands the op consumes.
[[nodiscard]] int opArity(Op op);

// Canonical upper-case name as written in ISDL ("ADD", "MAC", ...).
[[nodiscard]] std::string_view opName(Op op);

// Inverse of opName; case-insensitive. nullopt for unknown names.
[[nodiscard]] std::optional<Op> opFromName(std::string_view name);

// True for ops a functional unit may implement (everything except leaves).
[[nodiscard]] bool isMachineOp(Op op);

// True for kConst / kInput.
[[nodiscard]] bool isLeafOp(Op op);

// True for ops that are commutative in their first two operands.
[[nodiscard]] bool isCommutative(Op op);

// Evaluates the op on int64 operands with wrap-around semantics.
// Division/modulo by zero yield 0 (fixed DSP-style semantics, documented in
// README) so that the reference interpreter and the simulator always agree.
[[nodiscard]] int64_t evalOp(Op op, int64_t a, int64_t b = 0, int64_t c = 0);

}  // namespace aviv
