// Random basic-block generator — synthetic workloads for property tests and
// scaling benchmarks (the paper's blocks top out at 16 nodes; these let us
// measure how the Split-Node DAG and clique generation scale beyond that).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/dag.h"

namespace aviv {

struct RandomDagSpec {
  int numInputs = 4;
  int numOps = 10;
  // Ops drawn uniformly from this set (must be binary/unary machine ops).
  std::vector<Op> opPool = {Op::kAdd, Op::kSub, Op::kMul};
  // Probability that an operand reuses an existing interior value rather
  // than a leaf (higher = deeper, more serial DAGs).
  double reuseBias = 0.6;
  // Minimum named outputs; every sink op becomes an output regardless (the
  // back end requires dead-code-free blocks).
  int numOutputs = 2;
  uint64_t seed = 1;
};

// Generates a connected random DAG matching the spec. Deterministic in the
// seed. All outputs are interior op values.
[[nodiscard]] BlockDag makeRandomDag(const RandomDagSpec& spec);

}  // namespace aviv
