#include "ir/op.h"

#include <algorithm>
#include <array>

#include "support/error.h"
#include "support/strings.h"

namespace aviv {

namespace {

struct OpInfo {
  std::string_view name;
  int arity;
  bool commutative;
};

constexpr std::array<OpInfo, kNumOps> kOpInfo = {{
    {"CONST", 0, false}, {"INPUT", 0, false}, {"ADD", 2, true},
    {"SUB", 2, false},   {"MUL", 2, true},    {"DIV", 2, false},
    {"MOD", 2, false},   {"AND", 2, true},    {"OR", 2, true},
    {"XOR", 2, true},    {"SHL", 2, false},   {"SHR", 2, false},
    {"MIN", 2, true},    {"MAX", 2, true},    {"EQ", 2, true},
    {"NE", 2, true},     {"LT", 2, false},    {"LE", 2, false},
    {"GT", 2, false},    {"GE", 2, false},    {"NEG", 1, false},
    {"COMPL", 1, false}, {"ABS", 1, false},   {"MAC", 3, false},
    {"MSU", 3, false},
}};

const OpInfo& info(Op op) {
  const auto i = static_cast<size_t>(op);
  AVIV_CHECK(i < kOpInfo.size());
  return kOpInfo[i];
}

// Wrap-around helpers: perform arithmetic in uint64 to avoid signed UB.
int64_t wrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
int64_t wrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}
int64_t wrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}

}  // namespace

int opArity(Op op) { return info(op).arity; }

std::string_view opName(Op op) { return info(op).name; }

std::optional<Op> opFromName(std::string_view name) {
  const std::string upper = toUpper(name);
  for (int i = 0; i < kNumOps; ++i) {
    if (kOpInfo[static_cast<size_t>(i)].name == upper)
      return static_cast<Op>(i);
  }
  return std::nullopt;
}

bool isMachineOp(Op op) { return !isLeafOp(op); }

bool isLeafOp(Op op) { return op == Op::kConst || op == Op::kInput; }

bool isCommutative(Op op) { return info(op).commutative; }

int64_t evalOp(Op op, int64_t a, int64_t b, int64_t c) {
  switch (op) {
    case Op::kConst:
    case Op::kInput:
      AVIV_UNREACHABLE("evalOp on leaf op");
    case Op::kAdd:
      return wrapAdd(a, b);
    case Op::kSub:
      return wrapSub(a, b);
    case Op::kMul:
      return wrapMul(a, b);
    case Op::kDiv:
      if (b == 0) return 0;
      if (a == INT64_MIN && b == -1) return INT64_MIN;  // wraps
      return a / b;
    case Op::kMod:
      if (b == 0) return 0;
      if (a == INT64_MIN && b == -1) return 0;
      return a % b;
    case Op::kAnd:
      return a & b;
    case Op::kOr:
      return a | b;
    case Op::kXor:
      return a ^ b;
    case Op::kShl:
      return static_cast<int64_t>(static_cast<uint64_t>(a)
                                  << (static_cast<uint64_t>(b) & 63));
    case Op::kShr:
      // Arithmetic shift right, masked shift amount.
      return a >> (static_cast<uint64_t>(b) & 63);
    case Op::kMin:
      return std::min(a, b);
    case Op::kMax:
      return std::max(a, b);
    case Op::kEq:
      return a == b ? 1 : 0;
    case Op::kNe:
      return a != b ? 1 : 0;
    case Op::kLt:
      return a < b ? 1 : 0;
    case Op::kLe:
      return a <= b ? 1 : 0;
    case Op::kGt:
      return a > b ? 1 : 0;
    case Op::kGe:
      return a >= b ? 1 : 0;
    case Op::kNeg:
      return wrapSub(0, a);
    case Op::kCompl:
      return ~a;
    case Op::kAbs:
      return a < 0 ? wrapSub(0, a) : a;
    case Op::kMac:
      return wrapAdd(wrapMul(a, b), c);
    case Op::kMsu:
      return wrapSub(c, wrapMul(a, b));
  }
  AVIV_UNREACHABLE("bad op");
}

}  // namespace aviv
