#include "ir/parser.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "support/io.h"
#include "support/lexer.h"

namespace aviv {

namespace {

const std::vector<std::string> kPuncts = {"<<", ">>", "==", "!=",
                                          "<=", ">=", "->"};

// ---------------------------------------------------------------------
// `repeat N { ... }` expansion, performed on the token stream before
// parsing. Substitutes "$i" inside identifiers with the iteration number.
// ---------------------------------------------------------------------

std::vector<Token> lexAll(std::string_view source) {
  Lexer lexer(source, kPuncts);
  std::vector<Token> tokens;
  while (true) {
    Token tok = lexer.next();
    const bool end = tok.is(Token::Kind::kEnd);
    tokens.push_back(std::move(tok));
    if (end) return tokens;
  }
}

Token substituteIndex(Token tok, int iteration) {
  if (!tok.is(Token::Kind::kIdent)) return tok;
  const std::string needle = "$i";
  std::string text = tok.text;
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    text.replace(pos, needle.size(), std::to_string(iteration));
  }
  if (text != tok.text) {
    // A bare "$i" becomes a plain number token. Substitution results too
    // long for int64 (e.g. "$i" pasted between digit runs) stay
    // identifiers — std::stoll would throw std::out_of_range, which is not
    // part of the error taxonomy.
    const bool allDigits =
        !text.empty() && std::all_of(text.begin(), text.end(), [](char c) {
          return std::isdigit(static_cast<unsigned char>(c));
        });
    if (allDigits && text.size() <= 18) {
      tok.kind = Token::Kind::kNumber;
      tok.number = std::stoll(text);
    }
    tok.text = std::move(text);
  }
  return tok;
}

std::vector<Token> expandRepeats(const std::vector<Token>& in) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < in.size()) {
    if (!in[i].isIdent("repeat")) {
      out.push_back(in[i++]);
      continue;
    }
    const SourceLoc repeatLoc = in[i].loc;
    ++i;
    if (i >= in.size() || !in[i].is(Token::Kind::kNumber))
      throw Error(repeatLoc, "repeat expects a literal count");
    const int64_t count = in[i].number;
    if (count < 1 || count > 1024)
      throw Error(in[i].loc, "repeat count must be in [1, 1024]");
    ++i;
    if (i >= in.size() || !in[i].isPunct("{"))
      throw Error(repeatLoc, "repeat expects '{'");
    ++i;
    // Collect the body up to the matching close brace.
    std::vector<Token> body;
    int depth = 1;
    while (i < in.size() && depth > 0) {
      if (in[i].isIdent("repeat"))
        throw Error(in[i].loc, "nested repeat is not supported");
      if (in[i].isPunct("{")) ++depth;
      if (in[i].isPunct("}")) {
        --depth;
        if (depth == 0) break;
      }
      body.push_back(in[i++]);
    }
    if (depth != 0) throw Error(repeatLoc, "unterminated repeat body");
    ++i;  // closing brace
    for (int64_t iter = 0; iter < count; ++iter)
      for (const Token& tok : body)
        out.push_back(substituteIndex(tok, static_cast<int>(iter)));
  }
  return out;
}

// ---------------------------------------------------------------------
// Recursive-descent expression/statement parser over the expanded tokens.
// ---------------------------------------------------------------------

// Diagnostic cap: a pathological input (fuzzer output, truncated file)
// should not produce an unbounded report.
constexpr size_t kMaxDiagnostics = 32;

class BlockParser {
 public:
  BlockParser(std::vector<Token> tokens, std::string sourceName)
      : tokens_(std::move(tokens)), sourceName_(std::move(sourceName)) {}

  Program parse(const std::string& programName) {
    Program program(programName);
    if (!peek().isIdent("block")) {
      recordDiag(peek().loc, "expected 'block', got " + peek().describe());
      throw ParseError(sourceName_, std::move(diags_));
    }
    // Collect blocks plus implicit fallthrough terminators.
    struct Parsed {
      BlockDag dag;
      Terminator term;
      bool explicitTerm;
    };
    std::vector<Parsed> parsed;
    while (!peek().is(Token::Kind::kEnd) &&
           diags_.size() < kMaxDiagnostics) {
      try {
        auto [dag, term, explicitTerm] = parseBlockDef();
        parsed.push_back({std::move(dag), std::move(term), explicitTerm});
      } catch (const ParseError&) {
        throw;  // already aggregated
      } catch (const Error& e) {
        // Panic-mode: record and resynchronize at the next 'block' header.
        recordDiag(toDiagnostic(e));
        while (!peek().is(Token::Kind::kEnd) && !peek().isIdent("block"))
          next();
      }
    }
    if (!diags_.empty()) throw ParseError(sourceName_, std::move(diags_));
    for (size_t i = 0; i < parsed.size(); ++i) {
      if (!parsed[i].explicitTerm && i + 1 < parsed.size()) {
        parsed[i].term.kind = TermKind::kJump;
        parsed[i].term.target = parsed[i + 1].dag.name();
      }
      program.addBlock(std::move(parsed[i].dag), std::move(parsed[i].term));
    }
    program.validate();
    return program;
  }

 private:
  struct BlockResult {
    BlockDag dag;
    Terminator term;
    bool explicitTerm;
  };

  BlockResult parseBlockDef() {
    expectIdentKeyword("block");
    const Token nameTok = expectIdent();
    BlockDag dag(nameTok.text);
    expectPunct("{");

    env_.clear();
    declaredOutputs_.clear();
    Terminator term;
    bool explicitTerm = false;
    const size_t diagsBefore = diags_.size();

    while (!peek().isPunct("}") && !peek().is(Token::Kind::kEnd) &&
           diags_.size() < kMaxDiagnostics) {
      if (explicitTerm) {
        recordDiag(peek().loc, "statements after block terminator");
        // One report per block, then skip to the closing brace.
        while (!peek().is(Token::Kind::kEnd) && !peek().isPunct("}")) next();
        break;
      }
      try {
        parseStatement(dag, term, explicitTerm);
      } catch (const Error& e) {
        // Panic-mode: record, then resynchronize after the next ';' (or
        // stop at '}' / 'block' / end so the enclosing loops regain
        // control).
        recordDiag(toDiagnostic(e));
        while (!peek().is(Token::Kind::kEnd) && !peek().isPunct("}") &&
               !peek().isIdent("block")) {
          if (next().isPunct(";")) break;
        }
        if (peek().isIdent("block")) {
          // Probably a missing '}': bail out of this block entirely.
          return {std::move(dag), std::move(term), explicitTerm};
        }
      }
    }
    expectPunct("}");

    // A block that produced diagnostics is structurally suspect: skip
    // output binding and verification (parse() throws before anything
    // downstream can consume the half-built DAG).
    if (diags_.size() > diagsBefore)
      return {std::move(dag), std::move(term), explicitTerm};

    for (const std::string& outName : declaredOutputs_) {
      const auto it = env_.find(outName);
      if (it == env_.end())
        throw Error(nameTok.loc,
                    "output '" + outName + "' never assigned in block '" +
                        nameTok.text + "'");
      dag.markOutput(outName, it->second);
    }
    dag.verify();
    return {std::move(dag), std::move(term), explicitTerm};
  }

  void parseStatement(BlockDag& dag, Terminator& term, bool& explicitTerm) {
      if (tryConsumeIdent("input")) {
        do {
          const Token var = expectIdent();
          env_[var.text] = dag.addInput(var.text);
        } while (tryConsume(","));
        expectPunct(";");
      } else if (tryConsumeIdent("output")) {
        do {
          const Token var = expectIdent();
          declaredOutputs_.insert(var.text);
        } while (tryConsume(","));
        expectPunct(";");
      } else if (tryConsumeIdent("goto")) {
        term.kind = TermKind::kJump;
        term.target = expectIdent().text;
        expectPunct(";");
        explicitTerm = true;
      } else if (tryConsumeIdent("return")) {
        term.kind = TermKind::kReturn;
        expectPunct(";");
        explicitTerm = true;
      } else if (peek().isIdent("if")) {
        next();
        term.kind = TermKind::kBranch;
        const Token cond = expectIdent();
        term.condVar = cond.text;
        if (!env_.count(cond.text))
          throw Error(cond.loc, "branch condition '" + cond.text +
                                    "' is not a defined value");
        declaredOutputs_.insert(cond.text);  // branches read it as an output
        expectIdentKeyword("goto");
        term.target = expectIdent().text;
        expectIdentKeyword("else");
        term.elseTarget = expectIdent().text;
        expectPunct(";");
        explicitTerm = true;
      } else {
        // Assignment statement.
        const Token lhs = expectIdent();
        expectPunct("=");
        const NodeId value = parseExpr(dag);
        expectPunct(";");
        env_[lhs.text] = value;
      }
  }

  // Precedence climbing: | < ^ < & < comparisons < shifts < +- < */%.
  NodeId parseExpr(BlockDag& dag) { return parseOr(dag); }

  NodeId parseOr(BlockDag& dag) {
    NodeId lhs = parseXor(dag);
    while (tryConsume("|")) lhs = dag.addOp(Op::kOr, {lhs, parseXor(dag)});
    return lhs;
  }
  NodeId parseXor(BlockDag& dag) {
    NodeId lhs = parseAnd(dag);
    while (tryConsume("^")) lhs = dag.addOp(Op::kXor, {lhs, parseAnd(dag)});
    return lhs;
  }
  NodeId parseAnd(BlockDag& dag) {
    NodeId lhs = parseCompare(dag);
    while (tryConsume("&"))
      lhs = dag.addOp(Op::kAnd, {lhs, parseCompare(dag)});
    return lhs;
  }
  NodeId parseCompare(BlockDag& dag) {
    NodeId lhs = parseShift(dag);
    while (true) {
      Op op;
      if (peek().isPunct("==")) op = Op::kEq;
      else if (peek().isPunct("!=")) op = Op::kNe;
      else if (peek().isPunct("<=")) op = Op::kLe;
      else if (peek().isPunct(">=")) op = Op::kGe;
      else if (peek().isPunct("<")) op = Op::kLt;
      else if (peek().isPunct(">")) op = Op::kGt;
      else return lhs;
      next();
      lhs = dag.addOp(op, {lhs, parseShift(dag)});
    }
  }
  NodeId parseShift(BlockDag& dag) {
    NodeId lhs = parseAdd(dag);
    while (true) {
      if (tryConsume("<<")) lhs = dag.addOp(Op::kShl, {lhs, parseAdd(dag)});
      else if (tryConsume(">>")) lhs = dag.addOp(Op::kShr, {lhs, parseAdd(dag)});
      else return lhs;
    }
  }
  NodeId parseAdd(BlockDag& dag) {
    NodeId lhs = parseMul(dag);
    while (true) {
      if (tryConsume("+")) lhs = dag.addOp(Op::kAdd, {lhs, parseMul(dag)});
      else if (tryConsume("-")) lhs = dag.addOp(Op::kSub, {lhs, parseMul(dag)});
      else return lhs;
    }
  }
  NodeId parseMul(BlockDag& dag) {
    NodeId lhs = parseUnary(dag);
    while (true) {
      if (tryConsume("*")) lhs = dag.addOp(Op::kMul, {lhs, parseUnary(dag)});
      else if (tryConsume("/")) lhs = dag.addOp(Op::kDiv, {lhs, parseUnary(dag)});
      else if (tryConsume("%")) lhs = dag.addOp(Op::kMod, {lhs, parseUnary(dag)});
      else return lhs;
    }
  }
  NodeId parseUnary(BlockDag& dag) {
    if (tryConsume("-")) return dag.addOp(Op::kNeg, {parseUnary(dag)});
    if (tryConsume("~")) return dag.addOp(Op::kCompl, {parseUnary(dag)});
    return parsePrimary(dag);
  }
  NodeId parsePrimary(BlockDag& dag) {
    // Peek before consuming: on a syntax error the offending token must
    // stay in the stream so panic-mode resynchronization (which scans for
    // the next ';') doesn't swallow the following statement.
    const Token tok = peek();
    if (tok.is(Token::Kind::kNumber)) {
      next();
      return dag.addConst(tok.number);
    }
    if (tok.isPunct("(")) {
      next();
      const NodeId inner = parseExpr(dag);
      expectPunct(")");
      return inner;
    }
    if (tok.is(Token::Kind::kIdent)) {
      next();
      if (peek().isPunct("(")) return parseIntrinsic(dag, tok);
      const auto it = env_.find(tok.text);
      if (it == env_.end())
        throw Error(tok.loc, "use of undefined value '" + tok.text +
                                 "' (declare it with 'input'?)");
      return it->second;
    }
    throw Error(tok.loc, "expected expression, got " + tok.describe());
  }
  NodeId parseIntrinsic(BlockDag& dag, const Token& nameTok) {
    const auto op = opFromName(nameTok.text);
    if (!op || isLeafOp(*op))
      throw Error(nameTok.loc, "unknown intrinsic '" + nameTok.text + "'");
    expectPunct("(");
    std::vector<NodeId> args;
    if (!peek().isPunct(")")) {
      do {
        args.push_back(parseExpr(dag));
      } while (tryConsume(","));
    }
    expectPunct(")");
    if (static_cast<int>(args.size()) != opArity(*op))
      throw Error(nameTok.loc,
                  "intrinsic '" + nameTok.text + "' expects " +
                      std::to_string(opArity(*op)) + " arguments, got " +
                      std::to_string(args.size()));
    return dag.addOp(*op, std::move(args));
  }

  // --- token helpers over the pre-expanded vector ----------------------
  const Token& peek() const {
    return tokens_[std::min(pos_, tokens_.size() - 1)];
  }
  Token next() {
    Token tok = peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return tok;
  }
  bool tryConsume(std::string_view punct) {
    if (peek().isPunct(punct)) {
      next();
      return true;
    }
    return false;
  }
  bool tryConsumeIdent(std::string_view name) {
    if (peek().isIdent(name)) {
      next();
      return true;
    }
    return false;
  }
  Token expectPunct(std::string_view punct) {
    Token tok = next();
    if (!tok.isPunct(punct))
      throw Error(tok.loc, "expected '" + std::string(punct) + "', got " +
                               tok.describe());
    return tok;
  }
  Token expectIdent() {
    Token tok = next();
    if (!tok.is(Token::Kind::kIdent))
      throw Error(tok.loc, "expected identifier, got " + tok.describe());
    return tok;
  }
  void expectIdentKeyword(std::string_view keyword) {
    Token tok = next();
    if (!tok.isIdent(keyword))
      throw Error(tok.loc, "expected '" + std::string(keyword) + "', got " +
                               tok.describe());
  }

  void recordDiag(Diagnostic d) {
    if (diags_.size() < kMaxDiagnostics) diags_.push_back(std::move(d));
  }
  void recordDiag(SourceLoc loc, std::string message) {
    recordDiag(Diagnostic{loc, std::move(message)});
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::string sourceName_;
  std::vector<Diagnostic> diags_;
  std::map<std::string, NodeId> env_;
  std::set<std::string> declaredOutputs_;
};

}  // namespace

Program parseProgram(std::string_view source, const std::string& programName) {
  std::vector<Token> tokens;
  try {
    tokens = expandRepeats(lexAll(source));
  } catch (const Error& e) {
    // Lexer / repeat-expansion errors end the token stream, so there is
    // exactly one of them — still reported through the ParseError channel
    // for a uniform file:line:col diagnostic format.
    throw ParseError(programName, {toDiagnostic(e)});
  }
  BlockParser parser(std::move(tokens), programName);
  return parser.parse(programName);
}

BlockDag parseBlock(std::string_view source) {
  Program program = parseProgram(source, "single");
  if (program.numBlocks() != 1)
    throw Error("expected exactly one block, got " +
                std::to_string(program.numBlocks()));
  return program.block(0);
}

BlockDag loadBlock(const std::string& name) {
  return parseBlock(readFile(blockPath(name)));
}

Program loadProgram(const std::string& name) {
  return parseProgram(readFile(blockPath(name)), name);
}

}  // namespace aviv
