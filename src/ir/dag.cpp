#include "ir/dag.h"

#include <algorithm>

#include "support/dot.h"
#include "support/error.h"

namespace aviv {

BlockDag::BlockDag(std::string name, bool cse)
    : name_(std::move(name)), cse_(cse) {}

NodeId BlockDag::append(DagNode node) {
  const auto id = static_cast<NodeId>(nodes_.size());
  AVIV_CHECK(id != kNoNode);
  nodes_.push_back(std::move(node));
  return id;
}

NodeId BlockDag::addInput(const std::string& inputName) {
  AVIV_CHECK(!inputName.empty());
  if (const auto it = inputIndex_.find(inputName); it != inputIndex_.end())
    return it->second;  // inputs are always unique by name
  DagNode node;
  node.op = Op::kInput;
  node.name = inputName;
  const NodeId id = append(std::move(node));
  inputIndex_[inputName] = id;
  return id;
}

NodeId BlockDag::addConst(int64_t value) {
  if (cse_) {
    const auto key = std::make_tuple(Op::kConst, value, std::vector<NodeId>{});
    if (const auto it = valueIndex_.find(key); it != valueIndex_.end())
      return it->second;
    DagNode node;
    node.op = Op::kConst;
    node.value = value;
    const NodeId id = append(std::move(node));
    valueIndex_[key] = id;
    return id;
  }
  DagNode node;
  node.op = Op::kConst;
  node.value = value;
  return append(std::move(node));
}

NodeId BlockDag::addOp(Op op, std::vector<NodeId> operands) {
  AVIV_CHECK_MSG(isMachineOp(op), "addOp on leaf op " << opName(op));
  AVIV_CHECK_MSG(static_cast<int>(operands.size()) == opArity(op),
                 opName(op) << " expects " << opArity(op) << " operands, got "
                            << operands.size());
  for (NodeId operand : operands) AVIV_CHECK(operand < nodes_.size());

  if (cse_) {
    // Canonicalize commutative operand order for the lookup key only.
    std::vector<NodeId> key_operands = operands;
    if (isCommutative(op) && key_operands.size() >= 2 &&
        key_operands[0] > key_operands[1]) {
      std::swap(key_operands[0], key_operands[1]);
    }
    const auto key = std::make_tuple(op, int64_t{0}, key_operands);
    if (const auto it = valueIndex_.find(key); it != valueIndex_.end())
      return it->second;
    DagNode node;
    node.op = op;
    node.operands = std::move(operands);
    const NodeId id = append(std::move(node));
    valueIndex_[key] = id;
    return id;
  }
  DagNode node;
  node.op = op;
  node.operands = std::move(operands);
  return append(std::move(node));
}

void BlockDag::markOutput(const std::string& outputName, NodeId id) {
  AVIV_CHECK(id < nodes_.size());
  for (auto& [existing, existingId] : outputs_) {
    if (existing == outputName) {
      existingId = id;
      return;
    }
  }
  outputs_.emplace_back(outputName, id);
}

const DagNode& BlockDag::node(NodeId id) const {
  AVIV_CHECK(id < nodes_.size());
  return nodes_[id];
}

std::vector<std::string> BlockDag::inputNames() const {
  std::vector<std::string> names;
  for (const DagNode& n : nodes_)
    if (n.op == Op::kInput) names.push_back(n.name);
  return names;
}

NodeId BlockDag::findInput(const std::string& inputName) const {
  const auto it = inputIndex_.find(inputName);
  return it == inputIndex_.end() ? kNoNode : it->second;
}

size_t BlockDag::numOpNodes() const {
  size_t n = 0;
  for (const DagNode& node : nodes_)
    if (isMachineOp(node.op)) ++n;
  return n;
}

size_t BlockDag::numLeafNodes() const { return size() - numOpNodes(); }

std::vector<std::vector<NodeId>> BlockDag::computeUsers() const {
  std::vector<std::vector<NodeId>> users(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId operand : nodes_[id].operands) {
      auto& list = users[operand];
      if (list.empty() || list.back() != id) list.push_back(id);
    }
  }
  return users;
}

std::vector<int> BlockDag::levelsFromTop() const {
  std::vector<int> level(nodes_.size(), 0);
  // Iterate users in decreasing id order; since operands precede users, a
  // reverse pass settles all levels in one sweep.
  const auto users = computeUsers();
  for (size_t i = nodes_.size(); i-- > 0;) {
    int lvl = 0;
    for (NodeId user : users[i]) lvl = std::max(lvl, level[user] + 1);
    level[i] = lvl;
  }
  return level;
}

std::vector<int> BlockDag::levelsFromBottom() const {
  std::vector<int> level(nodes_.size(), 0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    int lvl = 0;
    for (NodeId operand : nodes_[id].operands)
      lvl = std::max(lvl, level[operand] + 1);
    level[id] = lvl;
  }
  return level;
}

void BlockDag::verify() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const DagNode& n = nodes_[id];
    AVIV_CHECK_MSG(static_cast<int>(n.operands.size()) == opArity(n.op),
                   describe(id) << ": bad arity");
    for (NodeId operand : n.operands)
      AVIV_CHECK_MSG(operand < id, describe(id) << ": operand not before user");
    if (n.op == Op::kInput) AVIV_CHECK(!n.name.empty());
  }
  for (const auto& [outName, outId] : outputs_) {
    AVIV_CHECK(!outName.empty());
    AVIV_CHECK(outId < nodes_.size());
  }
}

std::string BlockDag::describe(NodeId id) const {
  const DagNode& n = node(id);
  std::string s = "n" + std::to_string(id) + ":";
  switch (n.op) {
    case Op::kConst:
      s += "CONST(" + std::to_string(n.value) + ")";
      return s;
    case Op::kInput:
      s += "INPUT(" + n.name + ")";
      return s;
    default:
      break;
  }
  s += std::string(opName(n.op)) + "(";
  for (size_t i = 0; i < n.operands.size(); ++i) {
    if (i != 0) s += ",";
    s += "n" + std::to_string(n.operands[i]);
  }
  return s + ")";
}

std::string BlockDag::dot() const {
  DotWriter dw("dag_" + name_);
  dw.addRaw("rankdir=BT;");
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const DagNode& n = nodes_[id];
    std::string label;
    std::string shape = "ellipse";
    if (n.op == Op::kConst) {
      label = std::to_string(n.value);
      shape = "plaintext";
    } else if (n.op == Op::kInput) {
      label = n.name;
      shape = "plaintext";
    } else {
      label = std::string(opName(n.op));
    }
    dw.addNode("n" + std::to_string(id),
               "shape=" + shape + ", label=\"" + DotWriter::escape(label) +
                   "\"");
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId operand : nodes_[id].operands)
      dw.addEdge("n" + std::to_string(operand), "n" + std::to_string(id));
  }
  for (const auto& [outName, outId] : outputs_) {
    dw.addNode("out_" + outName, "shape=plaintext, label=\"" +
                                     DotWriter::escape(outName) + "\"");
    dw.addEdge("n" + std::to_string(outId), "out_" + outName,
               "style=dashed");
  }
  return dw.str();
}

}  // namespace aviv
