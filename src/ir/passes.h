// Machine-independent optimization passes (the paper's front end performs
// these before AVIV's back end runs; Section II). All passes are functional:
// they return a rewritten DAG and never mutate their input.
#pragma once

#include <functional>

#include "ir/dag.h"

namespace aviv {

// Folds operations whose operands are all constants, and applies algebraic
// identities (x+0, x*1, x*0, x-x, x^x, x&x, min/max(x,x), shifts by 0, ...).
// Output values are preserved exactly (wrap-around semantics of evalOp).
[[nodiscard]] BlockDag foldConstants(const BlockDag& dag);

// Removes nodes not reachable from any output (dead code elimination).
// Inputs are kept even when dead so the block signature is stable.
[[nodiscard]] BlockDag eliminateDeadCode(const BlockDag& dag);

// foldConstants then eliminateDeadCode, iterated to a fixed point.
[[nodiscard]] BlockDag optimize(const BlockDag& dag);

// Target-aware strength reduction: multiplications by a power-of-two
// constant become shifts (when the target implements SHL), and
// multiplication by 2 becomes x + x otherwise. Division/modulo are left
// alone (an arithmetic shift is not a truncating division for negative
// values). `machineImplements` reports whether any functional unit can
// perform an op — pass OpDatabase::isImplementable bound to the target.
[[nodiscard]] BlockDag strengthReduce(
    const BlockDag& dag, const std::function<bool(Op)>& machineImplements);

}  // namespace aviv
