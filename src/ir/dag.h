// BlockDag — the machine-independent basic-block expression DAG that the
// AVIV back end consumes (paper Fig 2). This is the shape the SUIF/SPAM
// front end produces in the original system: leaves are named live-in values
// and integer constants; interior nodes are basic operations; shared
// subexpressions are represented once (the builder value-numbers on insert).
//
// Invariant: operands always precede their users, so node-id order is a
// topological order. All mutation is append-only; passes rewrite by building
// a fresh DAG (see passes.h).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/op.h"

namespace aviv {

using NodeId = uint32_t;
inline constexpr NodeId kNoNode = 0xffffffffu;

struct DagNode {
  Op op = Op::kConst;
  int64_t value = 0;              // kConst payload
  std::string name;               // kInput payload
  std::vector<NodeId> operands;   // each id < this node's id
};

class BlockDag {
 public:
  // `cse` enables structural value numbering on insert (the front end's
  // common-subexpression elimination); tests sometimes disable it to build
  // specific shapes.
  explicit BlockDag(std::string name, bool cse = true);

  // --- construction ---------------------------------------------------
  NodeId addInput(const std::string& inputName);
  NodeId addConst(int64_t value);
  NodeId addOp(Op op, std::vector<NodeId> operands);
  // Marks `id` as the block's live-out value `outputName`. Re-marking the
  // same name replaces the binding.
  void markOutput(const std::string& outputName, NodeId id);

  // --- accessors ------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] size_t size() const { return nodes_.size(); }
  [[nodiscard]] const DagNode& node(NodeId id) const;
  [[nodiscard]] const std::vector<DagNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<std::pair<std::string, NodeId>>& outputs()
      const {
    return outputs_;
  }
  [[nodiscard]] std::vector<std::string> inputNames() const;
  // kNoNode when no input with that name exists.
  [[nodiscard]] NodeId findInput(const std::string& inputName) const;

  [[nodiscard]] size_t numOpNodes() const;
  [[nodiscard]] size_t numLeafNodes() const;

  // users[i] = ids of nodes that consume node i (deduplicated, increasing).
  [[nodiscard]] std::vector<std::vector<NodeId>> computeUsers() const;

  // Level of each node measured from the DAG outputs/roots downwards
  // ("level from the top" in the paper): nodes with no users are level 0.
  [[nodiscard]] std::vector<int> levelsFromTop() const;
  // Level measured from the leaves upwards: leaves are level 0.
  [[nodiscard]] std::vector<int> levelsFromBottom() const;

  // Checks all structural invariants; AVIV_CHECK-fails on violation.
  void verify() const;

  // Graphviz rendering (paper Fig 2 reproduction).
  [[nodiscard]] std::string dot() const;

  // Short human-readable description of one node, e.g. "n5:ADD(n1,n2)".
  [[nodiscard]] std::string describe(NodeId id) const;

 private:
  NodeId append(DagNode node);

  std::string name_;
  bool cse_;
  std::vector<DagNode> nodes_;
  std::vector<std::pair<std::string, NodeId>> outputs_;
  std::map<std::string, NodeId> inputIndex_;
  // Value-numbering key: (op, const value, operand list) -> node.
  std::map<std::tuple<Op, int64_t, std::vector<NodeId>>, NodeId> valueIndex_;
};

}  // namespace aviv
