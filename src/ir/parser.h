// Parser for the block language — the textual stand-in for the C/SUIF front
// end (DESIGN.md substitution #1). A .blk file contains one or more blocks:
//
//   block ex1 {
//     input a, b, c, d;
//     output y;
//     t = (a + b) * c;
//     y = (d + t) - b;
//   }
//
// Statements:
//   input x, y;              declare live-in values (reside in data memory)
//   output z;                declare live-out values
//   name = expr;             bind a temp / output (rebinding allowed)
//   repeat N { ... }         loop unrolling sugar: the body is instantiated
//                            N times with every "$i" in identifiers replaced
//                            by 0..N-1 (models the front end's unrolling)
//   goto blk; | if c goto a else b; | return;     optional terminator (last)
//
// Expressions: integer literals (decimal/hex), identifiers, parentheses,
// unary - ~, binary * / % + - << >> < <= > >= == != & ^ |, and intrinsic
// calls min(a,b) max(a,b) abs(a) mac(a,b,c) msu(a,b,c).
#pragma once

#include <string>
#include <string_view>

#include "ir/program.h"

namespace aviv {

// Parses a whole file (one or more blocks) into a Program. The first block
// is the entry block. Blocks without an explicit terminator get kReturn if
// last, else kJump to the next block in the file. Malformed input raises
// aviv::ParseError with every diagnostic found by panic-mode recovery;
// nothing on this path aborts the process.
[[nodiscard]] Program parseProgram(std::string_view source,
                                   const std::string& programName);

// Convenience for single-block sources: parses and returns just the DAG.
// Throws aviv::Error if the source defines more than one block.
[[nodiscard]] BlockDag parseBlock(std::string_view source);

// Loads blocks/<name>.blk and parses the single block inside it.
[[nodiscard]] BlockDag loadBlock(const std::string& name);

// Loads blocks/<name>.blk and parses it as a (possibly multi-block) program.
[[nodiscard]] Program loadProgram(const std::string& name);

}  // namespace aviv
