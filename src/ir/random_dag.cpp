#include "ir/random_dag.h"

#include <algorithm>

#include "support/error.h"
#include "support/rng.h"

namespace aviv {

BlockDag makeRandomDag(const RandomDagSpec& spec) {
  AVIV_CHECK(spec.numInputs >= 1 && spec.numOps >= 1);
  AVIV_CHECK(!spec.opPool.empty());
  AVIV_CHECK(spec.numOutputs >= 1);
  Rng rng(spec.seed);

  // CSE off: the generator controls the exact node count.
  BlockDag dag("random_" + std::to_string(spec.seed), /*cse=*/false);
  std::vector<NodeId> leaves;
  for (int i = 0; i < spec.numInputs; ++i)
    leaves.push_back(dag.addInput("v" + std::to_string(i)));
  std::vector<NodeId> interior;

  auto pickOperand = [&]() -> NodeId {
    if (!interior.empty() && rng.chance(spec.reuseBias)) {
      return interior[rng.below(interior.size())];
    }
    return leaves[rng.below(leaves.size())];
  };

  for (int i = 0; i < spec.numOps; ++i) {
    const Op op = spec.opPool[rng.below(spec.opPool.size())];
    AVIV_CHECK(isMachineOp(op) && opArity(op) <= 2);
    std::vector<NodeId> operands;
    for (int arg = 0; arg < opArity(op); ++arg)
      operands.push_back(pickOperand());
    interior.push_back(dag.addOp(op, std::move(operands)));
  }

  // Outputs: every sink (op with no users) must be an output — the AVIV
  // back end requires dead-code-free blocks, like a real front end
  // guarantees — plus random extra outputs up to the requested count.
  const auto users = dag.computeUsers();
  int outIdx = 0;
  for (NodeId id : interior) {
    if (users[id].empty())
      dag.markOutput("out" + std::to_string(outIdx++), id);
  }
  while (outIdx < spec.numOutputs) {
    dag.markOutput("out" + std::to_string(outIdx++),
                   interior[rng.below(interior.size())]);
  }
  dag.verify();
  return dag;
}

}  // namespace aviv
