// Instruction-level VLIW simulator (paper Fig 1's simulator leg). Executes
// CodeImages with parallel-slot semantics: within one instruction every slot
// reads machine state as of the instruction's start, then all writes commit.
// This is what lets the test suite prove end-to-end correctness: simulated
// outputs must equal the reference DAG interpreter's for random inputs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "asmgen/code_image.h"
#include "isdl/machine.h"

namespace aviv {

struct MachineState {
  std::vector<std::vector<int64_t>> regs;  // [bank][reg]
  std::vector<int64_t> mem;                // data memory words
};

class Simulator {
 public:
  explicit Simulator(const Machine& machine);

  [[nodiscard]] MachineState initialState() const;

  // Writes named values into their data-memory cells.
  void writeVars(MachineState& state, const SymbolTable& symbols,
                 const std::map<std::string, int64_t>& values) const;

  // Places an image's constant-pool initializers into data memory (a real
  // loader would do this from the binary's data section).
  void loadConstPool(MachineState& state, const CodeImage& image) const;

  // Executes every instruction of `image` on `state`; returns the block's
  // outputs read from their bindings. Counts executed instructions into
  // *cycles when provided. With `trace` set, prints one line per executed
  // slot with its concrete operand/result values (a cycle-accurate
  // execution log for debugging generated code).
  std::map<std::string, int64_t> runBlock(const CodeImage& image,
                                          MachineState& state,
                                          size_t* cycles = nullptr,
                                          std::ostream* trace = nullptr) const;

  // Convenience: fresh state, write inputs, run one block, return outputs.
  std::map<std::string, int64_t> runBlockFresh(
      const CodeImage& image, const SymbolTable& symbols,
      const std::map<std::string, int64_t>& inputs, size_t* cycles = nullptr) const;

 private:
  const Machine& machine_;
};

}  // namespace aviv
