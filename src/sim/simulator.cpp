#include "sim/simulator.h"

#include <ostream>

#include "support/error.h"

namespace aviv {

Simulator::Simulator(const Machine& machine) : machine_(machine) {}

MachineState Simulator::initialState() const {
  MachineState state;
  state.regs.resize(machine_.regFiles().size());
  for (size_t bank = 0; bank < machine_.regFiles().size(); ++bank)
    state.regs[bank].assign(
        static_cast<size_t>(
            machine_.regFile(static_cast<RegFileId>(bank)).numRegs),
        0);
  state.mem.assign(
      static_cast<size_t>(machine_.memory(machine_.dataMemory()).sizeWords),
      0);
  return state;
}

void Simulator::writeVars(MachineState& state, const SymbolTable& symbols,
                          const std::map<std::string, int64_t>& values) const {
  for (const auto& [name, value] : values) {
    if (!symbols.contains(name)) continue;  // unused input
    const int addr = symbols.lookup(name);
    AVIV_CHECK(addr >= 0 && static_cast<size_t>(addr) < state.mem.size());
    state.mem[static_cast<size_t>(addr)] = value;
  }
}

void Simulator::loadConstPool(MachineState& state,
                              const CodeImage& image) const {
  for (const auto& [addr, value] : image.constPool) {
    AVIV_CHECK(addr >= 0 && static_cast<size_t>(addr) < state.mem.size());
    state.mem[static_cast<size_t>(addr)] = value;
  }
}

std::map<std::string, int64_t> Simulator::runBlock(const CodeImage& image,
                                                   MachineState& state,
                                                   size_t* cycles,
                                                   std::ostream* trace) const {
  size_t traceCycle = 0;
  auto readReg = [&](Loc loc, int reg) {
    AVIV_CHECK(loc.isRegFile() && reg >= 0);
    const auto& bank = state.regs[loc.index];
    AVIV_CHECK(static_cast<size_t>(reg) < bank.size());
    return bank[static_cast<size_t>(reg)];
  };
  auto readMem = [&](int addr) {
    AVIV_CHECK(addr >= 0 && static_cast<size_t>(addr) < state.mem.size());
    return state.mem[static_cast<size_t>(addr)];
  };

  for (const EncInstr& instr : image.instrs) {
    // Read phase: every slot samples pre-instruction state.
    struct RegWrite {
      Loc loc;
      int reg;
      int64_t value;
    };
    struct MemWrite {
      int addr;
      int64_t value;
    };
    std::vector<RegWrite> regWrites;
    std::vector<MemWrite> memWrites;

    for (const EncOp& op : instr.ops) {
      const Loc bank = machine_.unitLoc(op.unit);
      int64_t vals[3] = {0, 0, 0};
      AVIV_CHECK(op.srcs.size() <= 3);
      for (size_t i = 0; i < op.srcs.size(); ++i) {
        vals[i] = op.srcs[i].isImm ? op.srcs[i].imm
                                   : readReg(bank, op.srcs[i].reg);
      }
      const int64_t result = evalOp(op.op, vals[0], vals[1], vals[2]);
      regWrites.push_back({bank, op.dstReg, result});
      if (trace != nullptr) {
        *trace << "cycle " << traceCycle << " "
               << machine_.unit(op.unit).name << ": " << op.mnemonic;
        for (size_t i = 0; i < op.srcs.size(); ++i)
          *trace << (i == 0 ? " " : ", ") << vals[i];
        *trace << " -> " << machine_.regFile(bank.index).name << ".r"
               << op.dstReg << " = " << result << "\n";
      }
    }
    for (const EncXfer& xfer : instr.xfers) {
      const int64_t value = xfer.from.isRegFile()
                                ? readReg(xfer.from, xfer.srcReg)
                                : readMem(xfer.memAddr);
      if (xfer.to.isRegFile())
        regWrites.push_back({xfer.to, xfer.dstReg, value});
      else
        memWrites.push_back({xfer.memAddr, value});
      if (trace != nullptr) {
        *trace << "cycle " << traceCycle << " "
               << machine_.bus(xfer.bus).name << ": mov "
               << machine_.locName(xfer.from);
        if (xfer.from.isRegFile()) *trace << ".r" << xfer.srcReg;
        else *trace << "[" << xfer.memAddr << "]";
        *trace << " -> " << machine_.locName(xfer.to);
        if (xfer.to.isRegFile()) *trace << ".r" << xfer.dstReg;
        else *trace << "[" << xfer.memAddr << "]";
        *trace << " (" << value << ")";
        if (!xfer.comment.empty()) *trace << " {" << xfer.comment << "}";
        *trace << "\n";
      }
    }

    // Write phase.
    for (const RegWrite& w : regWrites) {
      auto& bank = state.regs[w.loc.index];
      AVIV_CHECK(w.reg >= 0 && static_cast<size_t>(w.reg) < bank.size());
      bank[static_cast<size_t>(w.reg)] = w.value;
    }
    for (const MemWrite& w : memWrites) {
      AVIV_CHECK(w.addr >= 0 && static_cast<size_t>(w.addr) < state.mem.size());
      state.mem[static_cast<size_t>(w.addr)] = w.value;
    }
    if (cycles != nullptr) ++*cycles;
    ++traceCycle;
  }

  std::map<std::string, int64_t> outputs;
  for (const OutputBinding& binding : image.outputs) {
    outputs[binding.name] = binding.inMemory
                                ? readMem(binding.memAddr)
                                : readReg(binding.loc, binding.reg);
  }
  return outputs;
}

std::map<std::string, int64_t> Simulator::runBlockFresh(
    const CodeImage& image, const SymbolTable& symbols,
    const std::map<std::string, int64_t>& inputs, size_t* cycles) const {
  MachineState state = initialState();
  writeVars(state, symbols, inputs);
  loadConstPool(state, image);
  return runBlock(image, state, cycles);
}

}  // namespace aviv
