#include "verify/quarantine.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "ir/emit.h"
#include "ir/parser.h"
#include "isdl/emit.h"
#include "isdl/parser.h"
#include "service/cache.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/hash.h"
#include "support/io.h"
#include "support/strings.h"

namespace aviv {

namespace fs = std::filesystem;

namespace {

std::string hexOf(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string writeQuarantineArtifact(const std::string& quarantineDir,
                                    const Machine& machine,
                                    const BlockDag& dag,
                                    const CodeImage& image,
                                    const std::vector<std::string>& symbolNames,
                                    const VerifyOptions& options,
                                    const VerifyReport& report) {
  if (quarantineDir.empty()) return "";
  try {
    FailPoints::instance().maybeThrow("quarantine-write");

    CacheEntry entry;
    entry.blockName = dag.name();
    entry.machineName = machine.name();
    entry.symbolNames = symbolNames;
    entry.verified = false;
    entry.verifierVersion = options.verifierVersion;
    entry.image = image;
    const std::string payload = serializeCacheEntry(entry);

    // Content-addressed directory name: identical failures land in the
    // same bundle; distinct images never collide.
    Hasher h;
    h.str(payload);
    const std::string dir = quarantineDir + "/" + machine.name() + "-" +
                            dag.name() + "-" + hexOf(h.digest().lo);
    fs::create_directories(dir);

    writeFile(dir + "/machine.isdl", emitMachineText(machine));
    writeFile(dir + "/block.blk", emitBlockText(dag));
    writeFile(dir + "/entry.bin", payload);
    writeFile(dir + "/asm.txt", image.asmText(machine));

    std::ostringstream meta;
    meta << "machine=" << machine.name() << "\n";
    meta << "block=" << dag.name() << "\n";
    meta << "seed=" << options.seed << "\n";
    meta << "vectors=" << options.vectors << "\n";
    meta << "verifierVersion=" << options.verifierVersion << "\n";
    meta << "detail=" << report.detail() << "\n";
    writeFile(dir + "/meta.txt", meta.str());
    return dir;
  } catch (...) {
    // Best-effort: a failed quarantine write must not mask the original
    // verification failure the caller is handling.
    return "";
  }
}

ReplayResult replayQuarantineArtifact(const std::string& dir) {
  const Machine machine =
      parseMachine(readFile(dir + "/machine.isdl"), "machine.isdl");
  const BlockDag dag = parseBlock(readFile(dir + "/block.blk"));
  const CacheEntry entry = deserializeCacheEntry(readFile(dir + "/entry.bin"));

  VerifyOptions options;
  options.level = VerifyLevel::kAll;
  for (const std::string& line : split(readFile(dir + "/meta.txt"), '\n')) {
    const size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    try {
      if (key == "seed") options.seed = std::stoull(value);
      if (key == "vectors") options.vectors = std::stoi(value);
      if (key == "verifierVersion")
        options.verifierVersion = static_cast<uint32_t>(std::stoul(value));
    } catch (const std::exception&) {
      throw Error("quarantine meta.txt: bad value for '" + key + "'");
    }
  }

  ReplayResult result;
  result.report = verifyCompiledBlock(machine, dag, entry.image,
                                      entry.symbolNames, options);
  result.reproduced = result.report.checked && !result.report.passed;
  return result;
}

}  // namespace aviv
