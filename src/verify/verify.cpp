#include "verify/verify.h"

#include <utility>

#include "asmgen/encode.h"
#include "ir/interp.h"
#include "sim/simulator.h"
#include "support/hash.h"
#include "support/rng.h"

namespace aviv {

std::string VerifyReport::detail() const {
  if (!checked) return "not verified";
  if (passed) return "verified";
  std::string s = "output '" + mismatchOutput + "' mismatch on vector " +
                  std::to_string(mismatchVector) + ": simulator " +
                  std::to_string(actual) + " != reference " +
                  std::to_string(expected) + " with inputs {";
  bool first = true;
  for (const auto& [name, value] : mismatchInputs) {
    if (!first) s += ", ";
    first = false;
    s += name + "=" + std::to_string(value);
  }
  s += "}";
  return s;
}

bool shouldVerifyBlock(const VerifyOptions& options,
                       const std::string& blockName) {
  switch (options.level) {
    case VerifyLevel::kOff:
      return false;
    case VerifyLevel::kAll:
      return true;
    case VerifyLevel::kSampled:
      break;
  }
  // Deterministic draw from (seed, name): the same session configuration
  // always verifies the same subset, so warm runs re-check exactly the
  // blocks the cold run checked.
  Hasher h;
  h.str("verify-sample");
  h.u64(options.seed);
  h.str(blockName);
  const double draw = static_cast<double>(h.digest().lo >> 11) *
                      (1.0 / 9007199254740992.0);
  return draw < options.sampleRate;
}

VerifyReport verifyCompiledBlock(const Machine& machine, const BlockDag& dag,
                                 const CodeImage& image,
                                 const std::vector<std::string>& symbolNames,
                                 const VerifyOptions& options) {
  VerifyReport report;

  // Hydrate a private copy: verification must not intern anything into the
  // consumer's symbol scope, and a cached entry has only provisional
  // addresses anyway.
  CodeImage copy = image;
  SymbolTable table;
  SymbolScope scope(table);
  rebindSymbols(copy, symbolNames, scope);

  const Simulator sim(machine);
  Rng rng(options.seed);
  const std::vector<std::string> inputNames = dag.inputNames();

  for (int v = 0; v < options.vectors; ++v) {
    std::map<std::string, int64_t> inputs;
    for (const std::string& name : inputNames)
      inputs[name] = rng.intIn(-1000, 1000);

    const std::map<std::string, int64_t> expected =
        evalDagOutputs(dag, inputs);
    const std::map<std::string, int64_t> actual =
        sim.runBlockFresh(copy, table, inputs);
    report.vectorsRun = v + 1;

    for (const auto& [name, want] : expected) {
      const auto it = actual.find(name);
      const int64_t got = it == actual.end() ? 0 : it->second;
      if (got == want) continue;
      report.checked = true;
      report.passed = false;
      report.mismatchVector = v;
      report.mismatchOutput = name;
      report.expected = want;
      report.actual = got;
      report.mismatchInputs = std::move(inputs);
      return report;
    }
  }

  report.checked = true;
  report.passed = true;
  return report;
}

bool corruptImageForTesting(CodeImage& image) {
  // Prefer mutations whose effect on the outputs is unconditional.
  for (EncInstr& instr : image.instrs) {
    for (EncOp& op : instr.ops) {
      for (EncOperand& src : op.srcs) {
        if (src.isImm) {
          src.imm += 1;
          return true;
        }
      }
    }
  }
  for (EncInstr& instr : image.instrs) {
    for (EncOp& op : instr.ops) {
      if (op.srcs.size() == 2) {
        op.op = op.op == Op::kSub ? Op::kAdd : Op::kSub;
        return true;
      }
      if (op.srcs.size() == 1) {
        op.op = op.op == Op::kNeg ? Op::kCompl : Op::kNeg;
        return true;
      }
    }
  }
  if (!image.constPool.empty()) {
    image.constPool.front().second += 1;
    return true;
  }
  if (!image.instrs.empty()) {
    image.instrs.pop_back();
    return true;
  }
  return false;
}

}  // namespace aviv
