// Differential output verification (DESIGN.md System 25, §6.5) — the
// guardrail that catches miscompiles before their output is trusted or
// cached. A compiled block is replayed on the instruction-level simulator
// (sim/simulator.h) over deterministic seeded input vectors and the
// observed outputs are compared, value for value, against the reference
// DAG interpreter (ir/interp.h). Both sides share the total evalOp
// semantics (div/mod-by-zero yield 0, shift counts are masked), so random
// vectors can never trip undefined behaviour — any disagreement is a real
// codegen defect.
//
// Verification is scope-independent: the image is copied and its symbols
// are rebound into a private SymbolTable, so cached entries and freshly
// recorded images verify identically and the consumer's scope is never
// touched. A failure quarantines a self-contained repro artifact
// (verify/quarantine.h) and feeds the driver's degradation ladder.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asmgen/code_image.h"
#include "ir/dag.h"
#include "isdl/machine.h"

namespace aviv {

enum class VerifyLevel : uint8_t {
  kOff,      // no verification (the pre-PR-4 behaviour)
  kSampled,  // verify a deterministic pseudo-random subset of blocks
  kAll,      // verify every compiled block
};

// Bump whenever the verifier's judgement for unchanged inputs can change
// (new vector distribution, more vectors, comparison semantics, ...).
// Cached entries verified under an older version are re-checked; the
// driver also salts the cache fingerprint with this value so verifying
// sessions never share keys with non-verifying ones.
inline constexpr uint32_t kVerifierVersion = 1;

struct VerifyOptions {
  VerifyLevel level = VerifyLevel::kOff;
  // Input vectors replayed per block. More vectors, more confidence.
  int vectors = 4;
  // kSampled: fraction of blocks verified, drawn deterministically from
  // (seed, block name) so the same session always checks the same blocks.
  double sampleRate = 0.25;
  // Directory quarantined repro artifacts are written under; empty
  // disables artifact writing (failures still degrade and count).
  std::string quarantineDir;
  // Version recorded into cache entries and used for staleness checks.
  // Defaults to kVerifierVersion; overridable so tests can simulate a
  // verifier upgrade without editing the constant.
  uint32_t verifierVersion = kVerifierVersion;
  // Seed for the deterministic input vectors ("VERI").
  uint64_t seed = 0x56455249;
};

// Outcome of one block verification.
struct VerifyReport {
  bool checked = false;  // verification actually ran
  bool passed = false;
  int vectorsRun = 0;
  // Mismatch details (valid when checked && !passed).
  int mismatchVector = -1;
  std::string mismatchOutput;
  int64_t expected = 0;
  int64_t actual = 0;
  std::map<std::string, int64_t> mismatchInputs;

  // One-line human-readable mismatch description.
  [[nodiscard]] std::string detail() const;
};

// Whether `blockName` is selected for verification under `options`:
// always under kAll, never under kOff, a deterministic per-name draw
// under kSampled.
[[nodiscard]] bool shouldVerifyBlock(const VerifyOptions& options,
                                     const std::string& blockName);

// Replays `image` against the reference interpretation of `dag` over
// options.vectors seeded input vectors. `symbolNames` is the image's
// first-use-order symbol list (CacheEntry::symbolNames / a recording
// scope's recorded()); the image itself is not modified.
[[nodiscard]] VerifyReport verifyCompiledBlock(
    const Machine& machine, const BlockDag& dag, const CodeImage& image,
    const std::vector<std::string>& symbolNames,
    const VerifyOptions& options);

// Applies one structurally-valid semantic mutation to `image` (bumps an
// immediate, flips an add/sub, perturbs a constant-pool value, or drops
// the final instruction) so the simulator still runs it but the outputs
// disagree with the reference. Used by the verify-corrupt-asm failpoint
// and the quarantine tests. Returns false when the image offers nothing
// to corrupt (no instructions, no constants).
bool corruptImageForTesting(CodeImage& image);

}  // namespace aviv
