// Quarantine artifacts — self-contained repro bundles for verification
// failures. When a compiled block disagrees with the reference interpreter
// the driver writes one directory under the quarantine dir:
//
//   <quarantineDir>/<machine>-<block>-<hash>/
//     machine.isdl   re-parsable ISDL of the target machine
//     block.blk      re-parsable block source (semantic round-trip)
//     entry.bin      the failing CodeImage + symbol names (cache codec)
//     asm.txt        human-readable assembly listing of the failing image
//     meta.txt       key=value: seed, vectors, verifier version, mismatch
//
// The bundle needs nothing from the originating session: replaying it
// re-parses machine and block, rehydrates the image, and re-runs the exact
// seeded verification, reproducing the mismatch deterministically.
// Artifact writing is best-effort — quarantine I/O failures (including the
// `quarantine-write` failpoint) never escalate past the caller.
#pragma once

#include <string>
#include <vector>

#include "asmgen/code_image.h"
#include "ir/dag.h"
#include "isdl/machine.h"
#include "verify/verify.h"

namespace aviv {

// Writes the artifact directory; returns its path, or "" when writing
// failed or `quarantineDir` is empty (failures are swallowed — quarantine
// is diagnostics, not control flow).
std::string writeQuarantineArtifact(const std::string& quarantineDir,
                                    const Machine& machine,
                                    const BlockDag& dag,
                                    const CodeImage& image,
                                    const std::vector<std::string>& symbolNames,
                                    const VerifyOptions& options,
                                    const VerifyReport& report);

struct ReplayResult {
  bool reproduced = false;  // the replay also failed verification
  VerifyReport report;
};

// Loads an artifact directory written by writeQuarantineArtifact and
// re-runs the recorded verification. Throws aviv::Error when the bundle
// is missing or malformed.
[[nodiscard]] ReplayResult replayQuarantineArtifact(const std::string& dir);

}  // namespace aviv
