// MiniC — a C-subset front end, closing the "source program written in C or
// C++" leg of the paper's Fig 1. Parses a single integer function with
// structured control flow and lowers it to the basic-block Program form the
// AVIV back end consumes (blocks + jump/branch/return terminators), exactly
// what the SUIF/SPAM front end produced in the original system.
//
// Language (64-bit integers only):
//
//   int f(int a, int b) {
//     int acc = 0;
//     while (a > 0) {
//       acc = acc + a * b;
//       a = a - 1;
//     }
//     if (acc > 100) { acc = acc - 100; } else { acc = acc + 1; }
//     return acc;
//   }
//
//   function := "int" IDENT "(" [ "int" IDENT ("," "int" IDENT)* ] ")" body
//   body     := "{" stmt* "}"
//   stmt     := "int" IDENT "=" expr ";"          // declaration
//             | IDENT "=" expr ";"                 // assignment
//             | "if" "(" expr ")" body ["else" body]
//             | "while" "(" expr ")" body
//             | "return" expr ";"
//   expr     := same operators and intrinsics as the block language
//
// Single flat scope (declarations visible from their statement onward);
// every path must end in a return. The lowering is classic CFG
// construction: one block per straight-line region, conditions materialized
// as block outputs, loop back-edges as jumps. Variables flow between blocks
// through data memory (the driver's program mode), so no SSA is needed.
#pragma once

#include <string>
#include <string_view>

#include "ir/program.h"

namespace aviv {

struct MiniCFunction {
  std::string name;
  std::vector<std::string> params;
  // The lowered program; the function's return value is the variable
  // `__ret` after execution.
  Program program{"uninitialized"};
};

inline constexpr const char* kMiniCReturnVariable = "__ret";

// Parses and lowers one MiniC function. Malformed input raises
// aviv::ParseError carrying every diagnostic found by panic-mode recovery
// (file:line:col per entry); semantic errors on a well-formed parse
// (missing return, unreachable code, ...) raise plain aviv::Error.
[[nodiscard]] MiniCFunction parseMiniC(std::string_view source,
                                       const std::string& sourceName =
                                           "<minic>");

}  // namespace aviv
