#include "frontend/minic.h"

#include <set>
#include <vector>

#include "ir/parser.h"
#include "support/lexer.h"

namespace aviv {

namespace {

const std::vector<std::string> kPuncts = {"<<", ">>", "==", "!=",
                                          "<=", ">=", "&&", "||"};

bool isIntrinsicName(const std::string& name) {
  const auto op = opFromName(name);
  return op.has_value() && !isLeafOp(*op);
}

// A captured expression: raw tokens plus the variables it reads.
struct CapturedExpr {
  std::vector<Token> tokens;
  std::vector<std::string> reads;

  [[nodiscard]] std::string text() const {
    // Split on top-level && / || (lowest precedence, left-associative in C)
    // and lower each to the block language's bitwise form on normalized
    // truth values: a && b  ->  ((a) != 0) & ((b) != 0).
    std::vector<std::string> pieces;
    std::vector<std::string> ops;
    std::string current;
    int depth = 0;
    auto flush = [&] {
      pieces.push_back(current);
      current.clear();
    };
    for (const Token& tok : tokens) {
      if (tok.isPunct("(")) ++depth;
      if (tok.isPunct(")")) --depth;
      if (depth == 0 && (tok.isPunct("&&") || tok.isPunct("||"))) {
        flush();
        ops.push_back(tok.text == "&&" ? "&" : "|");
        continue;
      }
      if (!current.empty()) current += " ";
      switch (tok.kind) {
        case Token::Kind::kIdent:
        case Token::Kind::kPunct:
          current += tok.text;
          break;
        case Token::Kind::kNumber:
          current += std::to_string(tok.number);
          break;
        default:
          break;
      }
    }
    flush();
    if (ops.empty()) return pieces[0];
    std::string out = "( ( " + pieces[0] + " ) != 0 )";
    for (size_t i = 0; i < ops.size(); ++i)
      out += " " + ops[i] + " ( ( " + pieces[i + 1] + " ) != 0 )";
    return out;
  }
};

// Statement AST (expressions stay as captured token spans — MiniC's
// expression grammar is the block language's, so they re-emit verbatim).
struct Stmt {
  enum class Kind { kAssign, kIf, kWhile, kReturn };
  Kind kind = Kind::kAssign;
  SourceLoc loc;
  std::string var;  // kAssign target
  CapturedExpr expr;
  std::vector<Stmt> thenBody;  // kIf taken / kWhile body
  std::vector<Stmt> elseBody;  // kIf fall-through
};

constexpr size_t kMaxDiagnostics = 32;

class MiniCParser {
 public:
  MiniCParser(std::string_view source, std::string sourceName)
      : lexer_(source, kPuncts), sourceName_(std::move(sourceName)) {}

  MiniCFunction parse() {
    MiniCFunction fn;
    // The signature is unrecoverable: everything after hangs off it.
    try {
      expectKeyword("int");
      fn.name = lexer_.expectIdent().text;
      lexer_.expectPunct("(");
      if (!lexer_.peek().isPunct(")")) {
        do {
          expectKeyword("int");
          const Token param = lexer_.expectIdent();
          declare(param);
          fn.params.push_back(param.text);
        } while (lexer_.tryConsume(","));
      }
      lexer_.expectPunct(")");
    } catch (const Error& e) {
      diags_.push_back(toDiagnostic(e));
      throw ParseError(sourceName_, std::move(diags_));
    }
    std::vector<Stmt> body;
    try {
      body = parseBody();
      if (!lexer_.atEnd())
        throw Error(lexer_.peek().loc, "trailing input after function body");
    } catch (const Error& e) {
      diags_.push_back(toDiagnostic(e));
    }
    // Never lower a statement list that produced diagnostics: the Lowering
    // invariants assume a well-formed AST.
    if (!diags_.empty()) throw ParseError(sourceName_, std::move(diags_));

    Lowering lowering(fn.name);
    const bool live = lowering.lowerInto(body);
    if (live)
      throw Error("function '" + fn.name +
                  "': control can reach the end without a return");
    fn.program = lowering.finish();
    return fn;
  }

 private:
  // ---------------- parsing ------------------------------------------
  std::vector<Stmt> parseBody() {
    lexer_.expectPunct("{");
    std::vector<Stmt> body;
    while (!lexer_.peek().isPunct("}") &&
           !lexer_.peek().is(Token::Kind::kEnd) &&
           diags_.size() < kMaxDiagnostics) {
      try {
        body.push_back(parseStmt());
        // A for-loop expands to init (returned) + while (queued).
        for (Stmt& queued : pendingAfter_) body.push_back(std::move(queued));
      } catch (const Error& e) {
        // Panic-mode: record and resynchronize after the next ';' (or stop
        // before the closing brace) so the rest of the body is still
        // checked for further errors.
        diags_.push_back(toDiagnostic(e));
        while (!lexer_.peek().is(Token::Kind::kEnd) &&
               !lexer_.peek().isPunct("}")) {
          if (lexer_.next().isPunct(";")) break;
        }
      }
      pendingAfter_.clear();
    }
    lexer_.expectPunct("}");
    return body;
  }

  Stmt parseStmt() {
    Stmt stmt;
    stmt.loc = lexer_.peek().loc;
    if (lexer_.tryConsumeIdent("int")) {
      const Token var = lexer_.expectIdent();
      declare(var);
      lexer_.expectPunct("=");
      stmt.kind = Stmt::Kind::kAssign;
      stmt.var = var.text;
      stmt.expr = captureUntilSemicolon();
      return stmt;
    }
    if (lexer_.tryConsumeIdent("if")) {
      stmt.kind = Stmt::Kind::kIf;
      lexer_.expectPunct("(");
      stmt.expr = captureUntilCloseParen();
      stmt.thenBody = parseBody();
      if (lexer_.tryConsumeIdent("else")) stmt.elseBody = parseBody();
      return stmt;
    }
    if (lexer_.tryConsumeIdent("while")) {
      stmt.kind = Stmt::Kind::kWhile;
      lexer_.expectPunct("(");
      stmt.expr = captureUntilCloseParen();
      stmt.thenBody = parseBody();
      return stmt;
    }
    if (lexer_.tryConsumeIdent("for")) {
      // for (init; cond; step) body  ->  init; while (cond) { body; step; }
      // The init clause must be a declaration or assignment; the step an
      // assignment.
      lexer_.expectPunct("(");
      Stmt init = parseForClause(/*allowDecl=*/true);
      Stmt loop;
      loop.kind = Stmt::Kind::kWhile;
      loop.loc = stmt.loc;
      loop.expr = captureUntilSemicolon();
      Stmt step = parseForClause(/*allowDecl=*/false);
      lexer_.expectPunct(")");
      loop.thenBody = parseBody();
      loop.thenBody.push_back(std::move(step));
      // The expansion is two statements: the init (returned now) and the
      // while loop (queued; parseBody appends it right after).
      pendingAfter_.push_back(std::move(loop));
      return init;
    }
    if (lexer_.tryConsumeIdent("return")) {
      stmt.kind = Stmt::Kind::kReturn;
      stmt.expr = captureUntilSemicolon();
      return stmt;
    }
    // Plain assignment.
    const Token var = lexer_.expectIdent();
    requireDeclared(var);
    lexer_.expectPunct("=");
    stmt.kind = Stmt::Kind::kAssign;
    stmt.var = var.text;
    stmt.expr = captureUntilSemicolon();
    return stmt;
  }

  CapturedExpr captureUntilSemicolon() { return capture(";", 0); }
  CapturedExpr captureUntilCloseParen() { return capture(")", 1); }

  // Captures tokens until the terminator punct at paren depth 0 (the
  // terminator itself is consumed). `startDepth` = 1 when the caller has
  // already consumed the opening paren.
  CapturedExpr capture(std::string_view terminator, int startDepth) {
    CapturedExpr expr;
    int depth = startDepth;
    const SourceLoc start = lexer_.peek().loc;
    while (true) {
      const Token& next = lexer_.peek();
      if (next.is(Token::Kind::kEnd))
        throw Error(start, "unterminated expression");
      if (next.isPunct("(")) ++depth;
      if (next.isPunct(")")) {
        if (terminator == ")" && depth == 1) {
          lexer_.next();
          break;
        }
        if (depth == 0) throw Error(next.loc, "unbalanced ')'");
        --depth;
      }
      if (next.isPunct(";") && depth == (terminator == ")" ? 1 : 0)) {
        if (terminator == ";") {
          lexer_.next();
          break;
        }
        throw Error(next.loc, "';' inside a condition");
      }
      Token tok = lexer_.next();
      if (tok.is(Token::Kind::kIdent) && !lexer_.peek().isPunct("(")) {
        requireDeclared(tok);
        expr.reads.push_back(tok.text);
      } else if (tok.is(Token::Kind::kIdent) &&
                 !isIntrinsicName(tok.text)) {
        throw Error(tok.loc, "unknown function '" + tok.text +
                                 "' (only min/max/abs/mac/msu intrinsics)");
      }
      // Logical operators lower to their bitwise forms on normalized 0/1
      // values (MiniC expressions are side-effect free, so short-circuit
      // evaluation is unobservable): the operands of && and || are
      // normalized by wrapping the whole capture below; '!' is rewritten
      // inline to '0 ==' (right-binding like unary not).
      if (tok.isPunct("!") && !lexer_.peek().isPunct("=")) {
        Token zero;
        zero.kind = Token::Kind::kNumber;
        zero.number = 0;
        zero.loc = tok.loc;
        Token eq;
        eq.kind = Token::Kind::kPunct;
        eq.text = "==";
        eq.loc = tok.loc;
        expr.tokens.push_back(std::move(zero));
        expr.tokens.push_back(std::move(eq));
        continue;
      }
      expr.tokens.push_back(std::move(tok));
    }
    if (expr.tokens.empty()) throw Error(start, "empty expression");
    return expr;
  }

  // One for-header clause ending in ';' (init) or at ')' (step handled by
  // the caller's expectPunct).
  Stmt parseForClause(bool allowDecl) {
    Stmt stmt;
    stmt.loc = lexer_.peek().loc;
    stmt.kind = Stmt::Kind::kAssign;
    if (allowDecl && lexer_.tryConsumeIdent("int")) {
      const Token var = lexer_.expectIdent();
      declare(var);
      lexer_.expectPunct("=");
      stmt.var = var.text;
      stmt.expr = captureUntilSemicolon();
      return stmt;
    }
    const Token var = lexer_.expectIdent();
    requireDeclared(var);
    lexer_.expectPunct("=");
    stmt.var = var.text;
    if (allowDecl) {
      stmt.expr = captureUntilSemicolon();
    } else {
      // Step clause: capture up to the closing paren, leaving it unread.
      stmt.expr = captureStepClause();
    }
    return stmt;
  }

  // Captures until the ')' that closes the for-header (not consumed).
  CapturedExpr captureStepClause() {
    CapturedExpr expr;
    int depth = 0;
    const SourceLoc start = lexer_.peek().loc;
    while (true) {
      const Token& next = lexer_.peek();
      if (next.is(Token::Kind::kEnd))
        throw Error(start, "unterminated for-step expression");
      if (next.isPunct("(")) ++depth;
      if (next.isPunct(")")) {
        if (depth == 0) break;
        --depth;
      }
      Token tok = lexer_.next();
      if (tok.is(Token::Kind::kIdent) && !lexer_.peek().isPunct("(")) {
        requireDeclared(tok);
        expr.reads.push_back(tok.text);
      }
      expr.tokens.push_back(std::move(tok));
    }
    if (expr.tokens.empty()) throw Error(start, "empty for-step expression");
    return expr;
  }

  void declare(const Token& var) {
    if (!declared_.insert(var.text).second)
      throw Error(var.loc, "variable '" + var.text + "' already declared");
  }
  void requireDeclared(const Token& var) {
    if (!declared_.count(var.text))
      throw Error(var.loc, "use of undeclared variable '" + var.text + "'");
  }
  void expectKeyword(std::string_view keyword) {
    const Token tok = lexer_.next();
    if (!tok.isIdent(keyword))
      throw Error(tok.loc, "expected '" + std::string(keyword) + "', got " +
                               tok.describe());
  }

  // ---------------- lowering -----------------------------------------
  class Lowering {
   public:
    explicit Lowering(std::string fnName) : fnName_(std::move(fnName)) {
      startBlock(newBlockName());
    }

    // Lowers a statement list into the current block chain. Returns true
    // when control can fall out of the list (the current block is live).
    bool lowerInto(const std::vector<Stmt>& body) {
      for (const Stmt& stmt : body) {
        if (!live_)
          throw Error(stmt.loc, "unreachable statement (code after return)");
        switch (stmt.kind) {
          case Stmt::Kind::kAssign:
            addAssign(stmt.var, stmt.expr);
            break;
          case Stmt::Kind::kReturn:
            addAssign(kMiniCReturnVariable, stmt.expr);
            finishBlock("return;");
            live_ = false;
            break;
          case Stmt::Kind::kIf: {
            const std::string cond = materializeCond(stmt.expr);
            const std::string thenName = newBlockName();
            const std::string elseName =
                stmt.elseBody.empty() ? "" : newBlockName();
            const std::string joinName = newBlockName();
            finishBlock("if " + cond + " goto " + thenName + " else " +
                        (elseName.empty() ? joinName : elseName) + ";");
            startBlock(thenName);
            live_ = true;
            const bool thenLive = lowerInto(stmt.thenBody);
            if (thenLive) finishBlock("goto " + joinName + ";");
            bool elseLive = true;
            if (!elseName.empty()) {
              startBlock(elseName);
              live_ = true;
              elseLive = lowerInto(stmt.elseBody);
              if (elseLive) finishBlock("goto " + joinName + ";");
            }
            startBlock(joinName);
            live_ = thenLive || elseLive || stmt.elseBody.empty();
            if (!live_) {
              // Unreachable join: give it a harmless terminator.
              finishBlock("return;");
            }
            break;
          }
          case Stmt::Kind::kWhile: {
            const std::string condName = newBlockName();
            const std::string bodyName = newBlockName();
            const std::string joinName = newBlockName();
            finishBlock("goto " + condName + ";");
            startBlock(condName);
            live_ = true;
            const std::string cond = materializeCond(stmt.expr);
            finishBlock("if " + cond + " goto " + bodyName + " else " +
                        joinName + ";");
            startBlock(bodyName);
            live_ = true;
            if (lowerInto(stmt.thenBody))
              finishBlock("goto " + condName + ";");
            startBlock(joinName);
            live_ = true;
            break;
          }
        }
      }
      return live_;
    }

    Program finish() {
      if (live_) return Program("incomplete");  // caller reports the error
      if (open_) finishBlock("return;");        // unreachable trailing block
      std::string text;
      for (const GenBlock& block : blocks_) {
        text += "block " + block.name + " {\n";
        if (!block.reads.empty()) {
          text += "  input";
          bool first = true;
          for (const std::string& var : block.reads) {
            text += (first ? " " : ", ") + var;
            first = false;
          }
          text += ";\n";
        }
        if (!block.writes.empty()) {
          text += "  output";
          bool first = true;
          for (const std::string& var : block.writes) {
            text += (first ? " " : ", ") + var;
            first = false;
          }
          text += ";\n";
        }
        for (const std::string& stmt : block.statements)
          text += "  " + stmt + "\n";
        text += "  " + block.terminator + "\n}\n";
      }
      return parseProgram(text, fnName_);
    }

   private:
    struct GenBlock {
      std::string name;
      std::set<std::string> reads;   // read before written in this block
      std::set<std::string> writes;  // assigned in this block
      std::vector<std::string> statements;
      std::string terminator;
    };

    std::string newBlockName() {
      return fnName_ + "_b" + std::to_string(nextBlock_++);
    }
    void startBlock(const std::string& name) {
      AVIV_CHECK(!open_);
      current_ = GenBlock{};
      current_.name = name;
      open_ = true;
    }
    void finishBlock(const std::string& terminator) {
      AVIV_CHECK(open_);
      current_.terminator = terminator;
      blocks_.push_back(std::move(current_));
      open_ = false;
    }
    void addAssign(const std::string& var, const CapturedExpr& expr) {
      for (const std::string& read : expr.reads)
        if (!current_.writes.count(read)) current_.reads.insert(read);
      current_.statements.push_back(var + " = " + expr.text() + ";");
      current_.writes.insert(var);
    }
    // Conditions become named block outputs so the branch can read them.
    std::string materializeCond(const CapturedExpr& expr) {
      const std::string name = "__c" + std::to_string(nextCond_++);
      addAssign(name, expr);
      return name;
    }

    std::string fnName_;
    std::vector<GenBlock> blocks_;
    GenBlock current_;
    bool open_ = false;
    bool live_ = true;
    int nextBlock_ = 0;
    int nextCond_ = 0;
  };

  Lexer lexer_;
  std::string sourceName_;
  std::vector<Diagnostic> diags_;
  std::set<std::string> declared_;
  std::vector<Stmt> pendingAfter_;  // for-loop expansion queue
};

}  // namespace

MiniCFunction parseMiniC(std::string_view source,
                         const std::string& sourceName) {
  MiniCParser parser(source, sourceName);
  return parser.parse();
}

}  // namespace aviv
