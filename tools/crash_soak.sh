#!/bin/sh
# crash_soak.sh — zero-lost-responses soak for the crash-isolated compile
# server (docs/server.md "Crash model and worker isolation"), run by ctest
# and the CI crash-soak job.
#
#   crash_soak.sh <avivd> <loadgen> <fuzz_gen> <batch.txt> [conns] [reqs]
#
# Starts `avivd --listen --isolate-workers 4` with a randomized-but-printed
# fixed seed driving probabilistic crash-class fail points (SIGSEGV, abort,
# torn mid-frame writes, hangs cut down by the hard deadline), then drives
# it with a many-connection closed-loop burst. Asserts:
#   1. Zero lost responses: the client gets exactly one typed response per
#      request — a worker crash surfaces as a retried success, a breaker
#      answer, or a typed error, NEVER a missing or torn reply.
#   2. The daemon survives: crashes happened (the seed is rejected if the
#      mix never fired), workers respawned, and SIGTERM still drains with
#      0 dropped responses and exit 0.
#   3. Every crash left a repro bundle, and a sampled bundle replays
#      standalone via `fuzz_gen --replay`.
#
# AVIV_CRASH_SOAK_SEED pins the seed for reproducing a CI failure locally.
# AVIV_CRASH_SOAK_KEEP=<dir> copies the server log, client JSON, and every
# crash bundle there on exit, so CI can upload them from a red run.
set -eu

AVIVD=$1
LOADGEN=$2
FUZZ_GEN=$3
BATCH=$4
CONNS=${5:-50}
REQS=${6:-600}
SEED=${AVIV_CRASH_SOAK_SEED:-$(date +%s)}

WORK=$(mktemp -d /tmp/aviv_crash_soak.XXXXXX)
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ]; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  if [ -n "${AVIV_CRASH_SOAK_KEEP:-}" ]; then
    mkdir -p "$AVIV_CRASH_SOAK_KEEP"
    cp "$WORK"/*.log "$WORK"/*.json "$AVIV_CRASH_SOAK_KEEP/" 2>/dev/null || true
    [ -d "$WORK/crashes" ] && cp -r "$WORK/crashes" "$AVIV_CRASH_SOAK_KEEP/" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

SOCK="$WORK/avivd.sock"
CRASHES="$WORK/crashes"
# Crash mix: frequent instant deaths, occasional torn writes, rare hangs
# (each hang costs one hard deadline of wall clock).
FAILPOINTS="worker-segv:0.05,worker-abort:0.03,worker-torn-write:0.03,worker-hang:0.004"

echo "crash_soak: seed=$SEED (rerun with AVIV_CRASH_SOAK_SEED=$SEED)"

json_int() {  # json_int FILE KEY -> integer value
  sed -n "s/.*\"$2\": \([0-9][0-9]*\).*/\1/p" "$1" | head -n 1
}

"$AVIVD" --listen "unix:$SOCK" --jobs 8 --cache-dir "$WORK/cache" \
  --isolate-workers 4 --worker-deadline-ms 1500 --worker-rss-mb 1024 \
  --crash-dir "$CRASHES" --crash-loop-k 4 \
  --failpoints "$FAILPOINTS" --failpoint-seed "$SEED" \
  > "$WORK/server.log" 2>&1 &
SERVER_PID=$!
i=0
while ! grep -q "listening on" "$WORK/server.log" 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "FAIL: server never started"; cat "$WORK/server.log"; exit 1; }
  sleep 0.1
done

echo "== 1. $CONNS-connection burst against 4 crashing workers =="
"$LOADGEN" --connect "unix:$SOCK" --batch "$BATCH" --connections "$CONNS" \
  --requests "$REQS" --pipeline 2 --stall-timeout-ms 60000 \
  --json "$WORK/soak.json" 2> "$WORK/loadgen.log" || {
  echo "FAIL: loadgen aborted (stall or transport failure)"
  cat "$WORK/loadgen.log"; cat "$WORK/server.log"; exit 1
}
RESPONSES=$(json_int "$WORK/soak.json" responses)
LOST=$(json_int "$WORK/soak.json" lost)
[ "$RESPONSES" -eq "$REQS" ] || { echo "FAIL: $RESPONSES/$REQS responses (seed $SEED)"; cat "$WORK/server.log"; exit 1; }
[ "$LOST" -eq 0 ] || { echo "FAIL: $LOST lost responses (seed $SEED)"; exit 1; }
echo "ok: $RESPONSES/$REQS responses, 0 lost"

echo "== 2. daemon survived; drain still loses nothing =="
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: server exit nonzero after crash soak"; cat "$WORK/server.log"; exit 1; }
SERVER_PID=""
grep -q " 0 dropped" "$WORK/server.log" || { echo "FAIL: server dropped responses"; cat "$WORK/server.log"; exit 1; }
CRASH_COUNT=$(sed -n 's/avivd: workers: \([0-9][0-9]*\) crashes.*/\1/p' "$WORK/server.log" | tail -n 1)
[ -n "$CRASH_COUNT" ] || { echo "FAIL: no worker summary in server log"; cat "$WORK/server.log"; exit 1; }
[ "$CRASH_COUNT" -gt 0 ] || { echo "FAIL: the crash mix never fired (seed $SEED) — soak proved nothing"; exit 1; }
grep "avivd: workers:" "$WORK/server.log" | tail -n 1
echo "ok: $CRASH_COUNT worker crashes, daemon exit 0, 0 dropped"

echo "== 3. crash bundles exist and replay standalone =="
BUNDLE=$(find "$CRASHES" -maxdepth 1 -name 'crash-*' -type d | sort | head -n 1)
[ -n "$BUNDLE" ] || { echo "FAIL: $CRASH_COUNT crashes but no repro bundle"; exit 1; }
# Relocatability is part of the contract: replay a MOVED copy.
cp -r "$BUNDLE" "$WORK/moved-bundle"
"$FUZZ_GEN" --replay "$WORK/moved-bundle" || { echo "FAIL: bundle $BUNDLE did not replay (seed $SEED)"; exit 1; }
echo "ok: $(find "$CRASHES" -maxdepth 1 -name 'crash-*' -type d | wc -l) bundles, sampled bundle reproduced"

echo "crash_soak: PASS (seed $SEED)"
