#!/bin/sh
# fuzz_gen smoke (ctest: fuzzgen_smoke). Three checks:
#   1. a clean bounded run at a pinned seed finds zero failures (exit 0)
#   2. the same seed twice prints byte-identical verdict summaries
#   3. a planted `fuzz-engine-disagree` run exits 1, writes a repro bundle,
#      auto-minimizes it, and BOTH bundles replay standalone (exit 0)
# Usage: fuzz_gen_smoke.sh <fuzz_gen-binary> <scratch-dir>
set -eu

FUZZ_GEN=$1
OUT=$2
rm -rf "$OUT"
mkdir -p "$OUT"

# --- 1+2: clean deterministic run -----------------------------------------
"$FUZZ_GEN" --seed 42 --iterations 12 --out-dir "$OUT/clean1" \
  > "$OUT/sum1.txt"
"$FUZZ_GEN" --seed 42 --iterations 12 --out-dir "$OUT/clean2" \
  > "$OUT/sum2.txt"
cmp "$OUT/sum1.txt" "$OUT/sum2.txt" || {
  echo "fuzz_gen_smoke: summaries differ between identical seeds" >&2
  exit 1
}

# --- 3: planted failure must quarantine, minimize, and replay -------------
code=0
"$FUZZ_GEN" --seed 5 --iterations 5 --failpoints fuzz-engine-disagree:1:1 \
  --out-dir "$OUT/planted" > "$OUT/planted.txt" 2>&1 || code=$?
if [ "$code" -ne 1 ]; then
  echo "fuzz_gen_smoke: planted run exited $code, expected 1" >&2
  cat "$OUT/planted.txt" >&2
  exit 1
fi

minimized=$(find "$OUT/planted" -path '*/minimized/*' -name meta.txt \
  | head -n 1)
if [ -z "$minimized" ]; then
  echo "fuzz_gen_smoke: planted run produced no minimized bundle" >&2
  exit 1
fi
original=$(dirname "$(dirname "$(dirname "$minimized")")")

"$FUZZ_GEN" --replay "$original"
"$FUZZ_GEN" --replay "$(dirname "$minimized")"

echo "fuzz_gen_smoke: OK"
