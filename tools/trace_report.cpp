// trace_report — offline summarizer for flight-recorder traces (and metrics
// dumps) produced by `avivc --trace-out` / `avivd --trace-out`.
//
//   trace_report <trace.json> [--validate] [--top N] [--metrics m.json]
//
// Default report:
//   * trace overview: event counts by phase type, wall span, drop counter
//   * top phases by SELF time (span duration minus nested spans on the same
//     thread) — where the compile actually spent its time
//   * per-block breakdown: one section per "compile:<block>" span with the
//     phase spans nested inside it (the block's critical path, since block
//     compiles are single-threaded inside the span)
//
// --validate additionally checks event well-formedness and exits nonzero on
// violation: the file must parse as Chrome trace-event JSON, every 'B' must
// have a matching 'E' on the same thread (our tracer only emits complete
// 'X' events, which must carry a non-negative dur), and timestamps must be
// finite. The trace-schema ctest drives this against a fresh avivc trace.
//
// --metrics <file> renders the histogram tables from a `--metrics-json`
// dump: count/min/p50/p90/p99/max per histogram plus the counters.
//
// The JSON reader below is a deliberately small recursive-descent parser
// for machine-generated JSON (full value grammar, UTF-8 passthrough); it
// keeps the tool dependency-free.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/cli.h"
#include "support/error.h"
#include "support/io.h"

namespace {

using aviv::Error;

// ---------------------------------------------------------------------------
// Minimal JSON value + parser.

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;

  [[nodiscard]] bool isObject() const { return kind == Kind::kObject; }
  [[nodiscard]] bool isArray() const { return kind == Kind::kArray; }
  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object->find(key);
    return it == object->end() ? nullptr : &it->second;
  }
  [[nodiscard]] double num(double fallback = 0.0) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  [[nodiscard]] std::string str(const std::string& fallback = "") const {
    return kind == Kind::kString ? text : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  JsonValue parseValue() {
    skipWs();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.text = parseString();
      return v;
    }
    if (c == 't' || c == 'f') return parseKeyword(c == 't');
    if (c == 'n') {
      expectWord("null");
      return JsonValue{};
    }
    return parseNumber();
  }

  JsonValue parseObject() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    v.object = std::make_shared<JsonObject>();
    ++pos_;  // '{'
    skipWs();
    if (consumeIf('}')) return v;
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      if (!consumeIf(':')) fail("expected ':' in object");
      (*v.object)[std::move(key)] = parseValue();
      skipWs();
      if (consumeIf(',')) continue;
      if (consumeIf('}')) return v;
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parseArray() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    v.array = std::make_shared<JsonArray>();
    ++pos_;  // '['
    skipWs();
    if (consumeIf(']')) return v;
    while (true) {
      v.array->push_back(parseValue());
      skipWs();
      if (consumeIf(',')) continue;
      if (consumeIf(']')) return v;
      fail("expected ',' or ']' in array");
    }
  }

  JsonValue parseKeyword(bool isTrue) {
    expectWord(isTrue ? "true" : "false");
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = isTrue;
    return v;
  }

  JsonValue parseNumber() {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail("expected a JSON value");
    pos_ += static_cast<size_t>(end - begin);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    return v;
  }

  std::string parseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              const int digit = h >= '0' && h <= '9'   ? h - '0'
                                : h >= 'a' && h <= 'f' ? h - 'a' + 10
                                : h >= 'A' && h <= 'F' ? h - 'A' + 10
                                                       : -1;
              if (digit < 0) fail("bad \\u escape");
              code = code * 16 + static_cast<unsigned>(digit);
            }
            // Control-plane strings only; fold BMP escapes to '?' beyond
            // Latin-1 rather than implementing UTF-16 surrogates.
            c = code <= 0xff ? static_cast<char>(code) : '?';
            break;
          }
          default: c = esc;
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;
    return out;
  }

  void expectWord(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consumeIf(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON at offset " + std::to_string(pos_) + ": " + what);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Trace model.

struct TraceEvent {
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds, 'X' only
  char ph = 'i';
  int64_t tid = 0;
  std::string name;
  std::string cat;
};

struct Trace {
  std::vector<TraceEvent> events;
  int64_t overwritten = 0;
};

Trace loadTrace(const std::string& path) {
  const JsonValue root = JsonParser(aviv::readFile(path)).parse();
  const JsonValue* eventsValue = nullptr;
  Trace trace;
  if (root.isArray()) {
    eventsValue = &root;  // bare-array Chrome trace form
  } else if (root.isObject()) {
    eventsValue = root.find("traceEvents");
    if (const JsonValue* other = root.find("otherData"))
      if (const JsonValue* overwritten = other->find("overwritten"))
        trace.overwritten = static_cast<int64_t>(overwritten->num());
  }
  if (eventsValue == nullptr || !eventsValue->isArray())
    throw Error(path + ": not a Chrome trace (no traceEvents array)");
  trace.events.reserve(eventsValue->array->size());
  for (const JsonValue& e : *eventsValue->array) {
    if (!e.isObject()) throw Error(path + ": non-object trace event");
    TraceEvent event;
    if (const JsonValue* v = e.find("ts")) event.ts = v->num();
    if (const JsonValue* v = e.find("dur")) event.dur = v->num();
    if (const JsonValue* v = e.find("tid"))
      event.tid = static_cast<int64_t>(v->num());
    if (const JsonValue* v = e.find("ph")) {
      const std::string ph = v->str("i");
      event.ph = ph.empty() ? 'i' : ph[0];
    }
    if (const JsonValue* v = e.find("name")) event.name = v->str();
    if (const JsonValue* v = e.find("cat")) event.cat = v->str();
    trace.events.push_back(std::move(event));
  }
  return trace;
}

// Schema validation: parseability was established by loadTrace; here we
// check event pairing. Returns the number of violations (0 = valid).
int validateTrace(const Trace& trace) {
  int violations = 0;
  auto complain = [&](const std::string& what) {
    std::fprintf(stderr, "trace_report: INVALID: %s\n", what.c_str());
    ++violations;
  };
  // Per-tid stack of open 'B' events.
  std::map<int64_t, std::vector<std::string>> open;
  for (const TraceEvent& e : trace.events) {
    if (!std::isfinite(e.ts) || !std::isfinite(e.dur))
      complain("non-finite timestamp on '" + e.name + "'");
    switch (e.ph) {
      case 'B': open[e.tid].push_back(e.name); break;
      case 'E': {
        auto& stack = open[e.tid];
        if (stack.empty()) {
          complain("'E' without matching 'B' on tid " +
                   std::to_string(e.tid));
        } else {
          // Chrome pairs B/E strictly LIFO per thread; a name mismatch
          // means interleaved spans the format cannot represent.
          if (!e.name.empty() && stack.back() != e.name)
            complain("'E' name '" + e.name + "' does not match open '" +
                     stack.back() + "' on tid " + std::to_string(e.tid));
          stack.pop_back();
        }
        break;
      }
      case 'X':
        if (e.dur < 0.0) complain("negative dur on '" + e.name + "'");
        break;
      case 'i':
      case 'I':
      case 'C':
        break;
      default:
        complain(std::string("unknown phase '") + e.ph + "' on '" + e.name +
                 "'");
    }
  }
  for (const auto& [tid, stack] : open)
    for (const std::string& name : stack)
      complain("'B' \"" + name + "\" never closed on tid " +
               std::to_string(tid));
  return violations;
}

// Self-time per span name: duration minus directly nested spans on the same
// thread. Nesting is recovered from [ts, ts+dur) containment, which is
// exact for single-threaded scopes (ours are RAII).
struct PhaseAgg {
  double totalUs = 0.0;
  double selfUs = 0.0;
  int64_t count = 0;
};

std::map<std::string, PhaseAgg> aggregateSelfTimes(const Trace& trace) {
  struct Span {
    double ts, dur;
    std::string name;
  };
  std::map<int64_t, std::vector<Span>> byTid;
  for (const TraceEvent& e : trace.events)
    if (e.ph == 'X') byTid[e.tid].push_back({e.ts, e.dur, e.name});

  std::map<std::string, PhaseAgg> agg;
  for (auto& [tid, spans] : byTid) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Span& a, const Span& b) {
                       if (a.ts != b.ts) return a.ts < b.ts;
                       return a.dur > b.dur;  // parents before children
                     });
    // Sweep with an enclosing-span stack; each span's duration is charged
    // against its nearest enclosing span's self time.
    std::vector<const Span*> stack;
    for (const Span& span : spans) {
      while (!stack.empty() &&
             span.ts >= stack.back()->ts + stack.back()->dur)
        stack.pop_back();
      PhaseAgg& a = agg[span.name];
      a.totalUs += span.dur;
      a.selfUs += span.dur;
      a.count += 1;
      if (!stack.empty()) agg[stack.back()->name].selfUs -= span.dur;
      stack.push_back(&span);
    }
  }
  return agg;
}

void printTimeUs(double us) {
  if (us >= 1e6)
    std::printf("%9.3fs ", us / 1e6);
  else if (us >= 1e3)
    std::printf("%8.2fms ", us / 1e3);
  else
    std::printf("%8.1fus ", us);
}

void reportTopPhases(const Trace& trace, size_t top) {
  const auto agg = aggregateSelfTimes(trace);
  std::vector<std::pair<std::string, PhaseAgg>> rows(agg.begin(), agg.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.selfUs > b.second.selfUs;
                   });
  double totalSelf = 0.0;
  for (const auto& [name, a] : rows) totalSelf += a.selfUs;

  std::printf("top spans by self time:\n");
  std::printf("  %10s %10s %7s %6s  %s\n", "self", "total", "count", "self%",
              "name");
  size_t shown = 0;
  for (const auto& [name, a] : rows) {
    if (shown++ >= top) break;
    std::printf("  ");
    printTimeUs(a.selfUs);
    printTimeUs(a.totalUs);
    std::printf("%7lld %5.1f%%  %s\n", static_cast<long long>(a.count),
                totalSelf > 0.0 ? 100.0 * a.selfUs / totalSelf : 0.0,
                name.c_str());
  }
  if (rows.size() > shown)
    std::printf("  ... %zu more span names\n", rows.size() - shown);
}

// Per-block sections: each "compile:<block>" span with the phase spans that
// ran inside its window on its thread. Block compiles are single-threaded
// within the span (candidate-covering fan-out emits under the same tel
// node but its spans carry their own tids and roll up under "cover").
void reportBlocks(const Trace& trace) {
  struct Block {
    double ts, dur;
    int64_t tid;
    std::string name;
    std::map<std::string, PhaseAgg> phases;
  };
  std::vector<Block> blocks;
  for (const TraceEvent& e : trace.events)
    if (e.ph == 'X' && e.name.rfind("compile:", 0) == 0)
      blocks.push_back({e.ts, e.dur, e.tid, e.name.substr(8), {}});
  if (blocks.empty()) return;
  std::stable_sort(blocks.begin(), blocks.end(),
                   [](const Block& a, const Block& b) { return a.ts < b.ts; });

  for (const TraceEvent& e : trace.events) {
    if (e.ph != 'X' || e.cat != "phase") continue;
    for (Block& block : blocks) {
      if (e.tid == block.tid && e.ts >= block.ts &&
          e.ts + e.dur <= block.ts + block.dur + 1e-3) {
        PhaseAgg& a = block.phases[e.name];
        a.totalUs += e.dur;
        a.count += 1;
        break;
      }
    }
  }

  std::printf("\nper-block breakdown (%zu compile spans):\n", blocks.size());
  for (const Block& block : blocks) {
    std::printf("  %s: ", block.name.c_str());
    printTimeUs(block.dur);
    std::printf("\n");
    std::vector<std::pair<std::string, PhaseAgg>> rows(block.phases.begin(),
                                                       block.phases.end());
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                       return a.second.totalUs > b.second.totalUs;
                     });
    for (const auto& [name, a] : rows) {
      std::printf("    ");
      printTimeUs(a.totalUs);
      std::printf(" %5.1f%%  %s\n",
                  block.dur > 0.0 ? 100.0 * a.totalUs / block.dur : 0.0,
                  name.c_str());
    }
  }
}

void reportMetrics(const std::string& path) {
  const JsonValue root = JsonParser(aviv::readFile(path)).parse();
  std::printf("\nmetrics from %s:\n", path.c_str());
  if (const JsonValue* counters = root.find("counters");
      counters != nullptr && counters->isObject() &&
      !counters->object->empty()) {
    std::printf("  counters:\n");
    for (const auto& [name, value] : *counters->object)
      std::printf("    %-32s %12lld\n", name.c_str(),
                  static_cast<long long>(value.num()));
  }
  const JsonValue* histograms = root.find("histograms");
  if (histograms == nullptr || !histograms->isObject() ||
      histograms->object->empty())
    return;
  std::printf("  histograms:\n");
  std::printf("    %-28s %9s %9s %9s %9s %9s %9s\n", "name", "count", "min",
              "p50", "p90", "p99", "max");
  for (const auto& [name, h] : *histograms->object) {
    if (!h.isObject()) continue;
    auto field = [&](const char* key) {
      const JsonValue* v = h.find(key);
      return v != nullptr ? v->num() : 0.0;
    };
    std::printf("    %-28s %9lld %9lld %9.0f %9.0f %9.0f %9lld\n",
                name.c_str(), static_cast<long long>(field("count")),
                static_cast<long long>(field("min")), field("p50"),
                field("p90"), field("p99"),
                static_cast<long long>(field("max")));
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    aviv::CliFlags flags(argc, argv);
    if (flags.positional().size() != 1)
      throw Error(
          "usage: trace_report <trace.json> [--validate] [--top N] "
          "[--metrics metrics.json]");
    const std::string tracePath = flags.positional()[0];
    const bool validate = flags.getBool("validate", false);
    const auto top = static_cast<size_t>(flags.getInt("top", 12));
    const std::string metricsPath = flags.getString("metrics", "");
    flags.finish();

    const Trace trace = loadTrace(tracePath);
    size_t counts[4] = {0, 0, 0, 0};  // X, i, C, other
    for (const TraceEvent& e : trace.events) {
      if (e.ph == 'X')
        ++counts[0];
      else if (e.ph == 'i' || e.ph == 'I')
        ++counts[1];
      else if (e.ph == 'C')
        ++counts[2];
      else
        ++counts[3];
    }
    double minTs = 0.0, maxTs = 0.0;
    if (!trace.events.empty()) {
      minTs = trace.events.front().ts;
      maxTs = minTs;
      for (const TraceEvent& e : trace.events) {
        minTs = std::min(minTs, e.ts);
        maxTs = std::max(maxTs, e.ts + (e.ph == 'X' ? e.dur : 0.0));
      }
    }
    std::printf("%s: %zu events (%zu spans, %zu instants, %zu counters"
                "%s%zu other), ",
                tracePath.c_str(), trace.events.size(), counts[0], counts[1],
                counts[2], counts[3] > 0 ? ", " : ", ", counts[3]);
    printTimeUs(maxTs - minTs);
    std::printf("wall span");
    if (trace.overwritten > 0)
      std::printf(", %lld overwritten (ring wrapped)",
                  static_cast<long long>(trace.overwritten));
    std::printf("\n\n");

    int violations = 0;
    if (validate) {
      violations = validateTrace(trace);
      std::printf("validate: %s\n\n",
                  violations == 0 ? "OK (all spans complete and paired)"
                                  : "FAILED");
    }

    reportTopPhases(trace, top);
    reportBlocks(trace);
    if (!metricsPath.empty()) reportMetrics(metricsPath);
    return violations == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_report: %s\n", e.what());
    return 1;
  }
}
