// fuzz_inputs — deterministic mutation fuzzer for AVIV's three input
// languages (ISDL machines, block programs, MiniC). Loads the seed corpus,
// applies seeded byte- and token-level mutations, and feeds each mutant to
// the matching parser. The contract under test is PR 4's input hardening:
//
//   * no malformed input may crash or abort the process — parsers must
//     raise ParseError (with source-located diagnostics) or Error, never
//     AVIV_CHECK-abort or throw anything outside the aviv::Error taxonomy;
//   * every *unmutated* corpus input must still parse, and (with
//     --compile) compile under VerifyLevel::kAll without being
//     quarantined — the verifier must never cry wolf on valid input;
//   * with --compile, mutants that still parse are driven through the
//     full guarded pipeline, where resource ceilings and the degradation
//     ladder must hold (degraded results are fine, crashes are not).
//
// All randomness comes from one SplitMix64 seed, so any failure reproduces
// from the command line alone; the offending source is also written as
// fuzz-failure-<iteration>.txt under --out-dir (default: the corpus
// directory, so CI collects every fuzz artifact from one place).
//
//   fuzz_inputs --corpus <dir> [--iterations N] [--seed S] [--compile]
//               [--out-dir <dir>]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "driver/codegen.h"
#include "frontend/minic.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "support/cli.h"
#include "support/error.h"
#include "support/io.h"
#include "support/rng.h"

namespace {

using namespace aviv;
namespace fs = std::filesystem;

enum class Lang { kIsdl, kBlock, kMiniC };

struct SeedInput {
  std::string name;
  Lang lang = Lang::kBlock;
  std::string text;
};

const char* langName(Lang lang) {
  switch (lang) {
    case Lang::kIsdl: return "isdl";
    case Lang::kBlock: return "block";
    case Lang::kMiniC: return "minic";
  }
  return "?";
}

std::vector<SeedInput> loadCorpus(const std::string& dir) {
  std::vector<SeedInput> corpus;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file()) paths.push_back(entry.path());
  // directory_iterator order is unspecified; sort for determinism.
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    SeedInput input;
    input.name = path.filename().string();
    const std::string ext = path.extension().string();
    if (ext == ".isdl") {
      input.lang = Lang::kIsdl;
    } else if (ext == ".blk") {
      input.lang = Lang::kBlock;
    } else if (ext == ".c") {
      input.lang = Lang::kMiniC;
    } else {
      continue;
    }
    input.text = readFile(path.string());
    corpus.push_back(std::move(input));
  }
  return corpus;
}

// Structure-ish tokens the mutator splices in: valid keywords and
// punctuation reach deeper grammar states than raw byte noise does.
const char* const kFragments[] = {
    "block",    "input",  "output", "machine", "regfile", "unit",
    "memory",   "bus",    "op",     "transfer", "constraint", "repeat",
    "goto",     "if",     "else",   "while",   "int",     "return",
    "{", "}", "(", ")", ";", ",", "=", "+", "-", "*", "/", "%", "<<",
    ">>", "->", "size", "data", "latency", "0", "1", "999999999999999999999",
    "0x", "$i", "x", "y",
};

std::string mutate(std::string text, Rng& rng) {
  const int edits = static_cast<int>(rng.intIn(1, 4));
  for (int e = 0; e < edits; ++e) {
    if (text.empty()) {
      text = kFragments[rng.below(std::size(kFragments))];
      continue;
    }
    switch (rng.below(6)) {
      case 0: {  // flip one byte to a random printable char
        text[rng.below(text.size())] =
            static_cast<char>(rng.intIn(32, 126));
        break;
      }
      case 1: {  // insert a grammar fragment
        const char* frag = kFragments[rng.below(std::size(kFragments))];
        text.insert(rng.below(text.size() + 1), std::string(" ") + frag + " ");
        break;
      }
      case 2: {  // delete a span
        const size_t at = rng.below(text.size());
        text.erase(at, rng.intIn(1, 24));
        break;
      }
      case 3: {  // duplicate a span elsewhere
        const size_t at = rng.below(text.size());
        const std::string span =
            text.substr(at, static_cast<size_t>(rng.intIn(1, 32)));
        text.insert(rng.below(text.size() + 1), span);
        break;
      }
      case 4: {  // truncate (simulates a cut-off file)
        text.resize(rng.below(text.size() + 1));
        break;
      }
      default: {  // swap two characters
        const size_t a = rng.below(text.size());
        const size_t b = rng.below(text.size());
        std::swap(text[a], text[b]);
        break;
      }
    }
    if (text.size() > 64 * 1024) text.resize(64 * 1024);
  }
  return text;
}

struct Outcome {
  bool parsed = false;     // input was accepted
  bool failed = false;     // contract violation (crash-class escape)
  std::string what;
};

// Parses (and with `compile` set, compiles under full verification) one
// input. Everything in the aviv::Error taxonomy is a pass — recoverable
// rejection is exactly the hardened behaviour; any other exception type is
// a contract violation the fuzzer reports.
Outcome exercise(Lang lang, const std::string& text, bool compile,
                 const Machine& machine) {
  Outcome outcome;
  try {
    switch (lang) {
      case Lang::kIsdl: {
        const Machine parsed = parseMachine(text, "<fuzz>");
        (void)parsed;
        break;
      }
      case Lang::kBlock:
      case Lang::kMiniC: {
        const Program program = lang == Lang::kBlock
                                    ? parseProgram(text, "<fuzz>")
                                    : parseMiniC(text, "<fuzz>").program;
        outcome.parsed = true;
        // Compile-stage Error (machine lacks an op, resource ceiling, ...)
        // is a recoverable rejection, not a seed-parse failure — only a
        // quarantined verification of otherwise-valid code is a bug.
        if (compile) {
          DriverOptions options;
          options.core = CodegenOptions::heuristicsOn();
          // Tight ceilings: a pathological mutant must degrade, not hang.
          options.core.maxSndNodes = 20000;
          options.core.maxTotalCliques = 100000;
          options.core.timeLimitSeconds = 5.0;
          options.verify.level = VerifyLevel::kAll;
          CodeGenerator generator(machine, options);
          if (program.numBlocks() > 1) {
            const CompiledProgram compiled =
                generator.compileProgram(program);
            for (const CompiledBlock& block : compiled.blocks)
              if (block.quarantined)
                throw std::logic_error("valid input was quarantined");
          } else {
            const CompiledBlock block =
                generator.compileBlock(program.block(0));
            if (block.quarantined)
              throw std::logic_error("valid input was quarantined");
          }
        }
        break;
      }
    }
    outcome.parsed = true;
  } catch (const Error& e) {
    // Recoverable rejection (ParseError, ResourceLimitExceeded, plain
    // Error, ...) — the hardened contract at work.
    outcome.what = e.what();
  } catch (const std::exception& e) {
    outcome.failed = true;
    outcome.what = e.what();
  } catch (...) {
    outcome.failed = true;
    outcome.what = "non-std exception";
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliFlags flags(argc, argv);
    const std::string corpusDir = flags.getString("corpus", "");
    const int iterations = static_cast<int>(flags.getInt("iterations", 500));
    const uint64_t seed = static_cast<uint64_t>(flags.getInt("seed", 1));
    const bool compile = flags.getBool("compile", false);
    const std::string outDir = flags.getString("out-dir", corpusDir);
    flags.finish();
    if (corpusDir.empty())
      throw Error("usage: fuzz_inputs --corpus <dir> [--iterations N] "
                  "[--seed S] [--compile] [--out-dir <dir>]");
    fs::create_directories(outDir);

    const std::vector<SeedInput> corpus = loadCorpus(corpusDir);
    if (corpus.empty())
      throw Error("no .isdl/.blk/.c seeds under " + corpusDir);
    const Machine machine = loadMachine("arch1");

    // Phase 1: every unmutated seed must parse — and never be quarantined.
    for (const SeedInput& seedInput : corpus) {
      const Outcome outcome =
          exercise(seedInput.lang, seedInput.text, compile, machine);
      if (!outcome.parsed) {
        std::fprintf(stderr, "fuzz_inputs: corpus seed %s rejected: %s\n",
                     seedInput.name.c_str(), outcome.what.c_str());
        return 1;
      }
    }

    // Phase 2: seeded mutants. Rejection is fine; escape from the Error
    // taxonomy (or a quarantined valid compile) is a failure.
    Rng rng(seed);
    int parsedCount = 0;
    for (int i = 0; i < iterations; ++i) {
      const SeedInput& base = corpus[rng.below(corpus.size())];
      const std::string mutant = mutate(base.text, rng);
      const Outcome outcome = exercise(base.lang, mutant, compile, machine);
      if (outcome.failed) {
        const std::string dump =
            (fs::path(outDir) / ("fuzz-failure-" + std::to_string(i) + ".txt"))
                .string();
        writeFile(dump, mutant);
        std::fprintf(stderr,
                     "fuzz_inputs: FAILURE at iteration %d (seed %llu, "
                     "lang %s, base %s): %s\n  input dumped to %s\n",
                     i, static_cast<unsigned long long>(seed),
                     langName(base.lang), base.name.c_str(),
                     outcome.what.c_str(), dump.c_str());
        return 1;
      }
      if (outcome.parsed) ++parsedCount;
    }
    std::printf("fuzz_inputs: %d iterations over %zu seeds (seed %llu): "
                "%d mutants still parsed, 0 contract violations\n",
                iterations, corpus.size(),
                static_cast<unsigned long long>(seed), parsedCount);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz_inputs: %s\n", e.what());
    return 1;
  }
}
