// loadgen — multi-connection load generator for the avivd compile server
// (src/net, docs/server.md). Drives many concurrent connections from one
// event-loop thread, speaks the framed wire protocol, and reports latency
// percentiles, per-type response counts, shed rate, and throughput — the
// client-side half of every server-smoke assertion (the script cross-checks
// these numbers against the server's own summary).
//
//   loadgen --connect <unix:PATH|HOST:PORT> [options]
//
// Options:
//   --connections N   concurrent connections (default 1)
//   --requests N      total requests to issue, closed loop (default 100)
//   --duration SEC    open loop: issue at --rate for SEC seconds
//   --mode M          closed (default) | open
//   --rate R          open loop: target requests/second across all conns
//   --pipeline P      closed loop: per-connection in-flight cap (default 1)
//   --batch FILE      request lines to cycle through (default a single
//                     "machine=arch1 block=ex1")
//   --line STR        single request line (overrides the default; --batch
//                     wins when both are given)
//   --distinct N      cold mix: request i appends " regs=<8 + i%N>" so each
//                     variant fingerprints distinctly (0 = off, warm)
//   --want-asm        request assembly bodies
//   --dump-asm        print each response body to stdout (arrival order)
//   --json FILE       write the stats report as JSON
//   --connect-timeout-ms N  per-connection connect budget (default 5000)
//   --stall-timeout-ms N    exit nonzero if no response arrives for this
//                     long while requests are outstanding (default 30000)
//
// Exit status: 0 when every issued request was answered and no transport
// or protocol error occurred (RETRY_AFTER sheds are NOT errors — they are
// the server's admission control working as designed and are reported
// separately); 1 otherwise.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <deque>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"
#include "net/socket.h"
#include "support/cli.h"
#include "support/error.h"
#include "support/io.h"
#include "support/strings.h"
#include "support/timer.h"

namespace {

using namespace aviv;
using namespace aviv::net;

struct Sample {
  double atSeconds = 0;   // completion time, offset from run start
  double latencyUs = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

struct Conn {
  uint64_t id = 0;
  Fd fd;
  FrameDecoder decoder;
  std::string outbuf;
  size_t outPos = 0;
  int outstanding = 0;
  bool dead = false;

  [[nodiscard]] size_t pendingOut() const { return outbuf.size() - outPos; }
};

class LoadGen {
 public:
  struct Options {
    Endpoint endpoint;
    int connections = 1;
    int64_t totalRequests = 100;
    double durationSeconds = 0;  // open loop
    bool openLoop = false;
    double rate = 0;  // open loop requests/sec
    int pipeline = 1;
    std::vector<std::string> lines;
    int distinct = 0;
    bool wantAsm = false;
    bool dumpAsm = false;
    int stallTimeoutMs = 30000;
  };

  explicit LoadGen(Options options) : options_(std::move(options)) {}

  int run();

  // Aggregated results, valid after run().
  int64_t issued = 0;
  int64_t responses = 0;
  int64_t okCount = 0;
  int64_t hitCount = 0;
  int64_t degradedCount = 0;
  int64_t quarantinedCount = 0;
  int64_t errorCount = 0;
  int64_t shedCount = 0;
  int64_t transportErrors = 0;
  int64_t protocolErrors = 0;
  int64_t lost = 0;
  double wallSeconds = 0;
  std::vector<Sample> samples;
  std::vector<std::string> errorDetails;  // first few kError details

 private:
  void sendRequest(Conn& conn);
  void onEvent(Conn& conn, uint32_t ready);
  void flush(Conn& conn);
  void handleResponse(Conn& conn, const Frame& frame);
  void failConn(Conn& conn, const std::string& why);
  [[nodiscard]] bool done() const;

  Options options_;
  EventLoop loop_;
  WallTimer clock_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::unordered_map<uint64_t, double> sendTimes_;  // id -> send seconds
  uint64_t nextId_ = 1;
  int64_t target_ = 0;
  size_t rrNext_ = 0;  // open-loop round-robin cursor
};

void LoadGen::sendRequest(Conn& conn) {
  RequestPayload payload;
  payload.id = nextId_++;
  payload.wantAsm = options_.wantAsm;
  payload.line = options_.lines[(payload.id - 1) % options_.lines.size()];
  if (options_.distinct > 0) {
    // Cold mix: a distinct regs= override changes the machine fingerprint,
    // so each variant misses the result cache on first sight.
    payload.line += " regs=" + std::to_string(8 + static_cast<int>(
        (payload.id - 1) % static_cast<uint64_t>(options_.distinct)));
  }
  sendTimes_[payload.id] = clock_.seconds();
  conn.outbuf.append(
      encodeFrame(FrameType::kRequest, encodeRequestPayload(payload)));
  ++conn.outstanding;
  ++issued;
  flush(conn);
}

void LoadGen::failConn(Conn& conn, const std::string& why) {
  if (conn.dead) return;
  conn.dead = true;
  ++transportErrors;
  lost += conn.outstanding;
  conn.outstanding = 0;
  if (errorDetails.size() < 5) errorDetails.push_back(why);
  loop_.remove(conn.fd.get());
  conn.fd.reset();
}

void LoadGen::flush(Conn& conn) {
  if (conn.dead) return;
  while (conn.pendingOut() > 0) {
    const IoResult io =
        writeSome(conn.fd.get(), conn.outbuf.data() + conn.outPos,
                  conn.pendingOut());
    if (io.wouldBlock) break;
    if (io.error != 0) {
      failConn(conn, "write error");
      return;
    }
    conn.outPos += static_cast<size_t>(io.n);
  }
  if (conn.pendingOut() == 0) {
    conn.outbuf.clear();
    conn.outPos = 0;
  }
  loop_.modify(conn.fd.get(),
               EventLoop::kRead |
                   (conn.pendingOut() > 0 ? EventLoop::kWrite : 0u));
}

void LoadGen::handleResponse(Conn& conn, const Frame& frame) {
  ResponsePayload payload;
  try {
    payload = decodeResponsePayload(frame.payload);
  } catch (const Error&) {
    ++protocolErrors;
    failConn(conn, "undecodable response payload");
    return;
  }
  ++responses;
  --conn.outstanding;
  const auto sent = sendTimes_.find(payload.id);
  if (sent != sendTimes_.end()) {
    const double now = clock_.seconds();
    samples.push_back({now, (now - sent->second) * 1e6});
    sendTimes_.erase(sent);
  }
  switch (frame.type) {
    case FrameType::kOk: ++okCount; break;
    case FrameType::kHit: ++hitCount; break;
    case FrameType::kDegraded: ++degradedCount; break;
    case FrameType::kQuarantined: ++quarantinedCount; break;
    case FrameType::kRetryAfter: ++shedCount; break;
    case FrameType::kError:
      ++errorCount;
      if (errorDetails.size() < 5) errorDetails.push_back(payload.detail);
      break;
    default:
      ++protocolErrors;
      failConn(conn, "unexpected frame type");
      return;
  }
  if (options_.dumpAsm && !payload.body.empty())
    std::fwrite(payload.body.data(), 1, payload.body.size(), stdout);
  // Closed loop: a completed request immediately funds the next one.
  if (!options_.openLoop && issued < target_ &&
      conn.outstanding < options_.pipeline)
    sendRequest(conn);
}

void LoadGen::onEvent(Conn& conn, uint32_t ready) {
  if (conn.dead) return;
  if ((ready & EventLoop::kWrite) != 0) flush(conn);
  if (conn.dead || (ready & EventLoop::kRead) == 0) return;
  char buf[64 << 10];
  for (;;) {
    const IoResult io = readSome(conn.fd.get(), buf, sizeof(buf));
    if (io.wouldBlock) return;
    if (io.error != 0) {
      failConn(conn, "read error");
      return;
    }
    if (io.eof) {
      if (conn.outstanding > 0)
        failConn(conn, "server closed with requests outstanding");
      else {
        conn.dead = true;
        loop_.remove(conn.fd.get());
        conn.fd.reset();
      }
      return;
    }
    conn.decoder.feed(buf, static_cast<size_t>(io.n));
    Frame frame;
    for (;;) {
      const FrameDecoder::Status status = conn.decoder.next(&frame);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kError) {
        ++protocolErrors;
        failConn(conn, conn.decoder.error());
        return;
      }
      handleResponse(conn, frame);
      if (conn.dead) return;
    }
  }
}

bool LoadGen::done() const {
  int64_t outstanding = 0;
  for (const auto& conn : conns_) outstanding += conn->outstanding;
  if (options_.openLoop) {
    return clock_.seconds() >= options_.durationSeconds && outstanding == 0;
  }
  return issued >= target_ && outstanding == 0;
}

int LoadGen::run() {
  raiseFdLimit();
  target_ = options_.totalRequests;
  conns_.reserve(static_cast<size_t>(options_.connections));
  for (int i = 0; i < options_.connections; ++i) {
    auto conn = std::make_unique<Conn>();
    conn->id = static_cast<uint64_t>(i);
    conn->fd = connectTo(options_.endpoint);
    setNonBlocking(conn->fd.get());
    Conn* raw = conn.get();
    loop_.add(conn->fd.get(), EventLoop::kRead,
              [this, raw](uint32_t ready) { onEvent(*raw, ready); });
    conns_.push_back(std::move(conn));
  }

  clock_.reset();
  if (!options_.openLoop) {
    // Prime each connection up to its pipeline depth (bounded by target).
    for (auto& conn : conns_) {
      for (int k = 0; k < options_.pipeline && issued < target_; ++k)
        sendRequest(*conn);
      if (issued >= target_) break;
    }
  }

  double lastProgress = clock_.seconds();
  int64_t lastResponses = 0;
  double nextSend = 0;
  while (!done()) {
    int timeoutMs = 50;
    if (options_.openLoop && clock_.seconds() < options_.durationSeconds &&
        options_.rate > 0) {
      const double now = clock_.seconds();
      if (now >= nextSend) {
        // Round-robin the arrival over live connections, independent of
        // completions — that is what makes the loop "open".
        for (size_t tries = 0; tries < conns_.size(); ++tries) {
          Conn& conn = *conns_[rrNext_++ % conns_.size()];
          if (conn.dead) continue;
          sendRequest(conn);
          break;
        }
        nextSend = now + 1.0 / options_.rate;
      }
      timeoutMs = std::max(
          1, static_cast<int>((nextSend - clock_.seconds()) * 1e3));
    }
    loop_.runOnce(timeoutMs);

    if (responses != lastResponses) {
      lastResponses = responses;
      lastProgress = clock_.seconds();
    }
    bool anyLive = false;
    for (const auto& conn : conns_) anyLive = anyLive || !conn->dead;
    if (!anyLive) break;
    if ((clock_.seconds() - lastProgress) * 1e3 >
        static_cast<double>(options_.stallTimeoutMs)) {
      std::fprintf(stderr, "loadgen: stalled: no response for %d ms\n",
                   options_.stallTimeoutMs);
      break;
    }
  }
  wallSeconds = clock_.seconds();
  for (const auto& conn : conns_) lost += conn->outstanding;
  return (transportErrors == 0 && protocolErrors == 0 && lost == 0 &&
          responses == issued)
             ? 0
             : 1;
}

std::string statsJson(const LoadGen& gen, const LoadGen::Options& options) {
  std::vector<double> all;
  std::vector<double> firstHalf;
  std::vector<double> secondHalf;
  all.reserve(gen.samples.size());
  for (const Sample& sample : gen.samples) {
    all.push_back(sample.latencyUs);
    (sample.atSeconds < gen.wallSeconds / 2 ? firstHalf : secondHalf)
        .push_back(sample.latencyUs);
  }
  std::sort(all.begin(), all.end());
  std::sort(firstHalf.begin(), firstHalf.end());
  std::sort(secondHalf.begin(), secondHalf.end());
  double mean = 0;
  for (const double v : all) mean += v;
  if (!all.empty()) mean /= static_cast<double>(all.size());

  std::ostringstream out;
  out << "{\n";
  out << "  \"connections\": " << options.connections << ",\n";
  out << "  \"mode\": \"" << (options.openLoop ? "open" : "closed")
      << "\",\n";
  out << "  \"issued\": " << gen.issued << ",\n";
  out << "  \"responses\": " << gen.responses << ",\n";
  out << "  \"ok\": " << gen.okCount << ",\n";
  out << "  \"hit\": " << gen.hitCount << ",\n";
  out << "  \"degraded\": " << gen.degradedCount << ",\n";
  out << "  \"quarantined\": " << gen.quarantinedCount << ",\n";
  out << "  \"error\": " << gen.errorCount << ",\n";
  out << "  \"retry_after\": " << gen.shedCount << ",\n";
  out << "  \"transport_errors\": " << gen.transportErrors << ",\n";
  out << "  \"protocol_errors\": " << gen.protocolErrors << ",\n";
  out << "  \"lost\": " << gen.lost << ",\n";
  out << "  \"wall_seconds\": " << gen.wallSeconds << ",\n";
  out << "  \"throughput_rps\": "
      << (gen.wallSeconds > 0
              ? static_cast<double>(gen.responses) / gen.wallSeconds
              : 0)
      << ",\n";
  out << "  \"latency_us\": {\n";
  out << "    \"p50\": " << percentile(all, 0.50) << ",\n";
  out << "    \"p90\": " << percentile(all, 0.90) << ",\n";
  out << "    \"p99\": " << percentile(all, 0.99) << ",\n";
  out << "    \"max\": " << (all.empty() ? 0.0 : all.back()) << ",\n";
  out << "    \"mean\": " << mean << "\n";
  out << "  },\n";
  // Flat-p99 check: compare the run's first and second halves.
  out << "  \"p99_first_half_us\": " << percentile(firstHalf, 0.99) << ",\n";
  out << "  \"p99_second_half_us\": " << percentile(secondHalf, 0.99)
      << "\n";
  out << "}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliFlags flags(argc, argv);
    LoadGen::Options options;
    const std::string connectSpec = flags.getString("connect", "");
    if (connectSpec.empty())
      throw Error(
          "usage: loadgen --connect <unix:PATH|HOST:PORT> [--connections N] "
          "[--requests N] [--mode closed|open] [--rate R] [--duration SEC] "
          "[--pipeline P] [--batch FILE] [--line STR] [--distinct N] "
          "[--want-asm] [--dump-asm] [--json FILE] [--stall-timeout-ms N]");
    options.endpoint = parseEndpoint(connectSpec);
    options.connections = static_cast<int>(flags.getInt("connections", 1));
    options.totalRequests = flags.getInt("requests", 100);
    options.durationSeconds = flags.getDouble("duration", 0.0);
    const std::string mode = flags.getString("mode", "closed");
    if (mode == "open") {
      options.openLoop = true;
    } else if (mode != "closed") {
      throw Error("--mode expects closed|open, got '" + mode + "'");
    }
    options.rate = flags.getDouble("rate", 0.0);
    options.pipeline = static_cast<int>(flags.getInt("pipeline", 1));
    const std::string batchFile = flags.getString("batch", "");
    const std::string singleLine =
        flags.getString("line", "machine=arch1 block=ex1");
    options.distinct = static_cast<int>(flags.getInt("distinct", 0));
    options.wantAsm = flags.getBool("want-asm", false);
    options.dumpAsm = flags.getBool("dump-asm", false);
    const std::string jsonOut = flags.getString("json", "");
    options.stallTimeoutMs =
        static_cast<int>(flags.getInt("stall-timeout-ms", 30000));
    flags.finish();

    if (!batchFile.empty()) {
      std::istringstream lines(readFile(batchFile));
      std::string line;
      while (std::getline(lines, line)) {
        const std::string_view stripped = trim(line);
        if (stripped.empty() || stripped[0] == '#') continue;
        options.lines.emplace_back(stripped);
      }
      if (options.lines.empty())
        throw Error("--batch file has no request lines");
    } else {
      options.lines.push_back(singleLine);
    }
    if (options.connections < 1) throw Error("--connections must be >= 1");
    if (options.pipeline < 1) throw Error("--pipeline must be >= 1");
    if (options.openLoop && (options.rate <= 0 || options.durationSeconds <= 0))
      throw Error("--mode open needs --rate > 0 and --duration > 0");

    std::signal(SIGPIPE, SIG_IGN);
    LoadGen gen(options);
    const int status = gen.run();
    const std::string report = statsJson(gen, options);
    if (!jsonOut.empty()) writeFile(jsonOut, report);
    std::fputs(report.c_str(), stderr);
    for (const std::string& detail : gen.errorDetails)
      std::fprintf(stderr, "loadgen: error detail: %s\n", detail.c_str());
    return status;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen: %s\n", e.what());
    return 1;
  }
}
