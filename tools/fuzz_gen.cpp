// fuzz_gen — generative differential fuzzer (DESIGN.md System 28). Where
// fuzz_inputs mutates *text* to attack the parsers, fuzz_gen generates
// *valid* machine x block pairs (src/fuzz/genmachine, genblock) to attack
// the code generator itself: every pair is compiled on both the heuristic
// engine and the sequential baseline, and both images are differentially
// verified against the reference interpreter (src/fuzz/diff). Crashes,
// taxonomy escapes, and miscompiles are failures; each one lands as a
// standalone repro bundle (src/fuzz/repro), is auto-minimized by delta
// debugging (src/fuzz/minimize), and — for miscompiles — additionally
// quarantines a src/verify artifact the existing replay tooling accepts.
//
// All randomness flows from --seed through one SplitMix64 stream: the same
// seed re-derives the same machines, blocks, and verdicts, and any repro
// bundle replays from the command line alone.
//
// Modes:
//   fuzz_gen [--seed S] [--iterations N] [--time-budget SECS]
//            [--families wide,tiny,...] [--out-dir DIR] [--vectors N]
//            [--time-limit SECS] [--failpoints SPEC] [--auto-minimize]
//       generate + differential loop; exit 1 when any failure was found
//   fuzz_gen --replay DIR
//       re-run a repro bundle; exit 0 iff the recorded signature reproduces.
//       Also accepts worker-crash bundles captured by avivd
//       --isolate-workers (src/proc/crash_repro.h): those replay the
//       recorded request in a sandboxed fork and reproduce iff the child
//       dies the recorded way (kind=crash) or outlives the recorded hard
//       deadline (kind=kill)
//   fuzz_gen --minimize DIR
//       shrink a repro bundle; writes DIR/minimized/<machine>-<block>/
//   fuzz_gen --emit-zoo DIR
//       write the canonical zoo machines (fixed seeds per family) as .isdl
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "fuzz/diff.h"
#include "fuzz/genblock.h"
#include "fuzz/genmachine.h"
#include "fuzz/minimize.h"
#include "fuzz/repro.h"
#include "isdl/emit.h"
#include "proc/crash_repro.h"
#include "support/cli.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/io.h"
#include "support/rng.h"
#include "support/strings.h"

namespace {

using namespace aviv;
namespace fs = std::filesystem;

// Fixed per-family seeds behind --emit-zoo: these exact machines are
// checked in as machines/zoo/ and pinned by the golden determinism matrix,
// so regenerating the zoo is reproducible forever.
constexpr uint64_t kZooSeed = 2024;

std::vector<MachineFamily> parseFamilies(const std::string& spec) {
  std::vector<MachineFamily> families;
  if (spec.empty() || spec == "all") {
    for (int f = 0; f < kNumMachineFamilies; ++f)
      families.push_back(static_cast<MachineFamily>(f));
    return families;
  }
  for (const std::string& name : split(spec, ','))
    if (!name.empty()) families.push_back(familyFromName(name));
  if (families.empty()) throw Error("--families lists no families");
  return families;
}

// Minimizes one loaded repro and writes the shrunken bundle under
// <dir>/minimized/. Returns the minimized bundle path.
std::string minimizeBundle(const std::string& dir, const FuzzRepro& repro) {
  if (!repro.info.failpoints.empty())
    FailPoints::instance().configure(repro.info.failpoints);
  const MinimizeResult min = minimizeFuzzCase(
      repro.machine, repro.dag, repro.options, repro.signature);
  // Fresh verdict for the minimized pair's meta (same signature by
  // construction of the minimizer's acceptance test).
  const DiffResult verdict =
      runDifferential(min.machine, min.dag, repro.options);
  if (!repro.info.failpoints.empty()) FailPoints::instance().clear();
  const std::string out = writeFuzzRepro(dir + "/minimized", min.machine,
                                         min.dag, repro.info, repro.options,
                                         verdict);
  std::printf(
      "fuzz_gen: minimized %s: size %d -> %d (%d attempts, %d accepted)\n",
      dir.c_str(), min.stats.sizeTrajectory.front(),
      min.stats.sizeTrajectory.back(), min.stats.attempts,
      min.stats.accepted);
  return out;
}

int runReplay(const std::string& dir) {
  // Worker-crash bundles (src/proc/crash_repro.h, kind=crash|kill in
  // meta.txt) replay in a sandboxed fork; fuzz bundles replay in-process.
  if (proc::isCrashRepro(dir)) {
    const proc::CrashRepro repro = proc::loadCrashRepro(dir);
    const proc::CrashReplayResult replay = proc::replayCrashRepro(repro);
    std::printf("fuzz_gen: replay %s: %s (recorded: %s, kind=%s) — %s\n",
                dir.c_str(), replay.detail.c_str(), repro.exitDesc.c_str(),
                repro.kind.c_str(),
                replay.reproduced ? "reproduced" : "DID NOT REPRODUCE");
    return replay.reproduced ? 0 : 1;
  }
  const FuzzReplayResult replay = replayFuzzRepro(dir);
  std::printf("fuzz_gen: replay %s: signature %s — %s\n", dir.c_str(),
              replay.result.signature.c_str(),
              replay.reproduced ? "reproduced" : "DID NOT REPRODUCE");
  if (!replay.result.detail.empty())
    std::printf("  detail: %s\n", replay.result.detail.c_str());
  return replay.reproduced ? 0 : 1;
}

int runEmitZoo(const std::string& dir) {
  fs::create_directories(dir);
  for (int f = 0; f < kNumMachineFamilies; ++f) {
    const MachineFamily family = static_cast<MachineFamily>(f);
    const Machine machine = generateMachine({family, kZooSeed});
    const std::string path =
        (fs::path(dir) / (std::string(familyName(family)) + ".isdl"))
            .string();
    writeFile(path, emitMachineText(machine));
    std::printf("fuzz_gen: wrote %s (%s)\n", path.c_str(),
                machine.name().c_str());
  }
  return 0;
}

int runFuzzLoop(uint64_t seed, int iterations, double timeBudget,
                const std::vector<MachineFamily>& families,
                const std::string& outDir, int vectors, double timeLimit,
                bool autoMinimize, const std::string& failpointSpec) {
  fs::create_directories(outDir);
  DiffOptions diffOptions;
  diffOptions.vectors = vectors;
  diffOptions.timeLimitSeconds = timeLimit;
  diffOptions.quarantineDir = outDir + "/quarantine";

  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  Rng stream(seed);
  std::map<std::string, int> verdictCounts;
  std::vector<std::string> failures;
  int ran = 0;
  for (int i = 0; i < iterations; ++i) {
    if (timeBudget > 0 && elapsed() > timeBudget) break;
    // Every iteration's seeds come from one deterministic stream: the
    // verdict schedule of `--seed S` is a pure function of S.
    const MachineFamily family = families[i % families.size()];
    const uint64_t machineSeed = stream.next();
    const uint64_t blockSeed = stream.next();
    const Machine machine = generateMachine({family, machineSeed});
    const BlockDag dag = generateBlock(machine, {blockSeed, 3, 24});
    const DiffResult result = runDifferential(machine, dag, diffOptions);
    ++ran;
    ++verdictCounts[verdictName(result.verdict)];
    if (!isFailureVerdict(result.verdict)) continue;

    FuzzCase info;
    info.family = family;
    info.machineSeed = machineSeed;
    info.blockSeed = blockSeed;
    info.iteration = i;
    // Record the planted fault as an always-fire spec so the bundle
    // replays independently of this run's probability/count schedule.
    if (result.plantedFault) info.failpoints = "fuzz-engine-disagree";
    const std::string dir =
        writeFuzzRepro(outDir, machine, dag, info, diffOptions, result);
    failures.push_back(dir);
    std::fprintf(stderr,
                 "fuzz_gen: FAILURE at iteration %d (%s): %s\n  repro: %s\n",
                 i, result.signature.c_str(), result.detail.c_str(),
                 dir.c_str());
    if (autoMinimize) {
      const FuzzRepro repro = loadFuzzRepro(dir);
      const std::string minimized = minimizeBundle(dir, repro);
      std::fprintf(stderr, "  minimized: %s\n", minimized.c_str());
      // minimizeBundle may have swapped in the repro's always-fire spec;
      // restore this run's schedule for the remaining iterations.
      FailPoints::instance().configure(failpointSpec, seed);
    }
  }

  std::printf("fuzz_gen: seed %llu: %d iterations",
              static_cast<unsigned long long>(seed), ran);
  for (const auto& [verdict, count] : verdictCounts)
    std::printf(", %d %s", count, verdict.c_str());
  std::printf("\n");
  if (!failures.empty()) {
    std::fprintf(stderr, "fuzz_gen: %zu failure(s); repros under %s\n",
                 failures.size(), outDir.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliFlags flags(argc, argv);
    const std::string replayDir = flags.getString("replay", "");
    const std::string minimizeDir = flags.getString("minimize", "");
    const std::string zooDir = flags.getString("emit-zoo", "");
    const uint64_t seed = static_cast<uint64_t>(flags.getInt("seed", 1));
    const int iterations = static_cast<int>(flags.getInt("iterations", 100));
    const double timeBudget = flags.getDouble("time-budget", 0.0);
    const std::string familiesSpec = flags.getString("families", "all");
    const std::string outDir = flags.getString("out-dir", "fuzz-out");
    const int vectors = static_cast<int>(flags.getInt("vectors", 4));
    const double timeLimit = flags.getDouble("time-limit", 2.0);
    const std::string failpoints = flags.getString("failpoints", "");
    const bool autoMinimize = flags.getBool("auto-minimize", true);
    flags.finish();

    if (!replayDir.empty()) return runReplay(replayDir);
    if (!minimizeDir.empty()) {
      const FuzzRepro repro = loadFuzzRepro(minimizeDir);
      minimizeBundle(minimizeDir, repro);
      return 0;
    }
    if (!zooDir.empty()) return runEmitZoo(zooDir);

    if (!failpoints.empty())
      FailPoints::instance().configure(failpoints, seed);
    return runFuzzLoop(seed, iterations, timeBudget,
                       parseFamilies(familiesSpec), outDir, vectors,
                       timeLimit, autoMinimize, failpoints);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz_gen: %s\n", e.what());
    return 2;
  }
}
