#!/bin/sh
# server_smoke.sh — end-to-end smoke for the avivd compile server
# (docs/server.md), run by ctest and the CI server-smoke job.
#
#   server_smoke.sh <avivd> <loadgen> <trace_report> <batch.txt> [conns]
#
# Asserts, in order:
#   1. Warm burst: after a priming pass, a multi-connection closed-loop
#      burst completes with zero errors/transport failures and a nonzero
#      cache hit rate, and the client's response count matches the
#      server's own summary.
#   2. Byte-identical assembly: the asm served over the socket equals the
#      asm the batch-file path prints for the same requests.
#   3. Admission control: with --queue-cap 1 an oversized burst sheds
#      (RETRY_AFTER) instead of erroring, and nothing is lost.
#   4. Graceful drain: SIGTERM mid-load loses zero responses.
#   5. The emitted trace survives trace_report --validate.
set -eu

AVIVD=$1
LOADGEN=$2
TRACE_REPORT=$3
BATCH=$4
CONNS=${5:-50}

WORK=$(mktemp -d /tmp/aviv_server_smoke.XXXXXX)
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ]; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

SOCK="$WORK/avivd.sock"
CACHE="$WORK/cache"

wait_listening() {
  i=0
  while ! grep -q "listening on" "$1" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "FAIL: server never started"; cat "$1"; exit 1; }
    sleep 0.1
  done
}

json_int() {  # json_int FILE KEY -> integer value
  sed -n "s/.*\"$2\": \([0-9][0-9]*\).*/\1/p" "$1" | head -n 1
}

echo "== 1. warm burst: zero errors, nonzero hit rate =="
"$AVIVD" --listen "unix:$SOCK" --jobs 4 --cache-dir "$CACHE" \
  --trace-out "$WORK/server_trace.json" > "$WORK/server1.log" 2>&1 &
SERVER_PID=$!
wait_listening "$WORK/server1.log"
# Priming pass: every distinct request compiles once, cold.
"$LOADGEN" --connect "unix:$SOCK" --batch "$BATCH" --connections 4 \
  --requests 40 --pipeline 2 --json "$WORK/prime.json" 2> /dev/null
# Warm burst: the same lines again, many connections — all hits.
"$LOADGEN" --connect "unix:$SOCK" --batch "$BATCH" --connections "$CONNS" \
  --requests 500 --pipeline 2 --json "$WORK/warm.json" 2> /dev/null
WARM_RESPONSES=$(json_int "$WORK/warm.json" responses)
WARM_HITS=$(json_int "$WORK/warm.json" hit)
WARM_ERRORS=$(json_int "$WORK/warm.json" error)
WARM_SHED=$(json_int "$WORK/warm.json" retry_after)
[ "$WARM_RESPONSES" -eq 500 ] || { echo "FAIL: warm responses $WARM_RESPONSES != 500"; exit 1; }
[ "$WARM_ERRORS" -eq 0 ] || { echo "FAIL: warm burst had $WARM_ERRORS errors"; exit 1; }
[ "$WARM_SHED" -eq 0 ] || { echo "FAIL: warm burst shed $WARM_SHED (queue-cap default should absorb it)"; exit 1; }
[ "$WARM_HITS" -gt 0 ] || { echo "FAIL: warm burst had zero cache hits"; exit 1; }
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: server exit nonzero after drain"; cat "$WORK/server1.log"; exit 1; }
SERVER_PID=""
# Cross-check client-side counts against the server's own summary.
grep -q "0 dropped" "$WORK/server1.log" || { echo "FAIL: server dropped responses"; cat "$WORK/server1.log"; exit 1; }
SERVER_RESPONSES=$(sed -n 's/.* \([0-9][0-9]*\) responses.*/\1/p' "$WORK/server1.log" | head -n 1)
[ "$SERVER_RESPONSES" -eq 540 ] || { echo "FAIL: server saw $SERVER_RESPONSES responses, expected 540"; exit 1; }
echo "ok: 500 warm responses, $WARM_HITS hits, 0 errors, 0 shed"

echo "== 2. byte-identical assembly vs batch path =="
# Batch path: deterministic order with --jobs 1, strip status/summary lines.
"$AVIVD" "$BATCH" --jobs 1 --no-cache --print-asm > "$WORK/batch_out.txt" 2>&1
grep -v '^req ' "$WORK/batch_out.txt" | grep -v '^avivd:' > "$WORK/batch_asm.txt"
# Server path: one connection, pipeline 1 => responses arrive in order.
"$AVIVD" --listen "unix:$SOCK" --jobs 1 --no-cache > "$WORK/server2.log" 2>&1 &
SERVER_PID=$!
wait_listening "$WORK/server2.log"
"$LOADGEN" --connect "unix:$SOCK" --batch "$BATCH" --connections 1 \
  --requests 10 --pipeline 1 --want-asm --dump-asm \
  > "$WORK/net_asm.txt" 2> /dev/null
kill -TERM "$SERVER_PID"; wait "$SERVER_PID" || true; SERVER_PID=""
cmp "$WORK/batch_asm.txt" "$WORK/net_asm.txt" || {
  echo "FAIL: server assembly differs from batch assembly"
  diff "$WORK/batch_asm.txt" "$WORK/net_asm.txt" | head -n 20
  exit 1
}
echo "ok: assembly byte-identical across both front ends"

echo "== 3. queue-cap 1: sheds, no errors, nothing lost =="
"$AVIVD" --listen "unix:$SOCK" --jobs 2 --cache-dir "$CACHE" --queue-cap 1 \
  > "$WORK/server3.log" 2>&1 &
SERVER_PID=$!
wait_listening "$WORK/server3.log"
"$LOADGEN" --connect "unix:$SOCK" --batch "$BATCH" --connections 20 \
  --requests 400 --pipeline 4 --json "$WORK/shed.json" 2> /dev/null
SHED=$(json_int "$WORK/shed.json" retry_after)
SHED_ERRORS=$(json_int "$WORK/shed.json" error)
SHED_LOST=$(json_int "$WORK/shed.json" lost)
SHED_RESPONSES=$(json_int "$WORK/shed.json" responses)
[ "$SHED" -gt 0 ] || { echo "FAIL: queue-cap 1 never shed under a 20x4 burst"; exit 1; }
[ "$SHED_ERRORS" -eq 0 ] || { echo "FAIL: shed run had $SHED_ERRORS errors"; exit 1; }
[ "$SHED_LOST" -eq 0 ] || { echo "FAIL: shed run lost $SHED_LOST responses"; exit 1; }
[ "$SHED_RESPONSES" -eq 400 ] || { echo "FAIL: shed run answered $SHED_RESPONSES/400"; exit 1; }
kill -TERM "$SERVER_PID"; wait "$SERVER_PID" || true; SERVER_PID=""
echo "ok: $SHED sheds, 0 errors, 400/400 answered"

echo "== 4. SIGTERM mid-load drains with zero lost responses =="
"$AVIVD" --listen "unix:$SOCK" --jobs 2 --cache-dir "$CACHE" \
  > "$WORK/server4.log" 2>&1 &
SERVER_PID=$!
wait_listening "$WORK/server4.log"
# Enough warm requests that the SIGTERM below lands mid-load.
"$LOADGEN" --connect "unix:$SOCK" --batch "$BATCH" --connections 8 \
  --requests 20000 --pipeline 2 --json "$WORK/drain.json" 2> /dev/null &
LOAD_PID=$!
sleep 0.5
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: server exit nonzero on mid-load SIGTERM"; cat "$WORK/server4.log"; exit 1; }
SERVER_PID=""
wait "$LOAD_PID" || true  # client sees the close and stops early
# Zero-lost-responses contract is server-side: every ADMITTED request's
# response reached its socket before the close (0 dropped). Requests the
# client sent but the server never read don't count — the client observes
# those as a clean early close.
grep -q " 0 dropped" "$WORK/server4.log" || { echo "FAIL: drain dropped responses"; cat "$WORK/server4.log"; exit 1; }
DRAIN_RESPONSES=$(json_int "$WORK/drain.json" responses)
[ "$DRAIN_RESPONSES" -gt 0 ] || { echo "FAIL: no responses before drain"; exit 1; }
echo "ok: mid-load drain after $DRAIN_RESPONSES responses, server dropped 0"

echo "== 5. trace validates =="
"$TRACE_REPORT" "$WORK/server_trace.json" --validate > /dev/null
echo "ok: trace schema valid"

echo "server_smoke: PASS"
