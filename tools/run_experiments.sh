#!/usr/bin/env sh
# Regenerates every paper table/figure and ablation into results/.
# Usage: tools/run_experiments.sh [build-dir]
set -e
BUILD="${1:-build}"
OUT=results
mkdir -p "$OUT"
for b in "$BUILD"/bench/*; do
  name=$(basename "$b")
  echo "== $name"
  "$b" > "$OUT/$name.txt" 2>&1 || echo "   (exit $?)"
done
echo "Outputs in $OUT/"
