#!/usr/bin/env bash
# Regenerates every paper table/figure and ablation into results/, and
# collects each table bench's phase-telemetry tree (--stats-json) into
# bench/out/. Fails fast on the first broken bench.
# Usage: tools/run_experiments.sh [build-dir]
#   JOBS=N   worker threads for the table benches (results are
#            bit-identical to JOBS=1; only the CPU-time column moves)
set -euo pipefail
BUILD="${1:-build}"
OUT=results
STATS=bench/out
JOBS="${JOBS:-1}"
mkdir -p "$OUT" "$STATS"
for b in "$BUILD"/bench/*; do
  name=$(basename "$b")
  echo "== $name"
  case "$name" in
    table1_arch1|table2_arch2)
      "$b" --jobs "$JOBS" --stats-json "$STATS/$name.json" \
        > "$OUT/$name.txt" 2>&1
      ;;
    perf_core)
      # Core microbenchmarks (google-benchmark): human table to results/,
      # machine-readable JSON (allocs/op, heapKB/op counters included) to
      # bench/out/ for diffing against BENCH_cold_compile.json snapshots.
      "$b" --benchmark_min_time=0.5 \
        --benchmark_out="$STATS/$name.json" --benchmark_out_format=json \
        > "$OUT/$name.txt" 2>&1
      ;;
    *)
      "$b" > "$OUT/$name.txt" 2>&1
      ;;
  esac
done
echo "Outputs in $OUT/, telemetry in $STATS/"
