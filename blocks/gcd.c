// MiniC sample: subtraction-based Euclid (compile with avivc blocks/gcd.c).
// Inputs must be positive.
int gcd(int a, int b) {
  while (a != b) {
    if (a > b) { a = a - b; } else { b = b - a; }
  }
  return a;
}
