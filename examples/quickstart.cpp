// Quickstart — the smallest complete use of the AVIV library:
//   1. load an ISDL machine description,
//   2. parse a basic block,
//   3. compile it (Split-Node DAG -> concurrent covering -> registers ->
//      peephole -> encoding),
//   4. print the VLIW assembly, and
//   5. run it on the instruction-level simulator.
//
//   $ quickstart [--machine arch1] [--regs 4]
#include <cstdio>

#include "driver/codegen.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "sim/simulator.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace aviv;
  try {
    CliFlags flags(argc, argv);
    const std::string machineName = flags.getString("machine", "arch1");
    const int regs = static_cast<int>(flags.getInt("regs", 4));
    flags.finish();

    // A small DSP update step: y = (a + b) * c - d.
    const BlockDag block = parseBlock(R"(
      block quickstart {
        input a, b, c, d;
        output y;
        y = (a + b) * c - d;
      }
    )");

    const Machine machine = loadMachine(machineName).withRegisterCount(regs);
    std::printf("%s\n", machine.summary().c_str());

    CodeGenerator generator(machine);
    SymbolTable symbols;
    const CompiledBlock compiled = generator.compileBlock(block, symbols);

    std::printf("Compiled '%s': %d VLIW instructions "
                "(%zu-node Split-Node DAG, %zu assignments covered, "
                "%d spills)\n\n",
                block.name().c_str(), compiled.numInstructions(),
                compiled.core.stats.sndNodes,
                compiled.core.stats.assignmentsCovered,
                compiled.core.stats.cover.spillsInserted);
    std::printf("%s\n", compiled.image.asmText(machine).c_str());

    const Simulator sim(machine);
    const std::map<std::string, int64_t> inputs = {
        {"a", 3}, {"b", 4}, {"c", 5}, {"d", 6}};
    const auto outputs = sim.runBlockFresh(compiled.image, symbols, inputs);
    std::printf("simulate a=3 b=4 c=5 d=6  =>  y = %lld (expected %d)\n",
                static_cast<long long>(outputs.at("y")), (3 + 4) * 5 - 6);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "quickstart: %s\n", e.what());
    return 1;
  }
}
