// arch_explore — the paper's motivating use case (Sections I and VI): use
// retargetable code generation to explore the processor design space. Takes
// the benchmark blocks and compiles them for a family of architecture
// variants — the shipped machines plus programmatic mutations (register
// counts, deleting a unit, removing an operation) — and reports the code
// size each variant needs, "until the best one is found".
//
//   $ arch_explore [--regs 4]
#include <cstdio>

#include "asmgen/binary.h"
#include "driver/codegen.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "support/cli.h"
#include "support/table.h"

namespace {

using namespace aviv;

// Deletes one unit from a machine (re-building, since ids shift).
Machine withoutUnit(const Machine& base, const std::string& unitName) {
  Machine out(base.name() + "-no-" + unitName);
  for (const RegFile& rf : base.regFiles()) out.addRegFile(rf);
  for (const Memory& mem : base.memories()) out.addMemory(mem);
  for (const Bus& bus : base.buses()) out.addBus(bus);
  for (const FunctionalUnit& unit : base.units())
    if (unit.name != unitName) out.addUnit(unit);
  for (const TransferPath& path : base.transfers()) out.addTransfer(path);
  // Constraints referencing the deleted unit are dropped.
  for (const Constraint& c : base.constraints()) {
    bool keep = true;
    for (const OpSel& sel : c.together)
      keep &= base.unit(sel.unit).name != unitName;
    if (!keep) continue;
    Constraint remapped = c;
    for (OpSel& sel : remapped.together)
      sel.unit = *out.findUnit(base.unit(sel.unit).name);
    out.addConstraint(remapped);
  }
  out.validate();
  return out;
}

// Removes one operation kind from one unit.
Machine withoutOp(const Machine& base, const std::string& unitName, Op op) {
  Machine rebuilt(base.name() + "-" + unitName + "-no-" +
                  std::string(opName(op)));
  for (const RegFile& rf : base.regFiles()) rebuilt.addRegFile(rf);
  for (const Memory& mem : base.memories()) rebuilt.addMemory(mem);
  for (const Bus& bus : base.buses()) rebuilt.addBus(bus);
  for (const FunctionalUnit& unit : base.units()) {
    FunctionalUnit copy = unit;
    if (unit.name == unitName) {
      copy.ops.clear();
      for (const UnitOp& uop : unit.ops)
        if (uop.op != op) copy.ops.push_back(uop);
    }
    rebuilt.addUnit(std::move(copy));
  }
  for (const TransferPath& path : base.transfers()) rebuilt.addTransfer(path);
  for (const Constraint& c : base.constraints()) rebuilt.addConstraint(c);
  rebuilt.validate();
  return rebuilt;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliFlags flags(argc, argv);
    const int regs = static_cast<int>(flags.getInt("regs", 4));
    flags.finish();

    std::vector<Machine> variants;
    variants.push_back(loadMachine("arch1").withRegisterCount(regs));
    variants.push_back(loadMachine("arch2").withRegisterCount(regs));
    variants.push_back(loadMachine("arch3").withRegisterCount(regs));
    variants.push_back(loadMachine("arch4").withRegisterCount(regs));
    variants.push_back(withoutUnit(variants[0], "U3"));
    variants.push_back(withoutOp(variants[0], "U2", Op::kMul));
    variants.push_back(variants[0].withRegisterCount(2));

    const std::vector<std::string> blocks = {"ex1", "ex2", "ex3", "ex4",
                                             "ex5"};
    std::vector<std::string> headers = {"Architecture", "Units"};
    for (const std::string& block : blocks) headers.push_back(block);
    headers.push_back("total");
    headers.push_back("instr bits");
    headers.push_back("ROM bytes");
    TextTable table(headers);

    std::printf("Architecture exploration: code size (VLIW instructions) "
                "per benchmark block\n\n");
    int bestTotal = INT32_MAX;
    std::string bestName;
    for (const Machine& machine : variants) {
      CodeGenerator generator(machine);
      std::vector<std::string> row = {machine.name(),
                                      std::to_string(machine.units().size())};
      int total = 0;
      size_t romBytes = 0;
      bool feasible = true;
      for (const std::string& blockName : blocks) {
        const BlockDag dag = loadBlock(blockName);
        try {
          SymbolTable symbols;
          const CompiledBlock compiled = generator.compileBlock(dag, symbols);
          total += compiled.numInstructions();
          romBytes +=
              assembleBinary(compiled.image, machine, symbols).romBytes();
          std::string cell = std::to_string(compiled.numInstructions());
          if (compiled.core.stats.cover.spillsInserted > 0)
            cell += "+" +
                    std::to_string(compiled.core.stats.cover.spillsInserted) +
                    "sp";
          row.push_back(cell);
        } catch (const Error&) {
          row.push_back("infeasible");
          feasible = false;
        }
      }
      row.push_back(feasible ? std::to_string(total) : "-");
      row.push_back(std::to_string(BinaryFormat(machine).bitsPerInstruction()));
      row.push_back(feasible ? std::to_string(romBytes) : "-");
      table.addRow(std::move(row));
      if (feasible && total < bestTotal) {
        bestTotal = total;
        bestName = machine.name();
      }
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nSmallest total code size: %s (%d instructions for the "
                "whole suite)\n",
                bestName.c_str(), bestTotal);
    std::printf("As in the paper's Table II: removing functional units "
                "often degrades code size only modestly — the Split-Node "
                "DAG reroutes work to the remaining units.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "arch_explore: %s\n", e.what());
    return 1;
  }
}
