// avivd — the AVIV batch-compile daemon: one warm process serving many
// compiles (DESIGN.md System 23). Reads newline-delimited compile requests,
// dispatches them across the session thread pool with result-cache lookups,
// and streams one status line per request plus an end-of-pass summary.
//
//   avivd <requests.txt|-> [options]
//
// Request line grammar (whitespace-separated tokens; '#' starts a comment,
// blank lines are skipped):
//
//   machine=<name|path.isdl> block=<name|path.blk|path.c> [heuristics=on|off]
//   [const-pool] [outputs-mem] [no-peephole] [regs=N] [timeout=SEC]
//   [verify=off|sampled|all]
//
// `machine` resolves shipped names via the machine directory; `block`
// resolves shipped names via the block directory, or takes a path to a
// .blk/.c file. `timeout` bounds the request's covering flow in wall-clock
// seconds (overriding --default-timeout): a request whose budget expires
// degrades to the sequential baseline and reports `degraded` instead of
// failing. Example batch:
//
//   machine=arch1 block=ex1
//   machine=arch2 block=biquad heuristics=off timeout=0.5
//   machine=dsp16 block=fir.blk const-pool
//
// Malformed request lines are reported (with their 1-based line number) and
// skipped; the rest of the batch still compiles. A request that fails —
// compile error, injected fault, anything — only fails that request: the
// daemon never dies mid-batch. SIGINT/SIGTERM request a graceful shutdown:
// in-flight requests drain, pending ones report `skipped (shutdown)`, the
// cache manifest is flushed, and the process exits 130.
//
// Options:
//   --cache-dir <dir>    on-disk result-cache directory (shared with avivc);
//                        without it the cache is in-memory only
//   --no-cache           disable the result cache entirely
//   --mem-entries <n>    memory-tier capacity in entries (default 1024)
//   --jobs <n>           worker threads compiling requests concurrently
//   --repeat <n>         run the whole batch n times in this process
//                        (pass 2+ should be all cache hits)
//   --expect-all-hits    exit nonzero unless the final pass had 0 misses
//                        (degraded requests excluded: their results are
//                        deliberately never cached)
//   --default-timeout <sec>  covering budget for requests without their own
//                        timeout= token (0 = unlimited)
//   --retries <n>        retry a request hit by a transient fault up to n
//                        times with exponential backoff (default 2)
//   --verify <m>         default differential-verification mode for requests
//                        without their own verify= token: off (default),
//                        sampled, or all (src/verify, DESIGN.md §6.5)
//   --quarantine-dir <d> where verification failures write repro artifacts
//   --failpoints <spec>  activate fault-injection points, same grammar as
//                        the AVIV_FAILPOINTS env var: name[:prob[:count]],
//                        comma-separated (see src/support/failpoint.h)
//   --print-asm          print each result's assembly after its status line
//   --stats-json <file>  write the daemon's phase-telemetry tree as JSON
//   --trace-out <file>   flight-recorder tracing: write the retained events
//                        as Chrome trace-event JSON at exit (and on the
//                        SIGINT drain)
//   --metrics-json <file> metrics registry: write aggregated
//                        counters/histograms after every pass and on the
//                        SIGINT drain
//
// Status lines (streamed as requests complete; order varies with --jobs):
//   req 3: ok block=ex1 machine=arch1 blocks=1 instrs=7 cache=hit
//     wall=12.4ms queue=0.1ms
//   req 4: degraded block=biquad machine=arch2 blocks=1 instrs=9 cache=miss
//     wall=503.0ms queue=0.2ms
//   req 5: error <message>
//   req 6: skipped (shutdown)
//   req 7: quarantined block=fir machine=dsp16 blocks=1 instrs=12 cache=miss
//     wall=88.1ms queue=0.3ms
// (each status is one line; wall= is the request's compile wall time,
// queue= how long it waited for a ThreadPool slot after the pass started)
// `quarantined` means output verification caught a miscompile: the emitted
// result is the verified baseline, a repro artifact was quarantined, and —
// like degraded requests — nothing was cached, so --expect-all-hits
// excludes its misses.
// Summary lines (per pass):
//   avivd: pass 1: 10 requests, 9 ok, 1 degraded, 0 quarantined, 0 failed,
//   0 skipped
//   avivd: cache: 10 lookups, 0 hits, 10 misses, 0 corrupt, 0 evictions
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "driver/codegen.h"
#include "frontend/minic.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/cache.h"
#include "support/cli.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/io.h"
#include "support/strings.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace {

using namespace aviv;

// Graceful-shutdown flag, flipped by the SIGINT/SIGTERM handler. Workers
// poll it before starting a request; in-flight compiles drain normally.
volatile std::sig_atomic_t g_shutdownRequested = 0;

extern "C" void handleShutdownSignal(int) { g_shutdownRequested = 1; }

struct Request {
  int line = 0;  // 1-based line number in the batch file
  std::string machineSpec;
  std::string blockSpec;
  int regsOverride = 0;  // > 0: resize every register file
  DriverOptions options;
};

struct RequestResult {
  bool ok = false;
  bool degraded = false;  // ok, but at least one block fell back to baseline
  // ok, but verification caught a miscompile in at least one block (the
  // result is the verified baseline; a repro artifact was quarantined).
  bool quarantined = false;
  std::string error;
  std::string statusDetail;  // "block=... machine=... blocks=N instrs=N cache=..."
  std::string asmText;
  size_t blocks = 0;
  size_t cachedBlocks = 0;
};

Machine resolveMachine(const std::string& spec) {
  if (endsWith(spec, ".isdl")) return parseMachine(readFile(spec));
  return loadMachine(spec);
}

Program resolveProgram(const std::string& spec) {
  if (endsWith(spec, ".c")) return parseMiniC(readFile(spec)).program;
  if (endsWith(spec, ".blk")) return parseProgram(readFile(spec), spec);
  const std::string path = blockPath(spec);
  return parseProgram(readFile(path), path);
}

Request parseRequest(const std::string& text, int line,
                     double defaultTimeout,
                     const VerifyOptions& defaultVerify) {
  Request request;
  request.line = line;
  request.options.core = CodegenOptions::heuristicsOn();
  request.options.core.timeLimitSeconds = defaultTimeout;
  request.options.verify = defaultVerify;
  std::istringstream tokens(text);
  std::string token;
  while (tokens >> token) {
    if (token[0] == '#') break;
    const size_t eq = token.find('=');
    const std::string key = token.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : token.substr(eq + 1);
    if (key == "machine") {
      request.machineSpec = value;
    } else if (key == "block") {
      request.blockSpec = value;
    } else if (key == "heuristics") {
      if (value != "on" && value != "off")
        throw Error("heuristics expects on|off, got '" + value + "'");
      const int jobs = request.options.core.jobs;
      const double timeout = request.options.core.timeLimitSeconds;
      request.options.core = value == "off" ? CodegenOptions::heuristicsOff()
                                            : CodegenOptions::heuristicsOn();
      request.options.core.jobs = jobs;
      request.options.core.timeLimitSeconds = timeout;
    } else if (key == "timeout") {
      try {
        request.options.core.timeLimitSeconds = std::stod(value);
      } catch (const std::exception&) {
        throw Error("timeout expects seconds, got '" + value + "'");
      }
      if (request.options.core.timeLimitSeconds < 0)
        throw Error("timeout must be >= 0, got '" + value + "'");
    } else if (key == "const-pool") {
      request.options.core.constantsInMemory = true;
    } else if (key == "outputs-mem") {
      request.options.core.outputsToMemory = true;
    } else if (key == "no-peephole") {
      request.options.runPeephole = false;
    } else if (key == "verify") {
      if (value == "off") {
        request.options.verify.level = VerifyLevel::kOff;
      } else if (value == "sampled") {
        request.options.verify.level = VerifyLevel::kSampled;
      } else if (value == "all") {
        request.options.verify.level = VerifyLevel::kAll;
      } else {
        throw Error("verify expects off|sampled|all, got '" + value + "'");
      }
    } else if (key == "regs") {
      try {
        request.regsOverride = std::stoi(value);
      } catch (const std::exception&) {
        throw Error("regs expects an integer, got '" + value + "'");
      }
      if (request.regsOverride < 1 || request.regsOverride > 4096)
        throw Error("regs must be in [1, 4096], got '" + value + "'");
    } else {
      throw Error("unknown request token '" + token + "'");
    }
  }
  if (request.machineSpec.empty() || request.blockSpec.empty())
    throw Error("request needs machine=... and block=...");
  request.options.core.jobs = 1;  // daemon parallelism is across requests
  return request;
}

Machine materializeMachine(const Request& request) {
  Machine machine = resolveMachine(request.machineSpec);
  if (request.regsOverride > 0)
    machine = machine.withRegisterCount(request.regsOverride);
  return machine;
}

RequestResult runRequestOnce(const Request& request,
                             const std::shared_ptr<ResultCache>& cache,
                             bool wantAsm, TelemetryNode& tel) {
  RequestResult result;
  // Fault-injection site standing in for any transient dispatch failure
  // (worker wedged, resource briefly unavailable). Fires before compile
  // work so the retry loop re-runs the whole request.
  FailPoints::instance().maybeThrow("avivd-dispatch");
  const Machine machine = materializeMachine(request);
  const Program program = resolveProgram(request.blockSpec);
  DriverOptions options = request.options;
  options.cache = cache;
  CodeGenerator generator(machine, options);

  int instrs = 0;
  std::string asmText;
  if (program.numBlocks() > 1) {
    const CompiledProgram compiled = generator.compileProgram(program);
    instrs = compiled.totalInstructions();
    result.blocks = compiled.blocks.size();
    for (const CompiledBlock& block : compiled.blocks) {
      if (block.fromCache) ++result.cachedBlocks;
      if (block.degraded) result.degraded = true;
      if (block.quarantined) result.quarantined = true;
      if (wantAsm) asmText += block.image.asmText(machine) + "\n";
    }
  } else {
    SymbolTable symbols;
    const CompiledBlock block =
        generator.compileBlock(program.block(0), symbols);
    instrs = block.numInstructions();
    result.blocks = 1;
    if (block.fromCache) ++result.cachedBlocks;
    if (block.degraded) result.degraded = true;
    if (block.quarantined) result.quarantined = true;
    if (wantAsm) asmText = block.image.asmText(machine) + "\n";
  }
  tel.merge(generator.telemetry());

  const char* cacheState =
      cache == nullptr ? "off"
      : result.cachedBlocks == result.blocks ? "hit"
      : result.cachedBlocks == 0             ? "miss"
                                             : "partial";
  result.ok = true;
  result.asmText = std::move(asmText);
  result.statusDetail = "block=" + request.blockSpec +
                        " machine=" + machine.name() +
                        " blocks=" + std::to_string(result.blocks) +
                        " instrs=" + std::to_string(instrs) +
                        " cache=" + cacheState;
  return result;
}

// Per-request isolation: every failure mode — parse, compile, injected
// fault — lands in RequestResult::error; nothing escapes to kill the
// daemon. Transient faults are retried with exponential backoff.
RequestResult runRequest(const Request& request,
                         const std::shared_ptr<ResultCache>& cache,
                         bool wantAsm, int retries, TelemetryNode& tel) {
  RequestResult result;
  for (int attempt = 0;; ++attempt) {
    try {
      return runRequestOnce(request, cache, wantAsm, tel);
    } catch (const TransientError& e) {
      if (attempt >= retries) {
        result.error = e.what();
        return result;
      }
      tel.addCounter("dispatchRetries", 1);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          1.0 * static_cast<double>(1 << attempt)));
    } catch (const std::exception& e) {
      result.error = e.what();
      return result;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliFlags flags(argc, argv);
    if (flags.positional().size() != 1)
      throw Error(
          "usage: avivd <requests.txt|-> [--cache-dir DIR] [--no-cache] "
          "[--mem-entries N] [--jobs N] [--repeat N] [--expect-all-hits] "
          "[--default-timeout SEC] [--retries N] [--failpoints SPEC] "
          "[--verify off|sampled|all] [--quarantine-dir DIR] "
          "[--print-asm] [--stats-json out.json] [--trace-out out.json] "
          "[--metrics-json out.json]");
    const std::string batchPath = flags.positional()[0];
    const std::string cacheDir = flags.getString("cache-dir", "");
    const bool noCache = flags.getBool("no-cache", false);
    const auto memEntries =
        static_cast<size_t>(flags.getInt("mem-entries", 1024));
    const int jobs = static_cast<int>(flags.getInt("jobs", 1));
    const int repeat = static_cast<int>(flags.getInt("repeat", 1));
    const bool expectAllHits = flags.getBool("expect-all-hits", false);
    const double defaultTimeout = flags.getDouble("default-timeout", 0.0);
    const int retries = static_cast<int>(flags.getInt("retries", 2));
    VerifyOptions defaultVerify;
    const std::string verifyMode = flags.getString("verify", "off");
    if (verifyMode == "sampled") {
      defaultVerify.level = VerifyLevel::kSampled;
    } else if (verifyMode == "all") {
      defaultVerify.level = VerifyLevel::kAll;
    } else if (verifyMode != "off") {
      throw Error("--verify expects off|sampled|all, got '" + verifyMode +
                  "'");
    }
    defaultVerify.quarantineDir = flags.getString("quarantine-dir", "");
    const std::string failpoints = flags.getString("failpoints", "");
    const bool printAsm = flags.getBool("print-asm", false);
    const std::string statsJson = flags.getString("stats-json", "");
    const std::string traceOut = flags.getString("trace-out", "");
    const std::string metricsJson = flags.getString("metrics-json", "");
    flags.finish();
    if (!failpoints.empty()) FailPoints::instance().configure(failpoints);
    if (!traceOut.empty()) trace::Tracer::instance().enable();
    if (!metricsJson.empty()) metrics::Registry::instance().enable();

    // Best-effort observability dumps, shared by the per-pass flush, the
    // graceful-shutdown drain, and normal exit.
    auto dumpMetrics = [&] {
      if (!metricsJson.empty())
        writeFile(metricsJson, metrics::Registry::instance().toJson());
    };
    auto dumpTrace = [&] {
      if (!traceOut.empty())
        writeFile(traceOut, trace::Tracer::instance().exportJson());
    };

    std::signal(SIGINT, handleShutdownSignal);
    std::signal(SIGTERM, handleShutdownSignal);

    // Read and parse the whole batch up front. A malformed line is
    // reported with its 1-based line number and skipped — one typo must
    // not take down the rest of the batch.
    std::string batchText;
    if (batchPath == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      batchText = buffer.str();
    } else {
      batchText = readFile(batchPath);
    }
    std::vector<Request> requests;
    int parseErrors = 0;
    {
      std::istringstream lines(batchText);
      std::string line;
      int lineNo = 0;
      while (std::getline(lines, line)) {
        ++lineNo;
        const std::string_view stripped = trim(line);
        if (stripped.empty() || stripped[0] == '#') continue;
        try {
          requests.push_back(parseRequest(std::string(stripped), lineNo,
                                          defaultTimeout, defaultVerify));
        } catch (const Error& e) {
          ++parseErrors;
          std::printf("avivd: request line %d: %s (skipped)\n", lineNo,
                      e.what());
        }
      }
    }
    if (requests.empty()) throw Error("batch contains no valid requests");

    std::shared_ptr<ResultCache> cache;
    if (!noCache) {
      CacheConfig cacheConfig;
      cacheConfig.dir = cacheDir;
      cacheConfig.memoryEntries = memEntries;
      cache = std::make_shared<ResultCache>(cacheConfig);
    }

    TelemetryNode root("avivd");
    ThreadPool pool(jobs);
    std::mutex outMu;
    bool allOk = true;
    int64_t finalPassMisses = 0;
    int64_t finalPassDegradedMisses = 0;
    int64_t finalPassQuarantinedMisses = 0;
    bool shutdown = false;

    for (int pass = 1; pass <= repeat && !shutdown; ++pass) {
      TelemetryNode& passTel = root.child("pass:" + std::to_string(pass));
      // Pre-create one disjoint telemetry subtree per request before the
      // fan-out (TelemetryNode is not thread-safe).
      std::vector<TelemetryNode*> requestTel;
      requestTel.reserve(requests.size());
      for (size_t i = 0; i < requests.size(); ++i)
        requestTel.push_back(&passTel.child("req:" + std::to_string(i)));

      const CacheStats before =
          cache != nullptr ? cache->stats() : CacheStats{};
      size_t okCount = 0;
      size_t degradedCount = 0;
      size_t quarantinedCount = 0;
      size_t skippedCount = 0;
      // Misses attributable to degraded/quarantined requests: their results
      // are deliberately never cached, so --expect-all-hits must not count
      // them against the pass.
      int64_t degradedMisses = 0;
      int64_t quarantinedMisses = 0;
      // Queue time = how long the request waited for a ThreadPool slot
      // after the pass fan-out began; wall time = the compile itself.
      const WallTimer passTimer;
      pool.parallelFor(requests.size(), [&](size_t i, int) {
        const double queueMs = passTimer.seconds() * 1e3;
        if (g_shutdownRequested != 0) {
          // Drain mode: in-flight requests finish, pending ones skip.
          std::lock_guard<std::mutex> lock(outMu);
          ++skippedCount;
          std::printf("req %zu: skipped (shutdown)\n", i);
          std::fflush(stdout);
          return;
        }
        trace::Span reqSpan("avivd", "req:", std::to_string(i));
        const WallTimer reqTimer;
        const RequestResult result =
            runRequest(requests[i], cache, printAsm, retries, *requestTel[i]);
        const double wallMs = reqTimer.seconds() * 1e3;
        if (metrics::on())
          metrics::Registry::instance()
              .histogram("avivd.request.us")
              .record(static_cast<int64_t>(wallMs * 1e3));
        std::lock_guard<std::mutex> lock(outMu);
        if (result.ok) {
          if (result.quarantined) {
            // Takes precedence over plain degradation: verification caught a
            // miscompile, the emitted result is the verified baseline.
            ++quarantinedCount;
            quarantinedMisses += static_cast<int64_t>(result.blocks) -
                                 static_cast<int64_t>(result.cachedBlocks);
            std::printf("req %zu: quarantined %s wall=%.1fms queue=%.1fms\n",
                        i, result.statusDetail.c_str(), wallMs, queueMs);
          } else if (result.degraded) {
            ++degradedCount;
            degradedMisses += static_cast<int64_t>(result.blocks) -
                              static_cast<int64_t>(result.cachedBlocks);
            std::printf("req %zu: degraded %s wall=%.1fms queue=%.1fms\n", i,
                        result.statusDetail.c_str(), wallMs, queueMs);
          } else {
            ++okCount;
            std::printf("req %zu: ok %s wall=%.1fms queue=%.1fms\n", i,
                        result.statusDetail.c_str(), wallMs, queueMs);
          }
          if (printAsm) std::printf("%s", result.asmText.c_str());
        } else {
          std::printf("req %zu: error %s wall=%.1fms queue=%.1fms\n", i,
                      result.error.c_str(), wallMs, queueMs);
        }
        std::fflush(stdout);
      });

      std::printf(
          "avivd: pass %d: %zu requests, %zu ok, %zu degraded, "
          "%zu quarantined, %zu failed, %zu skipped\n",
          pass, requests.size(), okCount, degradedCount, quarantinedCount,
          requests.size() - okCount - degradedCount - quarantinedCount -
              skippedCount,
          skippedCount);
      if (parseErrors > 0)
        std::printf("avivd: pass %d: %d parse-errors\n", pass, parseErrors);
      if (cache != nullptr) {
        const CacheStats now = cache->stats();
        std::printf(
            "avivd: cache: %lld lookups, %lld hits, %lld misses, "
            "%lld corrupt, %lld write-errors, %lld io-retries, "
            "%lld evictions\n",
            static_cast<long long>(now.lookups - before.lookups),
            static_cast<long long>(now.hits - before.hits),
            static_cast<long long>(now.misses - before.misses),
            static_cast<long long>(now.corrupt - before.corrupt),
            static_cast<long long>(now.writeErrors - before.writeErrors),
            static_cast<long long>(now.ioRetries - before.ioRetries),
            static_cast<long long>(now.evictions - before.evictions));
        finalPassMisses = now.misses - before.misses;
        finalPassDegradedMisses = degradedMisses;
        finalPassQuarantinedMisses = quarantinedMisses;
        recordServiceStats(now, root.child("service"));
      }
      if (okCount + degradedCount + quarantinedCount != requests.size())
        allOk = false;
      // Periodic metrics flush: one aggregated dump per pass, so a long
      // --repeat run exposes progress without waiting for exit.
      dumpMetrics();
      if (g_shutdownRequested != 0) shutdown = true;
    }

    if (shutdown) {
      // Graceful shutdown: in-flight work has drained; persist what we can
      // and exit with the conventional interrupted status.
      if (cache != nullptr) cache->flushManifest();
      if (!statsJson.empty()) writeFile(statsJson, root.toJson() + "\n");
      dumpMetrics();
      dumpTrace();
      std::printf("avivd: shutdown requested, exiting\n");
      return 130;
    }
    if (!statsJson.empty()) writeFile(statsJson, root.toJson() + "\n");
    dumpMetrics();
    dumpTrace();
    if (!allOk) return 1;
    if (expectAllHits &&
        (cache == nullptr ||
         finalPassMisses - finalPassDegradedMisses -
                 finalPassQuarantinedMisses >
             0)) {
      std::fprintf(stderr,
                   "avivd: --expect-all-hits: final pass had %lld misses "
                   "(%lld from degraded and %lld from quarantined requests, "
                   "excluded)\n",
                   static_cast<long long>(finalPassMisses),
                   static_cast<long long>(finalPassDegradedMisses),
                   static_cast<long long>(finalPassQuarantinedMisses));
      return 2;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "avivd: %s\n", e.what());
    return 1;
  }
}
