// avivd — the AVIV batch-compile daemon: one warm process serving many
// compiles (DESIGN.md System 23). Reads newline-delimited compile requests,
// dispatches them across the session thread pool with result-cache lookups,
// and streams one status line per request plus an end-of-pass summary.
//
//   avivd <requests.txt|-> [options]
//
// Request line grammar (whitespace-separated tokens; '#' starts a comment,
// blank lines are skipped):
//
//   machine=<name|path.isdl> block=<name|path.blk|path.c> [heuristics=on|off]
//   [const-pool] [outputs-mem] [no-peephole] [regs=N]
//
// `machine` resolves shipped names via the machine directory; `block`
// resolves shipped names via the block directory, or takes a path to a
// .blk/.c file. Example batch:
//
//   machine=arch1 block=ex1
//   machine=arch2 block=biquad heuristics=off
//   machine=dsp16 block=fir.blk const-pool
//
// Options:
//   --cache-dir <dir>    on-disk result-cache directory (shared with avivc);
//                        without it the cache is in-memory only
//   --no-cache           disable the result cache entirely
//   --mem-entries <n>    memory-tier capacity in entries (default 1024)
//   --jobs <n>           worker threads compiling requests concurrently
//   --repeat <n>         run the whole batch n times in this process
//                        (pass 2+ should be all cache hits)
//   --expect-all-hits    exit nonzero unless the final pass had 0 misses
//   --print-asm          print each result's assembly after its status line
//   --stats-json <file>  write the daemon's phase-telemetry tree as JSON
//
// Status lines (streamed as requests complete; order varies with --jobs):
//   req 3: ok block=ex1 machine=arch1 blocks=1 instrs=7 cache=hit
//   req 5: error <message>
// Summary lines (per pass):
//   avivd: pass 1: 10 requests, 10 ok, 0 failed
//   avivd: cache: 10 lookups, 0 hits, 10 misses, 0 corrupt, 0 evictions
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "driver/codegen.h"
#include "frontend/minic.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "service/cache.h"
#include "support/cli.h"
#include "support/error.h"
#include "support/io.h"
#include "support/strings.h"
#include "support/thread_pool.h"

namespace {

using namespace aviv;

struct Request {
  int line = 0;  // 1-based line number in the batch file
  std::string machineSpec;
  std::string blockSpec;
  int regsOverride = 0;  // > 0: resize every register file
  DriverOptions options;
};

struct RequestResult {
  bool ok = false;
  std::string error;
  std::string statusDetail;  // "block=... machine=... blocks=N instrs=N cache=..."
  std::string asmText;
  size_t blocks = 0;
  size_t cachedBlocks = 0;
};

Machine resolveMachine(const std::string& spec) {
  if (endsWith(spec, ".isdl")) return parseMachine(readFile(spec));
  return loadMachine(spec);
}

Program resolveProgram(const std::string& spec) {
  if (endsWith(spec, ".c")) return parseMiniC(readFile(spec)).program;
  if (endsWith(spec, ".blk")) return parseProgram(readFile(spec), spec);
  const std::string path = blockPath(spec);
  return parseProgram(readFile(path), path);
}

Request parseRequest(const std::string& text, int line) {
  Request request;
  request.line = line;
  request.options.core = CodegenOptions::heuristicsOn();
  std::istringstream tokens(text);
  std::string token;
  while (tokens >> token) {
    if (token[0] == '#') break;
    const size_t eq = token.find('=');
    const std::string key = token.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : token.substr(eq + 1);
    if (key == "machine") {
      request.machineSpec = value;
    } else if (key == "block") {
      request.blockSpec = value;
    } else if (key == "heuristics") {
      if (value != "on" && value != "off")
        throw Error("heuristics expects on|off, got '" + value + "'");
      const int jobs = request.options.core.jobs;
      request.options.core = value == "off" ? CodegenOptions::heuristicsOff()
                                            : CodegenOptions::heuristicsOn();
      request.options.core.jobs = jobs;
    } else if (key == "const-pool") {
      request.options.core.constantsInMemory = true;
    } else if (key == "outputs-mem") {
      request.options.core.outputsToMemory = true;
    } else if (key == "no-peephole") {
      request.options.runPeephole = false;
    } else if (key == "regs") {
      request.regsOverride = std::stoi(value);
    } else {
      throw Error("unknown request token '" + token + "'");
    }
  }
  if (request.machineSpec.empty() || request.blockSpec.empty())
    throw Error("request needs machine=... and block=...");
  request.options.core.jobs = 1;  // daemon parallelism is across requests
  return request;
}

Machine materializeMachine(const Request& request) {
  Machine machine = resolveMachine(request.machineSpec);
  if (request.regsOverride > 0)
    machine = machine.withRegisterCount(request.regsOverride);
  return machine;
}

RequestResult runRequest(const Request& request,
                         const std::shared_ptr<ResultCache>& cache,
                         bool wantAsm, TelemetryNode& tel) {
  RequestResult result;
  try {
    const Machine machine = materializeMachine(request);
    const Program program = resolveProgram(request.blockSpec);
    DriverOptions options = request.options;
    options.cache = cache;
    CodeGenerator generator(machine, options);

    int instrs = 0;
    std::string asmText;
    if (program.numBlocks() > 1) {
      const CompiledProgram compiled = generator.compileProgram(program);
      instrs = compiled.totalInstructions();
      result.blocks = compiled.blocks.size();
      for (const CompiledBlock& block : compiled.blocks) {
        if (block.fromCache) ++result.cachedBlocks;
        if (wantAsm) asmText += block.image.asmText(machine) + "\n";
      }
    } else {
      SymbolTable symbols;
      const CompiledBlock block =
          generator.compileBlock(program.block(0), symbols);
      instrs = block.numInstructions();
      result.blocks = 1;
      if (block.fromCache) ++result.cachedBlocks;
      if (wantAsm) asmText = block.image.asmText(machine) + "\n";
    }
    tel.merge(generator.telemetry());

    const char* cacheState =
        cache == nullptr ? "off"
        : result.cachedBlocks == result.blocks ? "hit"
        : result.cachedBlocks == 0             ? "miss"
                                               : "partial";
    result.ok = true;
    result.asmText = std::move(asmText);
    result.statusDetail = "block=" + request.blockSpec +
                          " machine=" + machine.name() +
                          " blocks=" + std::to_string(result.blocks) +
                          " instrs=" + std::to_string(instrs) +
                          " cache=" + cacheState;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliFlags flags(argc, argv);
    if (flags.positional().size() != 1)
      throw Error(
          "usage: avivd <requests.txt|-> [--cache-dir DIR] [--no-cache] "
          "[--mem-entries N] [--jobs N] [--repeat N] [--expect-all-hits] "
          "[--print-asm] [--stats-json out.json]");
    const std::string batchPath = flags.positional()[0];
    const std::string cacheDir = flags.getString("cache-dir", "");
    const bool noCache = flags.getBool("no-cache", false);
    const auto memEntries =
        static_cast<size_t>(flags.getInt("mem-entries", 1024));
    const int jobs = static_cast<int>(flags.getInt("jobs", 1));
    const int repeat = static_cast<int>(flags.getInt("repeat", 1));
    const bool expectAllHits = flags.getBool("expect-all-hits", false);
    const bool printAsm = flags.getBool("print-asm", false);
    const std::string statsJson = flags.getString("stats-json", "");
    flags.finish();

    // Read and parse the whole batch up front: a malformed line should
    // fail fast, before any compile work starts.
    std::string batchText;
    if (batchPath == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      batchText = buffer.str();
    } else {
      batchText = readFile(batchPath);
    }
    std::vector<Request> requests;
    {
      std::istringstream lines(batchText);
      std::string line;
      int lineNo = 0;
      while (std::getline(lines, line)) {
        ++lineNo;
        const std::string_view stripped = trim(line);
        if (stripped.empty() || stripped[0] == '#') continue;
        try {
          requests.push_back(parseRequest(std::string(stripped), lineNo));
        } catch (const Error& e) {
          throw Error("request line " + std::to_string(lineNo) + ": " +
                      e.what());
        }
      }
    }
    if (requests.empty()) throw Error("batch contains no requests");

    std::shared_ptr<ResultCache> cache;
    if (!noCache) {
      CacheConfig cacheConfig;
      cacheConfig.dir = cacheDir;
      cacheConfig.memoryEntries = memEntries;
      cache = std::make_shared<ResultCache>(cacheConfig);
    }

    TelemetryNode root("avivd");
    ThreadPool pool(jobs);
    std::mutex outMu;
    bool allOk = true;
    int64_t finalPassMisses = 0;

    for (int pass = 1; pass <= repeat; ++pass) {
      TelemetryNode& passTel = root.child("pass:" + std::to_string(pass));
      // Pre-create one disjoint telemetry subtree per request before the
      // fan-out (TelemetryNode is not thread-safe).
      std::vector<TelemetryNode*> requestTel;
      requestTel.reserve(requests.size());
      for (size_t i = 0; i < requests.size(); ++i)
        requestTel.push_back(&passTel.child("req:" + std::to_string(i)));

      const CacheStats before =
          cache != nullptr ? cache->stats() : CacheStats{};
      size_t okCount = 0;
      pool.parallelFor(requests.size(), [&](size_t i, int) {
        const RequestResult result =
            runRequest(requests[i], cache, printAsm, *requestTel[i]);
        std::lock_guard<std::mutex> lock(outMu);
        if (result.ok) {
          ++okCount;
          std::printf("req %zu: ok %s\n", i, result.statusDetail.c_str());
          if (printAsm) std::printf("%s", result.asmText.c_str());
        } else {
          std::printf("req %zu: error %s\n", i, result.error.c_str());
        }
        std::fflush(stdout);
      });

      std::printf("avivd: pass %d: %zu requests, %zu ok, %zu failed\n", pass,
                  requests.size(), okCount, requests.size() - okCount);
      if (cache != nullptr) {
        const CacheStats now = cache->stats();
        std::printf(
            "avivd: cache: %lld lookups, %lld hits, %lld misses, "
            "%lld corrupt, %lld evictions\n",
            static_cast<long long>(now.lookups - before.lookups),
            static_cast<long long>(now.hits - before.hits),
            static_cast<long long>(now.misses - before.misses),
            static_cast<long long>(now.corrupt - before.corrupt),
            static_cast<long long>(now.evictions - before.evictions));
        finalPassMisses = now.misses - before.misses;
        recordServiceStats(now, root.child("service"));
      }
      if (okCount != requests.size()) allOk = false;
    }

    if (!statsJson.empty()) writeFile(statsJson, root.toJson() + "\n");
    if (!allOk) return 1;
    if (expectAllHits && (cache == nullptr || finalPassMisses > 0)) {
      std::fprintf(stderr,
                   "avivd: --expect-all-hits: final pass had %lld misses\n",
                   static_cast<long long>(finalPassMisses));
      return 2;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "avivd: %s\n", e.what());
    return 1;
  }
}
