// avivd — the AVIV compile daemon: one warm process serving many compiles
// (DESIGN.md System 23; server mode §6.7). Two front ends over the same
// request grammar and dispatch (src/service/request.h):
//
//   avivd <requests.txt|->  [options]          batch mode
//   avivd --listen <spec>   [options]          compile server (docs/server.md)
//
// Request line grammar (whitespace-separated tokens; '#' starts a comment,
// blank lines are skipped):
//
//   machine=<name|path.isdl> block=<name|path.blk|path.c> [heuristics=on|off]
//   [const-pool] [outputs-mem] [no-peephole] [regs=N] [timeout=SEC]
//   [verify=off|sampled|all]
//
// `machine` resolves shipped names via the machine directory; `block`
// resolves shipped names via the block directory, or takes a path to a
// .blk/.c file. `timeout` bounds the request's covering flow in wall-clock
// seconds (overriding --default-timeout): a request whose budget expires
// degrades to the sequential baseline and reports `degraded` instead of
// failing. Example batch:
//
//   machine=arch1 block=ex1
//   machine=arch2 block=biquad heuristics=off timeout=0.5
//   machine=dsp16 block=fir.blk const-pool
//
// Malformed request lines are reported (with their 1-based line number) and
// skipped; the rest of the batch still compiles. A batch whose request
// lines are ALL malformed reports a parse-errors summary and exits 2 — a
// config generator emitting garbage must not look like a successful run.
// A request that fails — compile error, injected fault, anything — only
// fails that request: the daemon never dies mid-batch. SIGINT/SIGTERM
// request a graceful shutdown: in-flight requests drain, pending ones
// report `skipped (shutdown)`, the cache manifest is flushed, and the
// process exits 130.
//
// Server mode (--listen unix:/path.sock | --listen host:port): serves the
// same grammar over the length-prefixed binary framing in src/net/frame.h,
// one request line per frame. Responses are typed (ok/hit/degraded/
// quarantined/error/retry-after) and carry wall/queue timings. Admission
// control sheds with RETRY_AFTER when --queue-cap requests are already
// waiting; SIGINT/SIGTERM drains: admitted requests finish, their responses
// flush, then the listener closes and the daemon exits 0. tools/loadgen is
// the matching load-generator client.
//
// Options (both modes unless noted):
//   --cache-dir <dir>    on-disk result-cache directory (shared with avivc);
//                        without it the cache is in-memory only
//   --no-cache           disable the result cache entirely
//   --mem-entries <n>    memory-tier capacity in entries (default 1024)
//   --jobs <n>           worker threads compiling requests concurrently
//   --repeat <n>         batch: run the whole batch n times in this process
//                        (pass 2+ should be all cache hits)
//   --expect-all-hits    batch: exit nonzero unless the final pass had 0
//                        misses (degraded requests excluded: their results
//                        are deliberately never cached)
//   --default-timeout <sec>  covering budget for requests without their own
//                        timeout= token (0 = unlimited)
//   --retries <n>        retry a request hit by a transient fault up to n
//                        times with exponential backoff (default 2)
//   --verify <m>         default differential-verification mode for requests
//                        without their own verify= token: off (default),
//                        sampled, or all (src/verify, DESIGN.md §6.5)
//   --quarantine-dir <d> where verification failures write repro artifacts
//   --failpoints <spec>  activate fault-injection points, same grammar as
//                        the AVIV_FAILPOINTS env var: name[:prob[:count]],
//                        comma-separated (see src/support/failpoint.h)
//   --failpoint-seed <n> seed for probabilistic fail-point draws, so a
//                        randomized soak run is reproducible from its seed
//   --isolate-workers <n>  compile in n supervised, crash-isolated worker
//                        processes (src/proc): a SIGSEGV, OOM, or hang
//                        takes down one worker, never the daemon; the
//                        request is retried once on a healthy worker
//   --worker-deadline-ms <n>  hard per-request ceiling before a worker is
//                        SIGKILLed (default 30000; 0 = none)
//   --worker-rss-mb <n>  per-worker RLIMIT_AS cap in MB (0 = inherit)
//   --worker-cpu-s <n>   per-worker RLIMIT_CPU cap in seconds (0 = inherit)
//   --crash-dir <dir>    write every worker crash as a standalone repro
//                        bundle under this directory (replayable with
//                        `fuzz_gen --replay <bundle>`)
//   --crash-loop-k <n>   crash-loop breaker: n crashes of one request line
//                        within the window blacklist it to an in-process
//                        baseline compile (default 3)
//   --print-asm          batch: print each result's assembly after its
//                        status line
//   --stats-json <file>  write the daemon's phase-telemetry tree as JSON
//   --trace-out <file>   flight-recorder tracing: write the retained events
//                        as Chrome trace-event JSON at exit (and on the
//                        SIGINT drain)
//   --metrics-json <file> metrics registry: write aggregated
//                        counters/histograms after every pass and on the
//                        SIGINT drain
//   --listen <spec>      server: accept framed requests on unix:/path or
//                        host:port (port 0 = kernel-assigned, printed)
//   --queue-cap <n>      server: admitted-but-unstarted request bound before
//                        shedding with RETRY_AFTER (default 256)
//   --backend <b>        server: event backend auto|epoll|poll
//   --drain-timeout-ms <n>  server: grace for stalled peers at shutdown
//
// Batch status lines (streamed as requests complete; order varies with
// --jobs):
//   req 3: ok block=ex1 machine=arch1 blocks=1 instrs=7 cache=hit
//     wall=12.4ms queue=0.1ms
//   req 4: degraded block=biquad machine=arch2 blocks=1 instrs=9 cache=miss
//     wall=503.0ms queue=0.2ms
//   req 5: error <message>
//   req 6: skipped (shutdown)
//   req 7: quarantined block=fir machine=dsp16 blocks=1 instrs=12 cache=miss
//     wall=88.1ms queue=0.3ms
// (each status is one line; wall= is the request's compile wall time,
// queue= how long it waited for a ThreadPool slot after the pass started)
// `quarantined` means output verification caught a miscompile: the emitted
// result is the verified baseline, a repro artifact was quarantined, and —
// like degraded requests — nothing was cached, so --expect-all-hits
// excludes its misses.
// Summary lines (per pass):
//   avivd: pass 1: 10 requests, 9 ok, 1 degraded, 0 quarantined, 0 failed,
//   0 skipped
//   avivd: cache: 10 lookups, 0 hits, 10 misses, 0 corrupt, 0 evictions
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "net/server.h"
#include "obs/metrics.h"
#include "proc/pool.h"
#include "obs/trace.h"
#include "service/cache.h"
#include "service/request.h"
#include "support/cli.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/io.h"
#include "support/strings.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace {

using namespace aviv;

// Graceful-shutdown flag, flipped by the SIGINT/SIGTERM handler. Batch
// workers poll it before starting a request; server mode additionally gets
// a byte on the event loop's wake pipe so the poll cuts short.
volatile std::sig_atomic_t g_shutdownRequested = 0;
volatile int g_serverWakeFd = -1;

extern "C" void handleShutdownSignal(int) {
  g_shutdownRequested = 1;
  const int fd = g_serverWakeFd;
  if (fd >= 0) {
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

struct DaemonConfig {
  RequestDefaults defaults;
  RequestExecConfig exec;
  int jobs = 1;
  std::string statsJson;
  std::string metricsJson;
  std::string traceOut;
  // --isolate-workers: requests run in supervised worker processes
  // (src/proc) instead of in-process; null = classic in-process dispatch.
  std::shared_ptr<proc::WorkerPool> pool;
};

// Per-pass delta of the pool's supervision counters, printed like the
// cache summary line.
void printPoolSummary(const proc::WorkerPool& pool,
                      const proc::PoolStats& before) {
  const proc::PoolStats now = pool.stats();
  std::printf(
      "avivd: workers: %llu crashes, %llu deadline-kills, "
      "%llu heartbeat-kills, %llu respawns, %llu crash-retried, "
      "%llu crash-failed, %llu breaker-opens, %llu breaker-served, "
      "%llu repro-bundles\n",
      static_cast<unsigned long long>(now.crashes - before.crashes),
      static_cast<unsigned long long>(now.deadlineKills -
                                      before.deadlineKills),
      static_cast<unsigned long long>(now.heartbeatKills -
                                      before.heartbeatKills),
      static_cast<unsigned long long>(now.respawns - before.respawns),
      static_cast<unsigned long long>(now.crashRetried -
                                      before.crashRetried),
      static_cast<unsigned long long>(now.crashFailed - before.crashFailed),
      static_cast<unsigned long long>(now.breakerOpens -
                                      before.breakerOpens),
      static_cast<unsigned long long>(now.breakerServed -
                                      before.breakerServed),
      static_cast<unsigned long long>(now.reproBundles -
                                      before.reproBundles));
}

void dumpMetricsTo(const std::string& path) {
  if (!path.empty()) writeFile(path, metrics::Registry::instance().toJson());
}

void dumpTraceTo(const std::string& path) {
  if (!path.empty())
    writeFile(path, trace::Tracer::instance().exportJson());
}

// --- batch mode -----------------------------------------------------------

int runBatch(const CliFlags& flagsIn, const DaemonConfig& daemon,
             const std::string& batchPath, int repeat, bool expectAllHits,
             bool printAsm) {
  (void)flagsIn;
  // Read and parse the whole batch up front. A malformed line is reported
  // with its 1-based line:column and skipped — one typo must not take down
  // the rest of the batch.
  std::string batchText;
  if (batchPath == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    batchText = buffer.str();
  } else {
    batchText = readFile(batchPath);
  }
  std::vector<std::shared_ptr<const ParsedRequest>> requests;
  // Raw text of each valid request line, same indexing as `requests`:
  // isolated workers (--isolate-workers) parse for themselves, so the pool
  // dispatch ships the line, not the parse.
  std::vector<std::string> rawLines;
  int parseErrors = 0;
  int requestLines = 0;
  {
    std::istringstream lines(batchText);
    std::string line;
    int lineNo = 0;
    while (std::getline(lines, line)) {
      ++lineNo;
      const std::string_view stripped = trim(line);
      if (stripped.empty() || stripped[0] == '#') continue;
      ++requestLines;
      const RequestParse parse =
          parseRequestLine(stripped, lineNo, daemon.defaults);
      if (parse.ok()) {
        requests.push_back(parse.request);
        rawLines.emplace_back(stripped);
      } else {
        ++parseErrors;
        std::printf("avivd: request line %s: %s (skipped)\n",
                    parse.diagnostic.loc.str().c_str(),
                    parse.diagnostic.message.c_str());
      }
    }
  }
  if (requests.empty()) {
    if (parseErrors > 0) {
      // Every request line was malformed: this is a broken batch, not a
      // successful no-op — summarize and exit distinctly nonzero.
      std::printf(
          "avivd: parse-errors: all %d request line%s malformed, "
          "0 requests run\n",
          parseErrors, parseErrors == 1 ? "" : "s");
      std::fflush(stdout);
      return 2;
    }
    (void)requestLines;
    throw Error("batch contains no valid requests");
  }

  TelemetryNode root("avivd");
  ThreadPool pool(daemon.jobs);
  std::mutex outMu;
  bool allOk = true;
  int64_t finalPassMisses = 0;
  int64_t finalPassDegradedMisses = 0;
  int64_t finalPassQuarantinedMisses = 0;
  bool shutdown = false;
  const std::shared_ptr<ResultCache>& cache = daemon.exec.cache;

  for (int pass = 1; pass <= repeat && !shutdown; ++pass) {
    TelemetryNode& passTel = root.child("pass:" + std::to_string(pass));
    // Pre-create one disjoint telemetry subtree per request before the
    // fan-out (TelemetryNode is not thread-safe).
    std::vector<TelemetryNode*> requestTel;
    requestTel.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i)
      requestTel.push_back(&passTel.child("req:" + std::to_string(i)));

    const CacheStats before = cache != nullptr ? cache->stats() : CacheStats{};
    const proc::PoolStats poolBefore =
        daemon.pool != nullptr ? daemon.pool->stats() : proc::PoolStats{};
    size_t okCount = 0;
    size_t degradedCount = 0;
    size_t quarantinedCount = 0;
    size_t skippedCount = 0;
    // Isolated-worker mode: kOk responses (at least one cold block) stand
    // in for cache misses, since the workers' cache stats live in other
    // processes.
    size_t coldOkCount = 0;
    // Misses attributable to degraded/quarantined requests: their results
    // are deliberately never cached, so --expect-all-hits must not count
    // them against the pass.
    int64_t degradedMisses = 0;
    int64_t quarantinedMisses = 0;
    // Queue time = how long the request waited for a ThreadPool slot
    // after the pass fan-out began; wall time = the compile itself.
    const WallTimer passTimer;
    RequestExecConfig exec = daemon.exec;
    exec.wantAsm = printAsm;
    pool.parallelFor(requests.size(), [&](size_t i, int) {
      const double queueMs = passTimer.seconds() * 1e3;
      if (g_shutdownRequested != 0) {
        // Drain mode: in-flight requests finish, pending ones skip.
        std::lock_guard<std::mutex> lock(outMu);
        ++skippedCount;
        std::printf("req %zu: skipped (shutdown)\n", i);
        std::fflush(stdout);
        return;
      }
      trace::Span reqSpan("avivd", "req:", std::to_string(i));
      const WallTimer reqTimer;
      if (daemon.pool != nullptr) {
        // Supervised dispatch: the worker process parses and executes; the
        // typed result comes back over the socketpair. wall= is the
        // supervisor-side time, so it includes any crash retry.
        const proc::WorkerResult wr = daemon.pool->execute(rawLines[i],
                                                           printAsm);
        const double poolWallMs = reqTimer.seconds() * 1e3;
        if (metrics::on())
          metrics::Registry::instance()
              .histogram("avivd.request.us")
              .record(static_cast<int64_t>(poolWallMs * 1e3));
        std::lock_guard<std::mutex> lock(outMu);
        switch (wr.type) {
          case net::FrameType::kQuarantined:
            ++quarantinedCount;
            std::printf("req %zu: quarantined %s wall=%.1fms queue=%.1fms\n",
                        i, wr.detail.c_str(), poolWallMs, queueMs);
            break;
          case net::FrameType::kDegraded:
            ++degradedCount;
            std::printf("req %zu: degraded %s wall=%.1fms queue=%.1fms\n", i,
                        wr.detail.c_str(), poolWallMs, queueMs);
            break;
          case net::FrameType::kHit:
          case net::FrameType::kOk:
            ++okCount;
            if (wr.type == net::FrameType::kOk) ++coldOkCount;
            std::printf("req %zu: ok %s wall=%.1fms queue=%.1fms\n", i,
                        wr.detail.c_str(), poolWallMs, queueMs);
            break;
          default:
            std::printf("req %zu: error %s wall=%.1fms queue=%.1fms\n", i,
                        wr.detail.c_str(), poolWallMs, queueMs);
            break;
        }
        if (printAsm) std::printf("%s", wr.body.c_str());
        std::fflush(stdout);
        return;
      }
      const RequestOutcome result =
          executeRequest(*requests[i], exec, *requestTel[i]);
      const double wallMs = reqTimer.seconds() * 1e3;
      if (metrics::on())
        metrics::Registry::instance()
            .histogram("avivd.request.us")
            .record(static_cast<int64_t>(wallMs * 1e3));
      std::lock_guard<std::mutex> lock(outMu);
      if (result.ok) {
        if (result.quarantined) {
          // Takes precedence over plain degradation: verification caught a
          // miscompile, the emitted result is the verified baseline.
          ++quarantinedCount;
          quarantinedMisses += static_cast<int64_t>(result.blocks) -
                               static_cast<int64_t>(result.cachedBlocks);
          std::printf("req %zu: quarantined %s wall=%.1fms queue=%.1fms\n", i,
                      result.statusDetail.c_str(), wallMs, queueMs);
        } else if (result.degraded) {
          ++degradedCount;
          degradedMisses += static_cast<int64_t>(result.blocks) -
                            static_cast<int64_t>(result.cachedBlocks);
          std::printf("req %zu: degraded %s wall=%.1fms queue=%.1fms\n", i,
                      result.statusDetail.c_str(), wallMs, queueMs);
        } else {
          ++okCount;
          std::printf("req %zu: ok %s wall=%.1fms queue=%.1fms\n", i,
                      result.statusDetail.c_str(), wallMs, queueMs);
        }
        if (printAsm) std::printf("%s", result.asmText.c_str());
      } else {
        std::printf("req %zu: error %s wall=%.1fms queue=%.1fms\n", i,
                    result.error.c_str(), wallMs, queueMs);
      }
      std::fflush(stdout);
    });

    std::printf(
        "avivd: pass %d: %zu requests, %zu ok, %zu degraded, "
        "%zu quarantined, %zu failed, %zu skipped\n",
        pass, requests.size(), okCount, degradedCount, quarantinedCount,
        requests.size() - okCount - degradedCount - quarantinedCount -
            skippedCount,
        skippedCount);
    if (parseErrors > 0)
      std::printf("avivd: pass %d: %d parse-errors\n", pass, parseErrors);
    if (cache != nullptr) {
      const CacheStats now = cache->stats();
      std::printf(
          "avivd: cache: %lld lookups, %lld hits, %lld misses, "
          "%lld corrupt, %lld write-errors, %lld io-retries, "
          "%lld evictions\n",
          static_cast<long long>(now.lookups - before.lookups),
          static_cast<long long>(now.hits - before.hits),
          static_cast<long long>(now.misses - before.misses),
          static_cast<long long>(now.corrupt - before.corrupt),
          static_cast<long long>(now.writeErrors - before.writeErrors),
          static_cast<long long>(now.ioRetries - before.ioRetries),
          static_cast<long long>(now.evictions - before.evictions));
      finalPassMisses = now.misses - before.misses;
      finalPassDegradedMisses = degradedMisses;
      finalPassQuarantinedMisses = quarantinedMisses;
      recordServiceStats(now, root.child("service"));
    }
    if (daemon.pool != nullptr) {
      printPoolSummary(*daemon.pool, poolBefore);
      // The supervisor's cache stats never see worker compiles; cold (kOk)
      // responses are the pass's misses, and degraded/quarantined are
      // already excluded by type.
      finalPassMisses = static_cast<int64_t>(coldOkCount);
      finalPassDegradedMisses = 0;
      finalPassQuarantinedMisses = 0;
    }
    if (okCount + degradedCount + quarantinedCount != requests.size())
      allOk = false;
    // Periodic metrics flush: one aggregated dump per pass, so a long
    // --repeat run exposes progress without waiting for exit.
    dumpMetricsTo(daemon.metricsJson);
    if (g_shutdownRequested != 0) shutdown = true;
  }

  if (shutdown) {
    // Graceful shutdown: in-flight work has drained; persist what we can
    // and exit with the conventional interrupted status.
    if (cache != nullptr) cache->flushManifest();
    if (!daemon.statsJson.empty())
      writeFile(daemon.statsJson, root.toJson() + "\n");
    dumpMetricsTo(daemon.metricsJson);
    dumpTraceTo(daemon.traceOut);
    std::printf("avivd: shutdown requested, exiting\n");
    return 130;
  }
  if (!daemon.statsJson.empty())
    writeFile(daemon.statsJson, root.toJson() + "\n");
  dumpMetricsTo(daemon.metricsJson);
  dumpTraceTo(daemon.traceOut);
  if (!allOk) return 1;
  if (expectAllHits &&
      (cache == nullptr || finalPassMisses - finalPassDegradedMisses -
                                   finalPassQuarantinedMisses >
                               0)) {
    std::fprintf(stderr,
                 "avivd: --expect-all-hits: final pass had %lld misses "
                 "(%lld from degraded and %lld from quarantined requests, "
                 "excluded)\n",
                 static_cast<long long>(finalPassMisses),
                 static_cast<long long>(finalPassDegradedMisses),
                 static_cast<long long>(finalPassQuarantinedMisses));
    return 2;
  }
  return 0;
}

// --- server mode ----------------------------------------------------------

int runServer(const DaemonConfig& daemon, const std::string& listenSpec,
              int queueCap, const std::string& backendName,
              int drainTimeoutMs) {
  net::ServerConfig config;
  config.listen = net::parseEndpoint(listenSpec);
  config.queueCapacity = queueCap;
  if (drainTimeoutMs > 0) config.drainTimeoutMs = drainTimeoutMs;
  if (backendName == "epoll") {
    config.backend = net::EventLoop::Backend::kEpoll;
  } else if (backendName == "poll") {
    config.backend = net::EventLoop::Backend::kPoll;
  } else if (backendName != "auto") {
    throw Error("--backend expects auto|epoll|poll, got '" + backendName +
                "'");
  }

  TelemetryNode root("avivd");
  TelemetryNode& serverTel = root.child("server");
  std::mutex telMu;
  ThreadPool pool(daemon.jobs);

  // The handler runs on ThreadPool workers: parse (line 0 — requests are
  // not lines of a file), execute with per-request isolation, and map the
  // outcome onto the wire's typed responses.
  auto handler = [&](const net::NetRequest& netRequest) -> net::NetResponse {
    net::NetResponse response;
    if (daemon.pool != nullptr) {
      // Supervised dispatch: the request runs in a sandboxed worker
      // process. A worker crash is retried once on a healthy worker, then
      // typed kError — the connection always gets its response.
      const proc::WorkerResult wr =
          daemon.pool->execute(netRequest.line, netRequest.wantAsm);
      response.type = wr.type;
      response.detail = wr.detail;
      response.body = wr.body;
      response.crashRetries = wr.crashes;
      return response;
    }
    const RequestParse parse =
        parseRequestLine(netRequest.line, 0, daemon.defaults);
    if (!parse.ok()) {
      response.type = net::FrameType::kError;
      response.detail = parse.diagnostic.message;
      return response;
    }
    RequestExecConfig exec = daemon.exec;
    exec.wantAsm = netRequest.wantAsm;
    TelemetryNode local("req");
    const RequestOutcome outcome = executeRequest(*parse.request, exec, local);
    {
      std::lock_guard<std::mutex> lock(telMu);
      serverTel.merge(local);
    }
    if (!outcome.ok) {
      response.type = net::FrameType::kError;
      response.detail = outcome.error;
      return response;
    }
    if (outcome.quarantined) {
      response.type = net::FrameType::kQuarantined;
    } else if (outcome.degraded) {
      response.type = net::FrameType::kDegraded;
    } else if (outcome.allCached()) {
      response.type = net::FrameType::kHit;
    } else {
      response.type = net::FrameType::kOk;
    }
    response.detail = outcome.statusDetail;
    response.body = outcome.asmText;
    return response;
  };

  net::CompileServer server(config, pool, handler);
  const net::Endpoint bound = server.start();
  g_serverWakeFd = server.wakeupFd();
  std::printf("avivd: listening on %s (queue-cap %d, jobs %d)\n",
              bound.str().c_str(), config.queueCapacity, daemon.jobs);
  std::fflush(stdout);

  server.serve(&g_shutdownRequested);
  g_serverWakeFd = -1;

  const net::ServerStats stats = server.stats();
  std::printf(
      "avivd: server: %lld conns, %lld requests, %lld ok, %lld hits, "
      "%lld degraded, %lld quarantined, %lld errors, %lld shed, "
      "%lld responses, %lld dropped, %lld crash-retried\n",
      static_cast<long long>(stats.accepted),
      static_cast<long long>(stats.requests),
      static_cast<long long>(stats.ok), static_cast<long long>(stats.hits),
      static_cast<long long>(stats.degraded),
      static_cast<long long>(stats.quarantined),
      static_cast<long long>(stats.errors),
      static_cast<long long>(stats.shed),
      static_cast<long long>(stats.responses),
      static_cast<long long>(stats.droppedResponses),
      static_cast<long long>(stats.crashRetried));
  if (daemon.pool != nullptr)
    printPoolSummary(*daemon.pool, proc::PoolStats{});
  if (daemon.exec.cache != nullptr) {
    const CacheStats cs = daemon.exec.cache->stats();
    std::printf(
        "avivd: cache: %lld lookups, %lld hits, %lld misses, %lld corrupt, "
        "%lld write-errors, %lld io-retries, %lld evictions\n",
        static_cast<long long>(cs.lookups), static_cast<long long>(cs.hits),
        static_cast<long long>(cs.misses), static_cast<long long>(cs.corrupt),
        static_cast<long long>(cs.writeErrors),
        static_cast<long long>(cs.ioRetries),
        static_cast<long long>(cs.evictions));
    daemon.exec.cache->flushManifest();
    recordServiceStats(cs, root.child("service"));
  }
  if (!daemon.statsJson.empty())
    writeFile(daemon.statsJson, root.toJson() + "\n");
  dumpMetricsTo(daemon.metricsJson);
  dumpTraceTo(daemon.traceOut);
  std::printf("avivd: drained, exiting\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliFlags flags(argc, argv);
    const std::string listenSpec = flags.getString("listen", "");
    if (listenSpec.empty() ? flags.positional().size() != 1
                           : !flags.positional().empty())
      throw Error(
          "usage: avivd <requests.txt|-> [--cache-dir DIR] [--no-cache] "
          "[--mem-entries N] [--jobs N] [--repeat N] [--expect-all-hits] "
          "[--default-timeout SEC] [--retries N] [--failpoints SPEC] "
          "[--failpoint-seed N] "
          "[--verify off|sampled|all] [--quarantine-dir DIR] "
          "[--print-asm] [--stats-json out.json] [--trace-out out.json] "
          "[--metrics-json out.json]\n"
          "       avivd --listen <unix:PATH|HOST:PORT> [--queue-cap N] "
          "[--backend auto|epoll|poll] [--drain-timeout-ms N] "
          "[common options]\n"
          "       common: --isolate-workers N [--worker-deadline-ms N] "
          "[--worker-rss-mb N] [--worker-cpu-s N] [--crash-dir DIR] "
          "[--crash-loop-k N] — compile in supervised, crash-isolated "
          "worker processes");
    DaemonConfig daemon;
    const std::string cacheDir = flags.getString("cache-dir", "");
    const bool noCache = flags.getBool("no-cache", false);
    const auto memEntries =
        static_cast<size_t>(flags.getInt("mem-entries", 1024));
    daemon.jobs = static_cast<int>(flags.getInt("jobs", 1));
    const int repeat = static_cast<int>(flags.getInt("repeat", 1));
    const bool expectAllHits = flags.getBool("expect-all-hits", false);
    daemon.defaults.timeoutSeconds = flags.getDouble("default-timeout", 0.0);
    daemon.exec.retries = static_cast<int>(flags.getInt("retries", 2));
    const std::string verifyMode = flags.getString("verify", "off");
    if (verifyMode == "sampled") {
      daemon.defaults.verify.level = VerifyLevel::kSampled;
    } else if (verifyMode == "all") {
      daemon.defaults.verify.level = VerifyLevel::kAll;
    } else if (verifyMode != "off") {
      throw Error("--verify expects off|sampled|all, got '" + verifyMode +
                  "'");
    }
    daemon.defaults.verify.quarantineDir =
        flags.getString("quarantine-dir", "");
    const std::string failpoints = flags.getString("failpoints", "");
    const auto failpointSeed =
        static_cast<uint64_t>(flags.getInt("failpoint-seed", 0));
    const bool printAsm = flags.getBool("print-asm", false);
    daemon.statsJson = flags.getString("stats-json", "");
    daemon.traceOut = flags.getString("trace-out", "");
    daemon.metricsJson = flags.getString("metrics-json", "");
    const int queueCap = static_cast<int>(flags.getInt("queue-cap", 256));
    const std::string backendName = flags.getString("backend", "auto");
    const int drainTimeoutMs =
        static_cast<int>(flags.getInt("drain-timeout-ms", 0));
    const int isolateWorkers =
        static_cast<int>(flags.getInt("isolate-workers", 0));
    const int workerDeadlineMs =
        static_cast<int>(flags.getInt("worker-deadline-ms", 30000));
    const auto workerRssMb =
        static_cast<uint64_t>(flags.getInt("worker-rss-mb", 0));
    const auto workerCpuS =
        static_cast<uint64_t>(flags.getInt("worker-cpu-s", 0));
    const std::string crashDir = flags.getString("crash-dir", "");
    const int crashLoopK = static_cast<int>(flags.getInt("crash-loop-k", 3));
    flags.finish();
    if (!failpoints.empty())
      FailPoints::instance().configure(failpoints, failpointSeed);
    if (!daemon.traceOut.empty()) trace::Tracer::instance().enable();
    if (!daemon.metricsJson.empty()) metrics::Registry::instance().enable();

    std::signal(SIGINT, handleShutdownSignal);
    std::signal(SIGTERM, handleShutdownSignal);
    std::signal(SIGPIPE, SIG_IGN);

    if (!noCache) {
      CacheConfig cacheConfig;
      cacheConfig.dir = cacheDir;
      cacheConfig.memoryEntries = memEntries;
      daemon.exec.cache = std::make_shared<ResultCache>(cacheConfig);
    }

    if (isolateWorkers > 0) {
      // Crash isolation: compile in supervised worker processes. Built
      // after the cache so its startup sweep has already run — workers
      // opening the same store sweep age-gated only.
      proc::PoolConfig poolConfig;
      poolConfig.workers = isolateWorkers;
      poolConfig.hardDeadlineMs = workerDeadlineMs;
      poolConfig.crashLoopK = crashLoopK;
      poolConfig.crashDir = crashDir;
      poolConfig.env.defaults = daemon.defaults;
      poolConfig.env.cacheDir = cacheDir;
      poolConfig.env.cacheEnabled = !noCache;
      poolConfig.env.memEntries = memEntries;
      poolConfig.env.transientRetries = daemon.exec.retries;
      poolConfig.env.rssLimitBytes = workerRssMb << 20;
      poolConfig.env.cpuLimitSeconds = workerCpuS;
      if (daemon.exec.cache != nullptr) {
        // A worker SIGKILLed mid-store leaves a torn *.tmp in the shared
        // disk store; re-sweep (age-gated: live sibling writers keep
        // their in-progress temps) after every crash, not just startup.
        const std::shared_ptr<ResultCache> cache = daemon.exec.cache;
        poolConfig.onCrash = [cache] { cache->sweepStaleTemps(5.0); };
      }
      daemon.pool = std::make_shared<proc::WorkerPool>(poolConfig);
      std::printf(
          "avivd: %d isolated compile worker%s (deadline %dms, rss-cap "
          "%lluMB, cpu-cap %llus)\n",
          isolateWorkers, isolateWorkers == 1 ? "" : "s", workerDeadlineMs,
          static_cast<unsigned long long>(workerRssMb),
          static_cast<unsigned long long>(workerCpuS));
      std::fflush(stdout);
    }

    if (!listenSpec.empty())
      return runServer(daemon, listenSpec, queueCap, backendName,
                       drainTimeoutMs);
    return runBatch(flags, daemon, flags.positional()[0], repeat,
                    expectAllHits, printAsm);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "avivd: %s\n", e.what());
    return 1;
  }
}
